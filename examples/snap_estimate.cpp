// Command-line estimator for real graph files — the tool a downstream
// user points at com-dblp.ungraph.txt (or its `.mhbc` snapshot).
//
// Usage:
//   example_snap_estimate [--cache-dir=<dir>] <graph> <vertex-id...>
//                         [estimator] [samples] [seed]
//
//   graph:     any ingestion format (graph/ingest.h): SNAP edge list,
//              weighted edge list, Matrix Market .mtx, or .mhbc snapshot —
//              sniffed from extension/content.
//   estimator: mh | mh-rb | uniform | distance | rk | geisberger | exact
//              (default mh)
//   samples:   chain length / sample budget (default 2000)
//
// With --cache-dir, a text dataset is parsed once, snapshotted under the
// given directory, and mmap-loaded zero-copy on every later run — the
// startup cost drops from a full parse to a file map (bench_e19_ingest
// measures the gap). Vertex ids refer to the loader's dense remapping
// order (first-seen order in the file) and may be a comma-separated
// list — the ids share one BetweennessEngine, so later estimates reuse
// the passes of earlier ones. Without arguments, the tool generates a
// small demo network, writes it to a temp file, and runs on that — so it
// is runnable anywhere.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "centrality/engine.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/ingest.h"

namespace {

int Run(const mhbc::GraphSource& source,
        const std::vector<mhbc::VertexId>& vertices,
        const mhbc::EstimateRequest& request) {
  const mhbc::CsrGraph& graph = source.graph();
  std::printf("graph: n=%u m=%llu%s  [%s%s%s]\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              graph.weighted() ? " (weighted)" : "",
              mhbc::GraphFileFormatName(source.source_format()),
              source.zero_copy() ? ", zero-copy mmap" : "",
              source.cache_hit() ? ", cache hit" : "");
  mhbc::BetweennessEngine engine(graph);
  const auto reports = engine.EstimateMany(vertices, request);
  if (!reports.ok()) {
    std::fprintf(stderr, "error: %s\n", reports.status().ToString().c_str());
    return 1;
  }
  for (const mhbc::EstimateReport& report : reports.value()) {
    std::printf(
        "BC(%u) ~= %.8f   [estimator=%s, passes=%llu%s, +/-%.2e, %.3fs]\n",
        report.vertex, report.value, mhbc::EstimatorKindName(report.kind),
        static_cast<unsigned long long>(report.sp_passes),
        report.cache_hit ? " cached" : "", report.ci_half_width,
        report.seconds);
  }
  std::printf("total passes across %zu queries: %llu\n", reports.value().size(),
              static_cast<unsigned long long>(engine.total_sp_passes()));
  return 0;
}

}  // namespace

int main(int raw_argc, char** raw_argv) {
  mhbc::IngestOptions load_options;
  load_options.largest_component_only = true;

  // Strip --cache-dir= (accepted anywhere) before positional parsing.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(raw_argc));
  for (int i = 0; i < raw_argc; ++i) {
    const std::string arg = raw_argv[i];
    if (arg.rfind("--cache-dir=", 0) == 0) {
      load_options.cache_dir = arg.substr(std::string("--cache-dir=").size());
    } else {
      args.push_back(raw_argv[i]);
    }
  }
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();

  mhbc::EstimateRequest request;
  request.kind = mhbc::EstimatorKind::kMetropolisHastings;
  request.samples = 2'000;
  request.seed = 0x5eed;

  if (argc < 3) {
    std::printf(
        "usage: %s [--cache-dir=<dir>] <graph> <vertex-id...> [estimator] "
        "[samples] [seed]\n"
        "no file given: running the built-in demo\n\n",
        argv[0]);
    // Self-contained demo: write a caveman network to a temp edge list,
    // load it back through the ingestion pipeline, estimate two gateway
    // vertices on one engine.
    const std::string path = "/tmp/mhbc_demo_edges.txt";
    const mhbc::CsrGraph demo = mhbc::MakeConnectedCaveman(6, 12);
    const mhbc::Status write_status = mhbc::WriteEdgeList(demo, path);
    if (!write_status.ok()) {
      std::fprintf(stderr, "demo write failed: %s\n",
                   write_status.ToString().c_str());
      return 1;
    }
    auto loaded = mhbc::OpenGraphSource(path, load_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "demo load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    return Run(loaded.value(), /*gateways=*/{11, 23}, request);
  }

  const std::string path = argv[1];
  const std::vector<mhbc::VertexId> vertices =
      mhbc::ParseVertexIdList(argv[2]);
  if (vertices.empty()) {
    std::fprintf(stderr, "no vertex ids in '%s'\n", argv[2]);
    return 2;
  }
  if (argc > 3 && !mhbc::ParseEstimatorKind(argv[3], &request.kind)) {
    std::fprintf(stderr, "unknown estimator '%s'\n", argv[3]);
    return 2;
  }
  if (argc > 4) request.samples = std::strtoull(argv[4], nullptr, 10);
  if (argc > 5) request.seed = std::strtoull(argv[5], nullptr, 10);

  auto loaded = mhbc::OpenGraphSource(path, load_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  return Run(loaded.value(), vertices, request);
}
