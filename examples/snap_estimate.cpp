// Command-line estimator for real SNAP edge-list files — the tool a
// downstream user points at com-dblp.ungraph.txt.
//
// Usage:
//   example_snap_estimate <edge-list> <vertex-id> [estimator] [samples] [seed]
//
//   estimator: mh | mh-rb | uniform | distance | rk | geisberger | exact
//              (default mh)
//   samples:   chain length / sample budget (default 2000)
//
// Vertex ids refer to the loader's dense remapping order (first-seen order
// in the file). Without arguments, the tool generates a small demo network,
// writes it to a temp file, and runs on that — so it is runnable anywhere.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "centrality/api.h"
#include "graph/generators.h"
#include "graph/graph_io.h"

namespace {

int Run(const mhbc::CsrGraph& graph, mhbc::VertexId r,
        const mhbc::EstimateOptions& options) {
  const auto result = mhbc::EstimateBetweenness(graph, r, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: n=%u m=%llu%s\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              graph.weighted() ? " (weighted)" : "");
  std::printf("BC(%u) ~= %.8f   [estimator=%s, passes=%llu, %.3fs]\n", r,
              result.value().value, mhbc::EstimatorKindName(options.kind),
              static_cast<unsigned long long>(result.value().sp_passes),
              result.value().seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mhbc::EstimateOptions options;
  options.kind = mhbc::EstimatorKind::kMetropolisHastings;
  options.samples = 2'000;
  options.seed = 0x5eed;

  if (argc < 3) {
    std::printf(
        "usage: %s <edge-list> <vertex-id> [estimator] [samples] [seed]\n"
        "no file given: running the built-in demo\n\n",
        argv[0]);
    // Self-contained demo: write a caveman network to a temp edge list,
    // load it back through the SNAP loader, estimate a gateway vertex.
    const std::string path = "/tmp/mhbc_demo_edges.txt";
    const mhbc::CsrGraph demo = mhbc::MakeConnectedCaveman(6, 12);
    const mhbc::Status write_status = mhbc::WriteEdgeList(demo, path);
    if (!write_status.ok()) {
      std::fprintf(stderr, "demo write failed: %s\n",
                   write_status.ToString().c_str());
      return 1;
    }
    auto loaded = mhbc::LoadSnapEdgeList(path, {});
    if (!loaded.ok()) {
      std::fprintf(stderr, "demo load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    return Run(loaded.value(), /*gateway=*/11, options);
  }

  const std::string path = argv[1];
  const auto r = static_cast<mhbc::VertexId>(std::strtoul(argv[2], nullptr, 10));
  if (argc > 3 && !mhbc::ParseEstimatorKind(argv[3], &options.kind)) {
    std::fprintf(stderr, "unknown estimator '%s'\n", argv[3]);
    return 2;
  }
  if (argc > 4) options.samples = std::strtoull(argv[4], nullptr, 10);
  if (argc > 5) options.seed = std::strtoull(argv[5], nullptr, 10);

  mhbc::EdgeListOptions load_options;
  load_options.largest_component_only = true;
  auto loaded = mhbc::LoadSnapEdgeList(path, load_options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  return Run(loaded.value(), r, options);
}
