// mhbc_serve — long-lived betweenness-estimation daemon.
//
//   mhbc_serve [--stdio | --port=<p>] [--dataset=<name>] [--graph=<name>=<file>]
//              [--sessions=<k>] [--workers=<k>] [--queue=<k>] [--threads=<k>]
//              [--spd-threads=<k>] [--max-line-bytes=<b>]
//
// Holds a catalog of named graphs, each with a pool of warm
// BetweennessEngine sessions, and serves estimate / rank / topk / mutate /
// stats over newline-delimited JSON (the byte-level protocol is specified
// in docs/serving.md). Two transports share the same executor
// (serve/server.h):
//
//   --stdio      one request line on stdin -> one response line on stdout;
//                exits cleanly at EOF. The transport tests and CI use this.
//   --port=<p>   TCP listener (default). One connection = one pipelined
//                NDJSON stream; `--port=0` picks an ephemeral port and
//                prints it. A dropped connection never takes the daemon
//                down (SIGPIPE is ignored; reads/writes fail per-socket).
//
// Catalog population (repeatable, combined freely):
//   --dataset=<name>        registry dataset (src/datasets/registry.h),
//                           e.g. caveman-36, email-like-1k, social-like-8k
//   --graph=<name>=<file>   any ingestion format (docs/formats.md); the
//                           largest component is extracted, as the
//                           estimators assume
// With neither, the daemon serves the registry dataset `caveman-36` so a
// bare `mhbc_serve --stdio` is immediately usable.
//
// Sizing:
//   --sessions=<k>        warm engines per graph = max concurrent readers
//                         of that graph (default 2)
//   --workers=<k>         executor threads (default 2)
//   --queue=<k>           admission queue capacity; a full queue rejects
//                         with the `overload` error class (default 64)
//   --threads=<k>         EngineOptions::num_threads per session (default 1;
//                         bit-identical results at every setting)
//   --spd-threads=<k>     frontier-/wave-parallel threads within each
//                         shortest-path pass (SpdOptions::num_threads;
//                         0 = inherit --threads, default 0 — same
//                         bit-identical contract; use when single-query
//                         latency matters more than request throughput)
//   --max-line-bytes=<b>  request framing limit (default 1 MiB)
//
// Exit codes: 0 success (stdio EOF), 2 usage error, 3 I/O error (graph
// load or socket setup failed).

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "datasets/registry.h"
#include "graph/ingest.h"
#include "serve/catalog.h"
#include "serve/request_fields.h"
#include "serve/server.h"

namespace {

enum ExitCode : int { kExitOk = 0, kExitUsage = 2, kExitIo = 3 };

int UsageError(const std::string& message) {
  std::fprintf(stderr, "usage error: %s\n", message.c_str());
  return kExitUsage;
}

int IoError(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return kExitIo;
}

struct ServeFlags {
  bool stdio = false;
  std::uint64_t port = 7077;
  std::uint64_t sessions = 2;
  std::uint64_t threads = 1;
  std::uint64_t spd_threads = 0;
  mhbc::serve::ServerOptions server;
  std::vector<std::string> datasets;
  /// --graph=<name>=<file> pairs.
  std::vector<std::pair<std::string, std::string>> files;
};

/// Parses one --flag=<count> through the shared validator; on failure
/// prints the usage error and returns false.
bool CountFlag(const std::string& arg, const std::string& prefix,
               std::uint64_t max, std::uint64_t* out, bool* failed) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const auto parsed = mhbc::serve::ParseCountField(
      prefix.substr(0, prefix.size() - 1), arg.substr(prefix.size()), max);
  if (!parsed.ok()) {
    UsageError(parsed.status().message());
    *failed = true;
    return true;
  }
  *out = parsed.value();
  return true;
}

int RunStdio(mhbc::serve::Server& server) {
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string response = server.Call(line);
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  return kExitOk;
}

/// One connection: NDJSON in, NDJSON out, until the peer closes.
void ServeConnection(mhbc::serve::Server* server, int fd) {
  std::string pending;
  char buffer[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got <= 0) break;
    pending.append(buffer, static_cast<std::size_t>(got));
    std::size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      pending.erase(0, newline + 1);
      std::string response = server->Call(line);
      response.push_back('\n');
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t wrote =
            ::write(fd, response.data() + sent, response.size() - sent);
        if (wrote <= 0) {
          ::close(fd);
          return;
        }
        sent += static_cast<std::size_t>(wrote);
      }
    }
  }
  ::close(fd);
}

int RunTcp(mhbc::serve::Server& server, std::uint64_t port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return IoError("socket() failed: " + std::string(std::strerror(errno)));
  const int reuse = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listener);
    return IoError("bind() failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(listener, 16) != 0) {
    ::close(listener);
    return IoError("listen() failed: " + std::string(std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  std::printf("mhbc_serve listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(ntohs(addr.sin_port)));
  std::fflush(stdout);
  std::vector<std::thread> connections;
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    connections.emplace_back(ServeConnection, &server, fd);
  }
  ::close(listener);
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  ServeFlags flags;
  std::uint64_t queue = flags.server.queue_capacity;
  std::uint64_t workers = flags.server.workers;
  std::uint64_t max_line = flags.server.max_line_bytes;
  bool failed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdio") {
      flags.stdio = true;
    } else if (CountFlag(arg, "--port=", 65535, &flags.port, &failed) ||
               CountFlag(arg, "--sessions=", 256, &flags.sessions, &failed) ||
               CountFlag(arg, "--workers=", mhbc::serve::kMaxThreadCount,
                         &workers, &failed) ||
               CountFlag(arg, "--queue=", std::uint64_t{1} << 20, &queue,
                         &failed) ||
               CountFlag(arg, "--threads=", mhbc::serve::kMaxThreadCount,
                         &flags.threads, &failed) ||
               CountFlag(arg, "--spd-threads=", mhbc::serve::kMaxThreadCount,
                         &flags.spd_threads, &failed) ||
               CountFlag(arg, "--max-line-bytes=", std::uint64_t{1} << 30,
                         &max_line, &failed)) {
      if (failed) return kExitUsage;
    } else if (arg.rfind("--dataset=", 0) == 0) {
      flags.datasets.push_back(arg.substr(std::string("--dataset=").size()));
    } else if (arg.rfind("--graph=", 0) == 0) {
      const std::string spec = arg.substr(std::string("--graph=").size());
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        return UsageError("--graph expects <name>=<file>, got '" + spec + "'");
      }
      flags.files.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      return UsageError(
          "unknown flag '" + arg +
          "' (flags: --stdio, --port=<p>, --dataset=<name>, "
          "--graph=<name>=<file>, --sessions=<k>, --workers=<k>, "
          "--queue=<k>, --threads=<k>, --spd-threads=<k>, "
          "--max-line-bytes=<b>)");
    }
  }
  if (flags.datasets.empty() && flags.files.empty()) {
    flags.datasets.push_back("caveman-36");
  }
  if (flags.sessions == 0) flags.sessions = 1;

  mhbc::EngineOptions engine_options;
  engine_options.num_threads = static_cast<unsigned>(flags.threads);
  engine_options.spd.num_threads = static_cast<unsigned>(flags.spd_threads);

  mhbc::serve::GraphCatalog catalog;
  for (const std::string& name : flags.datasets) {
    auto graph = mhbc::MakeDataset(name);
    if (!graph.ok()) return IoError(graph.status().ToString());
    const mhbc::Status added =
        catalog.AddGraph(name, std::move(graph).value(), engine_options,
                         flags.sessions);
    if (!added.ok()) return UsageError(added.message());
  }
  // Loaded sources are pinned for the daemon's lifetime: a snapshot-backed
  // GraphSource may be a zero-copy mmap view, and CsrGraph copies of a
  // view are views again (graph/csr_graph.h lifetime contract).
  std::vector<mhbc::GraphSource> pinned_sources;
  for (const auto& [name, path] : flags.files) {
    mhbc::IngestOptions ingest;
    ingest.largest_component_only = true;
    auto source = mhbc::OpenGraphSource(path, ingest);
    if (!source.ok()) return IoError(source.status().ToString());
    pinned_sources.push_back(std::move(source).value());
    const mhbc::Status added = catalog.AddGraph(
        name, pinned_sources.back().graph(), engine_options, flags.sessions);
    if (!added.ok()) return UsageError(added.message());
  }

  flags.server.queue_capacity = static_cast<std::size_t>(queue);
  flags.server.workers = static_cast<std::size_t>(workers);
  flags.server.max_line_bytes = static_cast<std::size_t>(max_line);
  mhbc::serve::Server server(&catalog, flags.server);

  if (flags.stdio) return RunStdio(server);
  std::signal(SIGPIPE, SIG_IGN);  // client disconnects must not kill us
  return RunTcp(server, flags.port);
}
