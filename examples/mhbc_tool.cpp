// mhbc_tool — multitool CLI over the BetweennessEngine session API.
//
//   mhbc_tool [--threads=<k>] [--spd-threads=<k>] [--json] [--graph=<file>]
//             [--cache-dir=<dir>] [--directed] <command> ...
//
//   mhbc_tool stats      <graph>
//   mhbc_tool inspect    <file>
//   mhbc_tool convert    <in> <out>
//   mhbc_tool estimators
//   mhbc_tool estimate   <graph> <v1,v2,...> [estimator] [samples] [seed]
//   mhbc_tool mutate     <graph> <edit-script> <v1,v2,...> [estimator]
//                        [samples] [seed]
//   mhbc_tool exact      <graph> <vertex>
//   mhbc_tool topk       <graph> <k> [eps] [delta]
//   mhbc_tool rank       <graph> <v1,v2,...> [iterations]
//   mhbc_tool generate   <family> <args...> <out-file>
//              families: ba <n> <m-per-vertex> <seed> | er <n> <p> <seed> |
//                        ws <n> <k> <beta> <seed>    | grid <rows> <cols> |
//                        caveman <communities> <size>
//
// <graph> accepts every ingestion format (graph/ingest.h, docs/formats.md):
// SNAP edge lists, weighted edge lists, Matrix Market `.mtx`, and `.mhbc`
// binary snapshots — format is sniffed from extension/content. `convert`
// transcodes between them by output extension (`.mhbc` snapshot, `.mtx`
// Matrix Market, anything else edge list); `inspect` prints snapshot
// header/checksum metadata without building the graph.
//
// `mutate` estimates the vertices, applies the edit script
// (docs/formats.md: `add <u> <v> [w]` / `remove <u> <v>` / `addvertex
// [count]`) to the live engine, and re-estimates — the incremental path:
// shortest-path passes whose SPDs the edits provably do not touch survive
// the mutation (hop-distance test unweighted, slack + min-incident-weight
// test weighted), so the post-edit column costs fewer passes than the
// first.
//
// Global flags (anywhere on the command line):
//   --threads=<k>    engine worker threads (0 = one per hardware thread,
//                    default 1). Values are bit-identical at any setting —
//                    threads change wall-clock, never results.
//   --spd-threads=<k> frontier-parallel (unweighted) or wave-parallel
//                    (weighted) threads *within* each shortest-path pass
//                    (SpdOptions::num_threads; 0 = inherit --threads,
//                    default 0). Same contract: bit-identical results at
//                    every setting; use for single-vertex queries on large
//                    graphs where the source axis has no parallelism.
//   --json           machine-readable output: tables render as
//                    {"columns": ..., "rows": ...}, estimates as full
//                    report objects (value, std_error, ci, passes, ...).
//   --graph=<file>   default graph file; commands taking a <graph>
//                    positional use it when the positional is omitted
//                    (e.g. `mhbc_tool --graph=g.mhbc stats`).
//   --cache-dir=<d>  snapshot cache: text datasets are parsed once,
//                    snapshotted under <d>, and mmap-loaded zero-copy on
//                    every later run.
//   --directed       ingest text formats as directed: edge-list lines
//                    stay the arc u→v (Matrix Market entries row→col)
//                    instead of symmetrizing. Snapshots carry their own
//                    directed flag and ignore this.
//
// Every command builds ONE engine per invocation; multi-vertex estimates
// and the rank command's score+order pair amortize their passes through
// it. `estimators` prints the shared registry (the same table the engine
// dispatches on). Run without arguments for a self-contained demo of
// every subcommand on a generated network.
//
// Exit codes (asserted by tests/tool_cli_test.cc, so scripts can branch
// on the failure class):
//   0  success
//   2  usage error — unknown command/flag/estimator, malformed arguments
//   3  I/O error — unreadable/missing/corrupt input, unwritable output
//   4  compute error — the engine rejected a well-formed request
//      (vertex out of range, inapplicable edit script, ...)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "centrality/engine.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/ingest.h"
#include "graph/snapshot.h"
#include "serve/request_fields.h"
#include "util/table.h"

namespace {

using mhbc::CsrGraph;
using mhbc::VertexId;

/// Global flags, stripped from argv before command dispatch.
struct ToolFlags {
  unsigned threads = 1;
  unsigned spd_threads = 0;  // --spd-threads= intra-pass width (0 = inherit)
  bool json = false;
  bool directed = false;  // --directed: ingest text formats as directed
  std::string graph;      // --graph= default graph file
  std::string cache_dir;  // --cache-dir= snapshot cache
};
ToolFlags g_flags;

mhbc::EngineOptions ToolEngineOptions() {
  mhbc::EngineOptions options;
  options.num_threads = g_flags.threads;
  options.spd.num_threads = g_flags.spd_threads;
  return options;
}

/// The SPD kernel passes on this engine's graph run: the configured BFS
/// kernel on unweighted graphs, canonical-wave delta-stepping on weighted
/// ones (the kernel knob selects between the BFS kernels only).
const char* KernelName(const mhbc::BetweennessEngine& engine) {
  if (engine.graph().weighted()) return "delta";
  return engine.options().spd.kernel == mhbc::SpdKernel::kClassic ? "classic"
                                                                  : "hybrid";
}

/// Renders a titled table honouring --json.
void PrintTableOrJson(const mhbc::Table& table) {
  if (g_flags.json) {
    std::printf("%s\n", table.ToJson().c_str());
  } else {
    std::printf("%s", table.ToMarkdown().c_str());
  }
}

/// Exit codes, asserted by tests/tool_cli_test.cc. Distinct classes so
/// scripts can tell "you called it wrong" (usage) from "could not read or
/// write a file" (io) from "the computation rejected the input" (compute).
enum ExitCode : int {
  kExitOk = 0,
  kExitUsage = 2,    // unknown command/flag/estimator, wrong arity, bad ids
  kExitIo = 3,       // missing/unreadable/unwritable/corrupt files
  kExitCompute = 4,  // estimation or mutation failed on loadable input
};

int UsageError(const std::string& message) {
  std::fprintf(stderr, "usage error: %s\n", message.c_str());
  return kExitUsage;
}

/// Maps a non-OK Status onto the exit-code classes: file-system trouble is
/// kExitIo, everything else (failed preconditions, invalid vertex ids,
/// rejected computations) is kExitCompute.
int Fail(const mhbc::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return (status.code() == mhbc::StatusCode::kIoError ||
          status.code() == mhbc::StatusCode::kNotFound)
             ? kExitIo
             : kExitCompute;
}

/// Parses the shared trailing [estimator] [samples] [seed] CLI triple of
/// `estimate` and `mutate` into `request` (argv[0] is the estimator),
/// through the validators every serving surface shares
/// (serve/request_fields.h) — the daemon rejects the same malformed
/// fields with the same messages. Returns a non-empty error string on
/// failure.
std::string ParseEstimateArgs(int argc, char** argv,
                              mhbc::EstimateRequest* request) {
  request->kind = mhbc::EstimatorKind::kMetropolisHastings;
  request->samples = 2'000;
  if (argc > 0) {
    const auto kind = mhbc::serve::ParseEstimatorField(argv[0]);
    if (!kind.ok()) return kind.status().message();
    request->kind = kind.value();
  }
  if (argc > 1) {
    const auto samples = mhbc::serve::ParseCountField(
        "samples", argv[1], std::uint64_t{1} << 30);
    if (!samples.ok()) return samples.status().message();
    request->samples = samples.value();
  }
  if (argc > 2) {
    const auto seed = mhbc::serve::ParseCountField(
        "seed", argv[2], std::numeric_limits<std::uint64_t>::max());
    if (!seed.ok()) return seed.status().message();
    request->seed = seed.value();
  }
  return "";
}

/// Strict vertex-list positional: parse errors become usage errors with
/// the shared "no vertex ids ..." messages.
mhbc::StatusOr<std::vector<VertexId>> ParseVertices(const char* csv) {
  return mhbc::serve::ParseVertexListField(csv);
}

/// Opens a graph in any ingestion format, honouring --cache-dir. The
/// largest component is always extracted (the estimators assume a
/// connected G, and SNAP files ship satellite components).
mhbc::StatusOr<mhbc::GraphSource> Load(const std::string& path) {
  mhbc::IngestOptions options;
  options.directed = g_flags.directed;
  options.largest_component_only = true;
  options.cache_dir = g_flags.cache_dir;
  return mhbc::OpenGraphSource(path, options);
}

int CmdStats(const std::string& path) {
  auto source = Load(path);
  if (!source.ok()) return Fail(source.status());
  const mhbc::GraphStats s = mhbc::ComputeGraphStats(source.value().graph());
  mhbc::Table table({"metric", "value"});
  table.AddRow({"n", mhbc::FormatCount(s.num_vertices)});
  table.AddRow({"m", mhbc::FormatCount(s.num_edges)});
  table.AddRow({"density", mhbc::FormatScientific(s.density, 3)});
  table.AddRow({"degree min/avg/max",
                std::to_string(s.min_degree) + " / " +
                    mhbc::FormatDouble(s.avg_degree, 2) + " / " +
                    std::to_string(s.max_degree)});
  table.AddRow({std::string("diameter") + (s.exact_diameter ? "" : " (>=)"),
                std::to_string(s.diameter)});
  table.AddRow({"triangles", mhbc::FormatCount(s.triangles)});
  table.AddRow({"global clustering", mhbc::FormatDouble(s.global_clustering, 4)});
  table.AddRow({"avg local clustering",
                mhbc::FormatDouble(s.avg_local_clustering, 4)});
  table.AddRow({"connected", s.connected ? "yes" : "no (LCC shown)"});
  table.AddRow({"weighted", s.weighted ? "yes" : "no"});
  table.AddRow({"loaded from",
                std::string(mhbc::GraphFileFormatName(
                    source.value().source_format())) +
                    (source.value().zero_copy() ? ", zero-copy mmap" : "") +
                    (source.value().cache_hit() ? ", cache hit" : "")});
  PrintTableOrJson(table);
  return 0;
}

int CmdInspect(const std::string& path) {
  const mhbc::GraphFileFormat format = mhbc::SniffGraphFormat(path);
  mhbc::Table table({"field", "value"});
  if (format == mhbc::GraphFileFormat::kSnapshot) {
    auto info = mhbc::InspectSnapshot(path);
    if (!info.ok()) return Fail(info.status());
    const mhbc::SnapshotInfo& s = info.value();
    table.AddRow({"format", "snapshot (.mhbc)"});
    table.AddRow({"version", std::to_string(s.version)});
    table.AddRow({"name", s.name});
    table.AddRow({"n", mhbc::FormatCount(s.num_vertices)});
    table.AddRow({"m", mhbc::FormatCount(s.num_edges)});
    table.AddRow({"weighted", s.weighted ? "yes" : "no"});
    table.AddRow({"directed", s.directed ? "yes" : "no"});
    table.AddRow({"file bytes", mhbc::FormatCount(s.file_bytes)});
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(s.stored_checksum));
    table.AddRow({"checksum", std::string(checksum) +
                                  (s.checksum_ok ? " (ok)" : " (MISMATCH)")});
    PrintTableOrJson(table);
    return s.checksum_ok ? kExitOk : kExitIo;
  }
  // Text formats: parse without preprocessing and report the basics.
  mhbc::IngestOptions options;
  options.directed = g_flags.directed;
  auto source = mhbc::OpenGraphSource(path, options);
  if (!source.ok()) return Fail(source.status());
  const CsrGraph& graph = source.value().graph();
  table.AddRow({"format", mhbc::GraphFileFormatName(format)});
  table.AddRow({"n", mhbc::FormatCount(graph.num_vertices())});
  table.AddRow({"m", mhbc::FormatCount(graph.num_edges())});
  table.AddRow({"weighted", graph.weighted() ? "yes" : "no"});
  table.AddRow({"directed", graph.directed() ? "yes" : "no"});
  if (source.value().mirrored_pairs() > 0) {
    table.AddRow({"mirrored pairs",
                  mhbc::FormatCount(source.value().mirrored_pairs())});
  }
  PrintTableOrJson(table);
  return 0;
}

int CmdConvert(const std::string& in, const std::string& out) {
  // Faithful transcode: no component extraction or relabeling.
  mhbc::IngestOptions convert_options;
  convert_options.directed = g_flags.directed;
  auto source = mhbc::OpenGraphSource(in, convert_options);
  if (!source.ok()) return Fail(source.status());
  const CsrGraph& graph = source.value().graph();
  const mhbc::GraphFileFormat out_format = [&out] {
    const std::string::size_type dot = out.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : out.substr(dot);
    if (ext == mhbc::kSnapshotExtension) return mhbc::GraphFileFormat::kSnapshot;
    if (ext == ".mtx" || ext == ".mm") return mhbc::GraphFileFormat::kMatrixMarket;
    return mhbc::GraphFileFormat::kWeightedEdgeList;
  }();
  mhbc::Status status;
  switch (out_format) {
    case mhbc::GraphFileFormat::kSnapshot:
      if (graph.name().empty()) {
        // Stamp the source path as the name (loaders normally set it;
        // copying only in this rare case avoids duplicating the arrays).
        CsrGraph named = graph;
        named.set_name(in);
        status = mhbc::SaveSnapshot(named, out);
      } else {
        status = mhbc::SaveSnapshot(graph, out);
      }
      break;
    case mhbc::GraphFileFormat::kMatrixMarket:
      status = mhbc::WriteMatrixMarket(graph, out);
      break;
    default:
      status = mhbc::WriteEdgeList(graph, out);
      break;
  }
  if (!status.ok()) return Fail(status);
  if (g_flags.json) {
    std::printf("{\"in\": \"%s\", \"out\": \"%s\", \"format\": \"%s\", "
                "\"n\": %u, \"m\": %llu}\n",
                in.c_str(), out.c_str(), mhbc::GraphFileFormatName(out_format),
                graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()));
    return 0;
  }
  std::printf("wrote %s (%s): n=%u m=%llu\n", out.c_str(),
              mhbc::GraphFileFormatName(out_format), graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));
  return 0;
}

int CmdEstimators() {
  mhbc::Table table({"name", "weighted", "chain", "sharded", "description"});
  for (const mhbc::EstimatorEntry& entry : mhbc::EstimatorRegistry()) {
    table.AddRow({entry.name, entry.supports_weighted ? "yes" : "no",
                  entry.chain_based ? "yes" : "no",
                  entry.sharded_many ? "yes" : "no", entry.summary});
  }
  PrintTableOrJson(table);
  return 0;
}

int CmdEstimate(const std::string& path, int argc, char** argv) {
  auto source = Load(path);
  if (!source.ok()) return Fail(source.status());
  const auto vertices = ParseVertices(argv[0]);
  if (!vertices.ok()) return UsageError(vertices.status().message());
  mhbc::EstimateRequest request;
  const std::string parse_error =
      ParseEstimateArgs(argc - 1, argv + 1, &request);
  if (!parse_error.empty()) return UsageError(parse_error);
  mhbc::BetweennessEngine engine(source.value().graph(), ToolEngineOptions());
  const auto reports = engine.EstimateMany(vertices.value(), request);
  if (!reports.ok()) return Fail(reports.status());
  if (g_flags.json) {
    std::printf("[");
    for (std::size_t i = 0; i < reports.value().size(); ++i) {
      const mhbc::EstimateReport& report = reports.value()[i];
      std::printf(
          "%s{\"vertex\": %u, \"value\": %.17g, \"estimator\": \"%s\", "
          "\"kernel\": \"%s\", \"spd_threads\": %u, "
          "\"samples_used\": %llu, \"std_error\": %.17g, "
          "\"ci_half_width\": %.17g, \"ess\": %.17g, "
          "\"acceptance_rate\": %.17g, \"sp_passes\": %llu, "
          "\"cache_hit\": %s, \"converged\": %s, \"seconds\": %.6f}",
          i > 0 ? ", " : "", report.vertex, report.value,
          mhbc::EstimatorKindName(report.kind), KernelName(engine),
          engine.options().spd.num_threads,
          static_cast<unsigned long long>(report.samples_used),
          report.std_error, report.ci_half_width, report.ess,
          report.acceptance_rate,
          static_cast<unsigned long long>(report.sp_passes),
          report.cache_hit ? "true" : "false",
          report.converged ? "true" : "false", report.seconds);
    }
    std::printf("]\n");
    return 0;
  }
  for (const mhbc::EstimateReport& report : reports.value()) {
    std::printf("BC(%u) ~= %.8f  [%s, %llu passes%s, +/-%.2e, %.3fs]\n",
                report.vertex, report.value,
                mhbc::EstimatorKindName(report.kind),
                static_cast<unsigned long long>(report.sp_passes),
                report.cache_hit ? " cached" : "", report.ci_half_width,
                report.seconds);
  }
  return 0;
}

int CmdMutate(const std::string& path, int argc, char** argv) {
  auto source = Load(path);
  if (!source.ok()) return Fail(source.status());
  auto delta = mhbc::ParseEditScript(argv[0]);
  if (!delta.ok()) return Fail(delta.status());
  const auto parsed_vertices = ParseVertices(argv[1]);
  if (!parsed_vertices.ok()) {
    return UsageError(parsed_vertices.status().message());
  }
  const std::vector<VertexId>& vertices = parsed_vertices.value();
  mhbc::EstimateRequest request;
  const std::string parse_error =
      ParseEstimateArgs(argc - 2, argv + 2, &request);
  if (!parse_error.empty()) return UsageError(parse_error);

  // One engine across the edit: the pre-edit pass warms the dependency
  // memo, ApplyDelta keeps every pass the edits do not touch, and the
  // post-edit estimate pays only for what actually changed.
  mhbc::BetweennessEngine engine(source.value().graph(), ToolEngineOptions());
  const auto before = engine.EstimateMany(vertices, request);
  if (!before.ok()) return Fail(before.status());
  const std::uint64_t n_before = engine.graph().num_vertices();
  const std::uint64_t m_before = engine.graph().num_edges();
  const mhbc::Status applied = engine.ApplyDelta(delta.value());
  if (!applied.ok()) return Fail(applied);
  const auto after = engine.EstimateMany(vertices, request);
  if (!after.ok()) return Fail(after.status());

  if (g_flags.json) {
    std::printf(
        "{\"edits\": %zu, \"epoch\": %llu, "
        "\"n\": {\"before\": %llu, \"after\": %u}, "
        "\"m\": {\"before\": %llu, \"after\": %llu}, \"reports\": [",
        delta.value().size(),
        static_cast<unsigned long long>(engine.graph_epoch()),
        static_cast<unsigned long long>(n_before),
        engine.graph().num_vertices(),
        static_cast<unsigned long long>(m_before),
        static_cast<unsigned long long>(engine.graph().num_edges()));
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      const mhbc::EstimateReport& pre = before.value()[i];
      const mhbc::EstimateReport& post = after.value()[i];
      std::printf("%s{\"vertex\": %u, \"before\": %.17g, \"after\": %.17g, "
                  "\"std_error\": %.17g, \"passes_before\": %llu, "
                  "\"passes_after\": %llu}",
                  i > 0 ? ", " : "", pre.vertex, pre.value, post.value,
                  post.std_error,
                  static_cast<unsigned long long>(pre.sp_passes),
                  static_cast<unsigned long long>(post.sp_passes));
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("applied %zu edits (epoch %llu): n %llu -> %u, m %llu -> %llu\n",
              delta.value().size(),
              static_cast<unsigned long long>(engine.graph_epoch()),
              static_cast<unsigned long long>(n_before),
              engine.graph().num_vertices(),
              static_cast<unsigned long long>(m_before),
              static_cast<unsigned long long>(engine.graph().num_edges()));
  mhbc::Table table({"vertex", "BC before", "BC after", "+/-",
                     "passes before", "passes after"});
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const mhbc::EstimateReport& pre = before.value()[i];
    const mhbc::EstimateReport& post = after.value()[i];
    table.AddRow({std::to_string(pre.vertex),
                  mhbc::FormatDouble(pre.value, 8),
                  mhbc::FormatDouble(post.value, 8),
                  mhbc::FormatScientific(post.ci_half_width, 2),
                  std::to_string(pre.sp_passes),
                  std::to_string(post.sp_passes)});
  }
  PrintTableOrJson(table);
  return 0;
}

int CmdExact(const std::string& path, const char* vertex) {
  auto source = Load(path);
  if (!source.ok()) return Fail(source.status());
  mhbc::EstimateRequest request;
  request.kind = mhbc::EstimatorKind::kExact;
  const auto r = static_cast<VertexId>(std::strtoul(vertex, nullptr, 10));
  mhbc::BetweennessEngine engine(source.value().graph(), ToolEngineOptions());
  const auto result = engine.Estimate(r, request);
  if (!result.ok()) return Fail(result.status());
  if (g_flags.json) {
    std::printf("{\"vertex\": %u, \"value\": %.17g, \"estimator\": \"exact\", "
                "\"kernel\": \"%s\", \"spd_threads\": %u, "
                "\"sp_passes\": %llu, \"seconds\": %.6f}\n",
                r, result.value().value, KernelName(engine),
                engine.options().spd.num_threads,
                static_cast<unsigned long long>(result.value().sp_passes),
                result.value().seconds);
    return 0;
  }
  std::printf("BC(%u) = %.10f  [exact, %.3fs]\n", r, result.value().value,
              result.value().seconds);
  return 0;
}

int CmdTopK(const std::string& path, int argc, char** argv) {
  auto source = Load(path);
  if (!source.ok()) return Fail(source.status());
  const auto k = static_cast<std::uint32_t>(std::strtoul(argv[0], nullptr, 10));
  const double eps = argc > 1 ? std::strtod(argv[1], nullptr) : 0.02;
  const double delta = argc > 2 ? std::strtod(argv[2], nullptr) : 0.1;
  mhbc::BetweennessEngine engine(source.value().graph(), ToolEngineOptions());
  const auto result = engine.TopK(k, eps, delta);
  if (!result.ok()) return Fail(result.status());
  mhbc::Table table({"rank", "vertex", "estimated BC"});
  std::size_t rank = 1;
  for (const mhbc::TopKEntry& entry : result.value()) {
    table.AddRow({std::to_string(rank++), std::to_string(entry.vertex),
                  mhbc::FormatDouble(entry.estimate, 6)});
  }
  PrintTableOrJson(table);
  return 0;
}

int CmdRank(const std::string& path, int argc, char** argv) {
  auto source = Load(path);
  if (!source.ok()) return Fail(source.status());
  const auto parsed_targets = ParseVertices(argv[0]);
  if (!parsed_targets.ok()) {
    return UsageError(parsed_targets.status().message());
  }
  const std::vector<VertexId>& targets = parsed_targets.value();
  std::uint64_t iterations = 20'000;
  if (argc > 1) {
    const auto parsed = mhbc::serve::ParseCountField("iterations", argv[1],
                                                     std::uint64_t{1} << 30);
    if (!parsed.ok()) return UsageError(parsed.status().message());
    iterations = parsed.value();
  }
  // One engine: the joint chain runs once and serves both calls.
  mhbc::BetweennessEngine engine(source.value().graph(), ToolEngineOptions());
  const auto joint = engine.EstimateRelative(targets, iterations);
  if (!joint.ok()) return Fail(joint.status());
  const auto order = engine.RankTargets(targets, iterations);
  if (!order.ok()) return Fail(order.status());
  mhbc::Table table({"rank", "vertex", "copeland", "samples |M|"});
  std::size_t rank = 1;
  for (std::size_t idx : order.value()) {
    table.AddRow({std::to_string(rank++), std::to_string(targets[idx]),
                  mhbc::FormatDouble(joint.value().copeland_scores[idx], 0),
                  mhbc::FormatCount(joint.value().samples_per_target[idx])});
  }
  PrintTableOrJson(table);
  if (joint.value().undersampled) {
    std::printf("warning: some targets were never sampled (zero or "
                "near-zero betweenness)\n");
  }
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 2) return UsageError("generate: need <family> <args...> <out-file>");
  const std::string family = argv[0];
  const std::string out = argv[argc - 1];
  CsrGraph graph;
  auto arg = [&](int i) { return std::strtoull(argv[i], nullptr, 10); };
  if (family == "ba" && argc == 5) {
    graph = mhbc::MakeBarabasiAlbert(static_cast<VertexId>(arg(1)),
                                     static_cast<std::uint32_t>(arg(2)), arg(3));
  } else if (family == "er" && argc == 5) {
    graph = mhbc::MakeErdosRenyiGnp(static_cast<VertexId>(arg(1)),
                                    std::strtod(argv[2], nullptr), arg(3));
  } else if (family == "ws" && argc == 6) {
    graph = mhbc::MakeWattsStrogatz(static_cast<VertexId>(arg(1)),
                                    static_cast<std::uint32_t>(arg(2)),
                                    std::strtod(argv[3], nullptr), arg(4));
  } else if (family == "grid" && argc == 4) {
    graph = mhbc::MakeGrid(static_cast<VertexId>(arg(1)),
                           static_cast<VertexId>(arg(2)));
  } else if (family == "caveman" && argc == 4) {
    graph = mhbc::MakeConnectedCaveman(static_cast<VertexId>(arg(1)),
                                       static_cast<VertexId>(arg(2)));
  } else {
    return UsageError("generate: unknown family or wrong arity");
  }
  const mhbc::Status status = mhbc::WriteEdgeList(graph, out);
  if (!status.ok()) return Fail(status);
  if (g_flags.json) {
    std::printf("{\"file\": \"%s\", \"n\": %u, \"m\": %llu}\n", out.c_str(),
                graph.num_vertices(),
                static_cast<unsigned long long>(graph.num_edges()));
    return 0;
  }
  std::printf("wrote %s: n=%u m=%llu\n", out.c_str(), graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));
  return 0;
}

int Demo() {
  std::printf("mhbc_tool demo (run with a subcommand for real use; see "
              "header comment)\n\n");
  const std::string path = "/tmp/mhbc_tool_demo.txt";
  char* gen_args[] = {(char*)"caveman", (char*)"6", (char*)"12",
                      (char*)path.c_str()};
  if (const int rc = CmdGenerate(4, gen_args); rc != 0) return rc;
  std::printf("\n-- stats --\n");
  if (const int rc = CmdStats(path); rc != 0) return rc;
  std::printf("\n-- convert to snapshot + inspect --\n");
  const std::string snapshot = "/tmp/mhbc_tool_demo.mhbc";
  if (const int rc = CmdConvert(path, snapshot); rc != 0) return rc;
  if (const int rc = CmdInspect(snapshot); rc != 0) return rc;
  std::printf("\n-- estimators --\n");
  if (const int rc = CmdEstimators(); rc != 0) return rc;
  std::printf("\n-- estimate gateways 11,23 (mh-rb) --\n");
  char* est_args[] = {(char*)"11,23", (char*)"mh-rb", (char*)"2000"};
  if (const int rc = CmdEstimate(path, 3, est_args); rc != 0) return rc;
  std::printf("\n-- exact gateway 11 --\n");
  if (const int rc = CmdExact(path, "11"); rc != 0) return rc;
  std::printf("\n-- mutate (append a member, rewire a clique edge) --\n");
  mhbc::GraphDelta delta;
  delta.AddVertices(1).AddEdge(5, 72).RemoveEdge(0, 1);
  const std::string script =
      (std::filesystem::temp_directory_path() / "mhbc_tool_demo.edits")
          .string();
  const mhbc::Status wrote = mhbc::WriteEditScript(delta, script);
  if (!wrote.ok()) return Fail(wrote);
  char* mutate_args[] = {(char*)script.c_str(), (char*)"11,23",
                         (char*)"mh", (char*)"2000"};
  const int mutate_rc = CmdMutate(path, 4, mutate_args);
  std::remove(script.c_str());
  if (mutate_rc != 0) return mutate_rc;
  std::printf("\n-- top-5 --\n");
  char* topk_args[] = {(char*)"5", (char*)"0.03"};
  if (const int rc = CmdTopK(path, 2, topk_args); rc != 0) return rc;
  std::printf("\n-- rank gateways --\n");
  char* rank_args[] = {(char*)"11,23,35,47"};
  return CmdRank(path, 1, rank_args);
}

}  // namespace

int main(int raw_argc, char** raw_argv) {
  // Strip global flags (accepted anywhere) before positional dispatch.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(raw_argc));
  for (int i = 0; i < raw_argc; ++i) {
    const std::string arg = raw_argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const auto parsed = mhbc::serve::ParseCountField(
          "--threads", arg.substr(std::string("--threads=").size()),
          mhbc::serve::kMaxThreadCount);
      if (!parsed.ok()) return UsageError(parsed.status().message());
      g_flags.threads = static_cast<unsigned>(parsed.value());
    } else if (arg.rfind("--spd-threads=", 0) == 0) {
      const auto parsed = mhbc::serve::ParseCountField(
          "--spd-threads", arg.substr(std::string("--spd-threads=").size()),
          mhbc::serve::kMaxThreadCount);
      if (!parsed.ok()) return UsageError(parsed.status().message());
      g_flags.spd_threads = static_cast<unsigned>(parsed.value());
    } else if (arg == "--json") {
      g_flags.json = true;
    } else if (arg.rfind("--graph=", 0) == 0) {
      g_flags.graph = arg.substr(std::string("--graph=").size());
      if (g_flags.graph.empty()) return UsageError("--graph expects a file path");
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      g_flags.cache_dir = arg.substr(std::string("--cache-dir=").size());
      if (g_flags.cache_dir.empty()) {
        return UsageError("--cache-dir expects a directory path");
      }
    } else if (arg == "--directed") {
      g_flags.directed = true;
    } else if (i > 0 && arg.rfind("--", 0) == 0) {
      return UsageError("unknown flag '" + arg +
                        "' (flags: --threads=<k>, --spd-threads=<k>, "
                        "--json, --graph=<file>, --cache-dir=<dir>, "
                        "--directed)");
    } else {
      args.push_back(raw_argv[i]);
    }
  }
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();
  if (argc < 2) return Demo();
  const std::string command = argv[1];

  // Graph-taking commands read their <graph> from --graph= when given,
  // else from the first positional after the command. `rest` is the index
  // of the first command-specific argument either way.
  const char* graph = nullptr;
  int rest = 2;
  if (!g_flags.graph.empty()) {
    graph = g_flags.graph.c_str();
  } else if (argc > 2) {
    graph = argv[2];
    rest = 3;
  }

  if (command == "estimators" && argc == 2) return CmdEstimators();
  if (command == "generate") return CmdGenerate(argc - 2, argv + 2);
  if (command == "convert") {
    // convert takes <in> <out>; with --graph= only <out> remains.
    if (graph != nullptr && argc == rest + 1) {
      return CmdConvert(graph, argv[rest]);
    }
  } else if (graph != nullptr) {
    if (command == "stats" && argc == rest) return CmdStats(graph);
    if (command == "inspect" && argc == rest) return CmdInspect(graph);
    if (command == "estimate" && argc > rest) {
      return CmdEstimate(graph, argc - rest, argv + rest);
    }
    if (command == "mutate" && argc > rest + 1) {
      return CmdMutate(graph, argc - rest, argv + rest);
    }
    if (command == "exact" && argc == rest + 1) {
      return CmdExact(graph, argv[rest]);
    }
    if (command == "topk" && argc > rest) {
      return CmdTopK(graph, argc - rest, argv + rest);
    }
    if (command == "rank" && argc > rest) {
      return CmdRank(graph, argc - rest, argv + rest);
    }
  }
  return UsageError("unknown command or wrong arity; run without arguments "
                    "for the demo and usage");
}
