// Social-network scenario (paper §1 motivation): score a handful of
// community "core" vertices — not necessarily the global top-k — without
// paying for exact betweenness of the whole network.
//
// We build a scale-free social graph, pick the highest-degree vertex of
// each of several regions as its community core, and estimate every core
// through ONE BetweennessEngine: EstimateBatch runs both MH readouts per
// core, and the engine's shared dependency memo means each additional
// core costs far fewer passes than the first.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "centrality/engine.h"
#include "exact/brandes.h"
#include "graph/generators.h"

int main() {
  const mhbc::CsrGraph graph = mhbc::MakeBarabasiAlbert(5'000, 3, 0x50C1A1);
  const mhbc::VertexId n = graph.num_vertices();

  // "Community cores": the locally-highest-degree vertex in each of five
  // contiguous id regions (BA ids correlate with age, so regions mix hub
  // generations — a stand-in for detected communities).
  std::vector<mhbc::VertexId> cores;
  const mhbc::VertexId region = n / 5;
  for (int c = 0; c < 5; ++c) {
    const mhbc::VertexId begin = static_cast<mhbc::VertexId>(c) * region;
    mhbc::VertexId best = begin;
    for (mhbc::VertexId v = begin; v < begin + region; ++v) {
      if (graph.degree(v) > graph.degree(best)) best = v;
    }
    cores.push_back(best);
  }

  std::printf("social graph: n=%u m=%llu; scoring %zu community cores\n", n,
              static_cast<unsigned long long>(graph.num_edges()),
              cores.size());

  // One heterogeneous batch: both chain readouts for every core.
  std::vector<mhbc::EstimateRequest> requests;
  for (mhbc::VertexId core : cores) {
    for (mhbc::EstimatorKind kind :
         {mhbc::EstimatorKind::kMetropolisHastings,
          mhbc::EstimatorKind::kMhRaoBlackwell}) {
      mhbc::EstimateRequest request;
      request.vertex = core;
      request.kind = kind;
      request.samples = 2'000;
      request.seed = 0xC0FE + core;
      requests.push_back(request);
    }
  }

  mhbc::BetweennessEngine engine(graph);
  const auto batch = engine.EstimateBatch(requests);
  if (!batch.ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %-8s %-12s %-12s %-12s %-10s %-10s\n", "core", "degree",
              "mh (Eq.7)", "mh-rb", "exact", "rb err%", "passes");
  double sampler_seconds = 0.0;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    const mhbc::EstimateReport& paper_est = batch.value()[2 * c];
    const mhbc::EstimateReport& rb_est = batch.value()[2 * c + 1];
    sampler_seconds += paper_est.seconds + rb_est.seconds;
    const mhbc::VertexId core = cores[c];
    const double exact = mhbc::ExactBetweennessSingle(graph, core);
    const double rb = rb_est.value;
    std::printf("%-10u %-8u %-12.6f %-12.6f %-12.6f %-10.1f %-10llu\n", core,
                graph.degree(core), paper_est.value, rb, exact,
                exact > 0 ? 100.0 * std::abs(rb - exact) / exact : 0.0,
                static_cast<unsigned long long>(paper_est.sp_passes +
                                                rb_est.sp_passes));
  }
  std::printf(
      "sampling cost: %.2fs, %llu passes total for %zu queries (a %u-pass\n"
      "Brandes per core would cost ~%ux more; per-core cost also *falls*\n"
      "with each query — the engine reuses dependency vectors, hits=%llu)\n",
      sampler_seconds,
      static_cast<unsigned long long>(engine.total_sp_passes()),
      requests.size(), n, n / 2'001u,
      static_cast<unsigned long long>(engine.dependency_cache_hits()));
  return 0;
}
