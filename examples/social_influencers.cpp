// Social-network scenario (paper §1 motivation): score a handful of
// community "core" vertices — not necessarily the global top-k — without
// paying for exact betweenness of the whole network.
//
// We build a scale-free social graph, pick the highest-degree vertex of
// each of several regions as its community core, and estimate each core's
// betweenness with the MH sampler at a fraction of Brandes cost.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "centrality/api.h"
#include "exact/brandes.h"
#include "graph/generators.h"
#include "util/timer.h"

int main() {
  const mhbc::CsrGraph graph = mhbc::MakeBarabasiAlbert(5'000, 3, 0x50C1A1);
  const mhbc::VertexId n = graph.num_vertices();

  // "Community cores": the locally-highest-degree vertex in each of five
  // contiguous id regions (BA ids correlate with age, so regions mix hub
  // generations — a stand-in for detected communities).
  std::vector<mhbc::VertexId> cores;
  const mhbc::VertexId region = n / 5;
  for (int c = 0; c < 5; ++c) {
    const mhbc::VertexId begin = static_cast<mhbc::VertexId>(c) * region;
    mhbc::VertexId best = begin;
    for (mhbc::VertexId v = begin; v < begin + region; ++v) {
      if (graph.degree(v) > graph.degree(best)) best = v;
    }
    cores.push_back(best);
  }

  std::printf("social graph: n=%u m=%llu; scoring %zu community cores\n", n,
              static_cast<unsigned long long>(graph.num_edges()),
              cores.size());
  std::printf("%-10s %-8s %-12s %-12s %-12s %-10s\n", "core", "degree",
              "mh (Eq.7)", "mh-rb", "exact", "rb err%");

  double sampler_seconds = 0.0;
  for (mhbc::VertexId core : cores) {
    mhbc::EstimateOptions options;
    options.samples = 2'000;
    options.seed = 0xC0FE + core;
    options.kind = mhbc::EstimatorKind::kMetropolisHastings;
    const auto paper_est = mhbc::EstimateBetweenness(graph, core, options);
    options.kind = mhbc::EstimatorKind::kMhRaoBlackwell;
    const auto rb_est = mhbc::EstimateBetweenness(graph, core, options);
    if (!paper_est.ok() || !rb_est.ok()) {
      std::fprintf(stderr, "core %u failed\n", core);
      return 1;
    }
    sampler_seconds += paper_est.value().seconds + rb_est.value().seconds;
    const double exact = mhbc::ExactBetweennessSingle(graph, core);
    const double rb = rb_est.value().value;
    std::printf("%-10u %-8u %-12.6f %-12.6f %-12.6f %-10.1f\n", core,
                graph.degree(core), paper_est.value().value, rb, exact,
                exact > 0 ? 100.0 * std::abs(rb - exact) / exact : 0.0);
  }
  std::printf(
      "sampling cost: %.2fs total (%u-pass Brandes baseline amortized over "
      "%zu cores would cost ~%ux more passes per core)\n",
      sampler_seconds, n, cores.size(), n / 2'001u);
  return 0;
}
