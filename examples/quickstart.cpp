// Quickstart: estimate the betweenness of one vertex with the paper's
// Metropolis-Hastings sampler through a BetweennessEngine and compare
// against exact Brandes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
//
// Two estimates come out of the same chain (same shortest-path passes):
//  * "mh"    — the paper's Eq. 7 chain average. Converges to E_pi[f], which
//              exceeds the true score by up to the mu(r) dependency-spread
//              factor (small at separator-like vertices, large at hubs of
//              scale-free graphs).
//  * "mh-rb" — the chain's Rao-Blackwellized companion (library extension):
//              unbiased, built from the proposals the chain evaluated
//              anyway.
//
// The engine is constructed once and queried twice; the second query
// reuses the dependency vectors the first one computed (watch the pass
// counts and the cache flag).

#include <cstdio>

#include "centrality/engine.h"
#include "core/theory.h"
#include "exact/brandes.h"
#include "graph/generators.h"

int main() {
  // A scale-free network, the topology the paper's motivation targets.
  const mhbc::CsrGraph graph = mhbc::MakeBarabasiAlbert(
      /*n=*/2'000, /*edges_per_vertex=*/3, /*seed=*/7);
  const mhbc::VertexId hub = 0;  // early BA vertices grow into hubs

  std::printf("graph: n=%u m=%llu, target vertex %u (degree %u)\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()), hub,
              graph.degree(hub));

  const double exact = mhbc::ExactBetweennessSingle(graph, hub);
  const auto profile = mhbc::DependencyProfile(graph, hub);
  std::printf("exact BC(%u) = %.6f   [mu(r) = %.1f, chain limit %.6f]\n", hub,
              exact, mhbc::MuFromProfile(profile),
              mhbc::ChainLimitEstimate(profile));

  mhbc::BetweennessEngine engine(graph);
  for (const mhbc::EstimatorKind kind :
       {mhbc::EstimatorKind::kMetropolisHastings,
        mhbc::EstimatorKind::kMhRaoBlackwell}) {
    mhbc::EstimateRequest request;
    request.kind = kind;
    request.samples = 3'000;  // chain length T; ~T+1 BFS passes of work
    request.seed = 42;
    const auto estimate = engine.Estimate(hub, request);
    if (!estimate.ok()) {
      std::fprintf(stderr, "estimation failed: %s\n",
                   estimate.status().ToString().c_str());
      return 1;
    }
    const mhbc::EstimateReport& report = estimate.value();
    std::printf(
        "%-6s estimate: %.6f  (err %+6.1f%%, %llu passes%s, acc %.0f%%, "
        "ESS %.0f, +/-%.6f)\n",
        mhbc::EstimatorKindName(kind), report.value,
        100.0 * (report.value - exact) / exact,
        static_cast<unsigned long long>(report.sp_passes),
        report.cache_hit ? " (cache-assisted)" : "",
        100.0 * report.acceptance_rate, report.ess, report.ci_half_width);
  }
  std::printf(
      "note: 'mh' tracks the chain limit by design (Eq. 7); 'mh-rb' tracks\n"
      "the exact score. The second query cost far fewer passes than the\n"
      "first: the engine's oracle already knew most dependency vectors.\n");
  return 0;
}
