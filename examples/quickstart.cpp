// Quickstart: estimate the betweenness of one vertex with the paper's
// Metropolis-Hastings sampler and compare against exact Brandes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
//
// Two estimates come out of the same chain (same shortest-path passes):
//  * "mh"    — the paper's Eq. 7 chain average. Converges to E_pi[f], which
//              exceeds the true score by up to the mu(r) dependency-spread
//              factor (small at separator-like vertices, large at hubs of
//              scale-free graphs).
//  * "mh-rb" — the chain's Rao-Blackwellized companion (library extension):
//              unbiased, built from the proposals the chain evaluated
//              anyway.

#include <cstdio>

#include "centrality/api.h"
#include "core/theory.h"
#include "exact/brandes.h"
#include "graph/generators.h"

int main() {
  // A scale-free network, the topology the paper's motivation targets.
  const mhbc::CsrGraph graph = mhbc::MakeBarabasiAlbert(
      /*n=*/2'000, /*edges_per_vertex=*/3, /*seed=*/7);
  const mhbc::VertexId hub = 0;  // early BA vertices grow into hubs

  std::printf("graph: n=%u m=%llu, target vertex %u (degree %u)\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()), hub,
              graph.degree(hub));

  const double exact = mhbc::ExactBetweennessSingle(graph, hub);
  const auto profile = mhbc::DependencyProfile(graph, hub);
  std::printf("exact BC(%u) = %.6f   [mu(r) = %.1f, chain limit %.6f]\n", hub,
              exact, mhbc::MuFromProfile(profile),
              mhbc::ChainLimitEstimate(profile));

  for (const mhbc::EstimatorKind kind :
       {mhbc::EstimatorKind::kMetropolisHastings,
        mhbc::EstimatorKind::kMhRaoBlackwell}) {
    mhbc::EstimateOptions options;
    options.kind = kind;
    options.samples = 3'000;  // chain length T; ~T+1 BFS passes of work
    options.seed = 42;
    const auto estimate = mhbc::EstimateBetweenness(graph, hub, options);
    if (!estimate.ok()) {
      std::fprintf(stderr, "estimation failed: %s\n",
                   estimate.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6s estimate: %.6f  (err %+6.1f%%, %llu passes, %.3fs)\n",
                mhbc::EstimatorKindName(kind), estimate.value().value,
                100.0 * (estimate.value().value - exact) / exact,
                static_cast<unsigned long long>(estimate.value().sp_passes),
                estimate.value().seconds);
  }
  std::printf(
      "note: 'mh' tracks the chain limit by design (Eq. 7); 'mh-rb' tracks\n"
      "the exact score with the same %u-pass budget vs %u passes for exact.\n",
      3'001u, graph.num_vertices());
  return 0;
}
