// Community-structure scenario (paper §1: Girvan-Newman, cascading
// failures): monitor the gateway vertices of a modular network and rank
// them by betweenness with one joint-space chain, flagging the most
// overloaded gateway — the vertex whose failure would cascade hardest.
//
// Communities have *unequal* sizes, so the gateways carry genuinely
// different loads (bigger neighborhoods route more cross traffic).
//
// The engine runs the joint chain ONCE: EstimateRelative and the
// following RankTargets share the cached joint result.

#include <cstdio>
#include <vector>

#include "centrality/engine.h"
#include "exact/brandes.h"
#include "graph/graph_builder.h"
#include "util/stats.h"

namespace {

/// Ring of cliques with the given sizes; the last member of each clique is
/// its gateway, wired to the first member of the next clique.
mhbc::CsrGraph MakeUnequalCaveman(const std::vector<mhbc::VertexId>& sizes,
                                  std::vector<mhbc::VertexId>* gateways) {
  mhbc::VertexId n = 0;
  for (mhbc::VertexId s : sizes) n += s;
  mhbc::GraphBuilder builder(n);
  mhbc::VertexId base = 0;
  std::vector<mhbc::VertexId> starts;
  for (mhbc::VertexId s : sizes) {
    starts.push_back(base);
    for (mhbc::VertexId u = 0; u < s; ++u) {
      for (mhbc::VertexId v = u + 1; v < s; ++v) {
        builder.AddEdge(base + u, base + v);
      }
    }
    gateways->push_back(base + s - 1);
    base += s;
  }
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    const mhbc::VertexId next_start = starts[(c + 1) % sizes.size()];
    builder.AddEdge((*gateways)[c], next_start);
  }
  auto built = builder.Build();
  return std::move(built).value();
}

}  // namespace

int main() {
  const std::vector<mhbc::VertexId> sizes{8, 12, 16, 20, 24, 28};
  std::vector<mhbc::VertexId> gateways;
  const mhbc::CsrGraph net = MakeUnequalCaveman(sizes, &gateways);

  std::printf("modular network: n=%u m=%llu; ranking %zu gateways\n",
              net.num_vertices(),
              static_cast<unsigned long long>(net.num_edges()),
              gateways.size());

  mhbc::BetweennessEngine engine(net);
  constexpr std::uint64_t kIterations = 25'000;
  constexpr std::uint64_t kSeed = 0x0DD;
  const auto joint = engine.EstimateRelative(gateways, kIterations, kSeed);
  if (!joint.ok()) {
    std::fprintf(stderr, "joint sampling failed: %s\n",
                 joint.status().ToString().c_str());
    return 1;
  }
  // Served from the cached joint result — the chain does not run again.
  const auto ranking = engine.RankTargets(gateways, kIterations, kSeed);
  if (!ranking.ok()) {
    std::fprintf(stderr, "ranking failed: %s\n",
                 ranking.status().ToString().c_str());
    return 1;
  }

  // Exact scores for verification (affordable here; the sampler is the
  // point on networks where this loop would not be).
  const std::vector<double> exact = mhbc::ExactBetweenness(net);
  std::vector<double> exact_of_gateways;
  for (mhbc::VertexId g : gateways) exact_of_gateways.push_back(exact[g]);

  std::printf("%-6s %-10s %-16s %-12s %-12s\n", "rank", "gateway",
              "community size", "exact BC", "samples |M|");
  std::vector<double> rank_positions(gateways.size(), 0.0);
  for (std::size_t pos = 0; pos < ranking.value().size(); ++pos) {
    const std::size_t idx = ranking.value()[pos];
    rank_positions[idx] = static_cast<double>(gateways.size() - pos);
    std::printf("%-6zu %-10u %-16u %-12.6f %-12llu\n", pos + 1, gateways[idx],
                sizes[idx], exact_of_gateways[idx],
                static_cast<unsigned long long>(
                    joint.value().samples_per_target[idx]));
  }
  std::printf("Spearman(estimated rank, exact BC) = %.3f\n",
              mhbc::SpearmanCorrelation(rank_positions, exact_of_gateways));
  std::printf("most loaded gateway: %u  (one %llu-pass chain served both "
              "the scores and the ranking)\n",
              gateways[ranking.value().front()],
              static_cast<unsigned long long>(engine.total_sp_passes()));
  return 0;
}
