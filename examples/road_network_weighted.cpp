// Road-network scenario (paper §1: betweenness of "a road within a road
// network", MANET routing via betweenness ratios): a weighted grid road
// network where edge weights are travel times. We compare two candidate
// arterial junctions by their betweenness *ratio* using the joint-space
// sampler — the paper's second algorithm — instead of computing either
// score exactly, then double-check one junction with an adaptive
// standard-error budget on the same engine.

#include <cstdio>

#include "centrality/engine.h"
#include "exact/brandes.h"
#include "graph/generators.h"

int main() {
  // 30x30 grid with travel-time weights in [1, 3] (congestion spread).
  const mhbc::CsrGraph road = mhbc::AssignUniformWeights(
      mhbc::MakeGrid(30, 30), 1.0, 3.0, /*seed=*/0x90AD);

  // Candidate junctions: city center vs. a mid-ring junction.
  const mhbc::VertexId center = 15 * 30 + 15;
  const mhbc::VertexId midring = 7 * 30 + 7;

  std::printf("road network: n=%u m=%llu (weighted)\n", road.num_vertices(),
              static_cast<unsigned long long>(road.num_edges()));

  mhbc::BetweennessEngine engine(road);
  const auto joint = engine.EstimateRelative({center, midring},
                                             /*iterations=*/25'000,
                                             /*seed=*/0xBEEF);
  if (!joint.ok()) {
    std::fprintf(stderr, "joint sampling failed: %s\n",
                 joint.status().ToString().c_str());
    return 1;
  }
  const mhbc::JointResult& result = joint.value();

  const double exact_center = mhbc::ExactBetweennessSingle(road, center);
  const double exact_midring = mhbc::ExactBetweennessSingle(road, midring);

  std::printf("estimated BC(center)/BC(midring): %.3f\n", result.ratio[0][1]);
  std::printf("exact ratio                      : %.3f\n",
              exact_center / exact_midring);
  std::printf("relative scores: BC_mid(center)=%.3f  BC_center(mid)=%.3f\n",
              result.relative[1][0], result.relative[0][1]);
  std::printf("samples per junction: %llu / %llu (acceptance %.1f%%)\n",
              static_cast<unsigned long long>(result.samples_per_target[0]),
              static_cast<unsigned long long>(result.samples_per_target[1]),
              100.0 * result.diagnostics.acceptance_rate());
  std::printf("verdict: the %s junction carries more shortest-path traffic\n",
              result.ratio[0][1] >= 1.0 ? "center" : "mid-ring");

  // Same engine, different budget style: an unbiased mh-rb estimate of the
  // center junction, run until its standard error undercuts a target. The
  // joint chain above already filled the dependency memo, so this costs
  // fewer passes than it would stand-alone.
  mhbc::EstimateRequest request;
  request.kind = mhbc::EstimatorKind::kMhRaoBlackwell;
  request.budget = mhbc::BudgetKind::kStandardError;
  request.target_std_error = 0.002;
  request.max_samples = 1 << 15;
  request.seed = 0xBEEF;
  const auto adaptive = engine.Estimate(center, request);
  if (!adaptive.ok()) {
    std::fprintf(stderr, "adaptive estimate failed: %s\n",
                 adaptive.status().ToString().c_str());
    return 1;
  }
  const mhbc::EstimateReport& report = adaptive.value();
  std::printf(
      "adaptive check: BC(center) ~= %.5f +/- %.5f  (exact %.5f; %llu "
      "iterations, %llu passes%s, %s)\n",
      report.value, report.ci_half_width, exact_center,
      static_cast<unsigned long long>(report.samples_used),
      static_cast<unsigned long long>(report.sp_passes),
      report.cache_hit ? ", cache-assisted" : "",
      report.converged ? "converged" : "budget capped");
  return 0;
}
