#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "centrality/engine.h"
#include "util/status.h"

/// \file
/// The mhbc_serve wire protocol: newline-delimited JSON request/response
/// lines. docs/serving.md is the normative byte-level spec; this header
/// is its implementation plus the parsing/formatting entry points the
/// daemon, the in-process test battery, and the load generator share.
///
/// One request = one line of UTF-8 JSON terminated by '\n' (the newline
/// is the framing; a line longer than the configured maximum is a
/// protocol error before any JSON parsing happens). One response = one
/// line of JSON. Responses carry the request's `id` back verbatim, so a
/// pipelining client can match them out of order.
///
/// Every failure is classified into one of the documented error classes
/// (ServeErrorClass); tests assert the class, not the message, so
/// messages can stay descriptive. The parser is strict by design — a
/// serving surface that silently coerces malformed fields turns client
/// bugs into wrong answers: unknown keys, wrong value types, fractional
/// or negative counts, and out-of-range enum values are all `field`
/// errors naming the offending key.

namespace mhbc::serve {

// ---------------------------------------------------------------------------
// Minimal JSON document tree
// ---------------------------------------------------------------------------

/// A parsed JSON value. Small on purpose: the protocol needs flat
/// objects of scalars / arrays, not a full DOM library — but the tree is
/// general (nesting works) so response payloads can be round-tripped by
/// tests and clients. Numbers keep their raw source text alongside the
/// double so integer fields can be re-parsed exactly and doubles
/// round-trip bit-for-bit through the %.17g formatting the writers use.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string raw_number;  ///< verbatim source token of a kNumber
  std::string string_value;
  std::vector<JsonValue> array;
  /// Object members in source order (duplicate keys rejected at parse).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_bool() const { return type == Type::kBool; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// True when the number token is a plain non-negative integer (no
  /// sign, fraction, or exponent) that fits uint64; *out receives it.
  bool AsUint64(std::uint64_t* out) const;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Errors carry the byte offset.
StatusOr<JsonValue> ParseJson(const std::string& text);

/// Escapes + quotes a string for JSON embedding ("abc" -> "\"abc\"").
std::string JsonQuote(const std::string& raw);

/// Formats a double so it round-trips bit-for-bit through strtod
/// (%.17g), with non-finite values mapped to null (JSON has no inf/nan).
std::string JsonDouble(double value);

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The documented failure classes. Stable wire names via
/// ServeErrorClassName; docs/serving.md defines when each is returned.
enum class ServeErrorClass {
  kParse,     ///< unframeable input: oversized line, malformed JSON
  kMethod,    ///< missing or unknown `method`
  kGraph,     ///< `graph` does not name a catalog entry
  kField,     ///< malformed or out-of-range request field (incl. vertex ids)
  kOverload,  ///< admission queue full — retry later
  kDeadline,  ///< deadline expired before execution began
  kInternal,  ///< engine-side failure on an admitted request
};

/// Stable lowercase wire name ("parse", "method", ...).
const char* ServeErrorClassName(ServeErrorClass error_class);

/// A classified failure (the `error` + `message` response fields).
struct ServeError {
  ServeErrorClass error_class = ServeErrorClass::kInternal;
  std::string message;
};

/// Protocol methods.
enum class ServeMethod { kEstimate, kRank, kTopK, kMutate, kStats };

/// Stable lowercase wire name ("estimate", "rank", "topk", "mutate",
/// "stats").
const char* ServeMethodName(ServeMethod method);

/// One parsed + field-validated request. Graph-dependent validation
/// (does the graph exist, are the vertex ids in range) happens at
/// execution time against the catalog.
struct ServeRequest {
  std::uint64_t id = 0;
  bool has_id = false;
  ServeMethod method = ServeMethod::kStats;
  std::string graph;                 ///< catalog name ("" only for stats)
  std::vector<VertexId> vertices;    ///< estimate / rank targets
  EstimatorKind estimator = EstimatorKind::kMetropolisHastings;
  std::uint64_t samples = 1000;
  std::uint64_t seed = 0x5eed;
  std::uint64_t iterations = 20'000;  ///< rank chain length
  std::uint32_t k = 10;               ///< topk
  double eps = 0.02;                  ///< topk accuracy
  double delta = 0.1;                 ///< topk failure probability
  /// Wall-clock budget in milliseconds; < 0 means "no deadline". 0 is
  /// admitted-then-rejected ("expired on arrival") by design.
  double deadline_ms = -1.0;
  std::int32_t priority = 0;          ///< [0, 9], higher served first
  std::string edits;                  ///< mutate: edit-script text
};

/// Parses + validates one request line. Returns true on success; on
/// failure fills `error` with the class/message (request `id` is still
/// recovered into `out` when the line parsed far enough, so error
/// responses can echo it). `max_line_bytes` caps the accepted line.
bool ParseServeRequest(const std::string& line, std::size_t max_line_bytes,
                       ServeRequest* out, ServeError* error);

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Per-vertex estimate payload (the statistical EstimateReport fields —
/// exactly the set covered by the determinism contract, plus the
/// deadline flag).
struct WireReport {
  VertexId vertex = kInvalidVertex;
  double value = 0.0;
  double std_error = 0.0;
  double ci_half_width = 0.0;
  double ess = 0.0;
  double acceptance_rate = 0.0;
  std::uint64_t samples_used = 0;
  bool converged = true;
  /// True when a deadline budget stopped the run before the requested
  /// samples — the response carries `"flag": "kDeadline"`.
  bool deadline_flagged = false;
};

/// Formats the ok-response envelope around a result payload (`result`
/// must be a complete JSON value, e.g. "{...}").
std::string FormatOkResponse(const ServeRequest& request, std::uint64_t epoch,
                             double elapsed_ms, const std::string& result);

/// Formats an error response. `request` may be null (unparseable line).
std::string FormatErrorResponse(const ServeRequest* request,
                                const ServeError& error);

/// Formats the estimate result payload: {"reports": [...]}.
std::string FormatEstimateResult(const std::vector<WireReport>& reports);

/// A parsed response, for in-process clients and the test battery. The
/// full payload stays available as `body` for fields not lifted here.
struct ServeResponse {
  bool ok = false;
  std::uint64_t id = 0;
  bool has_id = false;
  std::uint64_t epoch = 0;
  ServeErrorClass error_class = ServeErrorClass::kInternal;
  std::string message;
  std::vector<WireReport> reports;  ///< estimate responses
  JsonValue body;                   ///< the whole response document
};

/// Parses a response line (the inverse of the Format* functions).
StatusOr<ServeResponse> ParseServeResponse(const std::string& line);

}  // namespace mhbc::serve
