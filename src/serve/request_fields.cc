#include "serve/request_fields.h"

#include <cmath>
#include <cstdlib>

#include "graph/graph_io.h"

namespace mhbc::serve {

StatusOr<std::vector<VertexId>> ParseVertexListField(const std::string& csv) {
  return ParseVertexIdListStrict(csv);
}

Status ValidateVertexIds(const std::vector<VertexId>& ids, VertexId n) {
  for (const VertexId id : ids) {
    if (id >= n) {
      return Status::InvalidArgument(
          "vertex id " + std::to_string(id) + " out of range [0, " +
          std::to_string(n) + ")");
    }
  }
  return Status::Ok();
}

StatusOr<std::uint64_t> ParseCountField(const std::string& name,
                                        const std::string& text,
                                        std::uint64_t max) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument(name +
                                   " expects a non-negative integer, got '" +
                                   text + "'");
  }
  // 20 digits can overflow unsigned 64-bit; strtoull saturates, so cap
  // the digit count first and let the max check speak for the rest.
  if (text.size() > 20) {
    return Status::InvalidArgument(name + "=" + text +
                                   " is implausibly large (max " +
                                   std::to_string(max) + ")");
  }
  const unsigned long long value = std::strtoull(text.c_str(), nullptr, 10);
  if (value > max) {
    return Status::InvalidArgument(name + "=" + text +
                                   " is implausibly large (max " +
                                   std::to_string(max) + ")");
  }
  return static_cast<std::uint64_t>(value);
}

StatusOr<EstimatorKind> ParseEstimatorField(const std::string& name) {
  EstimatorKind kind = EstimatorKind::kMetropolisHastings;
  if (!ParseEstimatorKind(name, &kind)) {
    return Status::InvalidArgument("unknown estimator '" + name +
                                   "' (see: mhbc_tool estimators)");
  }
  return kind;
}

Status ValidateDeadlineMs(double deadline_ms) {
  if (!std::isfinite(deadline_ms) || deadline_ms < 0.0) {
    return Status::InvalidArgument(
        "deadline_ms must be a finite non-negative number of milliseconds");
  }
  return Status::Ok();
}

Status ValidatePriority(std::int64_t priority) {
  if (priority < 0 || priority > 9) {
    return Status::InvalidArgument("priority must be an integer in [0, 9]");
  }
  return Status::Ok();
}

}  // namespace mhbc::serve
