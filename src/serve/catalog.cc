#include "serve/catalog.h"

#include <utility>

namespace mhbc::serve {

// ---------------------------------------------------------------------------
// ReadLease
// ---------------------------------------------------------------------------

ReadLease::ReadLease(ReadLease&& other) noexcept
    : entry_(other.entry_), engine_(other.engine_), epoch_(other.epoch_) {
  other.entry_ = nullptr;
  other.engine_ = nullptr;
}

ReadLease& ReadLease::operator=(ReadLease&& other) noexcept {
  if (this != &other) {
    Release();
    entry_ = other.entry_;
    engine_ = other.engine_;
    epoch_ = other.epoch_;
    other.entry_ = nullptr;
    other.engine_ = nullptr;
  }
  return *this;
}

ReadLease::~ReadLease() { Release(); }

void ReadLease::Release() {
  if (engine_ != nullptr && entry_ != nullptr) {
    entry_->ReturnSession(engine_);
  }
  entry_ = nullptr;
  engine_ = nullptr;
}

// ---------------------------------------------------------------------------
// GraphEntry
// ---------------------------------------------------------------------------

GraphEntry::GraphEntry(std::string name, CsrGraph graph,
                       const EngineOptions& options, std::size_t sessions)
    : name_(std::move(name)), graph_(std::move(graph)) {
  if (sessions == 0) sessions = 1;
  sessions_.reserve(sessions);
  free_.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    sessions_.push_back(std::make_unique<BetweennessEngine>(graph_, options));
    free_.push_back(sessions_.back().get());
  }
}

ReadLease GraphEntry::AcquireRead() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return !writer_active_ && writers_waiting_ == 0 && !free_.empty();
  });
  BetweennessEngine* engine = free_.back();
  free_.pop_back();
  ++reads_served_;
  return ReadLease(this, engine, epoch_);
}

void GraphEntry::ReturnSession(BetweennessEngine* engine) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(engine);
  }
  cv_.notify_all();
}

Status GraphEntry::Mutate(const GraphDelta& delta) {
  std::unique_lock<std::mutex> lock(mu_);
  ++writers_waiting_;
  cv_.wait(lock, [this] {
    return !writer_active_ && free_.size() == sessions_.size();
  });
  --writers_waiting_;
  writer_active_ = true;
  lock.unlock();

  // Exclusive: every session is parked in free_ and writer_active_ keeps
  // readers (and other writers) out, so the engines can be edited without
  // the lock. The first ApplyDelta is the validation gate — it is atomic
  // per the engine contract, so an invalid delta leaves session 0 (and
  // thus all sessions) untouched. Once it succeeds, the same delta is
  // valid against every identically-edited sibling.
  Status applied = sessions_.front()->ApplyDelta(delta);
  if (applied.ok()) {
    for (std::size_t i = 1; i < sessions_.size(); ++i) {
      const Status sibling = sessions_[i]->ApplyDelta(delta);
      if (!sibling.ok()) {
        // Unreachable when the sessions are in lockstep; surface loudly
        // rather than serving a torn pool.
        applied = Status::FailedPrecondition(
            "session pool diverged applying a validated delta: " +
            sibling.message());
        break;
      }
    }
  }

  lock.lock();
  if (applied.ok()) {
    const std::uint64_t engine_epoch = sessions_.front()->graph_epoch();
    if (engine_epoch != epoch_) {  // empty delta keeps the epoch
      epoch_ = engine_epoch;
      ++mutations_applied_;
    }
  }
  writer_active_ = false;
  lock.unlock();
  cv_.notify_all();
  return applied;
}

GraphEntryStats GraphEntry::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GraphEntryStats stats;
  stats.epoch = epoch_;
  stats.sessions = sessions_.size();
  stats.sessions_free = free_.size();
  stats.reads_served = reads_served_;
  stats.mutations_applied = mutations_applied_;
  const CsrGraph& current = sessions_.front()->graph();
  stats.num_vertices = current.num_vertices();
  stats.num_edges = current.num_edges();
  stats.directed = current.directed();
  return stats;
}

// ---------------------------------------------------------------------------
// GraphCatalog
// ---------------------------------------------------------------------------

Status GraphCatalog::AddGraph(const std::string& name, CsrGraph graph,
                              const EngineOptions& options,
                              std::size_t sessions) {
  if (name.empty()) {
    return Status::InvalidArgument("catalog graph name must be non-empty");
  }
  if (entries_.count(name) != 0) {
    return Status::FailedPrecondition("catalog already holds a graph named '" +
                                      name + "'");
  }
  entries_.emplace(name, std::make_unique<GraphEntry>(name, std::move(graph),
                                                      options, sessions));
  return Status::Ok();
}

GraphEntry* GraphCatalog::Find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

std::vector<std::string> GraphCatalog::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

}  // namespace mhbc::serve
