#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/catalog.h"
#include "serve/protocol.h"

/// \file
/// Server — the transport-independent request executor behind mhbc_serve.
///
/// A Server owns a bounded worker pool fed by a bounded priority admission
/// queue. Transports (the TCP listener and --stdio loop in
/// examples/mhbc_serve.cpp, the in-process clients in tests and
/// bench_e23_serve) all speak to it through one entry point:
/// Call(request_line) -> response_line. Call parses and classifies the
/// line, admits it, blocks until a worker finishes it, and returns the
/// response — so a transport is just "read line, Call, write line" on its
/// own connection thread, and every production concern lives here:
///
/// - **Admission is non-blocking.** A full queue rejects immediately with
///   the `overload` error class (clients retry; the server never builds an
///   unbounded backlog). `stats` bypasses the queue entirely and is served
///   inline, so health checks and tests can observe queue state while the
///   workers are saturated.
/// - **Priorities.** Requests carry priority in [0, 9]; the queue serves
///   higher priorities first, FIFO (admission order) within a priority.
/// - **Deadlines** are enforced at three points: on arrival (deadline_ms
///   of 0 means "expired on arrival" and is rejected by admission with the
///   `deadline` class), at dequeue (a request whose budget elapsed while
///   queued gets the `deadline` class without touching an engine), and
///   mid-flight for `estimate` (the remaining budget maps onto the
///   engine's BudgetKind::kDeadline stop rule, so an expiring request
///   returns the samples it managed as a *partial* report whose entries
///   carry `"flag": "kDeadline"` instead of an error).
/// - **Epochs.** Graph reads run under a catalog ReadLease and report the
///   lease epoch; `mutate` drains readers and installs atomically
///   (serve/catalog.h has the bit-identity contract).

namespace mhbc::serve {

/// Server sizing knobs.
struct ServerOptions {
  /// Worker threads executing admitted requests.
  std::size_t workers = 2;
  /// Admission queue capacity — requests *waiting*, not counting the ones
  /// workers are executing. Admission past this rejects with `overload`.
  std::size_t queue_capacity = 64;
  /// Longest accepted request line; longer lines are `parse` errors.
  std::size_t max_line_bytes = std::size_t{1} << 20;  // 1 MiB
};

/// Point-in-time server counters (the `stats` method payload).
struct ServerStats {
  std::size_t queue_depth = 0;
  std::size_t busy_workers = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_deadline = 0;
};

/// The request executor. Thread-safe: any number of transport threads may
/// Call() concurrently. The catalog must outlive the server and be fully
/// populated before the first Call.
class Server {
 public:
  Server(GraphCatalog* catalog, ServerOptions options = ServerOptions());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Executes one request line end to end and returns the response line
  /// (no trailing newline). Never throws; every failure mode is a
  /// classified error response.
  std::string Call(const std::string& line);

  /// Stops the workers after fulfilling in-flight requests; queued
  /// requests are failed with `overload`. Idempotent; the destructor
  /// calls it.
  void Stop();

  ServerStats Stats() const;
  const ServerOptions& options() const { return options_; }
  GraphCatalog& catalog() const { return *catalog_; }

 private:
  struct Job;

  /// Queue admission. On success takes ownership of `job` and returns
  /// true; on rejection leaves `job` with the caller and fills `error`
  /// with the overload/deadline classification.
  bool Admit(std::unique_ptr<Job>& job, ServeError* error);

  void WorkerLoop();

  /// Runs one admitted request against the catalog (worker thread).
  std::string Execute(Job& job);
  std::string ExecuteEstimate(Job& job, GraphEntry& entry);
  std::string ExecuteRank(Job& job, GraphEntry& entry);
  std::string ExecuteTopK(Job& job, GraphEntry& entry);
  std::string ExecuteMutate(Job& job, GraphEntry& entry);
  /// `stats` (inline, queue-bypassing).
  std::string ExecuteStats(const ServeRequest& request);

  GraphCatalog* catalog_;
  const ServerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Job>> queue_;  ///< unordered; dequeue scans
  std::uint64_t next_sequence_ = 0;
  std::size_t busy_workers_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t rejected_deadline_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace mhbc::serve
