#include "serve/protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "serve/request_fields.h"
#include "util/table.h"

namespace mhbc::serve {

namespace {

/// Hard caps on work-sizing fields: a serving surface must bound the
/// work one request can demand before it reaches an engine. Documented
/// in docs/serving.md; exceeding them is a `field` error, not a clamp.
constexpr std::uint64_t kMaxSamplesField = std::uint64_t{1} << 30;
constexpr std::uint64_t kMaxIterationsField = std::uint64_t{1} << 30;
constexpr std::uint64_t kMaxKField = 0xFFFFFFFFull;
constexpr std::size_t kMaxJsonDepth = 32;

}  // namespace

// ---------------------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool JsonValue::AsUint64(std::uint64_t* out) const {
  if (type != Type::kNumber || raw_number.empty()) return false;
  if (raw_number.find_first_not_of("0123456789") != std::string::npos) {
    return false;  // sign, fraction, or exponent: not a plain integer
  }
  if (raw_number.size() > 20) return false;
  errno = 0;
  const unsigned long long value =
      std::strtoull(raw_number.c_str(), nullptr, 10);
  if (errno != 0) return false;
  if (raw_number.size() == 20 && value == 0xFFFFFFFFFFFFFFFFull &&
      raw_number != "18446744073709551615") {
    return false;  // strtoull saturation on overflow
  }
  *out = static_cast<std::uint64_t>(value);
  return true;
}

namespace {

/// Recursive-descent JSON parser over a single in-memory document.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    MHBC_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& why) const {
    return Status::InvalidArgument("json: " + why + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, std::size_t depth) {
    if (depth > kMaxJsonDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseKeyword(JsonValue* out) {
    const auto match = [this](const char* word) {
      const std::size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::Ok();
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::Ok();
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return Error("unknown keyword");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    out->type = JsonValue::Type::kNumber;
    out->raw_number = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number_value = std::strtod(out->raw_number.c_str(), &end);
    if (end == nullptr || *end != '\0' || out->raw_number.empty() ||
        out->raw_number == "-") {
      return Error("malformed number");
    }
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("malformed \\u escape");
            }
          }
          // BMP-only UTF-8 encoding (surrogate pairs rejected — the
          // protocol never emits them).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escape unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, std::size_t depth) {
    Consume('[');
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue element;
      MHBC_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, std::size_t depth) {
    Consume('{');
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      MHBC_RETURN_IF_ERROR(ParseString(&key));
      if (out->Find(key) != nullptr) {
        return Error("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      MHBC_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

std::string JsonQuote(const std::string& raw) {
  // Built via append (not `"\"" + temp + "\""`): the operator+ chain on a
  // temporary trips GCC 12's -Wrestrict false positive (PR105329) under
  // the -Werror gate.
  std::string quoted = "\"";
  quoted += EscapeJson(raw);
  quoted += '"';
  return quoted;
}

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const char* ServeErrorClassName(ServeErrorClass error_class) {
  switch (error_class) {
    case ServeErrorClass::kParse: return "parse";
    case ServeErrorClass::kMethod: return "method";
    case ServeErrorClass::kGraph: return "graph";
    case ServeErrorClass::kField: return "field";
    case ServeErrorClass::kOverload: return "overload";
    case ServeErrorClass::kDeadline: return "deadline";
    case ServeErrorClass::kInternal: return "internal";
  }
  return "internal";
}

const char* ServeMethodName(ServeMethod method) {
  switch (method) {
    case ServeMethod::kEstimate: return "estimate";
    case ServeMethod::kRank: return "rank";
    case ServeMethod::kTopK: return "topk";
    case ServeMethod::kMutate: return "mutate";
    case ServeMethod::kStats: return "stats";
  }
  return "stats";
}

namespace {

bool ParseMethodName(const std::string& name, ServeMethod* method) {
  if (name == "estimate") *method = ServeMethod::kEstimate;
  else if (name == "rank") *method = ServeMethod::kRank;
  else if (name == "topk") *method = ServeMethod::kTopK;
  else if (name == "mutate") *method = ServeMethod::kMutate;
  else if (name == "stats") *method = ServeMethod::kStats;
  else return false;
  return true;
}

bool FieldError(ServeError* error, const std::string& message) {
  error->error_class = ServeErrorClass::kField;
  error->message = message;
  return false;
}

/// Lifts one JSON value into a bounded uint64 field.
bool TakeCount(const std::string& key, const JsonValue& value,
               std::uint64_t max, std::uint64_t* out, ServeError* error) {
  if (!value.AsUint64(out)) {
    return FieldError(error, key + " must be a non-negative integer");
  }
  if (*out > max) {
    return FieldError(error, key + "=" + value.raw_number +
                                 " is implausibly large (max " +
                                 std::to_string(max) + ")");
  }
  return true;
}

}  // namespace

bool ParseServeRequest(const std::string& line, std::size_t max_line_bytes,
                       ServeRequest* out, ServeError* error) {
  *out = ServeRequest();
  if (line.size() > max_line_bytes) {
    error->error_class = ServeErrorClass::kParse;
    error->message = "request line of " + std::to_string(line.size()) +
                     " bytes exceeds the " + std::to_string(max_line_bytes) +
                     "-byte limit";
    return false;
  }
  auto parsed = ParseJson(line);
  if (!parsed.ok()) {
    error->error_class = ServeErrorClass::kParse;
    error->message = parsed.status().message();
    return false;
  }
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) {
    error->error_class = ServeErrorClass::kParse;
    error->message = "request must be a JSON object";
    return false;
  }

  // Recover the id first so even field/method errors can echo it.
  if (const JsonValue* id = doc.Find("id"); id != nullptr) {
    if (!id->AsUint64(&out->id)) {
      return FieldError(error, "id must be a non-negative integer");
    }
    out->has_id = true;
  }

  const JsonValue* method = doc.Find("method");
  if (method == nullptr || !method->is_string()) {
    error->error_class = ServeErrorClass::kMethod;
    error->message = "missing string field \"method\"";
    return false;
  }
  if (!ParseMethodName(method->string_value, &out->method)) {
    error->error_class = ServeErrorClass::kMethod;
    error->message = "unknown method \"" + method->string_value +
                     "\" (methods: estimate, rank, topk, mutate, stats)";
    return false;
  }

  bool saw_samples = false;
  for (const auto& [key, value] : doc.object) {
    if (key == "id" || key == "method") continue;
    if (key == "graph") {
      if (!value.is_string()) return FieldError(error, "graph must be a string");
      out->graph = value.string_value;
    } else if (key == "vertices") {
      if (!value.is_array()) {
        return FieldError(error, "vertices must be an array of vertex ids");
      }
      out->vertices.reserve(value.array.size());
      for (const JsonValue& element : value.array) {
        std::uint64_t id = 0;
        if (!element.AsUint64(&id) ||
            id >= static_cast<std::uint64_t>(kInvalidVertex)) {
          return FieldError(
              error,
              "vertices must contain non-negative integers below " +
                  std::to_string(kInvalidVertex));
        }
        out->vertices.push_back(static_cast<VertexId>(id));
      }
    } else if (key == "estimator") {
      if (!value.is_string()) {
        return FieldError(error, "estimator must be a string");
      }
      auto kind = ParseEstimatorField(value.string_value);
      if (!kind.ok()) return FieldError(error, kind.status().message());
      out->estimator = kind.value();
    } else if (key == "samples") {
      if (!TakeCount(key, value, kMaxSamplesField, &out->samples, error)) {
        return false;
      }
      saw_samples = true;
    } else if (key == "seed") {
      std::uint64_t seed = 0;
      if (!value.AsUint64(&seed)) {
        return FieldError(error, "seed must be a non-negative integer");
      }
      out->seed = seed;
    } else if (key == "iterations") {
      if (!TakeCount(key, value, kMaxIterationsField, &out->iterations,
                     error)) {
        return false;
      }
    } else if (key == "k") {
      std::uint64_t k = 0;
      if (!TakeCount(key, value, kMaxKField, &k, error)) return false;
      out->k = static_cast<std::uint32_t>(k);
    } else if (key == "eps") {
      if (!value.is_number() || !(value.number_value > 0.0) ||
          !(value.number_value < 1.0)) {
        return FieldError(error, "eps must be a number in (0, 1)");
      }
      out->eps = value.number_value;
    } else if (key == "delta") {
      if (!value.is_number() || !(value.number_value > 0.0) ||
          !(value.number_value < 1.0)) {
        return FieldError(error, "delta must be a number in (0, 1)");
      }
      out->delta = value.number_value;
    } else if (key == "deadline_ms") {
      if (!value.is_number()) {
        return FieldError(error, "deadline_ms must be a number");
      }
      const Status valid = ValidateDeadlineMs(value.number_value);
      if (!valid.ok()) return FieldError(error, valid.message());
      out->deadline_ms = value.number_value;
    } else if (key == "priority") {
      std::uint64_t priority = 0;
      if (!value.AsUint64(&priority) ||
          !ValidatePriority(static_cast<std::int64_t>(priority)).ok()) {
        return FieldError(
            error, ValidatePriority(value.is_number() &&
                                            value.number_value < 0
                                        ? -1
                                        : 10)
                       .message());
      }
      out->priority = static_cast<std::int32_t>(priority);
    } else if (key == "edits") {
      if (!value.is_string()) {
        return FieldError(error, "edits must be a string in the edit-script "
                                 "text format (docs/formats.md)");
      }
      out->edits = value.string_value;
    } else {
      return FieldError(error, "unknown field \"" + key + "\"");
    }
  }

  // Method-specific required fields.
  const bool needs_graph = out->method != ServeMethod::kStats;
  if (needs_graph && out->graph.empty()) {
    return FieldError(error, std::string(ServeMethodName(out->method)) +
                                 " requires a non-empty \"graph\"");
  }
  if ((out->method == ServeMethod::kEstimate ||
       out->method == ServeMethod::kRank) &&
      out->vertices.empty()) {
    return FieldError(error, std::string(ServeMethodName(out->method)) +
                                 " requires a non-empty \"vertices\" array");
  }
  if (out->method == ServeMethod::kEstimate && saw_samples &&
      out->samples == 0) {
    return FieldError(error, "samples must be at least 1");
  }
  if (out->method == ServeMethod::kTopK && out->k == 0) {
    return FieldError(error, "k must be at least 1");
  }
  if (out->method == ServeMethod::kMutate && out->edits.empty()) {
    return FieldError(error, "mutate requires a non-empty \"edits\" script");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

std::string FormatOkResponse(const ServeRequest& request, std::uint64_t epoch,
                             double elapsed_ms, const std::string& result) {
  std::ostringstream out;
  out << "{";
  if (request.has_id) out << "\"id\": " << request.id << ", ";
  out << "\"ok\": true, \"method\": " << JsonQuote(ServeMethodName(request.method))
      << ", \"epoch\": " << epoch
      << ", \"elapsed_ms\": " << JsonDouble(elapsed_ms)
      << ", \"result\": " << result << "}";
  return out.str();
}

std::string FormatErrorResponse(const ServeRequest* request,
                                const ServeError& error) {
  std::ostringstream out;
  out << "{";
  if (request != nullptr && request->has_id) {
    out << "\"id\": " << request->id << ", ";
  }
  out << "\"ok\": false, \"error\": "
      << JsonQuote(ServeErrorClassName(error.error_class))
      << ", \"message\": " << JsonQuote(error.message) << "}";
  return out.str();
}

std::string FormatEstimateResult(const std::vector<WireReport>& reports) {
  std::ostringstream out;
  out << "{\"reports\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const WireReport& r = reports[i];
    if (i > 0) out << ", ";
    out << "{\"vertex\": " << r.vertex << ", \"value\": " << JsonDouble(r.value)
        << ", \"std_error\": " << JsonDouble(r.std_error)
        << ", \"ci_half_width\": " << JsonDouble(r.ci_half_width)
        << ", \"ess\": " << JsonDouble(r.ess)
        << ", \"acceptance_rate\": " << JsonDouble(r.acceptance_rate)
        << ", \"samples_used\": " << r.samples_used
        << ", \"converged\": " << (r.converged ? "true" : "false");
    if (r.deadline_flagged) out << ", \"flag\": \"kDeadline\"";
    out << "}";
  }
  out << "]}";
  return out.str();
}

StatusOr<ServeResponse> ParseServeResponse(const std::string& line) {
  auto parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  ServeResponse response;
  response.body = std::move(parsed).value();
  const JsonValue& doc = response.body;
  if (!doc.is_object()) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  const JsonValue* ok = doc.Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Status::InvalidArgument("response missing boolean \"ok\"");
  }
  response.ok = ok->bool_value;
  if (const JsonValue* id = doc.Find("id"); id != nullptr) {
    if (!id->AsUint64(&response.id)) {
      return Status::InvalidArgument("response \"id\" is not an integer");
    }
    response.has_id = true;
  }
  if (!response.ok) {
    const JsonValue* error = doc.Find("error");
    if (error == nullptr || !error->is_string()) {
      return Status::InvalidArgument("error response missing \"error\" class");
    }
    bool known = false;
    for (const ServeErrorClass c :
         {ServeErrorClass::kParse, ServeErrorClass::kMethod,
          ServeErrorClass::kGraph, ServeErrorClass::kField,
          ServeErrorClass::kOverload, ServeErrorClass::kDeadline,
          ServeErrorClass::kInternal}) {
      if (error->string_value == ServeErrorClassName(c)) {
        response.error_class = c;
        known = true;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown error class \"" +
                                     error->string_value + "\"");
    }
    if (const JsonValue* message = doc.Find("message");
        message != nullptr && message->is_string()) {
      response.message = message->string_value;
    }
    return response;
  }
  if (const JsonValue* epoch = doc.Find("epoch"); epoch != nullptr) {
    if (!epoch->AsUint64(&response.epoch)) {
      return Status::InvalidArgument("response \"epoch\" is not an integer");
    }
  }
  // Lift estimate reports when present.
  if (const JsonValue* result = doc.Find("result");
      result != nullptr && result->is_object()) {
    if (const JsonValue* reports = result->Find("reports");
        reports != nullptr && reports->is_array()) {
      for (const JsonValue& entry : reports->array) {
        if (!entry.is_object()) {
          return Status::InvalidArgument("report entry is not an object");
        }
        WireReport report;
        const auto number = [&entry](const char* key, double* out) {
          const JsonValue* v = entry.Find(key);
          if (v != nullptr && v->is_number()) *out = v->number_value;
        };
        std::uint64_t vertex = 0;
        const JsonValue* v = entry.Find("vertex");
        if (v == nullptr || !v->AsUint64(&vertex) ||
            vertex >= static_cast<std::uint64_t>(kInvalidVertex)) {
          return Status::InvalidArgument("report entry missing vertex id");
        }
        report.vertex = static_cast<VertexId>(vertex);
        number("value", &report.value);
        number("std_error", &report.std_error);
        number("ci_half_width", &report.ci_half_width);
        number("ess", &report.ess);
        number("acceptance_rate", &report.acceptance_rate);
        if (const JsonValue* samples = entry.Find("samples_used");
            samples != nullptr) {
          if (!samples->AsUint64(&report.samples_used)) {
            return Status::InvalidArgument("samples_used is not an integer");
          }
        }
        if (const JsonValue* converged = entry.Find("converged");
            converged != nullptr && converged->is_bool()) {
          report.converged = converged->bool_value;
        }
        if (const JsonValue* flag = entry.Find("flag");
            flag != nullptr && flag->is_string()) {
          report.deadline_flagged = flag->string_value == "kDeadline";
        }
        response.reports.push_back(report);
      }
    }
  }
  return response;
}

}  // namespace mhbc::serve
