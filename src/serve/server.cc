#include "serve/server.h"

#include <future>
#include <sstream>
#include <utility>

#include "serve/request_fields.h"
#include "util/timer.h"

namespace mhbc::serve {

namespace {

/// Engine/catalog Status -> wire error class. Engine-side validation
/// failures (bad vertex for this graph, estimator unsupported on a
/// weighted graph, malformed edit script semantics) are the client's
/// fault -> `field`; anything else on an admitted request is `internal`.
ServeErrorClass ClassifyStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return ServeErrorClass::kField;
    case StatusCode::kNotFound:
      return ServeErrorClass::kGraph;
    default:
      return ServeErrorClass::kInternal;
  }
}

std::string ErrorFor(const ServeRequest& request, ServeErrorClass error_class,
                     std::string message) {
  ServeError error;
  error.error_class = error_class;
  error.message = std::move(message);
  return FormatErrorResponse(&request, error);
}

}  // namespace

/// One admitted request: the parsed payload, its place in the priority
/// order, its own arrival stopwatch (deadline budgets are measured from
/// admission), and the promise the transport thread blocks on.
struct Server::Job {
  ServeRequest request;
  std::uint64_t sequence = 0;
  WallTimer timer;
  std::promise<std::string> response;
};

Server::Server(GraphCatalog* catalog, ServerOptions options)
    : catalog_(catalog), options_(options) {
  const std::size_t workers = options_.workers == 0 ? 1 : options_.workers;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() { Stop(); }

void Server::Stop() {
  std::vector<std::unique_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    orphaned.swap(queue_);
  }
  cv_.notify_all();
  for (std::unique_ptr<Job>& job : orphaned) {
    job->response.set_value(
        ErrorFor(job->request, ServeErrorClass::kOverload,
                 "server stopping before the request ran"));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServerStats Server::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats stats;
  stats.queue_depth = queue_.size();
  stats.busy_workers = busy_workers_;
  stats.admitted = admitted_;
  stats.completed = completed_;
  stats.rejected_overload = rejected_overload_;
  stats.rejected_deadline = rejected_deadline_;
  return stats;
}

std::string Server::Call(const std::string& line) {
  ServeRequest request;
  ServeError error;
  if (!ParseServeRequest(line, options_.max_line_bytes, &request, &error)) {
    return FormatErrorResponse(&request, error);
  }
  if (request.method == ServeMethod::kStats) {
    // Inline and queue-bypassing by design: stats must stay observable
    // while the workers are saturated (that is what makes the overload
    // tests deterministic).
    return ExecuteStats(request);
  }
  GraphEntry* entry = catalog_->Find(request.graph);
  if (entry == nullptr) {
    std::string serving;
    for (const std::string& name : catalog_->Names()) {
      serving += serving.empty() ? name : ", " + name;
    }
    return ErrorFor(request, ServeErrorClass::kGraph,
                    "unknown graph '" + request.graph +
                        "' (serving: " + serving + ")");
  }

  auto job = std::make_unique<Job>();
  job->request = std::move(request);
  std::future<std::string> response = job->response.get_future();
  if (!Admit(job, &error)) {
    return FormatErrorResponse(&job->request, error);
  }
  return response.get();
}

bool Server::Admit(std::unique_ptr<Job>& job, ServeError* error) {
  ServeRequest& request = job->request;
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    ++rejected_overload_;
    error->error_class = ServeErrorClass::kOverload;
    error->message = "server is stopping";
  } else if (request.deadline_ms == 0.0) {
    ++rejected_deadline_;
    error->error_class = ServeErrorClass::kDeadline;
    error->message = "deadline_ms=0: the deadline expired on arrival";
  } else if (queue_.size() >= options_.queue_capacity) {
    ++rejected_overload_;
    error->error_class = ServeErrorClass::kOverload;
    error->message = "admission queue full (capacity " +
                     std::to_string(options_.queue_capacity) +
                     ") — retry later";
  } else {
    job->sequence = next_sequence_++;
    job->timer.Reset();  // deadline budgets start at admission
    ++admitted_;
    queue_.push_back(std::move(job));
    cv_.notify_one();
    return true;
  }
  return false;  // rejected: the caller still owns `job` for the id echo
}

void Server::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Highest priority first, FIFO (admission sequence) within one.
      // Linear scan — the queue is small and bounded by construction.
      std::size_t best = 0;
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        const Job& candidate = *queue_[i];
        const Job& incumbent = *queue_[best];
        if (candidate.request.priority > incumbent.request.priority ||
            (candidate.request.priority == incumbent.request.priority &&
             candidate.sequence < incumbent.sequence)) {
          best = i;
        }
      }
      job = std::move(queue_[best]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
      ++busy_workers_;
    }
    std::string response = Execute(*job);
    job->response.set_value(std::move(response));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_workers_;
      ++completed_;
    }
  }
}

std::string Server::Execute(Job& job) {
  const ServeRequest& request = job.request;
  if (request.deadline_ms > 0.0) {
    const double elapsed_ms = job.timer.ElapsedSeconds() * 1000.0;
    if (elapsed_ms >= request.deadline_ms) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++rejected_deadline_;
      }
      return ErrorFor(request, ServeErrorClass::kDeadline,
                      "deadline of " + std::to_string(request.deadline_ms) +
                          " ms expired after " + std::to_string(elapsed_ms) +
                          " ms in queue");
    }
  }
  GraphEntry* entry = catalog_->Find(request.graph);
  if (entry == nullptr) {  // admission already checked; defensive
    return ErrorFor(request, ServeErrorClass::kGraph,
                    "unknown graph '" + request.graph + "'");
  }
  switch (request.method) {
    case ServeMethod::kEstimate: return ExecuteEstimate(job, *entry);
    case ServeMethod::kRank: return ExecuteRank(job, *entry);
    case ServeMethod::kTopK: return ExecuteTopK(job, *entry);
    case ServeMethod::kMutate: return ExecuteMutate(job, *entry);
    case ServeMethod::kStats: break;  // handled inline in Call
  }
  return ErrorFor(request, ServeErrorClass::kInternal,
                  "method not routable");
}

std::string Server::ExecuteEstimate(Job& job, GraphEntry& entry) {
  const ServeRequest& request = job.request;
  ReadLease lease = entry.AcquireRead();
  const Status range = ValidateVertexIds(
      request.vertices, lease.engine().graph().num_vertices());
  if (!range.ok()) {
    return ErrorFor(request, ServeErrorClass::kField, range.message());
  }

  EstimateRequest engine_request;
  engine_request.kind = request.estimator;
  engine_request.samples = request.samples;
  engine_request.seed = request.seed;
  const bool deadline_budget = request.deadline_ms > 0.0;
  if (deadline_budget) {
    const double remaining_seconds =
        request.deadline_ms / 1000.0 - job.timer.ElapsedSeconds();
    if (remaining_seconds <= 0.0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++rejected_deadline_;
      }
      return ErrorFor(request, ServeErrorClass::kDeadline,
                      "deadline expired before execution began");
    }
    // The remaining wall budget becomes the engine's stop rule; the
    // requested sample count becomes the ceiling, so a generous deadline
    // reproduces the kSamples answer and a tight one returns a partial
    // report (flagged below) instead of an error.
    engine_request.budget = BudgetKind::kDeadline;
    engine_request.deadline_seconds = remaining_seconds;
    engine_request.max_samples = request.samples;
  }

  auto reports =
      lease.engine().EstimateMany(request.vertices, engine_request);
  if (!reports.ok()) {
    return ErrorFor(request, ClassifyStatus(reports.status()),
                    reports.status().message());
  }
  std::vector<WireReport> wire;
  wire.reserve(reports.value().size());
  for (const EstimateReport& report : reports.value()) {
    WireReport w;
    w.vertex = report.vertex;
    w.value = report.value;
    w.std_error = report.std_error;
    w.ci_half_width = report.ci_half_width;
    w.ess = report.ess;
    w.acceptance_rate = report.acceptance_rate;
    w.samples_used = report.samples_used;
    w.converged = report.converged;
    w.deadline_flagged = deadline_budget && report.samples_used > 0 &&
                         report.samples_used < request.samples;
    wire.push_back(w);
  }
  return FormatOkResponse(request, lease.epoch(),
                          job.timer.ElapsedSeconds() * 1000.0,
                          FormatEstimateResult(wire));
}

std::string Server::ExecuteRank(Job& job, GraphEntry& entry) {
  const ServeRequest& request = job.request;
  ReadLease lease = entry.AcquireRead();
  const Status range = ValidateVertexIds(
      request.vertices, lease.engine().graph().num_vertices());
  if (!range.ok()) {
    return ErrorFor(request, ServeErrorClass::kField, range.message());
  }
  auto order = lease.engine().RankTargets(request.vertices,
                                          request.iterations, request.seed);
  if (!order.ok()) {
    return ErrorFor(request, ClassifyStatus(order.status()),
                    order.status().message());
  }
  std::ostringstream result;
  result << "{\"order\": [";
  for (std::size_t i = 0; i < order.value().size(); ++i) {
    if (i > 0) result << ", ";
    result << request.vertices[order.value()[i]];
  }
  result << "]}";
  return FormatOkResponse(request, lease.epoch(),
                          job.timer.ElapsedSeconds() * 1000.0, result.str());
}

std::string Server::ExecuteTopK(Job& job, GraphEntry& entry) {
  const ServeRequest& request = job.request;
  ReadLease lease = entry.AcquireRead();
  auto entries =
      lease.engine().TopK(request.k, request.eps, request.delta, request.seed);
  if (!entries.ok()) {
    return ErrorFor(request, ClassifyStatus(entries.status()),
                    entries.status().message());
  }
  std::ostringstream result;
  result << "{\"topk\": [";
  for (std::size_t i = 0; i < entries.value().size(); ++i) {
    const TopKEntry& e = entries.value()[i];
    if (i > 0) result << ", ";
    result << "{\"vertex\": " << e.vertex
           << ", \"estimate\": " << JsonDouble(e.estimate) << "}";
  }
  result << "]}";
  return FormatOkResponse(request, lease.epoch(),
                          job.timer.ElapsedSeconds() * 1000.0, result.str());
}

std::string Server::ExecuteMutate(Job& job, GraphEntry& entry) {
  const ServeRequest& request = job.request;
  auto delta = ParseEditScriptText(request.edits, "mutate request");
  if (!delta.ok()) {
    return ErrorFor(request, ServeErrorClass::kField,
                    delta.status().message());
  }
  const Status applied = entry.Mutate(delta.value());
  if (!applied.ok()) {
    return ErrorFor(request, ClassifyStatus(applied), applied.message());
  }
  const GraphEntryStats stats = entry.Stats();
  std::ostringstream result;
  result << "{\"applied_ops\": " << delta.value().size()
         << ", \"num_vertices\": " << stats.num_vertices
         << ", \"num_edges\": " << stats.num_edges
         << ", \"directed\": " << (stats.directed ? "true" : "false") << "}";
  return FormatOkResponse(request, stats.epoch,
                          job.timer.ElapsedSeconds() * 1000.0, result.str());
}

std::string Server::ExecuteStats(const ServeRequest& request) {
  std::vector<std::string> names;
  if (!request.graph.empty()) {
    if (catalog_->Find(request.graph) == nullptr) {
      return ErrorFor(request, ServeErrorClass::kGraph,
                      "unknown graph '" + request.graph + "'");
    }
    names.push_back(request.graph);
  } else {
    names = catalog_->Names();
  }
  const ServerStats server = Stats();
  std::ostringstream result;
  result << "{\"graphs\": [";
  for (std::size_t i = 0; i < names.size(); ++i) {
    const GraphEntryStats g = catalog_->Find(names[i])->Stats();
    if (i > 0) result << ", ";
    result << "{\"name\": " << JsonQuote(names[i]) << ", \"epoch\": " << g.epoch
           << ", \"sessions\": " << g.sessions
           << ", \"sessions_free\": " << g.sessions_free
           << ", \"reads_served\": " << g.reads_served
           << ", \"mutations_applied\": " << g.mutations_applied
           << ", \"num_vertices\": " << g.num_vertices
           << ", \"num_edges\": " << g.num_edges
           << ", \"directed\": " << (g.directed ? "true" : "false") << "}";
  }
  result << "], \"queue_depth\": " << server.queue_depth
         << ", \"queue_capacity\": " << options_.queue_capacity
         << ", \"workers\": " << workers_.size()
         << ", \"busy_workers\": " << server.busy_workers
         << ", \"admitted\": " << server.admitted
         << ", \"completed\": " << server.completed
         << ", \"rejected_overload\": " << server.rejected_overload
         << ", \"rejected_deadline\": " << server.rejected_deadline << "}";
  return FormatOkResponse(request, 0, 0.0, result.str());
}

}  // namespace mhbc::serve
