#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "centrality/engine.h"
#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "util/status.h"

/// \file
/// GraphCatalog — named graphs with warm engine-session pools and the
/// read/write epoch scheme behind mhbc_serve.
///
/// A BetweennessEngine is thread-compatible, not thread-safe, so the unit
/// of concurrency is one engine per in-flight reader: each catalog entry
/// owns a fixed pool of engines ("sessions") built on the same graph with
/// the same options, and a reader checks one out through an RAII
/// ReadLease. Warm sessions are the point of the pool — each engine's
/// dependency memo and whole-graph products persist across requests, so
/// repeat queries amortize exactly as the engine API promises.
///
/// Mutation installs atomically under a writer-preferred guard: Mutate()
/// blocks new readers, drains the in-flight ones (waits until every
/// session is back in the pool), applies the *same* GraphDelta to every
/// pooled engine, and advances the entry epoch. Because the engine's
/// ApplyDelta contract makes post-edit reports bit-identical to a cold
/// engine on the post-edit graph, every session leaves the critical
/// section bit-equivalent: a reader can never observe a half-installed
/// delta, and two concurrent readers at the same epoch get bit-identical
/// statistical report fields no matter which pooled session served them.
/// tests/serve_concurrency_test.cc holds this to the bit.
///
/// The catalog itself is fixed at startup (register every graph before
/// serving begins); only the per-entry session state is synchronized.

namespace mhbc::serve {

class GraphEntry;

/// RAII checkout of one pooled engine. While a lease is live its engine
/// is exclusively yours and the entry's epoch cannot advance. Leases are
/// movable; destruction (or Release) returns the session to the pool and
/// wakes waiting readers/writers.
class ReadLease {
 public:
  ReadLease() = default;
  ReadLease(ReadLease&& other) noexcept;
  ReadLease& operator=(ReadLease&& other) noexcept;
  ~ReadLease();

  ReadLease(const ReadLease&) = delete;
  ReadLease& operator=(const ReadLease&) = delete;

  bool valid() const { return engine_ != nullptr; }
  BetweennessEngine& engine() const { return *engine_; }
  /// The entry epoch at checkout time — constant for the lease's life.
  std::uint64_t epoch() const { return epoch_; }

  /// Returns the session early (idempotent).
  void Release();

 private:
  friend class GraphEntry;
  ReadLease(GraphEntry* entry, BetweennessEngine* engine, std::uint64_t epoch)
      : entry_(entry), engine_(engine), epoch_(epoch) {}

  GraphEntry* entry_ = nullptr;
  BetweennessEngine* engine_ = nullptr;
  std::uint64_t epoch_ = 0;
};

/// Point-in-time counters for the `stats` method and tests.
struct GraphEntryStats {
  std::uint64_t epoch = 0;
  std::size_t sessions = 0;
  std::size_t sessions_free = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t mutations_applied = 0;
  VertexId num_vertices = 0;
  /// Undirected pairs, or arcs when `directed`.
  std::uint64_t num_edges = 0;
  /// Directedness of the served graph (fixed at registration).
  bool directed = false;
};

/// One named graph: the owned base CSR plus its session pool and epoch
/// guard. Pinned in memory (catalog entries live behind unique_ptr).
class GraphEntry {
 public:
  /// Builds `sessions` engines over the owned copy of `graph`.
  /// `sessions` must be >= 1.
  GraphEntry(std::string name, CsrGraph graph, const EngineOptions& options,
             std::size_t sessions);

  GraphEntry(const GraphEntry&) = delete;
  GraphEntry& operator=(const GraphEntry&) = delete;

  const std::string& name() const { return name_; }

  /// Blocks until a session is free and no writer is active or waiting
  /// (writer preference keeps a mutation from starving behind a steady
  /// reader stream), then checks it out.
  ReadLease AcquireRead();

  /// Drains readers, applies `delta` to every pooled session, advances
  /// the epoch. Validation runs against the first session (whose
  /// ApplyDelta is atomic), so an invalid delta returns InvalidArgument
  /// with every session untouched and the epoch unchanged. An empty
  /// delta is a successful no-op that keeps the epoch.
  Status Mutate(const GraphDelta& delta);

  GraphEntryStats Stats() const;

 private:
  friend class ReadLease;
  void ReturnSession(BetweennessEngine* engine);

  const std::string name_;
  CsrGraph graph_;  ///< construction base; engines own post-edit state
  std::vector<std::unique_ptr<BetweennessEngine>> sessions_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<BetweennessEngine*> free_;  ///< checkout stack
  std::size_t writers_waiting_ = 0;
  bool writer_active_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t reads_served_ = 0;
  std::uint64_t mutations_applied_ = 0;
};

/// The daemon's name -> GraphEntry map. Populate before serving starts;
/// lookups after that are read-only and need no synchronization.
class GraphCatalog {
 public:
  /// Registers a graph under `name` with a pool of `sessions` engines.
  /// Duplicate names fail with FailedPrecondition.
  Status AddGraph(const std::string& name, CsrGraph graph,
                  const EngineOptions& options, std::size_t sessions);

  /// Null when `name` is not registered.
  GraphEntry* Find(const std::string& name) const;

  /// Registered names in lexicographic order.
  std::vector<std::string> Names() const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, std::unique_ptr<GraphEntry>> entries_;
};

}  // namespace mhbc::serve
