#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "centrality/engine.h"
#include "graph/csr_graph.h"
#include "util/status.h"

/// \file
/// Shared request-field validation for every serving surface.
///
/// The CLI (examples/mhbc_tool.cpp) and the query daemon (serve/server.h)
/// accept the same logical fields — vertex-id lists, sample/seed counts,
/// estimator names, deadline budgets, thread counts — and the contract is
/// that both surfaces reject identical malformed inputs with identical
/// messages. These helpers are the single implementation of that
/// validation; neither surface is allowed to hand-roll strtoull-style
/// parsing (which silently turns "12x" into 12 and "junk" into 0).
///
/// Every function returns Status/StatusOr with a message that names the
/// field and the offending value, so a caller can surface it verbatim as
/// a usage error (CLI) or a `field`-class protocol error (daemon).

namespace mhbc::serve {

/// Strict CSV vertex-id list ("3,17,42"). Wraps
/// ParseVertexIdListStrict (graph/graph_io.h): non-numeric tokens,
/// ids >= kInvalidVertex, and empty lists all fail with a message
/// starting "no vertex ids".
StatusOr<std::vector<VertexId>> ParseVertexListField(const std::string& csv);

/// Rejects any id >= n with an InvalidArgument naming the id and the
/// valid range — the one range-check message both surfaces emit.
Status ValidateVertexIds(const std::vector<VertexId>& ids, VertexId n);

/// Digits-only non-negative integer field (samples, seed, iterations,
/// k, --threads, ...). `name` labels the messages ("--threads expects a
/// non-negative integer, got 'x'"); values above `max` are rejected as
/// implausibly large.
StatusOr<std::uint64_t> ParseCountField(const std::string& name,
                                        const std::string& text,
                                        std::uint64_t max);

/// Estimator registry lookup with the uniform unknown-name message
/// ("unknown estimator 'x' ...").
StatusOr<EstimatorKind> ParseEstimatorField(const std::string& name);

/// A request's deadline budget in milliseconds: must be finite and
/// >= 0. (0 is *valid* here — it means "already expired", which
/// admission then rejects with the deadline error class; negative and
/// non-finite values are malformed fields.)
Status ValidateDeadlineMs(double deadline_ms);

/// A request's priority: integers in [0, 9], higher served first.
Status ValidatePriority(std::int64_t priority);

/// Upper bound ParseCountField enforces for thread-count flags — shared
/// by --threads / --spd-threads / --workers so every surface agrees on
/// what "implausibly large" means.
inline constexpr std::uint64_t kMaxThreadCount = 4096;

}  // namespace mhbc::serve
