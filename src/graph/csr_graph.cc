#include "graph/csr_graph.h"

#include <algorithm>

namespace mhbc {

bool CsrGraph::HasEdge(VertexId u, VertexId v) const {
  MHBC_DCHECK(u < num_vertices());
  MHBC_DCHECK(v < num_vertices());
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double CsrGraph::EdgeWeight(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  MHBC_DCHECK(it != nbrs.end() && *it == v);
  if (!weighted()) return 1.0;
  const auto idx = static_cast<std::size_t>(it - nbrs.begin());
  return weights(u)[idx];
}

std::vector<CsrGraph::Edge> CsrGraph::CollectEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    const auto nbrs = neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (u < v) {
        const double w = weighted() ? weights(u)[i] : 1.0;
        edges.push_back(Edge{u, v, w});
      }
    }
  }
  return edges;
}

}  // namespace mhbc
