#include "graph/csr_graph.h"

#include <algorithm>
#include <utility>

namespace mhbc {

CsrGraph CsrGraph::WrapExternal(std::span<const EdgeId> offsets,
                                std::span<const VertexId> neighbors,
                                std::span<const double> weights,
                                std::string name, bool directed) {
  MHBC_DCHECK(offsets.empty() || offsets.front() == 0);
  MHBC_DCHECK(offsets.empty() || offsets.back() == neighbors.size());
  MHBC_DCHECK(weights.empty() || weights.size() == neighbors.size());
  CsrGraph graph;
  graph.offsets_ = offsets.data();
  graph.num_offsets_ = offsets.size();
  graph.neighbors_ = neighbors.data();
  graph.num_adjacency_ = neighbors.size();
  graph.weights_ = weights.empty() ? nullptr : weights.data();
  graph.external_ = true;
  graph.directed_ = directed;
  graph.name_ = std::move(name);
  graph.BindIn();
  return graph;
}

CsrGraph CsrGraph::AdoptVerbatim(std::vector<EdgeId> offsets,
                                 std::vector<VertexId> neighbors,
                                 std::vector<double> weights, std::string name,
                                 bool directed) {
  MHBC_DCHECK(offsets.empty() || offsets.front() == 0);
  MHBC_DCHECK(offsets.empty() || offsets.back() == neighbors.size());
  MHBC_DCHECK(weights.empty() || weights.size() == neighbors.size());
  CsrGraph graph;
  graph.offsets_store_ = std::move(offsets);
  graph.neighbors_store_ = std::move(neighbors);
  graph.weights_store_ = std::move(weights);
  graph.directed_ = directed;
  graph.name_ = std::move(name);
  graph.BindOwned();
  return graph;
}

void CsrGraph::BindOwned() {
  offsets_ = offsets_store_.data();
  num_offsets_ = offsets_store_.size();
  neighbors_ = neighbors_store_.data();
  num_adjacency_ = neighbors_store_.size();
  weights_ = weights_store_.empty() ? nullptr : weights_store_.data();
  external_ = false;
  BindIn();
}

void CsrGraph::BindIn() {
  if (!directed_) {
    in_offsets_store_.clear();
    in_neighbors_store_.clear();
    in_weights_store_.clear();
    in_offsets_ = offsets_;
    in_neighbors_ = neighbors_;
    in_weights_ = weights_;
    return;
  }
  const VertexId n = num_vertices();
  // Counting sort by destination preserves ascending-source order within
  // each in-neighbor slice (the out-CSR is scanned in ascending u), so the
  // transpose is sorted without a per-vertex sort.
  in_offsets_store_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t i = 0; i < num_adjacency_; ++i) {
    ++in_offsets_store_[neighbors_[i] + 1];
  }
  for (VertexId v = 0; v < n; ++v) {
    in_offsets_store_[v + 1] += in_offsets_store_[v];
  }
  in_neighbors_store_.resize(num_adjacency_);
  const bool has_weights = weights_ != nullptr;
  if (has_weights) in_weights_store_.resize(num_adjacency_);
  std::vector<EdgeId> cursor(in_offsets_store_.begin(),
                             in_offsets_store_.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeId e = offsets_[u]; e < offsets_[u + 1]; ++e) {
      const VertexId v = neighbors_[e];
      const EdgeId slot = cursor[v]++;
      in_neighbors_store_[slot] = u;
      if (has_weights) in_weights_store_[slot] = weights_[e];
    }
  }
  in_offsets_ = in_offsets_store_.data();
  in_neighbors_ = in_neighbors_store_.data();
  in_weights_ = has_weights ? in_weights_store_.data() : nullptr;
}

void CsrGraph::CopyFrom(const CsrGraph& other) {
  name_ = other.name_;
  directed_ = other.directed_;
  if (other.external_) {
    // Copies of a view are views over the same external arrays; the
    // caller's lifetime contract (WrapExternal) covers them.
    offsets_store_.clear();
    neighbors_store_.clear();
    weights_store_.clear();
    offsets_ = other.offsets_;
    neighbors_ = other.neighbors_;
    weights_ = other.weights_;
    num_offsets_ = other.num_offsets_;
    num_adjacency_ = other.num_adjacency_;
    external_ = true;
    // The transpose is owned even by views; copy rather than rebuild.
    in_offsets_store_ = other.in_offsets_store_;
    in_neighbors_store_ = other.in_neighbors_store_;
    in_weights_store_ = other.in_weights_store_;
    if (directed_) {
      in_offsets_ = in_offsets_store_.data();
      in_neighbors_ = in_neighbors_store_.data();
      in_weights_ =
          in_weights_store_.empty() ? nullptr : in_weights_store_.data();
    } else {
      in_offsets_ = offsets_;
      in_neighbors_ = neighbors_;
      in_weights_ = weights_;
    }
    return;
  }
  offsets_store_ = other.offsets_store_;
  neighbors_store_ = other.neighbors_store_;
  weights_store_ = other.weights_store_;
  in_offsets_store_ = other.in_offsets_store_;
  in_neighbors_store_ = other.in_neighbors_store_;
  in_weights_store_ = other.in_weights_store_;
  // BindOwned would rebuild the transpose; bind the pointers directly to
  // the freshly copied stores instead.
  offsets_ = offsets_store_.data();
  num_offsets_ = offsets_store_.size();
  neighbors_ = neighbors_store_.data();
  num_adjacency_ = neighbors_store_.size();
  weights_ = weights_store_.empty() ? nullptr : weights_store_.data();
  external_ = false;
  if (directed_) {
    in_offsets_ = in_offsets_store_.data();
    in_neighbors_ = in_neighbors_store_.data();
    in_weights_ =
        in_weights_store_.empty() ? nullptr : in_weights_store_.data();
  } else {
    in_offsets_ = offsets_;
    in_neighbors_ = neighbors_;
    in_weights_ = weights_;
  }
}

void CsrGraph::MoveFrom(CsrGraph&& other) noexcept {
  name_ = std::move(other.name_);
  offsets_store_ = std::move(other.offsets_store_);
  neighbors_store_ = std::move(other.neighbors_store_);
  weights_store_ = std::move(other.weights_store_);
  in_offsets_store_ = std::move(other.in_offsets_store_);
  in_neighbors_store_ = std::move(other.in_neighbors_store_);
  in_weights_store_ = std::move(other.in_weights_store_);
  // Moving a vector transfers its heap buffer, so other's pointers stay
  // valid for owned storage and unchanged for external views.
  offsets_ = other.offsets_;
  neighbors_ = other.neighbors_;
  weights_ = other.weights_;
  in_offsets_ = other.in_offsets_;
  in_neighbors_ = other.in_neighbors_;
  in_weights_ = other.in_weights_;
  num_offsets_ = other.num_offsets_;
  num_adjacency_ = other.num_adjacency_;
  external_ = other.external_;
  directed_ = other.directed_;
  other.offsets_ = nullptr;
  other.neighbors_ = nullptr;
  other.weights_ = nullptr;
  other.in_offsets_ = nullptr;
  other.in_neighbors_ = nullptr;
  other.in_weights_ = nullptr;
  other.num_offsets_ = 0;
  other.num_adjacency_ = 0;
  other.external_ = false;
  other.directed_ = false;
}

bool CsrGraph::HasEdge(VertexId u, VertexId v) const {
  MHBC_DCHECK(u < num_vertices());
  MHBC_DCHECK(v < num_vertices());
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double CsrGraph::EdgeWeight(VertexId u, VertexId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  MHBC_DCHECK(it != nbrs.end() && *it == v);
  if (!weighted()) return 1.0;
  const auto idx = static_cast<std::size_t>(it - nbrs.begin());
  return weights(u)[idx];
}

std::vector<CsrGraph::Edge> CsrGraph::CollectEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    const auto nbrs = neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (directed_ || u < v) {
        const double w = weighted() ? weights(u)[i] : 1.0;
        edges.push_back(Edge{u, v, w});
      }
    }
  }
  return edges;
}

}  // namespace mhbc
