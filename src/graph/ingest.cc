#include "graph/ingest.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "graph/graph_algos.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace mhbc {

namespace {

namespace fs = std::filesystem;

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::uint64_t FnvMix(std::uint64_t hash, const std::string& token) {
  for (unsigned char c : token) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  hash ^= 0xffu;  // token separator, so {"ab","c"} != {"a","bc"}
  hash *= 1099511628211ull;
  return hash;
}

/// Cache key: source file identity plus every option that changes the
/// ingested graph, plus the snapshot format version (a version bump
/// invalidates every cache entry instead of tripping the reader).
std::string CacheFileName(const std::string& path, const fs::path& source,
                          GraphFileFormat format, const IngestOptions& options) {
  std::uint64_t hash = 14695981039346656037ull;
  std::error_code ec;
  const fs::path canonical = fs::weakly_canonical(source, ec);
  hash = FnvMix(hash, ec ? path : canonical.string());
  const auto size = fs::file_size(source, ec);
  hash = FnvMix(hash, ec ? "?" : std::to_string(size));
  const auto mtime = fs::last_write_time(source, ec);
  hash = FnvMix(hash, ec ? "?"
                         : std::to_string(
                               mtime.time_since_epoch().count()));
  hash = FnvMix(hash, GraphFileFormatName(format));
  hash = FnvMix(hash, options.directed ? "directed" : "-");
  hash = FnvMix(hash, options.largest_component_only ? "lcc" : "-");
  hash = FnvMix(hash, options.degree_relabel ? "relabel" : "-");
  hash = FnvMix(hash, std::to_string(kSnapshotFormatVersion));
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  std::string stem = source.stem().string();
  if (stem.empty()) stem = "graph";
  return stem + "-" + hex + kSnapshotExtension;
}

/// Largest-component extraction / relabel steps shared by every non-cache
/// load path. Returns true when a step actually rewrote the graph.
bool Preprocess(const IngestOptions& options, CsrGraph* graph) {
  bool rewritten = false;
  if (options.largest_component_only && !IsConnected(*graph)) {
    *graph = ExtractLargestComponent(*graph);
    rewritten = true;
  }
  if (options.degree_relabel) {
    *graph = ApplyVertexPermutation(*graph, DegreeDescendingPermutation(*graph));
    rewritten = true;
  }
  return rewritten;
}

StatusOr<CsrGraph> LoadTextFormat(const std::string& path,
                                  GraphFileFormat format,
                                  const IngestOptions& ingest,
                                  EdgeListStats* stats) {
  if (format == GraphFileFormat::kMatrixMarket) {
    return LoadMatrixMarket(path, ingest.directed);
  }
  EdgeListOptions options;
  options.allow_weights = format == GraphFileFormat::kWeightedEdgeList;
  options.directed = ingest.directed;
  options.stats = stats;
  return LoadSnapEdgeList(path, options);
}

}  // namespace

const char* GraphFileFormatName(GraphFileFormat format) {
  switch (format) {
    case GraphFileFormat::kAuto: return "auto";
    case GraphFileFormat::kEdgeList: return "edge-list";
    case GraphFileFormat::kWeightedEdgeList: return "weighted-edge-list";
    case GraphFileFormat::kMatrixMarket: return "matrix-market";
    case GraphFileFormat::kSnapshot: return "snapshot";
  }
  return "unknown";
}

GraphFileFormat SniffGraphFormat(const std::string& path) {
  const std::string ext = ToLower(fs::path(path).extension().string());
  if (ext == kSnapshotExtension) return GraphFileFormat::kSnapshot;
  if (ext == ".mtx" || ext == ".mm") return GraphFileFormat::kMatrixMarket;
  std::ifstream in(path, std::ios::binary);
  char lead[16] = {};
  in.read(lead, sizeof(lead));
  const std::string head(lead, static_cast<std::size_t>(in.gcount()));
  if (head.rfind("MHBCSNAP", 0) == 0) return GraphFileFormat::kSnapshot;
  if (head.rfind("%%MatrixMarket", 0) == 0) return GraphFileFormat::kMatrixMarket;
  return GraphFileFormat::kWeightedEdgeList;
}

GraphSource GraphSource::FromOwned(CsrGraph graph, GraphFileFormat origin) {
  GraphSource source;
  source.owned_ = std::move(graph);
  source.use_mapped_ = false;
  source.format_ = origin;
  return source;
}

StatusOr<GraphSource> GraphSource::FromSnapshotFile(
    const std::string& path, const SnapshotOptions& options, bool cache_hit,
    GraphFileFormat origin) {
  auto mapped = LoadSnapshotMapped(path, options);
  if (!mapped.ok()) return mapped.status();
  GraphSource source;
  source.mapped_ = std::move(mapped).value();
  source.use_mapped_ = true;
  source.cache_hit_ = cache_hit;
  source.snapshot_path_ = path;
  source.format_ = origin;
  return source;
}

StatusOr<GraphSource> OpenGraphSource(const std::string& path,
                                      const IngestOptions& options) {
  const GraphFileFormat format = options.format == GraphFileFormat::kAuto
                                     ? SniffGraphFormat(path)
                                     : options.format;
  SnapshotOptions snapshot_options;
  snapshot_options.verify_checksum = options.verify_checksum;
  snapshot_options.force_buffered = !options.prefer_mmap;

  if (format == GraphFileFormat::kSnapshot) {
    auto source = GraphSource::FromSnapshotFile(path, snapshot_options,
                                                /*cache_hit=*/false, format);
    if (!source.ok()) return source.status();
    // Snapshots are stored post-preprocessing by the cache writer, but a
    // hand-made snapshot can still be fed through the pipeline; stepping
    // on one trades the zero-copy view for an owned rewrite.
    CsrGraph graph = source.value().graph();
    if (Preprocess(options, &graph)) {
      GraphSource owned = GraphSource::FromOwned(std::move(graph), format);
      owned.snapshot_path_ = path;
      return owned;
    }
    return source;
  }

  // Text formats: serve the snapshot cache when enabled.
  const fs::path source_path(path);
  fs::path cache_file;
  if (!options.cache_dir.empty()) {
    cache_file = fs::path(options.cache_dir) /
                 CacheFileName(path, source_path, format, options);
    std::error_code ec;
    if (fs::exists(cache_file, ec)) {
      auto cached = GraphSource::FromSnapshotFile(
          cache_file.string(), snapshot_options, /*cache_hit=*/true, format);
      if (cached.ok()) return cached;
      // Corrupt/unreadable cache entry: rebuild it below rather than fail.
    }
  }

  EdgeListStats stats;
  auto loaded = LoadTextFormat(path, format, options, &stats);
  if (!loaded.ok()) return loaded.status();
  CsrGraph graph = std::move(loaded).value();
  Preprocess(options, &graph);

  if (!cache_file.empty()) {
    std::error_code ec;
    fs::create_directories(cache_file.parent_path(), ec);
    if (!ec && SaveSnapshot(graph, cache_file.string()).ok()) {
      auto cached = GraphSource::FromSnapshotFile(
          cache_file.string(), snapshot_options, /*cache_hit=*/false, format);
      if (cached.ok()) {
        // The parse ran this open, so its directedness-detection counter
        // is known even though the graph is served from the fresh cache.
        cached.value().mirrored_pairs_ = stats.mirrored_pairs;
        return cached;
      }
    }
    // Cache write/read-back failed (read-only dir, disk full): the parsed
    // graph is still good — serve it and leave caching for another run.
  }
  GraphSource source = GraphSource::FromOwned(std::move(graph), format);
  source.mirrored_pairs_ = stats.mirrored_pairs;
  if (!cache_file.empty()) source.snapshot_path_ = cache_file.string();
  return source;
}

StatusOr<CsrGraph> LoadMatrixMarket(const std::string& path, bool directed) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string banner;
  if (!std::getline(in, banner)) {
    return Status::InvalidArgument("'" + path + "': empty Matrix Market file");
  }
  std::istringstream banner_fields(banner);
  std::string tag, object, layout, field, symmetry;
  banner_fields >> tag >> object >> layout >> field >> symmetry;
  if (tag != "%%MatrixMarket") {
    return Status::InvalidArgument("'" + path +
                                   "': missing %%MatrixMarket banner");
  }
  object = ToLower(object);
  layout = ToLower(layout);
  field = ToLower(field);
  symmetry = ToLower(symmetry);
  if (object != "matrix" || layout != "coordinate") {
    return Status::InvalidArgument(
        "'" + path + "': only 'matrix coordinate' Matrix Market files are "
                     "supported (got '" + object + " " + layout + "')");
  }
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer" && field != "double") {
    return Status::InvalidArgument("'" + path + "': unsupported value field '" +
                                   field + "' (real/integer/pattern)");
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    return Status::InvalidArgument("'" + path + "': unsupported symmetry '" +
                                   symmetry + "' (general/symmetric)");
  }

  std::string line;
  std::size_t line_no = 1;
  // Size line: first non-comment, non-blank line after the banner.
  std::uint64_t rows = 0, cols = 0, entries = 0;
  for (;;) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("'" + path + "': missing size line");
    }
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream fields(line);
    if (!(fields >> rows >> cols >> entries)) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_no) +
                                     ": malformed size line");
    }
    break;
  }
  if (rows != cols) {
    return Status::InvalidArgument(
        "'" + path + "': adjacency matrix must be square, got " +
        std::to_string(rows) + "x" + std::to_string(cols));
  }
  if (rows == 0 || rows > static_cast<std::uint64_t>(kInvalidVertex)) {
    return Status::InvalidArgument("'" + path + "': vertex count " +
                                   std::to_string(rows) + " out of range");
  }

  const bool symmetric = symmetry == "symmetric";
  GraphBuilder builder(static_cast<VertexId>(rows));
  builder.set_directed(directed);
  builder.set_ignore_self_loops(true).set_merge_duplicates(true);
  std::uint64_t seen = 0;
  while (seen < entries && std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t i = 0, j = 0;
    if (!(fields >> i >> j)) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_no) +
                                     ": expected 'row col [value]'");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_no) +
                                     ": index out of range (1-based)");
    }
    double value = 1.0;
    if (!pattern) {
      if (!(fields >> value)) {
        return Status::InvalidArgument("'" + path + "' line " +
                                       std::to_string(line_no) +
                                       ": missing matrix value");
      }
      if (!(value > 0.0)) {
        return Status::InvalidArgument(
            "'" + path + "' line " + std::to_string(line_no) +
            ": edge weight must be positive, got " + std::to_string(value));
      }
    }
    builder.AddWeightedEdge(static_cast<VertexId>(i - 1),
                            static_cast<VertexId>(j - 1), value);
    // A `symmetric` file stores one triangle; a directed load must
    // materialize both orientations of each off-diagonal entry (the
    // undirected builder produces the mirror by construction).
    if (directed && symmetric && i != j) {
      builder.AddWeightedEdge(static_cast<VertexId>(j - 1),
                              static_cast<VertexId>(i - 1), value);
    }
    ++seen;
  }
  if (seen < entries) {
    return Status::InvalidArgument(
        "'" + path + "': size line promises " + std::to_string(entries) +
        " entries but the file holds " + std::to_string(seen));
  }
  StatusOr<CsrGraph> built = builder.Build();
  if (!built.ok()) return built.status();
  CsrGraph graph = std::move(built).value();
  graph.set_name(path);
  return graph;
}

Status WriteMatrixMarket(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const bool weighted = graph.weighted();
  const bool directed = graph.directed();
  // A directed adjacency matrix is not symmetric: it must carry the
  // `general` banner with one entry per arc. The `symmetric` banner is
  // reserved for undirected graphs (where it halves the file and the
  // loader mirrors), and that branch is byte-identical to what every
  // prior version wrote, so undirected round trips stay byte-stable.
  out << "%%MatrixMarket matrix coordinate "
      << (weighted ? "real" : "pattern")
      << (directed ? " general\n" : " symmetric\n");
  out << "% mhbc graph: n=" << graph.num_vertices()
      << " m=" << graph.num_edges()
      << (directed ? " directed" : "") << "\n";
  out << graph.num_vertices() << ' ' << graph.num_vertices() << ' '
      << graph.num_edges() << '\n';
  char value[32];
  for (const CsrGraph::Edge& e : graph.CollectEdges()) {
    // Undirected: symmetric coordinate entries live in the lower triangle
    // (row >= col); CollectEdges yields u < v, so v becomes the row.
    // Directed: entry (row=u, col=v) is the arc u→v, one per arc.
    if (directed) {
      out << (e.u + 1) << ' ' << (e.v + 1);
    } else {
      out << (e.v + 1) << ' ' << (e.u + 1);
    }
    if (weighted) {
      std::snprintf(value, sizeof(value), " %.17g", e.weight);
      out << value;
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::Ok();
}

}  // namespace mhbc
