#include "graph/graph_algos.h"

#include <algorithm>
#include <vector>

#include "graph/graph_builder.h"

namespace mhbc {

ComponentInfo ConnectedComponents(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  ComponentInfo info;
  info.label.assign(n, kInvalidVertex);
  std::vector<VertexId> queue;
  const auto visit = [&graph, &info, &queue](VertexId u, VertexId comp) {
    for (VertexId v : graph.neighbors(u)) {
      if (info.label[v] == kInvalidVertex) {
        info.label[v] = comp;
        queue.push_back(v);
      }
    }
    // Directed graphs use *weak* connectivity (orientation ignored for
    // membership), so the sweep also crosses arcs backwards. Undirected
    // in-neighbors alias out-neighbors; skip the redundant second scan.
    if (!graph.directed()) return;
    for (VertexId v : graph.in_neighbors(u)) {
      if (info.label[v] == kInvalidVertex) {
        info.label[v] = comp;
        queue.push_back(v);
      }
    }
  };
  for (VertexId start = 0; start < n; ++start) {
    if (info.label[start] != kInvalidVertex) continue;
    const VertexId comp = info.num_components++;
    VertexId size = 0;
    queue.clear();
    queue.push_back(start);
    info.label[start] = comp;
    std::size_t head = 0;
    while (head < queue.size()) {
      const VertexId u = queue[head++];
      ++size;
      visit(u, comp);
    }
    info.sizes.push_back(size);
  }
  return info;
}

bool IsConnected(const CsrGraph& graph) {
  if (graph.num_vertices() == 0) return false;
  return ConnectedComponents(graph).num_components == 1;
}

CsrGraph ExtractLargestComponent(const CsrGraph& graph) {
  const ComponentInfo info = ConnectedComponents(graph);
  MHBC_DCHECK(info.num_components > 0);
  const VertexId best =
      static_cast<VertexId>(std::max_element(info.sizes.begin(), info.sizes.end()) -
                            info.sizes.begin());
  std::vector<VertexId> keep;
  keep.reserve(info.sizes[best]);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (info.label[v] == best) keep.push_back(v);
  }
  CsrGraph sub = InducedSubgraph(graph, keep);
  sub.set_name(graph.name() + "_lcc");
  return sub;
}

std::vector<VertexId> RemovedVertexComponentSizes(const CsrGraph& graph,
                                                  VertexId r) {
  const VertexId n = graph.num_vertices();
  MHBC_DCHECK(r < n);
  std::vector<VertexId> label(n, kInvalidVertex);
  label[r] = n;  // poisoned: never expanded
  std::vector<VertexId> sizes;
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (start == r || label[start] != kInvalidVertex) continue;
    queue.clear();
    queue.push_back(start);
    label[start] = static_cast<VertexId>(sizes.size());
    VertexId size = 0;
    std::size_t head = 0;
    while (head < queue.size()) {
      const VertexId u = queue[head++];
      ++size;
      for (VertexId v : graph.neighbors(u)) {
        if (v == r) continue;
        if (label[v] == kInvalidVertex) {
          label[v] = static_cast<VertexId>(sizes.size());
          queue.push_back(v);
        }
      }
    }
    sizes.push_back(size);
  }
  return sizes;
}

bool IsBalancedSeparator(const CsrGraph& graph, VertexId r,
                         double theta_fraction) {
  MHBC_DCHECK(theta_fraction > 0.0 && theta_fraction <= 1.0);
  const std::vector<VertexId> sizes = RemovedVertexComponentSizes(graph, r);
  if (sizes.size() < 2) return false;
  const double threshold =
      theta_fraction * static_cast<double>(graph.num_vertices());
  int big = 0;
  for (VertexId s : sizes) {
    if (static_cast<double>(s) >= threshold) ++big;
  }
  return big >= 2;
}

CsrGraph InducedSubgraph(const CsrGraph& graph,
                         const std::vector<VertexId>& keep) {
  std::vector<VertexId> remap(graph.num_vertices(), kInvalidVertex);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    MHBC_DCHECK(keep[i] < graph.num_vertices());
    MHBC_DCHECK(remap[keep[i]] == kInvalidVertex);
    remap[keep[i]] = static_cast<VertexId>(i);
  }
  GraphBuilder builder(static_cast<VertexId>(keep.size()));
  builder.set_directed(graph.directed());
  for (VertexId old_u : keep) {
    const auto nbrs = graph.neighbors(old_u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId old_v = nbrs[i];
      // Undirected: each edge once via its u < v orientation. Directed:
      // every out-arc is its own edge.
      if (!graph.directed() && old_u >= old_v) continue;
      if (remap[old_v] == kInvalidVertex) continue;
      const double w = graph.weighted() ? graph.weights(old_u)[i] : 1.0;
      builder.AddWeightedEdge(remap[old_u], remap[old_v], w);
    }
  }
  StatusOr<CsrGraph> result = builder.Build();
  MHBC_DCHECK(result.ok());
  CsrGraph sub = std::move(result).value();
  sub.set_name(graph.name() + "_induced");
  return sub;
}

CsrGraph ApplyVertexPermutation(const CsrGraph& graph,
                                const std::vector<VertexId>& new_id) {
  const VertexId n = graph.num_vertices();
  MHBC_DCHECK(new_id.size() == n);
#ifndef NDEBUG
  {
    std::vector<bool> seen(n, false);
    for (VertexId target : new_id) {
      MHBC_DCHECK(target < n && !seen[target]);
      seen[target] = true;
    }
  }
#endif
  GraphBuilder builder(n);
  builder.set_directed(graph.directed());
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = graph.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      // Undirected: each edge once via its u < v orientation. Directed:
      // every out-arc is its own edge.
      if (!graph.directed() && u >= v) continue;
      const double w = graph.weighted() ? graph.weights(u)[i] : 1.0;
      builder.AddWeightedEdge(new_id[u], new_id[v], w);
    }
  }
  StatusOr<CsrGraph> result = builder.Build();
  MHBC_DCHECK(result.ok());
  CsrGraph relabeled = std::move(result).value();
  relabeled.set_name(graph.name());
  return relabeled;
}

std::vector<VertexId> DegreeDescendingPermutation(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> by_degree(n);
  for (VertexId v = 0; v < n; ++v) by_degree[v] = v;
  // Directed graphs rank by total (out + in) degree — both CSRs get
  // scanned by the kernels, so locality follows the combined incidence.
  // Undirected in-degree aliases out-degree, so the rank is unchanged.
  const auto total_degree = [&graph](VertexId v) -> std::uint64_t {
    return graph.directed()
               ? static_cast<std::uint64_t>(graph.degree(v)) + graph.in_degree(v)
               : graph.degree(v);
  };
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&total_degree](VertexId a, VertexId b) {
                     return total_degree(a) > total_degree(b);
                   });
  std::vector<VertexId> new_id(n);
  for (VertexId rank = 0; rank < n; ++rank) new_id[by_degree[rank]] = rank;
  return new_id;
}

}  // namespace mhbc
