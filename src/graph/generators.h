#pragma once

#include <cstdint>

#include "graph/csr_graph.h"
#include "util/rng.h"
#include "util/status.h"

/// \file
/// Deterministic synthetic graph generators.
///
/// These serve two roles: (1) closed-form topologies (path, cycle, star,
/// complete, trees, barbell) whose exact betweenness is known analytically,
/// used as test oracles; (2) random families (Erdős–Rényi, Barabási–Albert,
/// Watts–Strogatz, caveman) acting as SNAP-dataset stand-ins in the
/// experiment suite — see DESIGN.md §4 for the substitution argument.
///
/// All random generators take an explicit seed and are deterministic for a
/// fixed (parameters, seed) pair.

namespace mhbc {

/// Path graph 0-1-...-(n-1). Requires n >= 1.
CsrGraph MakePath(VertexId n);

/// Cycle 0-1-...-(n-1)-0. Requires n >= 3.
CsrGraph MakeCycle(VertexId n);

/// Star: center 0 connected to 1..n-1. Requires n >= 2.
CsrGraph MakeStar(VertexId n);

/// Complete graph K_n. Requires n >= 2.
CsrGraph MakeComplete(VertexId n);

/// Complete bipartite K_{a,b}; side A is [0,a), side B is [a,a+b).
CsrGraph MakeCompleteBipartite(VertexId a, VertexId b);

/// Balanced tree with given branching factor and depth (depth 0 = single
/// root). Vertices are numbered level by level, root = 0.
CsrGraph MakeBalancedTree(std::uint32_t branching, std::uint32_t depth);

/// Two K_k cliques joined by a path of `bridge_len` vertices (bridge_len may
/// be 0: the cliques share one connecting edge). Every bridge vertex is a
/// balanced vertex separator — the Theorem 2 workhorse.
CsrGraph MakeBarbell(VertexId clique_size, VertexId bridge_len);

/// `communities` cliques of `clique_size` vertices arranged in a ring, with
/// one inter-community edge between consecutive cliques (connected caveman
/// graph). Models strong community structure (Girvan–Newman use case).
CsrGraph MakeConnectedCaveman(VertexId communities, VertexId clique_size);

/// 2-D grid graph rows x cols with 4-neighborhood.
CsrGraph MakeGrid(VertexId rows, VertexId cols);

/// "Wheel": cycle of n-1 vertices all connected to hub 0. Requires n >= 4.
CsrGraph MakeWheel(VertexId n);

/// Lollipop: K_k clique attached to a path of `tail` vertices.
CsrGraph MakeLollipop(VertexId clique_size, VertexId tail);

/// Erdős–Rényi G(n, p). Self-loops excluded.
CsrGraph MakeErdosRenyiGnp(VertexId n, double p, std::uint64_t seed);

/// Erdős–Rényi G(n, m): exactly m distinct edges drawn uniformly.
/// Requires m <= n(n-1)/2.
CsrGraph MakeErdosRenyiGnm(VertexId n, std::uint64_t m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a clique of
/// `edges_per_vertex` + 1 vertices, each new vertex attaches to
/// `edges_per_vertex` distinct existing vertices chosen proportionally to
/// degree. Produces the scale-free degree (and betweenness, Barthelemy 2004)
/// profile of social/collaboration networks.
CsrGraph MakeBarabasiAlbert(VertexId n, std::uint32_t edges_per_vertex,
                            std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta (rewiring keeps the graph
/// simple; edges that cannot be rewired stay). k must be even, k < n.
CsrGraph MakeWattsStrogatz(VertexId n, std::uint32_t k, double beta,
                           std::uint64_t seed);

/// Deterministic weakly-connected *directed* graph: the spine
/// 0→1→...→n-1 plus `extra_arcs` uniformly drawn arcs (self-loops
/// skipped, duplicate arcs merged — reciprocal pairs stay two arcs).
/// The directed stand-in the benches and tests share; n >= 2.
CsrGraph MakeRandomDirected(VertexId n, std::uint64_t extra_arcs,
                            std::uint64_t seed);

/// Assigns uniform random weights in [lo, hi] to an unweighted graph.
/// Directedness carries over (each arc draws its own weight).
CsrGraph AssignUniformWeights(const CsrGraph& graph, double lo, double hi,
                              std::uint64_t seed);

}  // namespace mhbc
