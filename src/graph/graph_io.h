#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "graph/csr_graph.h"
#include "util/status.h"

/// \file
/// Text edge-list I/O in the SNAP dataset format.
///
/// The paper's evaluation line of work uses SNAP networks distributed as
/// whitespace-separated edge lists with '#' comment lines and arbitrary
/// (non-dense, possibly directed-duplicated) vertex ids. LoadSnapEdgeList
/// accepts exactly that shape so the real datasets drop in unchanged; the
/// loader remaps ids to dense [0, n) and ignores self-loops. Orientation
/// handling is explicit (EdgeListOptions::directed / ::symmetrize): the
/// default load symmetrizes — every line becomes an undirected edge and
/// reverse duplicates merge — and a directed load keeps each line as the
/// arc u→v. Either way EdgeListStats reports how many mirrored pairs the
/// input contained, so a symmetrizing load of a directed source is a
/// visible, measured decision instead of a silent one.
///
/// This is the lowest-level text path. Most callers should go through
/// the format-sniffing ingestion front-end (graph/ingest.h), which also
/// reads Matrix Market files and binary snapshots and can cache parsed
/// text as an mmap-loadable snapshot. docs/formats.md specifies every
/// accepted format byte by byte.

namespace mhbc {

/// Parse-side counters of one edge-list load (EdgeListOptions::stats).
struct EdgeListStats {
  /// Edge lines parsed (after comment/blank stripping), incl. self-loops.
  std::size_t edge_lines = 0;
  /// Self-loop lines ("u u"), which never produce an edge.
  std::size_t self_loop_lines = 0;
  /// Unordered pairs {u,v} that appeared in *both* orientations. A
  /// symmetrizing load folds each such pair into one undirected edge (the
  /// historically silent symmetrization, now counted); a directed load
  /// keeps them as two reciprocal arcs. A non-zero count is the loader's
  /// directedness detection signal: the source distinguishes orientations.
  std::size_t mirrored_pairs = 0;
};

/// Options for LoadSnapEdgeList / ParseEdgeList.
struct EdgeListOptions {
  /// Lines whose third column parses as a positive double become weighted
  /// edges; otherwise a third column is an error.
  bool allow_weights = false;
  /// Keep only the largest connected component (the paper assumes a
  /// connected G; SNAP graphs have small satellite components). On a
  /// directed load the component is the largest *weakly* connected one
  /// (orientation ignored for membership, preserved in the result).
  bool largest_component_only = false;
  /// Parse each line as the directed arc u→v and build a directed graph
  /// (reciprocal lines stay distinct arcs; duplicate identical arcs still
  /// merge). When false the load is undirected per `symmetrize` below.
  bool directed = false;
  /// Undirected loads only: merge reverse-oriented duplicates ("1 2" and
  /// "2 1") into one undirected edge. This is the historical SNAP-loader
  /// behavior, now an explicit named decision; it must stay true on an
  /// undirected load (an undirected build merges reverse duplicates by
  /// construction, so directed=false with symmetrize=false is rejected as
  /// InvalidArgument — set directed=true to keep orientation). Ignored
  /// when directed.
  bool symmetrize = true;
  /// When non-null, filled with the parse counters (always written, even
  /// on a load that later fails in the builder).
  EdgeListStats* stats = nullptr;
};

/// Parses an edge list from an input stream. See EdgeListOptions.
StatusOr<CsrGraph> ParseEdgeList(std::istream& in, const EdgeListOptions& options);

/// Loads a SNAP-format edge-list file.
StatusOr<CsrGraph> LoadSnapEdgeList(const std::string& path,
                                    const EdgeListOptions& options);

/// Parses a comma-separated vertex-id list ("3,17,42" -> {3, 17, 42}).
/// Tokens are whitespace-trimmed ("3, 17" works) and empty tokens are
/// skipped. Any other malformed token fails the whole parse with
/// InvalidArgument naming the offending token and why (a typo must
/// surface as an error, not silently become vertex 0): non-digit
/// characters, ids >= kInvalidVertex (a wrap to 32 bits must not pick
/// some other vertex), and lists with no ids at all are all rejected.
/// The single strict parser behind both the CLI tools and the serving
/// protocol (serve/request_fields.h), so both surfaces reject identical
/// inputs with identical messages.
StatusOr<std::vector<VertexId>> ParseVertexIdListStrict(const std::string& csv);

/// Legacy loose shape of ParseVertexIdListStrict: any parse error
/// collapses to an empty result. Prefer the strict variant — it says
/// *why* the list was rejected.
std::vector<VertexId> ParseVertexIdList(const std::string& csv);

/// Writes "u v [w]" lines (u < v undirected; one line per arc u→v, in
/// CSR order, directed — the header comment then carries a "directed"
/// tag) plus a '#' header. Output round-trips through LoadSnapEdgeList
/// (with EdgeListOptions::directed matching the graph; note the loader's
/// first-seen id remap: ids survive the round trip only when already
/// dense in first-seen order). The weighted-edge-list dialect emitted
/// here is specified in docs/formats.md; for a binary artifact that
/// preserves the CSR arrays byte-for-byte, use SaveSnapshot
/// (graph/snapshot.h).
Status WriteEdgeList(const CsrGraph& graph, const std::string& path);

/// Stream variant of WriteEdgeList.
void WriteEdgeList(const CsrGraph& graph, std::ostream& out);

}  // namespace mhbc
