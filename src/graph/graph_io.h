#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.h"
#include "util/status.h"

/// \file
/// Text edge-list I/O in the SNAP dataset format.
///
/// The paper's evaluation line of work uses SNAP networks distributed as
/// whitespace-separated edge lists with '#' comment lines and arbitrary
/// (non-dense, possibly directed-duplicated) vertex ids. LoadSnapEdgeList
/// accepts exactly that shape so the real datasets drop in unchanged; the
/// loader remaps ids to dense [0, n), ignores self-loops, and merges
/// duplicate/reverse edges.
///
/// This is the lowest-level text path. Most callers should go through
/// the format-sniffing ingestion front-end (graph/ingest.h), which also
/// reads Matrix Market files and binary snapshots and can cache parsed
/// text as an mmap-loadable snapshot. docs/formats.md specifies every
/// accepted format byte by byte.

namespace mhbc {

/// Options for LoadSnapEdgeList / ParseEdgeList.
struct EdgeListOptions {
  /// Lines whose third column parses as a positive double become weighted
  /// edges; otherwise a third column is an error.
  bool allow_weights = false;
  /// Keep only the largest connected component (the paper assumes a
  /// connected G; SNAP graphs have small satellite components).
  bool largest_component_only = false;
};

/// Parses an edge list from an input stream. See EdgeListOptions.
StatusOr<CsrGraph> ParseEdgeList(std::istream& in, const EdgeListOptions& options);

/// Loads a SNAP-format edge-list file.
StatusOr<CsrGraph> LoadSnapEdgeList(const std::string& path,
                                    const EdgeListOptions& options);

/// Parses a comma-separated vertex-id list ("3,17,42" -> {3, 17, 42}).
/// Tokens are whitespace-trimmed ("3, 17" works) and empty tokens are
/// skipped. Any other malformed token fails the whole parse with
/// InvalidArgument naming the offending token and why (a typo must
/// surface as an error, not silently become vertex 0): non-digit
/// characters, ids >= kInvalidVertex (a wrap to 32 bits must not pick
/// some other vertex), and lists with no ids at all are all rejected.
/// The single strict parser behind both the CLI tools and the serving
/// protocol (serve/request_fields.h), so both surfaces reject identical
/// inputs with identical messages.
StatusOr<std::vector<VertexId>> ParseVertexIdListStrict(const std::string& csv);

/// Legacy loose shape of ParseVertexIdListStrict: any parse error
/// collapses to an empty result. Prefer the strict variant — it says
/// *why* the list was rejected.
std::vector<VertexId> ParseVertexIdList(const std::string& csv);

/// Writes "u v [w]" lines (u < v, dense ids) plus a '#' header. Output
/// round-trips through LoadSnapEdgeList (note the loader's first-seen id
/// remap: ids survive the round trip only when already dense in
/// first-seen order). The weighted-edge-list dialect emitted here is
/// specified in docs/formats.md; for a binary artifact that preserves
/// the CSR arrays byte-for-byte, use SaveSnapshot (graph/snapshot.h).
Status WriteEdgeList(const CsrGraph& graph, const std::string& path);

/// Stream variant of WriteEdgeList.
void WriteEdgeList(const CsrGraph& graph, std::ostream& out);

}  // namespace mhbc
