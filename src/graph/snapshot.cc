#include "graph/snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define MHBC_SNAPSHOT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MHBC_SNAPSHOT_HAS_MMAP 0
#endif

namespace mhbc {

namespace {

// Byte-level layout (docs/formats.md is the normative spec):
//
//   [ 0..7 ]  magic "MHBCSNAP"
//   [ 8..11]  u32  format version (kSnapshotFormatVersion; v1 still reads)
//   [12..15]  u32  byte-order marker 0x01020304 (rejects foreign endianness)
//   [16..23]  u64  flags (bit 0: weighted; bit 1, v2 only: directed;
//                  other bits must be zero)
//   [24..31]  u64  num_vertices n
//   [32..39]  u64  adjacency length (2m undirected, m directed)
//   [40..47]  u64  name length in bytes
//   [48..63]  reserved, zero
//   [64.. ]   name bytes, zero-padded to a multiple of 8
//             offsets array, (n+1) * u64
//             adjacency array, u32 entries, zero-padded to a multiple of 8
//             weight array, f64 entries (present iff weighted)
//   [last 8]  u64  FNV-1a 64 checksum of every preceding byte
//
// Every section starts 8-byte aligned (the header is 64 bytes and each
// section is padded), so an mmap'ed file can serve the arrays in place.
// Directed snapshots store the out-CSR only; the loader rebuilds the
// in-CSR transpose (CsrGraph owns it even for zero-copy views).

constexpr char kMagic[8] = {'M', 'H', 'B', 'C', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kByteOrderMarker = 0x01020304u;
constexpr std::uint64_t kFlagWeighted = 1;
constexpr std::uint64_t kFlagDirected = 2;
constexpr std::size_t kHeaderBytes = 64;

constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Fnv1a(std::uint64_t hash, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::size_t PadTo8(std::size_t len) { return (len + 7) & ~std::size_t{7}; }

template <typename T>
T ReadScalar(const unsigned char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

/// Streams bytes to a file while folding them into the running checksum.
class ChecksumWriter {
 public:
  explicit ChecksumWriter(std::ofstream& out) : out_(out) {}

  void Write(const void* data, std::size_t len) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(len));
    hash_ = Fnv1a(hash_, data, len);
  }

  void Pad(std::size_t len) {
    static constexpr char kZeros[8] = {};
    MHBC_DCHECK(len <= sizeof(kZeros));
    Write(kZeros, len);
  }

  std::uint64_t hash() const { return hash_; }

 private:
  std::ofstream& out_;
  std::uint64_t hash_ = kFnvOffsetBasis;
};

/// Validated section offsets of one snapshot file.
struct Layout {
  std::uint32_t version = 0;
  bool weighted = false;
  bool directed = false;
  std::uint64_t num_vertices = 0;
  std::uint64_t adjacency_len = 0;
  std::uint64_t name_len = 0;
  std::size_t name_off = 0;
  std::size_t offsets_off = 0;
  std::size_t adjacency_off = 0;
  std::size_t weights_off = 0;  // 0 when unweighted
  std::size_t checksum_off = 0;
};

Status ParseLayout(const unsigned char* data, std::uint64_t file_size,
                   const std::string& path, Layout* layout) {
  const std::string where = "snapshot '" + path + "': ";
  if (file_size < kHeaderBytes + sizeof(std::uint64_t)) {
    return Status::InvalidArgument(where + "file too small (" +
                                   std::to_string(file_size) +
                                   " bytes) to hold a snapshot header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(where + "bad magic (not a .mhbc snapshot)");
  }
  layout->version = ReadScalar<std::uint32_t>(data + 8);
  const auto byte_order = ReadScalar<std::uint32_t>(data + 12);
  if (byte_order != kByteOrderMarker) {
    return Status::InvalidArgument(
        where + "byte-order marker mismatch (file written on, or read by, a "
                "big-endian machine; snapshots are little-endian)");
  }
  if (layout->version < kSnapshotMinReadVersion ||
      layout->version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        where + "format version " + std::to_string(layout->version) +
        ", but this build reads versions " +
        std::to_string(kSnapshotMinReadVersion) + ".." +
        std::to_string(kSnapshotFormatVersion) +
        " (re-convert the source dataset; see docs/formats.md)");
  }
  const auto flags = ReadScalar<std::uint64_t>(data + 16);
  // The directed bit exists only from v2 on; in a v1 file it is an
  // unknown bit like any other.
  const std::uint64_t known_flags =
      layout->version >= 2 ? (kFlagWeighted | kFlagDirected) : kFlagWeighted;
  if ((flags & ~known_flags) != 0) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%llx",
                  static_cast<unsigned long long>(flags & ~known_flags));
    return Status::InvalidArgument(
        where + "unknown flag bits set: " + hex + " (version " +
        std::to_string(layout->version) + " defines" +
        (layout->version >= 2 ? " 0x1 weighted, 0x2 directed)"
                              : " 0x1 weighted)"));
  }
  layout->weighted = (flags & kFlagWeighted) != 0;
  layout->directed = (flags & kFlagDirected) != 0;
  layout->num_vertices = ReadScalar<std::uint64_t>(data + 24);
  layout->adjacency_len = ReadScalar<std::uint64_t>(data + 32);
  layout->name_len = ReadScalar<std::uint64_t>(data + 40);

  const std::uint64_t n = layout->num_vertices;
  if (n == 0 || n > static_cast<std::uint64_t>(kInvalidVertex)) {
    return Status::InvalidArgument(where + "vertex count " + std::to_string(n) +
                                   " out of range");
  }
  if (!layout->directed && layout->adjacency_len % 2 != 0) {
    return Status::InvalidArgument(
        where + "odd adjacency length (undirected CSR stores 2m entries)");
  }
  // Every section fits inside the file, so bound each length field by the
  // file size up front — this keeps the 'expected' computation below free
  // of u64 wraparound, which a crafted header could otherwise use to
  // sneak oversized sections past the size check.
  if (layout->name_len > file_size || n > file_size / sizeof(EdgeId) ||
      layout->adjacency_len > file_size / sizeof(VertexId)) {
    return Status::InvalidArgument(
        where + "header lengths exceed the file size (corrupt snapshot)");
  }
  // Assemble the expected byte budget; every term is checked against the
  // actual file size, which rejects truncation before any array access.
  const std::uint64_t name_padded = PadTo8(layout->name_len);
  const std::uint64_t offsets_bytes = (n + 1) * sizeof(EdgeId);
  const std::uint64_t adjacency_bytes =
      PadTo8(layout->adjacency_len * sizeof(VertexId));
  const std::uint64_t weight_bytes =
      layout->weighted ? layout->adjacency_len * sizeof(double) : 0;
  const std::uint64_t expected = kHeaderBytes + name_padded + offsets_bytes +
                                 adjacency_bytes + weight_bytes +
                                 sizeof(std::uint64_t);
  if (expected != file_size) {
    return Status::InvalidArgument(
        where + "size mismatch: header describes " + std::to_string(expected) +
        " bytes but the file has " + std::to_string(file_size) +
        " (truncated or corrupt)");
  }
  layout->name_off = kHeaderBytes;
  layout->offsets_off = kHeaderBytes + static_cast<std::size_t>(name_padded);
  layout->adjacency_off =
      layout->offsets_off + static_cast<std::size_t>(offsets_bytes);
  layout->weights_off =
      layout->weighted
          ? layout->adjacency_off + static_cast<std::size_t>(adjacency_bytes)
          : 0;
  layout->checksum_off = static_cast<std::size_t>(file_size) - sizeof(std::uint64_t);

  // Structural spot check: the offsets array must span exactly the
  // adjacency array (full invariants are the writer's job; the checksum
  // covers corruption).
  const auto first_offset =
      ReadScalar<EdgeId>(data + layout->offsets_off);
  const auto last_offset = ReadScalar<EdgeId>(
      data + layout->offsets_off + static_cast<std::size_t>(n) * sizeof(EdgeId));
  if (first_offset != 0 || last_offset != layout->adjacency_len) {
    return Status::InvalidArgument(where +
                                   "offset array inconsistent with adjacency "
                                   "length (corrupt snapshot)");
  }
  return Status::Ok();
}

Status VerifyChecksum(const unsigned char* data, const Layout& layout,
                      const std::string& path) {
  const std::uint64_t computed =
      Fnv1a(kFnvOffsetBasis, data, layout.checksum_off);
  const auto stored = ReadScalar<std::uint64_t>(data + layout.checksum_off);
  if (computed != stored) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "': checksum mismatch (corrupt file)");
  }
  return Status::Ok();
}

CsrGraph ViewFromLayout(const unsigned char* data, const Layout& layout) {
  const std::size_t n = static_cast<std::size_t>(layout.num_vertices);
  const std::size_t adj = static_cast<std::size_t>(layout.adjacency_len);
  std::span<const EdgeId> offsets{
      reinterpret_cast<const EdgeId*>(data + layout.offsets_off), n + 1};
  std::span<const VertexId> neighbors{
      reinterpret_cast<const VertexId*>(data + layout.adjacency_off), adj};
  std::span<const double> weights;
  if (layout.weighted) {
    weights = {reinterpret_cast<const double*>(data + layout.weights_off), adj};
  }
  std::string name(reinterpret_cast<const char*>(data + layout.name_off),
                   static_cast<std::size_t>(layout.name_len));
  return CsrGraph::WrapExternal(offsets, neighbors, weights, std::move(name),
                                layout.directed);
}

StatusOr<std::vector<unsigned char>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::vector<unsigned char> buffer(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(buffer.data()), size)) {
    return Status::IoError("short read on '" + path + "'");
  }
  return buffer;
}

}  // namespace

Status SaveSnapshot(const CsrGraph& graph, const std::string& path) {
  if (graph.num_vertices() == 0) {
    return Status::InvalidArgument("cannot snapshot an empty graph");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  ChecksumWriter writer(out);

  const std::string& name = graph.name();
  const std::uint64_t version = kSnapshotFormatVersion;
  const std::uint64_t flags = (graph.weighted() ? kFlagWeighted : 0) |
                              (graph.directed() ? kFlagDirected : 0);
  const std::uint64_t n = graph.num_vertices();
  const auto adjacency = graph.raw_adjacency();
  const std::uint64_t adjacency_len = adjacency.size();
  const std::uint64_t name_len = name.size();

  unsigned char header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  const auto v32 = static_cast<std::uint32_t>(version);
  std::memcpy(header + 8, &v32, sizeof(v32));
  std::memcpy(header + 12, &kByteOrderMarker, sizeof(kByteOrderMarker));
  std::memcpy(header + 16, &flags, sizeof(flags));
  std::memcpy(header + 24, &n, sizeof(n));
  std::memcpy(header + 32, &adjacency_len, sizeof(adjacency_len));
  std::memcpy(header + 40, &name_len, sizeof(name_len));
  writer.Write(header, sizeof(header));

  writer.Write(name.data(), name.size());
  writer.Pad(PadTo8(name.size()) - name.size());

  const auto offsets = graph.raw_offsets();
  writer.Write(offsets.data(), offsets.size_bytes());
  writer.Write(adjacency.data(), adjacency.size_bytes());
  writer.Pad(PadTo8(adjacency.size_bytes()) - adjacency.size_bytes());
  if (graph.weighted()) {
    const auto weights = graph.raw_weights();
    writer.Write(weights.data(), weights.size_bytes());
  }

  const std::uint64_t checksum = writer.hash();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::Ok();
}

StatusOr<CsrGraph> LoadSnapshotBuffered(const std::string& path,
                                        const SnapshotOptions& options) {
  auto buffer = ReadWholeFile(path);
  if (!buffer.ok()) return buffer.status();
  const unsigned char* data = buffer.value().data();
  Layout layout;
  MHBC_RETURN_IF_ERROR(ParseLayout(data, buffer.value().size(), path, &layout));
  if (options.verify_checksum) {
    MHBC_RETURN_IF_ERROR(VerifyChecksum(data, layout, path));
  }
  const std::size_t n = static_cast<std::size_t>(layout.num_vertices);
  const std::size_t adj = static_cast<std::size_t>(layout.adjacency_len);
  std::vector<EdgeId> offsets(n + 1);
  std::memcpy(offsets.data(), data + layout.offsets_off,
              offsets.size() * sizeof(EdgeId));
  std::vector<VertexId> neighbors(adj);
  std::memcpy(neighbors.data(), data + layout.adjacency_off,
              neighbors.size() * sizeof(VertexId));
  std::vector<double> weights;
  if (layout.weighted) {
    weights.resize(adj);
    std::memcpy(weights.data(), data + layout.weights_off,
                weights.size() * sizeof(double));
  }
  std::string name(reinterpret_cast<const char*>(data + layout.name_off),
                   static_cast<std::size_t>(layout.name_len));
  return CsrGraph::AdoptVerbatim(std::move(offsets), std::move(neighbors),
                                 std::move(weights), std::move(name),
                                 layout.directed);
}

MappedGraph::~MappedGraph() {
#if MHBC_SNAPSHOT_HAS_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
#endif
}

MappedGraph::MappedGraph(MappedGraph&& other) noexcept
    : graph_(std::move(other.graph_)),
      map_base_(other.map_base_),
      map_len_(other.map_len_) {
  other.map_base_ = nullptr;
  other.map_len_ = 0;
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this == &other) return *this;
#if MHBC_SNAPSHOT_HAS_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
#endif
  graph_ = std::move(other.graph_);
  map_base_ = other.map_base_;
  map_len_ = other.map_len_;
  other.map_base_ = nullptr;
  other.map_len_ = 0;
  return *this;
}

StatusOr<MappedGraph> LoadSnapshotMapped(const std::string& path,
                                         const SnapshotOptions& options) {
#if MHBC_SNAPSHOT_HAS_MMAP
  if (!options.force_buffered) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IoError("cannot open '" + path + "' for reading");
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IoError("cannot stat '" + path + "'");
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the file alive
    if (base != MAP_FAILED) {
      const auto* data = static_cast<const unsigned char*>(base);
      Layout layout;
      Status status = ParseLayout(data, size, path, &layout);
      if (status.ok() && options.verify_checksum) {
        status = VerifyChecksum(data, layout, path);
      }
      if (!status.ok()) {
        ::munmap(base, size);
        return status;
      }
      MappedGraph mapped;
      mapped.map_base_ = base;
      mapped.map_len_ = size;
      mapped.graph_ = ViewFromLayout(data, layout);
      return mapped;
    }
    // mmap refused (unusual filesystem, resource limit): fall through to
    // the buffered loader, which yields a bit-identical owning graph.
  }
#endif
  auto buffered = LoadSnapshotBuffered(path, options);
  if (!buffered.ok()) return buffered.status();
  MappedGraph mapped;
  mapped.graph_ = std::move(buffered).value();
  return mapped;
}

StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path) {
  auto buffer = ReadWholeFile(path);
  if (!buffer.ok()) return buffer.status();
  const unsigned char* data = buffer.value().data();
  Layout layout;
  MHBC_RETURN_IF_ERROR(ParseLayout(data, buffer.value().size(), path, &layout));
  SnapshotInfo info;
  info.version = layout.version;
  info.weighted = layout.weighted;
  info.directed = layout.directed;
  info.num_vertices = layout.num_vertices;
  info.num_edges =
      layout.directed ? layout.adjacency_len : layout.adjacency_len / 2;
  info.name.assign(reinterpret_cast<const char*>(data + layout.name_off),
                   static_cast<std::size_t>(layout.name_len));
  info.file_bytes = buffer.value().size();
  info.stored_checksum = ReadScalar<std::uint64_t>(data + layout.checksum_off);
  info.checksum_ok =
      Fnv1a(kFnvOffsetBasis, data, layout.checksum_off) == info.stored_checksum;
  return info;
}

}  // namespace mhbc
