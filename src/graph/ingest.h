#pragma once

#include <string>

#include "graph/csr_graph.h"
#include "graph/snapshot.h"
#include "util/status.h"

/// \file
/// GraphSource — the multi-format ingestion front-end.
///
/// Every downstream layer (engine sessions, benches, CLI tools, examples)
/// used to funnel through the SNAP text parser and re-pay parse +
/// id-remap + CSR-build on every run. OpenGraphSource replaces that single
/// path: it dispatches by extension/content sniffing across SNAP edge
/// lists, weighted edge lists, Matrix Market `.mtx` files, and `.mhbc`
/// binary snapshots (graph/snapshot.h), runs an explicit preprocessing
/// pipeline (duplicate/self-loop handling is inherent to GraphBuilder;
/// largest-component extraction and degree-descending relabeling are
/// opt-in), and — when IngestOptions::cache_dir is set — transparently
/// maintains a snapshot cache so any text dataset is parsed once and
/// mmap-loaded forever after. Accepted formats and the preprocessing
/// flags are documented in docs/formats.md.

namespace mhbc {

/// On-disk formats OpenGraphSource understands.
enum class GraphFileFormat {
  /// Decide from the file extension, then the leading bytes (SniffGraphFormat).
  kAuto,
  /// SNAP whitespace edge list, strictly two columns ('#' comments).
  kEdgeList,
  /// Edge list whose optional third column is a positive edge weight.
  kWeightedEdgeList,
  /// Matrix Market coordinate format (real/integer/pattern,
  /// general/symmetric); the matrix is read as an adjacency matrix.
  kMatrixMarket,
  /// Binary CSR snapshot (graph/snapshot.h, docs/formats.md).
  kSnapshot,
};

/// Stable lowercase name for tables/CLIs ("auto", "edge-list", ...).
const char* GraphFileFormatName(GraphFileFormat format);

/// Resolves kAuto for a file: `.mhbc` / `.mtx` / `.mm` extensions decide
/// immediately; otherwise the leading bytes are sniffed (snapshot magic,
/// "%%MatrixMarket" banner), defaulting to kWeightedEdgeList — under
/// kAuto a third numeric column is always treated as a weight. Never
/// returns kAuto; unreadable files sniff as kWeightedEdgeList and fail
/// with the real I/O error at load time.
GraphFileFormat SniffGraphFormat(const std::string& path);

/// Ingestion pipeline configuration. Preprocessing order is fixed:
/// parse -> largest-component extraction -> degree relabel -> snapshot
/// cache write. The cache key covers the source file identity (path,
/// size, mtime) and every option that changes the resulting graph, so a
/// cache entry is only ever served for the exact pipeline that wrote it.
struct IngestOptions {
  GraphFileFormat format = GraphFileFormat::kAuto;
  /// Ingest text formats as a *directed* graph: edge-list lines stay the
  /// arc u→v, Matrix Market entries the arc row→col (a `symmetric` MM
  /// file contributes both orientations). Off by default — the historical
  /// symmetrizing load, which GraphSource::mirrored_pairs() now
  /// quantifies instead of hiding. Snapshots carry their own directed
  /// flag and ignore this option.
  bool directed = false;
  /// Keep only the largest connected component (no-op when connected;
  /// weakly connected on directed graphs).
  bool largest_component_only = false;
  /// Relabel vertices degree-descending for CSR cache locality
  /// (DegreeDescendingPermutation). Changes vertex ids!
  bool degree_relabel = false;
  /// When non-empty: maintain `.mhbc` snapshots of ingested text datasets
  /// under this directory (created on demand) and mmap-load them on every
  /// later open. Corrupt/stale cache entries are rebuilt, not fatal.
  std::string cache_dir;
  /// Serve snapshots zero-copy via mmap where available (else buffered).
  bool prefer_mmap = true;
  /// Verify snapshot checksums on load (see SnapshotOptions).
  bool verify_checksum = true;
};

/// An opened graph plus where it came from. Owns the backing storage —
/// either an owning CsrGraph or the live mmap of a snapshot — so keep the
/// GraphSource alive for as long as graph() (or anything referencing it,
/// e.g. a BetweennessEngine) is in use. Movable, not copyable.
class GraphSource {
 public:
  GraphSource() = default;
  GraphSource(GraphSource&&) noexcept = default;
  GraphSource& operator=(GraphSource&&) noexcept = default;

  /// The ingested graph (post-preprocessing).
  const CsrGraph& graph() const {
    return use_mapped_ ? mapped_.graph() : owned_;
  }

  /// True when graph() is a zero-copy view over an mmap'ed snapshot.
  bool zero_copy() const { return use_mapped_ && mapped_.zero_copy(); }

  /// True when the graph was served from IngestOptions::cache_dir (or a
  /// pre-existing registry cache file) instead of being parsed/built.
  bool cache_hit() const { return cache_hit_; }

  /// The snapshot file backing this source: the opened `.mhbc` file, the
  /// cache entry served or written, or empty when no snapshot exists.
  const std::string& snapshot_path() const { return snapshot_path_; }

  /// Format of the file actually opened (never kAuto).
  GraphFileFormat source_format() const { return format_; }

  /// Directedness of the ingested graph: true when IngestOptions::directed
  /// forced a directed text load or the opened snapshot carries the v2
  /// directed flag. Mirrors graph().directed(); recorded here so callers
  /// holding only the source metadata can report it.
  bool directed() const { return graph().directed(); }

  /// Mirrored-pair count detected by the text parse: unordered pairs that
  /// appeared in both orientations (see EdgeListStats::mirrored_pairs). A
  /// non-zero count on an undirected load measures how much orientation
  /// the symmetrization discarded — the loader's directedness-detection
  /// signal. Zero for snapshots and cache hits (the parse never ran).
  std::size_t mirrored_pairs() const { return mirrored_pairs_; }

  /// Plumbing factory: wraps an already-built owning graph (used by the
  /// dataset registry and as the no-cache fallback).
  static GraphSource FromOwned(CsrGraph graph, GraphFileFormat origin);

  /// Plumbing factory: opens `path` as a snapshot (mmap preferred per
  /// `options`) and tags the result. Prefer OpenGraphSource.
  static StatusOr<GraphSource> FromSnapshotFile(const std::string& path,
                                                const SnapshotOptions& options,
                                                bool cache_hit,
                                                GraphFileFormat origin);

 private:
  friend StatusOr<GraphSource> OpenGraphSource(const std::string& path,
                                               const IngestOptions& options);

  MappedGraph mapped_;
  CsrGraph owned_;
  bool use_mapped_ = false;
  bool cache_hit_ = false;
  std::size_t mirrored_pairs_ = 0;
  std::string snapshot_path_;
  GraphFileFormat format_ = GraphFileFormat::kAuto;
};

/// Opens `path` through the ingestion pipeline described in the file
/// comment. Errors surface as the underlying parser/loader Status.
StatusOr<GraphSource> OpenGraphSource(const std::string& path,
                                      const IngestOptions& options = IngestOptions());

/// Loads a Matrix Market coordinate file: real/integer values become
/// positive edge weights (all-1 values yield an unweighted graph),
/// pattern entries unweighted edges; self-loops are dropped; the matrix
/// must be square. Undirected (default): duplicate/general-format mirror
/// entries merge. Directed: each entry is the arc row→col; a `symmetric`
/// file contributes both orientations of every off-diagonal entry.
StatusOr<CsrGraph> LoadMatrixMarket(const std::string& path,
                                    bool directed = false);

/// Writes `graph` as Matrix Market coordinate (`real` when weighted,
/// `pattern` otherwise). Undirected graphs use the `symmetric` banner
/// with lower-triangle entries (byte-stable across round trips); directed
/// graphs use the `general` banner with one entry per arc row=u, col=v in
/// CSR order. Output round-trips through LoadMatrixMarket (pass
/// directed=true for a `general` file written from a directed graph).
Status WriteMatrixMarket(const CsrGraph& graph, const std::string& path);

}  // namespace mhbc
