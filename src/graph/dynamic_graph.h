#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.h"
#include "util/status.h"

/// \file
/// Mutable graph layered over an immutable CsrGraph base.
///
/// Every layer of the serving stack (SPD kernels, samplers, the engine)
/// consumes a frozen CsrGraph, and the MH estimators are exactly the family
/// that can cheaply re-estimate after small graph edits instead of
/// recomputing from scratch. DynamicGraph is the mutation substrate that
/// makes the streaming-update scenario possible without giving up the flat
/// CSR arrays the per-sample O(m) pass lives on: edits accumulate in an
/// O(delta)-sized *overlay* (per-vertex sorted add/remove lists plus a
/// count of appended vertices) on top of the base CSR, adjacency reads
/// compose base-minus-removed-plus-added on the fly, and Compact() folds
/// the overlay back into a fresh CSR once it crosses a size threshold —
/// the classic base+delta / log-structured design of dynamic graph stores.
///
/// The composed adjacency is served behind the same neighbor-range shape
/// CsrGraph exposes: neighbors(v) returns an ascending-ordered forward
/// range (begin/end iterators usable in range-for), so generic traversal
/// code templated on "a graph with neighbors(v)" runs on either type.
/// Iteration over vertex v costs O(degree_base(v) + overlay(v)).
///
/// The estimators themselves never read the overlay: the engine applies a
/// GraphDelta here, materializes the post-edit CSR via Csr() (which
/// compacts), and re-targets its kernels at the result — see
/// BetweennessEngine::ApplyDelta for the cache-invalidation story.

namespace mhbc {

/// One edit operation inside a GraphDelta.
struct GraphEdit {
  enum class Kind : std::uint8_t {
    /// Insert edge {u,v} (must not exist). On a directed base the edit is
    /// the single arc u→v; the reciprocal v→u stays independent.
    kAddEdge,
    /// Delete edge {u,v} (must exist); the arc u→v on a directed base.
    kRemoveEdge,
    kAddVertex,  ///< append one isolated vertex (u, v unused)
  };
  Kind kind = Kind::kAddEdge;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  /// kAddEdge: the weight to insert (1.0 on unweighted graphs). On the
  /// *resolved* edit list DynamicGraph::Apply returns, kRemoveEdge entries
  /// carry the weight the removed edge had — the invalidation test in
  /// DependencyOracle needs it without consulting the pre-edit graph.
  double weight = 1.0;
};

/// A batched edit script: an ordered list of edge/vertex edits applied
/// atomically (all ops validate against the sequentially-edited state, or
/// none apply). Build programmatically via the fluent adders or parse one
/// from the text format (ParseEditScript; spec in docs/formats.md).
class GraphDelta {
 public:
  /// Appends "insert undirected edge {u,v} with weight w". Weights other
  /// than 1.0 are only valid against weighted graphs.
  GraphDelta& AddEdge(VertexId u, VertexId v, double weight = 1.0);

  /// Appends "delete undirected edge {u,v}".
  GraphDelta& RemoveEdge(VertexId u, VertexId v);

  /// Appends `count` "append one isolated vertex" ops. New vertices get
  /// the next dense ids; later ops in the same delta may reference them.
  GraphDelta& AddVertices(std::uint32_t count = 1);

  bool empty() const { return edits_.empty(); }
  std::size_t size() const { return edits_.size(); }
  const std::vector<GraphEdit>& edits() const { return edits_; }
  void clear() { edits_.clear(); }

 private:
  std::vector<GraphEdit> edits_;
};

/// Parses the text edit-script format (docs/formats.md):
///   add <u> <v> [w]   |   remove <u> <v>   |   addvertex [count]
/// plus blank lines and '#' comments. Errors name the offending line.
StatusOr<GraphDelta> ParseEditScript(const std::string& path);

/// ParseEditScript over in-memory text; `where` labels error messages.
StatusOr<GraphDelta> ParseEditScriptText(const std::string& text,
                                         const std::string& where);

/// Writes `delta` in the ParseEditScript text format (round-trips).
Status WriteEditScript(const GraphDelta& delta, const std::string& path);

/// Tuning knobs for DynamicGraph.
struct DynamicGraphOptions {
  /// Apply() compacts automatically once the overlay holds more than
  /// max(min_compact_edits, compact_fraction * 2m_base) directed entries —
  /// past that point composed reads lose their O(deg + small-delta) shape
  /// and a rebuild is cheaper than carrying the overlay.
  std::size_t min_compact_edits = 4096;
  double compact_fraction = 0.25;
};

/// A CsrGraph base plus an edge-delta overlay. See file comment.
///
/// Like the rest of the graph layer this type is thread-compatible, not
/// thread-safe: concurrent readers are fine between mutations, but Apply /
/// Compact require exclusive access.
class DynamicGraph {
 public:
  /// Takes the starting graph by value (move in to avoid the copy). A
  /// *view* base (CsrGraph::WrapExternal) is accepted; its external arrays
  /// must stay alive until the first Compact() replaces them with owned
  /// storage.
  explicit DynamicGraph(CsrGraph base,
                        DynamicGraphOptions options = DynamicGraphOptions());

  /// Applies `delta` atomically: every op is validated against the
  /// sequentially-edited state first (duplicate inserts, missing removals,
  /// self-loops, out-of-range ids, non-1.0 weights on an unweighted graph
  /// all fail with InvalidArgument), and on any failure the graph is left
  /// untouched. On success the edit epoch advances by one and, when
  /// `resolved` is non-null, it receives the applied ops with kRemoveEdge
  /// weights filled in from the pre-edit state (see GraphEdit::weight).
  /// May auto-compact per DynamicGraphOptions.
  Status Apply(const GraphDelta& delta,
               std::vector<GraphEdit>* resolved = nullptr);

  /// Single-op conveniences over Apply.
  Status AddEdge(VertexId u, VertexId v, double weight = 1.0);
  Status RemoveEdge(VertexId u, VertexId v);
  /// Appends one isolated vertex and returns its id.
  VertexId AddVertex();

  /// Current vertex count (base + appended).
  VertexId num_vertices() const {
    return base_.num_vertices() + extra_vertices_;
  }

  /// Current edge count: undirected pairs, or arcs on a directed base.
  std::uint64_t num_edges() const { return num_edges_; }

  /// True when edges carry weights (fixed by the base graph).
  bool weighted() const { return base_.weighted(); }

  /// True when edits are directed arcs (fixed by the base graph). The
  /// overlay then stores only the out-side of each arc, and every
  /// adjacency read below is an *out*-adjacency read.
  bool directed() const { return base_.directed(); }

  /// Composed (out-)degree of v: base degree minus removed plus added.
  std::uint32_t degree(VertexId v) const;

  /// True if {u,v} (the arc u→v when directed) is an edge of the
  /// composed graph.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Weight of composed edge {u,v} (arc u→v when directed); requires the
  /// edge to exist. Unweighted graphs report 1.0.
  double EdgeWeight(VertexId u, VertexId v) const;

  /// One composed neighbor: id plus edge weight (1.0 when unweighted).
  struct Neighbor {
    VertexId id;
    double weight;
  };

  /// Forward iterator merging the base CSR slice (minus removed edges)
  /// with the overlay's added list, in ascending neighbor id — the same
  /// order a compacted CSR would serve.
  class NeighborIterator {
   public:
    using value_type = Neighbor;
    using difference_type = std::ptrdiff_t;

    Neighbor operator*() const;
    NeighborIterator& operator++();
    bool operator!=(const NeighborIterator& other) const;
    bool operator==(const NeighborIterator& other) const {
      return !(*this != other);
    }

   private:
    friend class DynamicGraph;
    void SkipRemoved();

    std::span<const VertexId> base_ids_;
    std::span<const double> base_weights_;  // empty when unweighted
    std::span<const VertexId> removed_;
    std::span<const Neighbor> added_;
    std::size_t base_pos_ = 0;
    std::size_t removed_pos_ = 0;
    std::size_t added_pos_ = 0;
  };

  /// Range-for compatible neighbor range (the CsrGraph::neighbors shape,
  /// with weights riding along). O(deg_base + overlay(v)) to traverse.
  class NeighborRange {
   public:
    NeighborIterator begin() const { return begin_; }
    NeighborIterator end() const { return end_; }

   private:
    friend class DynamicGraph;
    NeighborIterator begin_;
    NeighborIterator end_;
  };

  /// Composed (out-)neighbors of v in ascending id order.
  NeighborRange neighbors(VertexId v) const;

  /// Folds the overlay into a fresh owned CSR base and clears it. O(n+m).
  /// No-op when the overlay is empty and the base already reflects every
  /// edit.
  void Compact();

  /// The composed graph as a flat CSR (compacts first when edits are
  /// pending). The returned reference stays valid across later edits —
  /// it is the internal base object — but its *contents* change on the
  /// next Compact; callers holding raw array spans must re-fetch them
  /// after every mutation.
  const CsrGraph& Csr();

  /// The base CSR as of the last compaction (read-only; may lag the
  /// composed graph by the overlay).
  const CsrGraph& base() const { return base_; }

  /// Directed overlay entries currently pending (adds + removes, both
  /// directions counted — the quantity the compaction threshold tests).
  std::size_t overlay_edits() const { return overlay_edits_; }

  /// Number of successful non-empty Apply batches so far. Epoch k+1's
  /// composed graph is the input for epoch-tagged cache invalidation
  /// upstream (DependencyOracle, BetweennessEngine).
  std::uint64_t epoch() const { return epoch_; }

  const DynamicGraphOptions& options() const { return options_; }

 private:
  /// Per-vertex overlay: ids removed from the base slice and neighbors
  /// added on top, both sorted ascending by id.
  struct VertexOverlay {
    std::vector<VertexId> removed;
    std::vector<Neighbor> added;
  };

  const VertexOverlay* overlay_for(VertexId v) const;
  /// True if {u,v} is an edge of the composed graph; u's overlay entry is
  /// passed in so staged (pre-commit) lookups can reuse it.
  static bool ComposedHasEdge(const CsrGraph& base, const VertexOverlay* ou,
                              VertexId u, VertexId v);
  /// Applies one validated directed half-edge to `side`.
  static void AddDirected(VertexOverlay* side, VertexId to, double weight);
  static bool RemoveDirected(const CsrGraph& base, VertexOverlay* side,
                             VertexId from, VertexId to);

  CsrGraph base_;
  DynamicGraphOptions options_;
  std::unordered_map<VertexId, VertexOverlay> overlay_;
  std::uint32_t extra_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  std::size_t overlay_edits_ = 0;
  std::uint64_t epoch_ = 0;
  bool dirty_ = false;
};

/// Generates a deterministic random edit script of `num_edits` ops that is
/// valid against `graph`: a mix of edge removals (uniform over existing
/// edges), edge insertions (uniform over non-edges), and occasional
/// vertex-append-plus-attachment, all internally consistent in sequence.
/// Shared by the equivalence test harness and bench_e21 so the two sweep
/// the same edit distribution. Graphs with fewer than 2 vertices get pure
/// vertex appends.
GraphDelta MakeRandomEditScript(const CsrGraph& graph, std::size_t num_edits,
                                std::uint64_t seed);

}  // namespace mhbc
