#include "graph/dynamic_graph.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "util/rng.h"

namespace mhbc {

// -------------------------------------------------------------- GraphDelta

GraphDelta& GraphDelta::AddEdge(VertexId u, VertexId v, double weight) {
  edits_.push_back(GraphEdit{GraphEdit::Kind::kAddEdge, u, v, weight});
  return *this;
}

GraphDelta& GraphDelta::RemoveEdge(VertexId u, VertexId v) {
  edits_.push_back(GraphEdit{GraphEdit::Kind::kRemoveEdge, u, v, 1.0});
  return *this;
}

GraphDelta& GraphDelta::AddVertices(std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    edits_.push_back(GraphEdit{GraphEdit::Kind::kAddVertex, kInvalidVertex,
                               kInvalidVertex, 1.0});
  }
  return *this;
}

// -------------------------------------------------------- edit-script text

namespace {

/// Strips a '#' comment and surrounding whitespace.
std::string CleanLine(const std::string& raw) {
  std::string line = raw;
  const std::string::size_type hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const std::string::size_type first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const std::string::size_type last = line.find_last_not_of(" \t\r\n");
  return line.substr(first, last - first + 1);
}

/// Parses one non-negative vertex id token; false on malformed input.
bool ParseVertex(std::istringstream& tokens, VertexId* out) {
  long long value = 0;
  if (!(tokens >> value)) return false;
  if (value < 0 || value >= static_cast<long long>(kInvalidVertex)) {
    return false;
  }
  *out = static_cast<VertexId>(value);
  return true;
}

}  // namespace

StatusOr<GraphDelta> ParseEditScriptText(const std::string& text,
                                         const std::string& where) {
  GraphDelta delta;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    const auto fail = [&](const std::string& message) {
      return Status::InvalidArgument(where + ":" + std::to_string(line_no) +
                                     ": " + message);
    };
    std::istringstream tokens(line);
    std::string op;
    tokens >> op;
    std::string trailing;
    if (op == "add") {
      VertexId u, v;
      if (!ParseVertex(tokens, &u) || !ParseVertex(tokens, &v)) {
        return fail("expected: add <u> <v> [w]");
      }
      double weight = 1.0;
      if (tokens >> weight) {
        if (!(weight > 0.0)) return fail("edge weight must be positive");
      } else {
        tokens.clear();  // the weight is optional
      }
      if (tokens >> trailing) return fail("trailing input '" + trailing + "'");
      delta.AddEdge(u, v, weight);
    } else if (op == "remove") {
      VertexId u, v;
      if (!ParseVertex(tokens, &u) || !ParseVertex(tokens, &v)) {
        return fail("expected: remove <u> <v>");
      }
      if (tokens >> trailing) return fail("trailing input '" + trailing + "'");
      delta.RemoveEdge(u, v);
    } else if (op == "addvertex") {
      long long count = 1;
      if (!(tokens >> count)) {
        tokens.clear();  // the count is optional
        count = 1;
      }
      if (count < 1 || count > static_cast<long long>(kInvalidVertex)) {
        return fail("addvertex count out of range");
      }
      if (tokens >> trailing) return fail("trailing input '" + trailing + "'");
      delta.AddVertices(static_cast<std::uint32_t>(count));
    } else {
      return fail("unknown op '" + op +
                  "' (expected add / remove / addvertex)");
    }
  }
  return delta;
}

StatusOr<GraphDelta> ParseEditScript(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open edit script '" + path +
                           "' for reading");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseEditScriptText(text.str(), path);
}

Status WriteEditScript(const GraphDelta& delta, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open edit script '" + path +
                           "' for writing");
  }
  // Full double precision: weights must survive the round trip exactly
  // (Apply's re-add cancel test compares weights bit-for-bit).
  out.precision(17);
  for (const GraphEdit& edit : delta.edits()) {
    switch (edit.kind) {
      case GraphEdit::Kind::kAddEdge:
        out << "add " << edit.u << " " << edit.v;
        if (edit.weight != 1.0) out << " " << edit.weight;
        out << "\n";
        break;
      case GraphEdit::Kind::kRemoveEdge:
        out << "remove " << edit.u << " " << edit.v << "\n";
        break;
      case GraphEdit::Kind::kAddVertex:
        out << "addvertex\n";
        break;
    }
  }
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

// ------------------------------------------------------------ DynamicGraph

DynamicGraph::DynamicGraph(CsrGraph base, DynamicGraphOptions options)
    : base_(std::move(base)),
      options_(options),
      num_edges_(base_.num_edges()) {}

const DynamicGraph::VertexOverlay* DynamicGraph::overlay_for(
    VertexId v) const {
  const auto it = overlay_.find(v);
  return it == overlay_.end() ? nullptr : &it->second;
}

bool DynamicGraph::ComposedHasEdge(const CsrGraph& base,
                                   const VertexOverlay* ou, VertexId u,
                                   VertexId v) {
  if (ou != nullptr) {
    const auto ait = std::lower_bound(
        ou->added.begin(), ou->added.end(), v,
        [](const Neighbor& n, VertexId id) { return n.id < id; });
    if (ait != ou->added.end() && ait->id == v) return true;
    if (std::binary_search(ou->removed.begin(), ou->removed.end(), v)) {
      return false;
    }
  }
  if (u < base.num_vertices() && v < base.num_vertices()) {
    return base.HasEdge(u, v);
  }
  return false;
}

namespace {

/// Inserts `value` into a sorted vector, keeping it sorted. Requires the
/// value to be absent.
template <typename T, typename Less>
void SortedInsert(std::vector<T>* vec, T value, Less less) {
  const auto it = std::lower_bound(vec->begin(), vec->end(), value, less);
  vec->insert(it, std::move(value));
}

}  // namespace

void DynamicGraph::AddDirected(VertexOverlay* side, VertexId to,
                               double weight) {
  SortedInsert(&side->added, Neighbor{to, weight},
               [](const Neighbor& a, const Neighbor& b) { return a.id < b.id; });
}

bool DynamicGraph::RemoveDirected(const CsrGraph& base, VertexOverlay* side,
                                  VertexId from, VertexId to) {
  // An overlay-added half-edge cancels out; a base half-edge is masked.
  const auto ait = std::lower_bound(
      side->added.begin(), side->added.end(), to,
      [](const Neighbor& n, VertexId id) { return n.id < id; });
  if (ait != side->added.end() && ait->id == to) {
    side->added.erase(ait);
    // When the base also holds {from,to} (an edge removed and re-added
    // with a different weight), the mask entry must stay in place.
    return true;
  }
  MHBC_DCHECK(from < base.num_vertices() && to < base.num_vertices());
  SortedInsert(&side->removed, to, std::less<VertexId>());
  return false;
}

Status DynamicGraph::Apply(const GraphDelta& delta,
                           std::vector<GraphEdit>* resolved) {
  if (delta.empty()) {
    if (resolved != nullptr) resolved->clear();
    return Status::Ok();
  }
  // Stage the whole batch on a clone of the overlay state so a failing op
  // leaves the graph untouched (the clone is O(overlay), which the
  // compaction threshold keeps small).
  auto staged = overlay_;
  std::uint32_t staged_extra = extra_vertices_;
  std::uint64_t staged_edges = num_edges_;
  std::size_t staged_overlay = overlay_edits_;
  std::vector<GraphEdit> staged_resolved;
  staged_resolved.reserve(delta.size());

  const auto ids = [](VertexId u, VertexId v) {
    // Built by append: `const char* + std::string&&` trips a GCC 12
    // -Wrestrict false positive in the inlined libstdc++ concatenation.
    std::string out = "{";
    out += std::to_string(u);
    out += ',';
    out += std::to_string(v);
    out += '}';
    return out;
  };
  for (const GraphEdit& edit : delta.edits()) {
    const VertexId n = base_.num_vertices() + staged_extra;
    switch (edit.kind) {
      case GraphEdit::Kind::kAddVertex: {
        if (n == kInvalidVertex) {
          return Status::InvalidArgument("vertex id space exhausted");
        }
        ++staged_extra;
        staged_resolved.push_back(edit);
        break;
      }
      case GraphEdit::Kind::kAddEdge: {
        if (edit.u >= n || edit.v >= n) {
          return Status::InvalidArgument("add " + ids(edit.u, edit.v) +
                                         ": vertex out of range (n=" +
                                         std::to_string(n) + ")");
        }
        if (edit.u == edit.v) {
          return Status::InvalidArgument(
              "add " + ids(edit.u, edit.v) +
              ": self-loops are not allowed (paper graph model)");
        }
        if (!(edit.weight > 0.0)) {
          return Status::InvalidArgument("add " + ids(edit.u, edit.v) +
                                         ": edge weight must be positive");
        }
        if (!weighted() && edit.weight != 1.0) {
          return Status::InvalidArgument(
              "add " + ids(edit.u, edit.v) +
              ": cannot add a weighted edge to an unweighted graph");
        }
        const auto it = staged.find(edit.u);
        const VertexOverlay* ou = it == staged.end() ? nullptr : &it->second;
        if (ComposedHasEdge(base_, ou, edit.u, edit.v)) {
          return Status::InvalidArgument("add " + ids(edit.u, edit.v) +
                                         ": edge already exists");
        }
        // Re-adding a previously-removed base edge at its base weight
        // cancels the mask instead of stacking an added entry.
        auto cancel_mask = [&](VertexId from, VertexId to) {
          VertexOverlay& side = staged[from];
          const auto rit = std::lower_bound(side.removed.begin(),
                                            side.removed.end(), to);
          if (rit != side.removed.end() && *rit == to &&
              base_.EdgeWeight(from, to) == edit.weight) {
            side.removed.erase(rit);
            return true;
          }
          return false;
        };
        const bool masked =
            edit.u < base_.num_vertices() && edit.v < base_.num_vertices() &&
            base_.HasEdge(edit.u, edit.v);
        if (directed()) {
          // One arc, one overlay side: the reciprocal arc v→u is an
          // independent edge and its overlay state stays untouched.
          if (masked && cancel_mask(edit.u, edit.v)) {
            staged_overlay -= 1;
          } else {
            AddDirected(&staged[edit.u], edit.v, edit.weight);
            staged_overlay += 1;
          }
        } else if (masked && cancel_mask(edit.u, edit.v)) {
          const bool other = cancel_mask(edit.v, edit.u);
          MHBC_DCHECK(other);
          staged_overlay -= 2;
        } else {
          AddDirected(&staged[edit.u], edit.v, edit.weight);
          AddDirected(&staged[edit.v], edit.u, edit.weight);
          staged_overlay += 2;
        }
        ++staged_edges;
        staged_resolved.push_back(edit);
        break;
      }
      case GraphEdit::Kind::kRemoveEdge: {
        if (edit.u >= n || edit.v >= n) {
          return Status::InvalidArgument("remove " + ids(edit.u, edit.v) +
                                         ": vertex out of range (n=" +
                                         std::to_string(n) + ")");
        }
        if (edit.u == edit.v) {
          return Status::InvalidArgument("remove " + ids(edit.u, edit.v) +
                                         ": self-loops never exist");
        }
        const auto it = staged.find(edit.u);
        const VertexOverlay* ou = it == staged.end() ? nullptr : &it->second;
        if (!ComposedHasEdge(base_, ou, edit.u, edit.v)) {
          return Status::InvalidArgument("remove " + ids(edit.u, edit.v) +
                                         ": no such edge");
        }
        GraphEdit done = edit;
        // Resolve the weight the edge had before it disappears: the
        // invalidation test upstream needs it graph-free.
        const auto ait =
            ou == nullptr
                ? nullptr
                : [&]() -> const Neighbor* {
                    const auto pos = std::lower_bound(
                        ou->added.begin(), ou->added.end(), edit.v,
                        [](const Neighbor& a, VertexId id) {
                          return a.id < id;
                        });
                    return pos != ou->added.end() && pos->id == edit.v
                               ? &*pos
                               : nullptr;
                  }();
        done.weight =
            ait != nullptr ? ait->weight : base_.EdgeWeight(edit.u, edit.v);
        if (directed()) {
          const bool cancelled =
              RemoveDirected(base_, &staged[edit.u], edit.u, edit.v);
          staged_overlay += cancelled ? -1 : 1;
        } else {
          const bool cancelled_u =
              RemoveDirected(base_, &staged[edit.u], edit.u, edit.v);
          const bool cancelled_v =
              RemoveDirected(base_, &staged[edit.v], edit.v, edit.u);
          MHBC_DCHECK(cancelled_u == cancelled_v);
          staged_overlay += cancelled_u ? -2 : 2;
        }
        --staged_edges;
        staged_resolved.push_back(done);
        break;
      }
    }
  }

  overlay_ = std::move(staged);
  extra_vertices_ = staged_extra;
  num_edges_ = staged_edges;
  overlay_edits_ = staged_overlay;
  ++epoch_;
  dirty_ = true;
  if (resolved != nullptr) *resolved = std::move(staged_resolved);

  const std::size_t threshold = std::max(
      options_.min_compact_edits,
      static_cast<std::size_t>(options_.compact_fraction *
                               static_cast<double>(base_.raw_adjacency().size())));
  if (overlay_edits_ > threshold) Compact();
  return Status::Ok();
}

Status DynamicGraph::AddEdge(VertexId u, VertexId v, double weight) {
  GraphDelta delta;
  delta.AddEdge(u, v, weight);
  return Apply(delta);
}

Status DynamicGraph::RemoveEdge(VertexId u, VertexId v) {
  GraphDelta delta;
  delta.RemoveEdge(u, v);
  return Apply(delta);
}

VertexId DynamicGraph::AddVertex() {
  const VertexId id = num_vertices();
  GraphDelta delta;
  delta.AddVertices(1);
  const Status status = Apply(delta);
  MHBC_DCHECK(status.ok());
  return id;
}

std::uint32_t DynamicGraph::degree(VertexId v) const {
  MHBC_DCHECK(v < num_vertices());
  std::uint32_t deg = v < base_.num_vertices() ? base_.degree(v) : 0;
  if (const VertexOverlay* ov = overlay_for(v)) {
    deg -= static_cast<std::uint32_t>(ov->removed.size());
    deg += static_cast<std::uint32_t>(ov->added.size());
  }
  return deg;
}

bool DynamicGraph::HasEdge(VertexId u, VertexId v) const {
  MHBC_DCHECK(u < num_vertices());
  MHBC_DCHECK(v < num_vertices());
  return ComposedHasEdge(base_, overlay_for(u), u, v);
}

double DynamicGraph::EdgeWeight(VertexId u, VertexId v) const {
  MHBC_DCHECK(HasEdge(u, v));
  if (const VertexOverlay* ov = overlay_for(u)) {
    const auto ait = std::lower_bound(
        ov->added.begin(), ov->added.end(), v,
        [](const Neighbor& n, VertexId id) { return n.id < id; });
    if (ait != ov->added.end() && ait->id == v) return ait->weight;
  }
  return base_.EdgeWeight(u, v);
}

// -------------------------------------------------------- neighbor merging

DynamicGraph::Neighbor DynamicGraph::NeighborIterator::operator*() const {
  const bool has_base = base_pos_ < base_ids_.size();
  const bool has_added = added_pos_ < added_.size();
  MHBC_DCHECK(has_base || has_added);
  if (has_added &&
      (!has_base || added_[added_pos_].id < base_ids_[base_pos_])) {
    return added_[added_pos_];
  }
  return Neighbor{base_ids_[base_pos_],
                  base_weights_.empty() ? 1.0 : base_weights_[base_pos_]};
}

DynamicGraph::NeighborIterator& DynamicGraph::NeighborIterator::operator++() {
  const bool has_base = base_pos_ < base_ids_.size();
  const bool has_added = added_pos_ < added_.size();
  if (has_added &&
      (!has_base || added_[added_pos_].id < base_ids_[base_pos_])) {
    ++added_pos_;
  } else {
    ++base_pos_;
    SkipRemoved();
  }
  return *this;
}

bool DynamicGraph::NeighborIterator::operator!=(
    const NeighborIterator& other) const {
  return base_pos_ != other.base_pos_ || added_pos_ != other.added_pos_;
}

void DynamicGraph::NeighborIterator::SkipRemoved() {
  while (base_pos_ < base_ids_.size()) {
    const VertexId id = base_ids_[base_pos_];
    while (removed_pos_ < removed_.size() && removed_[removed_pos_] < id) {
      ++removed_pos_;
    }
    if (removed_pos_ < removed_.size() && removed_[removed_pos_] == id) {
      ++base_pos_;
      continue;
    }
    break;
  }
}

DynamicGraph::NeighborRange DynamicGraph::neighbors(VertexId v) const {
  MHBC_DCHECK(v < num_vertices());
  NeighborIterator it;
  if (v < base_.num_vertices()) {
    it.base_ids_ = base_.neighbors(v);
    it.base_weights_ = base_.weights(v);
  }
  if (const VertexOverlay* ov = overlay_for(v)) {
    it.removed_ = ov->removed;
    it.added_ = ov->added;
  }
  NeighborRange range;
  range.end_ = it;
  range.end_.base_pos_ = it.base_ids_.size();
  range.end_.removed_pos_ = it.removed_.size();
  range.end_.added_pos_ = it.added_.size();
  it.SkipRemoved();
  range.begin_ = it;
  return range;
}

// --------------------------------------------------------------- compaction

void DynamicGraph::Compact() {
  if (!dirty_) return;
  const VertexId n = num_vertices();
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + degree(v);
  }
  const std::size_t adjacency_len = static_cast<std::size_t>(offsets[n]);
  MHBC_DCHECK(adjacency_len == (directed() ? num_edges_ : 2 * num_edges_));
  std::vector<VertexId> adjacency(adjacency_len);
  std::vector<double> weight_array;
  if (weighted()) weight_array.resize(adjacency_len);
  for (VertexId v = 0; v < n; ++v) {
    std::size_t pos = static_cast<std::size_t>(offsets[v]);
    for (const Neighbor nb : neighbors(v)) {
      adjacency[pos] = nb.id;
      if (weighted()) weight_array[pos] = nb.weight;
      ++pos;
    }
    MHBC_DCHECK(pos == offsets[v + 1]);
  }
  std::string name = base_.name();
  base_ = CsrGraph::AdoptVerbatim(std::move(offsets), std::move(adjacency),
                                  std::move(weight_array), std::move(name),
                                  directed());
  overlay_.clear();
  extra_vertices_ = 0;
  overlay_edits_ = 0;
  dirty_ = false;
}

const CsrGraph& DynamicGraph::Csr() {
  if (dirty_) Compact();
  return base_;
}

// -------------------------------------------------------- random scripts

GraphDelta MakeRandomEditScript(const CsrGraph& graph, std::size_t num_edits,
                                std::uint64_t seed) {
  Rng rng(seed);
  GraphDelta delta;
  // Live model of the composed graph as the script grows, so every op is
  // valid in sequence.
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::unordered_set<std::uint64_t> edge_set;
  // Directed scripts key on the *ordered* pair: the reciprocal arc is a
  // distinct edge, so inserting v→u while u→v exists is valid.
  const bool directed = graph.directed();
  const auto key = [directed](VertexId u, VertexId v) {
    if (!directed && u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  for (const CsrGraph::Edge& edge : graph.CollectEdges()) {
    edges.emplace_back(edge.u, edge.v);
    edge_set.insert(key(edge.u, edge.v));
  }
  VertexId n = graph.num_vertices();
  const bool weighted = graph.weighted();
  const auto random_weight = [&] {
    return weighted ? 0.5 + 1.5 * rng.NextDouble() : 1.0;
  };

  while (delta.size() < num_edits) {
    const double roll = rng.NextDouble();
    if (n < 2 || roll < 0.10) {
      // Append a vertex; attach it so it participates in shortest paths.
      delta.AddVertices(1);
      const VertexId fresh = n++;
      if (fresh > 0 && delta.size() < num_edits) {
        const VertexId anchor = rng.NextVertex(fresh);
        delta.AddEdge(anchor, fresh, random_weight());
        edges.emplace_back(anchor, fresh);
        edge_set.insert(key(anchor, fresh));
      }
    } else if (roll < 0.55 && !edges.empty()) {
      // Remove a uniform existing edge.
      const std::size_t idx =
          static_cast<std::size_t>(rng.NextBounded(edges.size()));
      const auto [u, v] = edges[idx];
      edges[idx] = edges.back();
      edges.pop_back();
      edge_set.erase(key(u, v));
      delta.RemoveEdge(u, v);
    } else {
      // Insert a uniform non-edge (rejection sampling; dense graphs fall
      // back to a vertex append so the script always reaches its length).
      bool inserted = false;
      for (int attempt = 0; attempt < 64 && !inserted; ++attempt) {
        const VertexId u = rng.NextVertex(n);
        const VertexId v = rng.NextVertex(n);
        if (u == v || edge_set.count(key(u, v)) != 0) continue;
        delta.AddEdge(u, v, random_weight());
        edges.emplace_back(u, v);
        edge_set.insert(key(u, v));
        inserted = true;
      }
      if (!inserted) {
        delta.AddVertices(1);
        ++n;
      }
    }
  }
  return delta;
}

}  // namespace mhbc
