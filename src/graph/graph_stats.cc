#include "graph/graph_stats.h"

#include <algorithm>
#include <vector>

#include "graph/graph_algos.h"
#include "util/rng.h"

namespace mhbc {

namespace {

/// BFS from `source`; returns (eccentricity, farthest vertex). Distances are
/// hop counts; unreachable vertices are ignored (callers ensure
/// connectivity where it matters).
std::pair<std::uint32_t, VertexId> BfsEccentricity(const CsrGraph& graph,
                                                   VertexId source) {
  const VertexId n = graph.num_vertices();
  std::vector<std::uint32_t> dist(n, kUnreachedDistance);
  std::vector<VertexId> queue;
  queue.reserve(n);
  queue.push_back(source);
  dist[source] = 0;
  std::size_t head = 0;
  std::uint32_t ecc = 0;
  VertexId farthest = source;
  while (head < queue.size()) {
    const VertexId u = queue[head++];
    for (VertexId v : graph.neighbors(u)) {
      if (dist[v] == kUnreachedDistance) {
        dist[v] = dist[u] + 1;
        if (dist[v] > ecc) {
          ecc = dist[v];
          farthest = v;
        }
        queue.push_back(v);
      }
    }
  }
  return {ecc, farthest};
}

}  // namespace

std::uint64_t CountTriangles(const CsrGraph& graph,
                             std::vector<std::uint64_t>* per_vertex) {
  const VertexId n = graph.num_vertices();
  if (per_vertex != nullptr) per_vertex->assign(n, 0);
  std::uint64_t total = 0;
  for (VertexId u = 0; u < n; ++u) {
    const auto nu = graph.neighbors(u);
    for (VertexId v : nu) {
      if (v <= u) continue;
      // Count common neighbors w > v: each triangle (u, v, w) once.
      const auto nv = graph.neighbors(v);
      std::size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          const VertexId w = nu[i];
          if (w > v) {
            ++total;
            if (per_vertex != nullptr) {
              ++(*per_vertex)[u];
              ++(*per_vertex)[v];
              ++(*per_vertex)[w];
            }
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return total;
}

double GlobalClusteringCoefficient(const CsrGraph& graph) {
  const std::uint64_t triangles = CountTriangles(graph);
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint64_t d = graph.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangles) / static_cast<double>(wedges);
}

double AverageLocalClustering(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return 0.0;
  std::vector<std::uint64_t> per_vertex;
  CountTriangles(graph, &per_vertex);
  double acc = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t d = graph.degree(v);
    if (d < 2) continue;
    const double wedges = static_cast<double>(d) * (static_cast<double>(d) - 1.0) / 2.0;
    acc += static_cast<double>(per_vertex[v]) / wedges;
  }
  return acc / static_cast<double>(n);
}

std::uint32_t ExactDiameter(const CsrGraph& graph) {
  MHBC_DCHECK(graph.num_vertices() > 0);
  std::uint32_t diameter = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    diameter = std::max(diameter, BfsEccentricity(graph, v).first);
  }
  return diameter;
}

std::uint32_t DiameterLowerBound(const CsrGraph& graph, std::uint32_t probes,
                                 std::uint64_t seed) {
  MHBC_DCHECK(graph.num_vertices() > 0);
  Rng rng(seed);
  std::uint32_t best = 0;
  for (std::uint32_t p = 0; p < probes; ++p) {
    const VertexId start = rng.NextVertex(graph.num_vertices());
    // Double sweep: BFS to the farthest vertex, then BFS again from it.
    const auto [ecc1, far1] = BfsEccentricity(graph, start);
    const auto [ecc2, far2] = BfsEccentricity(graph, far1);
    (void)far2;
    best = std::max({best, ecc1, ecc2});
  }
  return best;
}

std::uint32_t ApproxVertexDiameter(const CsrGraph& graph,
                                   std::uint32_t probes, std::uint64_t seed) {
  return DiameterLowerBound(graph, probes, seed) + 1;
}

GraphStats ComputeGraphStats(const CsrGraph& graph,
                             VertexId exact_diameter_limit,
                             std::uint32_t diameter_probes,
                             std::uint64_t seed) {
  GraphStats stats;
  stats.name = graph.name();
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  stats.weighted = graph.weighted();
  const double n = static_cast<double>(stats.num_vertices);
  if (stats.num_vertices >= 2) {
    stats.density = 2.0 * static_cast<double>(stats.num_edges) / (n * (n - 1.0));
  }
  std::uint32_t min_deg = 0, max_deg = 0;
  std::uint64_t total_deg = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint32_t d = graph.degree(v);
    if (v == 0) {
      min_deg = d;
      max_deg = d;
    } else {
      min_deg = std::min(min_deg, d);
      max_deg = std::max(max_deg, d);
    }
    total_deg += d;
  }
  stats.min_degree = min_deg;
  stats.max_degree = max_deg;
  stats.avg_degree = stats.num_vertices == 0
                         ? 0.0
                         : static_cast<double>(total_deg) / n;
  stats.connected = IsConnected(graph);
  if (stats.num_vertices == 0) return stats;
  stats.triangles = CountTriangles(graph);
  stats.global_clustering = GlobalClusteringCoefficient(graph);
  stats.avg_local_clustering = AverageLocalClustering(graph);
  if (stats.connected && stats.num_vertices <= exact_diameter_limit) {
    stats.diameter = ExactDiameter(graph);
    stats.exact_diameter = true;
  } else {
    stats.diameter = DiameterLowerBound(graph, diameter_probes, seed);
    stats.exact_diameter = false;
  }
  return stats;
}

}  // namespace mhbc
