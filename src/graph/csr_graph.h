#ifndef MHBC_GRAPH_CSR_GRAPH_H_
#define MHBC_GRAPH_CSR_GRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "util/common.h"

/// \file
/// Immutable compressed-sparse-row graph.
///
/// The paper's model (§2): undirected, loop-free, no multi-edges, optionally
/// positive edge weights. The per-sample cost of every sampler is one
/// truncated Brandes pass over this structure, so adjacency is stored as two
/// flat arrays (offsets + neighbor ids) for sequential scanning.

namespace mhbc {

/// Immutable undirected graph in CSR form.
///
/// Each undirected edge {u,v} is stored twice (u→v and v→u). Construction
/// goes through GraphBuilder, which sorts, deduplicates, and validates.
class CsrGraph {
 public:
  /// Empty graph.
  CsrGraph() = default;

  /// Number of vertices.
  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges m (adjacency holds 2m entries).
  std::uint64_t num_edges() const { return neighbors_.size() / 2; }

  /// Degree of v.
  std::uint32_t degree(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending.
  std::span<const VertexId> neighbors(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// Weights parallel to neighbors(v); empty span when the graph is
  /// unweighted.
  std::span<const double> weights(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    if (!weighted()) return {};
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// True when edges carry positive weights.
  bool weighted() const { return !weights_.empty(); }

  /// True if {u,v} is an edge (binary search over u's sorted neighbors).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Weight of edge {u,v}; requires the edge to exist. Unweighted graphs
  /// report 1.0 for every edge.
  double EdgeWeight(VertexId u, VertexId v) const;

  /// Optional human-readable name (dataset registry fills this in).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// All (u, v, w) with u < v; reconstructs the builder input.
  struct Edge {
    VertexId u;
    VertexId v;
    double weight;
  };
  std::vector<Edge> CollectEdges() const;

 private:
  friend class GraphBuilder;

  std::vector<EdgeId> offsets_;      // size n+1
  std::vector<VertexId> neighbors_;  // size 2m, sorted per vertex
  std::vector<double> weights_;      // size 2m or empty
  std::string name_;
};

}  // namespace mhbc

#endif  // MHBC_GRAPH_CSR_GRAPH_H_
