#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"

/// \file
/// Immutable compressed-sparse-row graph.
///
/// The paper's model (§2): undirected, loop-free, no multi-edges, optionally
/// positive edge weights. The per-sample cost of every sampler is one
/// truncated Brandes pass over this structure, so adjacency is stored as two
/// flat arrays (offsets + neighbor ids) for sequential scanning.
///
/// Storage comes in two flavors behind one interface: an *owning* graph
/// (built by GraphBuilder, arrays held in private vectors) and a *view*
/// over externally-owned arrays (WrapExternal), which is what lets the
/// binary snapshot loader (graph/snapshot.h) serve an mmap'ed file without
/// copying it. The accessors are identical and branch-free either way.

namespace mhbc {

/// Immutable undirected graph in CSR form.
///
/// Each undirected edge {u,v} is stored twice (u→v and v→u). Construction
/// goes through GraphBuilder, which sorts, deduplicates, and validates —
/// or through WrapExternal for pre-validated zero-copy views.
class CsrGraph {
 public:
  /// Empty graph.
  CsrGraph() = default;

  CsrGraph(const CsrGraph& other) { CopyFrom(other); }
  CsrGraph& operator=(const CsrGraph& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  CsrGraph(CsrGraph&& other) noexcept { MoveFrom(std::move(other)); }
  CsrGraph& operator=(CsrGraph&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  /// Wraps externally-owned CSR arrays as a read-only graph *without
  /// copying them*. The arrays must satisfy the GraphBuilder invariants
  /// (offsets ascending with offsets[0] == 0 and offsets[n] ==
  /// neighbors.size(), per-vertex neighbor slices sorted, both directions
  /// of every undirected edge present, weights empty or parallel to
  /// neighbors) and must stay alive and unchanged for the lifetime of the
  /// returned graph **and every copy of it** — copies of a view are again
  /// views. The snapshot loader is the intended caller; anything else
  /// should go through GraphBuilder.
  static CsrGraph WrapExternal(std::span<const EdgeId> offsets,
                               std::span<const VertexId> neighbors,
                               std::span<const double> weights,
                               std::string name);

  /// Owning companion of WrapExternal: adopts pre-validated CSR arrays
  /// verbatim — same invariants as WrapExternal, but the graph takes
  /// ownership, so there is no lifetime contract to honor. Intended for
  /// the snapshot loader's buffered path; anything constructing a graph
  /// from scratch should go through GraphBuilder.
  static CsrGraph AdoptVerbatim(std::vector<EdgeId> offsets,
                                std::vector<VertexId> neighbors,
                                std::vector<double> weights, std::string name);

  /// True when this graph borrows externally-owned arrays (WrapExternal)
  /// rather than owning its storage; see WrapExternal for the lifetime
  /// contract.
  bool is_external_view() const { return external_; }

  /// Number of vertices.
  VertexId num_vertices() const {
    return static_cast<VertexId>(num_offsets_ == 0 ? 0 : num_offsets_ - 1);
  }

  /// Number of undirected edges m (adjacency holds 2m entries).
  std::uint64_t num_edges() const { return num_adjacency_ / 2; }

  /// Degree of v.
  std::uint32_t degree(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending.
  std::span<const VertexId> neighbors(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    return {neighbors_ + offsets_[v], neighbors_ + offsets_[v + 1]};
  }

  /// Weights parallel to neighbors(v); empty span when the graph is
  /// unweighted.
  std::span<const double> weights(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    if (!weighted()) return {};
    return {weights_ + offsets_[v], weights_ + offsets_[v + 1]};
  }

  /// True when edges carry positive weights.
  bool weighted() const { return weights_ != nullptr; }

  /// True if {u,v} is an edge (binary search over u's sorted neighbors).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Weight of edge {u,v}; requires the edge to exist. Unweighted graphs
  /// report 1.0 for every edge.
  double EdgeWeight(VertexId u, VertexId v) const;

  /// Optional human-readable name (dataset registry fills this in).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// The raw CSR arrays, for serialization (graph/snapshot.h). offsets has
  /// num_vertices()+1 entries, adjacency 2m, edge_weights 2m or empty.
  std::span<const EdgeId> raw_offsets() const { return {offsets_, num_offsets_}; }
  std::span<const VertexId> raw_adjacency() const {
    return {neighbors_, num_adjacency_};
  }
  std::span<const double> raw_weights() const {
    return weighted() ? std::span<const double>{weights_, num_adjacency_}
                      : std::span<const double>{};
  }

  /// All (u, v, w) with u < v; reconstructs the builder input.
  struct Edge {
    VertexId u;
    VertexId v;
    double weight;
  };
  std::vector<Edge> CollectEdges() const;

 private:
  friend class GraphBuilder;

  /// Points the accessor pointers at the owned vectors (after the builder
  /// fills them in).
  void BindOwned();
  void CopyFrom(const CsrGraph& other);
  void MoveFrom(CsrGraph&& other) noexcept;

  // Owned storage; empty for external views.
  std::vector<EdgeId> offsets_store_;      // size n+1
  std::vector<VertexId> neighbors_store_;  // size 2m, sorted per vertex
  std::vector<double> weights_store_;      // size 2m or empty

  // The arrays the accessors read — either the owned vectors above or
  // externally-owned memory (external_ == true).
  const EdgeId* offsets_ = nullptr;
  const VertexId* neighbors_ = nullptr;
  const double* weights_ = nullptr;  // null when unweighted
  std::size_t num_offsets_ = 0;
  std::size_t num_adjacency_ = 0;
  bool external_ = false;

  std::string name_;
};

}  // namespace mhbc
