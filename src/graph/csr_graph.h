#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"

/// \file
/// Immutable compressed-sparse-row graph.
///
/// The paper's model (§2): undirected, loop-free, no multi-edges, optionally
/// positive edge weights. The per-sample cost of every sampler is one
/// truncated Brandes pass over this structure, so adjacency is stored as two
/// flat arrays (offsets + neighbor ids) for sequential scanning.
///
/// ROADMAP item 4 extends the model with *directed* graphs (web graphs,
/// citation networks): a directed graph stores the out-CSR in the same two
/// arrays plus an in-CSR transpose (built once at construction) that the
/// SPD kernels' backward machinery — predecessor recording, bottom-up BFS,
/// dependency sweeps — traverses. On undirected graphs the in-CSR accessors
/// alias the out-CSR arrays, so direction-agnostic code reads `in_*` for
/// every backward walk and pays nothing in the undirected case.
///
/// Storage comes in two flavors behind one interface: an *owning* graph
/// (built by GraphBuilder, arrays held in private vectors) and a *view*
/// over externally-owned arrays (WrapExternal), which is what lets the
/// binary snapshot loader (graph/snapshot.h) serve an mmap'ed file without
/// copying it. The accessors are identical and branch-free either way.
/// The transpose of a directed graph is always owned — a directed snapshot
/// is zero-copy for the out-CSR only. It is built eagerly (not lazily on
/// first use): a lazy build would need synchronization under the concurrent
/// readers the serving layer runs, and raw synchronization outside
/// util/thread_pool is banned by the determinism lint.

namespace mhbc {

/// Immutable graph in CSR form, undirected (the default) or directed.
///
/// Undirected: each edge {u,v} is stored twice (u→v and v→u), adjacency
/// holds 2m entries, and the in-CSR accessors alias the out-CSR. Directed:
/// adjacency holds one entry per arc u→v (m entries) and the in-CSR is a
/// materialized transpose. Construction goes through GraphBuilder, which
/// sorts, deduplicates, and validates — or through WrapExternal for
/// pre-validated zero-copy views.
class CsrGraph {
 public:
  /// Empty graph.
  CsrGraph() = default;

  CsrGraph(const CsrGraph& other) { CopyFrom(other); }
  CsrGraph& operator=(const CsrGraph& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  CsrGraph(CsrGraph&& other) noexcept { MoveFrom(std::move(other)); }
  CsrGraph& operator=(CsrGraph&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  /// Wraps externally-owned CSR arrays as a read-only graph *without
  /// copying them*. The arrays must satisfy the GraphBuilder invariants
  /// (offsets ascending with offsets[0] == 0 and offsets[n] ==
  /// neighbors.size(), per-vertex neighbor slices sorted, both directions
  /// of every undirected edge present, weights empty or parallel to
  /// neighbors) and must stay alive and unchanged for the lifetime of the
  /// returned graph **and every copy of it** — copies of a view are again
  /// views. With `directed` the arrays are the out-CSR (one entry per arc)
  /// and the transpose is built into owned storage here, so a directed
  /// view is zero-copy for the out-CSR only. The snapshot loader is the
  /// intended caller; anything else should go through GraphBuilder.
  static CsrGraph WrapExternal(std::span<const EdgeId> offsets,
                               std::span<const VertexId> neighbors,
                               std::span<const double> weights,
                               std::string name, bool directed = false);

  /// Owning companion of WrapExternal: adopts pre-validated CSR arrays
  /// verbatim — same invariants as WrapExternal, but the graph takes
  /// ownership, so there is no lifetime contract to honor. Intended for
  /// the snapshot loader's buffered path; anything constructing a graph
  /// from scratch should go through GraphBuilder.
  static CsrGraph AdoptVerbatim(std::vector<EdgeId> offsets,
                                std::vector<VertexId> neighbors,
                                std::vector<double> weights, std::string name,
                                bool directed = false);

  /// True when this graph borrows externally-owned arrays (WrapExternal)
  /// rather than owning its storage; see WrapExternal for the lifetime
  /// contract.
  bool is_external_view() const { return external_; }

  /// True when edges are directed arcs u→v rather than undirected pairs.
  bool directed() const { return directed_; }

  /// Number of vertices.
  VertexId num_vertices() const {
    return static_cast<VertexId>(num_offsets_ == 0 ? 0 : num_offsets_ - 1);
  }

  /// Number of edges m: undirected pairs {u,v} (adjacency holds 2m
  /// entries) or directed arcs u→v (adjacency holds m entries).
  std::uint64_t num_edges() const {
    return directed_ ? num_adjacency_ : num_adjacency_ / 2;
  }

  /// Out-degree of v (== degree on undirected graphs).
  std::uint32_t degree(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// In-degree of v; aliases degree(v) on undirected graphs.
  std::uint32_t in_degree(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    return static_cast<std::uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Out-neighbors of v, sorted ascending.
  std::span<const VertexId> neighbors(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    return {neighbors_ + offsets_[v], neighbors_ + offsets_[v + 1]};
  }

  /// In-neighbors of v (u with an arc u→v), sorted ascending; aliases
  /// neighbors(v) on undirected graphs. Every backward walk — predecessor
  /// enumeration, bottom-up BFS, dependency re-derivation — reads this.
  std::span<const VertexId> in_neighbors(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    return {in_neighbors_ + in_offsets_[v], in_neighbors_ + in_offsets_[v + 1]};
  }

  /// Weights parallel to neighbors(v); empty span when the graph is
  /// unweighted.
  std::span<const double> weights(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    if (!weighted()) return {};
    return {weights_ + offsets_[v], weights_ + offsets_[v + 1]};
  }

  /// Weights parallel to in_neighbors(v); empty span when unweighted.
  std::span<const double> in_weights(VertexId v) const {
    MHBC_DCHECK(v < num_vertices());
    if (!weighted()) return {};
    return {in_weights_ + in_offsets_[v], in_weights_ + in_offsets_[v + 1]};
  }

  /// True when edges carry positive weights.
  bool weighted() const { return weights_ != nullptr; }

  /// True if the arc u→v exists (binary search over u's sorted
  /// out-neighbors); on undirected graphs this is edge {u,v}.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Weight of arc u→v; requires the arc to exist. Unweighted graphs
  /// report 1.0 for every edge.
  double EdgeWeight(VertexId u, VertexId v) const;

  /// Optional human-readable name (dataset registry fills this in).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// The raw out-CSR arrays, for serialization (graph/snapshot.h).
  /// offsets has num_vertices()+1 entries, adjacency 2m (undirected) or m
  /// (directed), edge_weights parallel to adjacency or empty.
  std::span<const EdgeId> raw_offsets() const { return {offsets_, num_offsets_}; }
  std::span<const VertexId> raw_adjacency() const {
    return {neighbors_, num_adjacency_};
  }
  std::span<const double> raw_weights() const {
    return weighted() ? std::span<const double>{weights_, num_adjacency_}
                      : std::span<const double>{};
  }

  /// The raw in-CSR (transpose) arrays; alias the out-CSR when undirected.
  std::span<const EdgeId> raw_in_offsets() const {
    return {in_offsets_, num_offsets_};
  }
  std::span<const VertexId> raw_in_adjacency() const {
    return {in_neighbors_, num_adjacency_};
  }

  /// All edges as the builder would take them: (u, v, w) with u < v on
  /// undirected graphs, every arc u→v on directed graphs.
  struct Edge {
    VertexId u;
    VertexId v;
    double weight;
  };
  std::vector<Edge> CollectEdges() const;

 private:
  friend class GraphBuilder;

  /// Points the accessor pointers at the owned vectors (after the builder
  /// fills them in).
  void BindOwned();
  /// Builds the in-CSR transpose (directed) or aliases the in-CSR
  /// pointers to the out-CSR (undirected). Requires the out accessors to
  /// be bound first.
  void BindIn();
  void CopyFrom(const CsrGraph& other);
  void MoveFrom(CsrGraph&& other) noexcept;

  // Owned storage; empty for external views.
  std::vector<EdgeId> offsets_store_;      // size n+1
  std::vector<VertexId> neighbors_store_;  // adjacency, sorted per vertex
  std::vector<double> weights_store_;      // parallel to adjacency or empty

  // Transpose storage. Directed graphs own it unconditionally (even
  // external views); undirected graphs leave it empty and alias the
  // accessor pointers below to the out-CSR.
  std::vector<EdgeId> in_offsets_store_;
  std::vector<VertexId> in_neighbors_store_;
  std::vector<double> in_weights_store_;

  // The arrays the accessors read — either the owned vectors above or
  // externally-owned memory (external_ == true).
  const EdgeId* offsets_ = nullptr;
  const VertexId* neighbors_ = nullptr;
  const double* weights_ = nullptr;  // null when unweighted
  const EdgeId* in_offsets_ = nullptr;
  const VertexId* in_neighbors_ = nullptr;
  const double* in_weights_ = nullptr;  // null when unweighted
  std::size_t num_offsets_ = 0;
  std::size_t num_adjacency_ = 0;
  bool external_ = false;
  bool directed_ = false;

  std::string name_;
};

}  // namespace mhbc
