#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"

namespace mhbc {

namespace {

/// Unwraps a Build() that cannot fail for generator-produced edge lists.
CsrGraph MustBuild(GraphBuilder* builder, const char* name) {
  StatusOr<CsrGraph> result = builder->Build();
  MHBC_DCHECK(result.ok());
  CsrGraph graph = std::move(result).value();
  graph.set_name(name);
  return graph;
}

}  // namespace

CsrGraph MakePath(VertexId n) {
  MHBC_DCHECK(n >= 1);
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return MustBuild(&builder, "path");
}

CsrGraph MakeCycle(VertexId n) {
  MHBC_DCHECK(n >= 3);
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  builder.AddEdge(n - 1, 0);
  return MustBuild(&builder, "cycle");
}

CsrGraph MakeStar(VertexId n) {
  MHBC_DCHECK(n >= 2);
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) builder.AddEdge(0, v);
  return MustBuild(&builder, "star");
}

CsrGraph MakeComplete(VertexId n) {
  MHBC_DCHECK(n >= 2);
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  return MustBuild(&builder, "complete");
}

CsrGraph MakeCompleteBipartite(VertexId a, VertexId b) {
  MHBC_DCHECK(a >= 1 && b >= 1);
  GraphBuilder builder(a + b);
  for (VertexId u = 0; u < a; ++u)
    for (VertexId v = 0; v < b; ++v) builder.AddEdge(u, a + v);
  return MustBuild(&builder, "complete_bipartite");
}

CsrGraph MakeBalancedTree(std::uint32_t branching, std::uint32_t depth) {
  MHBC_DCHECK(branching >= 1);
  // Vertex count: 1 + b + b^2 + ... + b^depth.
  std::uint64_t count = 1;
  std::uint64_t level_size = 1;
  for (std::uint32_t d = 0; d < depth; ++d) {
    level_size *= branching;
    count += level_size;
  }
  MHBC_DCHECK(count <= kInvalidVertex);
  GraphBuilder builder(static_cast<VertexId>(count));
  // Children of vertex v are b*v+1 .. b*v+b in level order.
  for (std::uint64_t v = 0; v < count; ++v) {
    for (std::uint32_t c = 1; c <= branching; ++c) {
      const std::uint64_t child = branching * v + c;
      if (child >= count) break;
      builder.AddEdge(static_cast<VertexId>(v), static_cast<VertexId>(child));
    }
  }
  return MustBuild(&builder, "balanced_tree");
}

CsrGraph MakeBarbell(VertexId clique_size, VertexId bridge_len) {
  MHBC_DCHECK(clique_size >= 2);
  const VertexId n = clique_size * 2 + bridge_len;
  GraphBuilder builder(n);
  // Left clique [0, k), right clique [k + bridge, n).
  for (VertexId u = 0; u < clique_size; ++u)
    for (VertexId v = u + 1; v < clique_size; ++v) builder.AddEdge(u, v);
  const VertexId right_start = clique_size + bridge_len;
  for (VertexId u = right_start; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  // Bridge path: last left vertex - bridge vertices - first right vertex.
  VertexId prev = clique_size - 1;
  for (VertexId b = 0; b < bridge_len; ++b) {
    builder.AddEdge(prev, clique_size + b);
    prev = clique_size + b;
  }
  builder.AddEdge(prev, right_start);
  return MustBuild(&builder, "barbell");
}

CsrGraph MakeConnectedCaveman(VertexId communities, VertexId clique_size) {
  MHBC_DCHECK(communities >= 2);
  MHBC_DCHECK(clique_size >= 2);
  const VertexId n = communities * clique_size;
  GraphBuilder builder(n);
  for (VertexId c = 0; c < communities; ++c) {
    const VertexId base = c * clique_size;
    for (VertexId u = 0; u < clique_size; ++u)
      for (VertexId v = u + 1; v < clique_size; ++v)
        builder.AddEdge(base + u, base + v);
    // Gateway edge to the next community (ring).
    const VertexId next_base = ((c + 1) % communities) * clique_size;
    builder.AddEdge(base + clique_size - 1, next_base);
  }
  return MustBuild(&builder, "connected_caveman");
}

CsrGraph MakeGrid(VertexId rows, VertexId cols) {
  MHBC_DCHECK(rows >= 1 && cols >= 1);
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return MustBuild(&builder, "grid");
}

CsrGraph MakeWheel(VertexId n) {
  MHBC_DCHECK(n >= 4);
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) {
    builder.AddEdge(0, v);
    const VertexId next = (v == n - 1) ? 1 : v + 1;
    if (v < next) builder.AddEdge(v, next);
  }
  builder.AddEdge(n - 1, 1);
  return MustBuild(&builder, "wheel");
}

CsrGraph MakeLollipop(VertexId clique_size, VertexId tail) {
  MHBC_DCHECK(clique_size >= 2);
  MHBC_DCHECK(tail >= 1);
  const VertexId n = clique_size + tail;
  GraphBuilder builder(n);
  for (VertexId u = 0; u < clique_size; ++u)
    for (VertexId v = u + 1; v < clique_size; ++v) builder.AddEdge(u, v);
  VertexId prev = clique_size - 1;
  for (VertexId t = 0; t < tail; ++t) {
    builder.AddEdge(prev, clique_size + t);
    prev = clique_size + t;
  }
  return MustBuild(&builder, "lollipop");
}

CsrGraph MakeErdosRenyiGnp(VertexId n, double p, std::uint64_t seed) {
  MHBC_DCHECK(n >= 1);
  MHBC_DCHECK(p >= 0.0 && p <= 1.0);
  Rng rng(seed);
  GraphBuilder builder(n);
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u)
      for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
    return MustBuild(&builder, "erdos_renyi_gnp");
  }
  if (p > 0.0) {
    // Geometric skipping (Batagelj-Brandes): O(n + m) instead of O(n^2).
    const double log1mp = std::log1p(-p);
    std::uint64_t u = 1;
    std::int64_t v = -1;
    const std::uint64_t nn = n;
    while (u < nn) {
      double draw = 1.0 - rng.NextDouble();  // (0, 1]
      const double skip = std::floor(std::log(draw) / log1mp);
      v += 1 + static_cast<std::int64_t>(skip);
      while (v >= static_cast<std::int64_t>(u) && u < nn) {
        v -= static_cast<std::int64_t>(u);
        ++u;
      }
      if (u < nn) {
        builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      }
    }
  }
  return MustBuild(&builder, "erdos_renyi_gnp");
}

CsrGraph MakeErdosRenyiGnm(VertexId n, std::uint64_t m, std::uint64_t seed) {
  MHBC_DCHECK(n >= 2);
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  MHBC_DCHECK(m <= max_edges);
  Rng rng(seed);
  std::set<std::pair<VertexId, VertexId>> chosen;
  while (chosen.size() < m) {
    VertexId u = rng.NextVertex(n);
    VertexId v = rng.NextVertex(n);
    if (u == v) continue;
    chosen.insert({std::min(u, v), std::max(u, v)});
  }
  GraphBuilder builder(n);
  for (const auto& [u, v] : chosen) builder.AddEdge(u, v);
  return MustBuild(&builder, "erdos_renyi_gnm");
}

CsrGraph MakeBarabasiAlbert(VertexId n, std::uint32_t edges_per_vertex,
                            std::uint64_t seed) {
  MHBC_DCHECK(edges_per_vertex >= 1);
  const VertexId seed_size = edges_per_vertex + 1;
  MHBC_DCHECK(n >= seed_size);
  Rng rng(seed);
  GraphBuilder builder(n);
  // Repeated-endpoint list: picking a uniform entry is degree-proportional.
  std::vector<VertexId> endpoint_pool;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  std::vector<VertexId> targets;
  for (VertexId v = seed_size; v < n; ++v) {
    targets.clear();
    while (targets.size() < edges_per_vertex) {
      const VertexId candidate = endpoint_pool[static_cast<std::size_t>(
          rng.NextBounded(endpoint_pool.size()))];
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (VertexId t : targets) {
      builder.AddEdge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return MustBuild(&builder, "barabasi_albert");
}

CsrGraph MakeWattsStrogatz(VertexId n, std::uint32_t k, double beta,
                           std::uint64_t seed) {
  MHBC_DCHECK(n >= 3);
  MHBC_DCHECK(k >= 2 && k % 2 == 0);
  MHBC_DCHECK(k < n);
  MHBC_DCHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  // Adjacency sets for rewiring bookkeeping.
  std::vector<std::set<VertexId>> adj(n);
  auto add = [&adj](VertexId u, VertexId v) {
    adj[u].insert(v);
    adj[v].insert(u);
  };
  auto remove = [&adj](VertexId u, VertexId v) {
    adj[u].erase(v);
    adj[v].erase(u);
  };
  const std::uint32_t half = k / 2;
  for (VertexId u = 0; u < n; ++u) {
    for (std::uint32_t d = 1; d <= half; ++d) {
      add(u, static_cast<VertexId>((u + d) % n));
    }
  }
  // Rewire the "forward" lattice edges with probability beta.
  for (std::uint32_t d = 1; d <= half; ++d) {
    for (VertexId u = 0; u < n; ++u) {
      const VertexId v = static_cast<VertexId>((u + d) % n);
      if (!adj[u].count(v)) continue;  // already rewired away
      if (!rng.NextBernoulli(beta)) continue;
      if (adj[u].size() >= n - 1) continue;  // saturated; keep the edge
      VertexId w;
      do {
        w = rng.NextVertex(n);
      } while (w == u || adj[u].count(w) != 0);
      remove(u, v);
      add(u, w);
    }
  }
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : adj[u]) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  return MustBuild(&builder, "watts_strogatz");
}

CsrGraph MakeRandomDirected(VertexId n, std::uint64_t extra_arcs,
                            std::uint64_t seed) {
  MHBC_DCHECK(n >= 2);
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.set_directed(true)
      .set_ignore_self_loops(true)
      .set_merge_duplicates(true);
  for (VertexId v = 1; v < n; ++v) builder.AddEdge(v - 1, v);
  for (std::uint64_t i = 0; i < extra_arcs; ++i) {
    builder.AddEdge(rng.NextVertex(n), rng.NextVertex(n));
  }
  return MustBuild(&builder, "random_directed");
}

CsrGraph AssignUniformWeights(const CsrGraph& graph, double lo, double hi,
                              std::uint64_t seed) {
  MHBC_DCHECK(lo > 0.0 && hi >= lo);
  Rng rng(seed);
  GraphBuilder builder(graph.num_vertices());
  builder.set_directed(graph.directed());
  for (const CsrGraph::Edge& e : graph.CollectEdges()) {
    const double w = lo + rng.NextDouble() * (hi - lo);
    builder.AddWeightedEdge(e.u, e.v, w);
  }
  StatusOr<CsrGraph> result = builder.Build();
  MHBC_DCHECK(result.ok());
  CsrGraph weighted = std::move(result).value();
  weighted.set_name(graph.name() + "_weighted");
  return weighted;
}

}  // namespace mhbc
