#pragma once

#include <cstdint>
#include <string>

#include "graph/csr_graph.h"

/// \file
/// Dataset-statistics computations backing experiment E1 (the standard
/// "Table 1: datasets" of the betweenness-approximation literature).

namespace mhbc {

/// Summary row for one dataset.
struct GraphStats {
  std::string name;
  VertexId num_vertices = 0;
  std::uint64_t num_edges = 0;
  double density = 0.0;          // 2m / (n(n-1))
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  double avg_degree = 0.0;
  std::uint32_t diameter = 0;    // exact if exact_diameter, else lower bound
  bool exact_diameter = false;
  bool connected = false;
  bool weighted = false;
  /// Number of triangles (3-cliques) in the graph.
  std::uint64_t triangles = 0;
  /// Global clustering coefficient: 3 * triangles / #open-or-closed wedges.
  double global_clustering = 0.0;
  /// Average of per-vertex local clustering coefficients (degree < 2 counts
  /// as 0, the NetworkX convention).
  double avg_local_clustering = 0.0;
};

/// Counts triangles in O(sum of deg^2) via neighbor-intersection on the
/// sorted CSR adjacency. Returns the triangle count and fills per-vertex
/// triangle counts if `per_vertex` is non-null.
std::uint64_t CountTriangles(const CsrGraph& graph,
                             std::vector<std::uint64_t>* per_vertex = nullptr);

/// Global clustering coefficient (transitivity).
double GlobalClusteringCoefficient(const CsrGraph& graph);

/// Mean local clustering coefficient.
double AverageLocalClustering(const CsrGraph& graph);

/// Computes stats. Diameter is exact when n <= `exact_diameter_limit`
/// (all-BFS), otherwise a lower bound from `diameter_probes` double-sweep
/// BFS probes. Hop-count diameter is reported even for weighted graphs (it
/// is the quantity the samplers' VC bound uses).
GraphStats ComputeGraphStats(const CsrGraph& graph,
                             VertexId exact_diameter_limit = 2048,
                             std::uint32_t diameter_probes = 8,
                             std::uint64_t seed = 0x5eed);

/// Exact hop diameter by BFS from every vertex. O(nm); small graphs only.
/// Returns 0 for single-vertex graphs; requires a connected graph.
std::uint32_t ExactDiameter(const CsrGraph& graph);

/// Diameter lower bound via repeated double-sweep BFS.
std::uint32_t DiameterLowerBound(const CsrGraph& graph,
                                 std::uint32_t probes, std::uint64_t seed);

/// Vertex-diameter proxy used by the Riondato-Kornaropoulos sample bound:
/// number of vertices on a longest found shortest path (hops + 1), from
/// double-sweep probes (upper-bounded estimate is fine for the bound's
/// log2 argument; we return the probe maximum + 1).
std::uint32_t ApproxVertexDiameter(const CsrGraph& graph, std::uint32_t probes,
                                   std::uint64_t seed);

}  // namespace mhbc
