#include "graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_algos.h"
#include "graph/graph_builder.h"

namespace mhbc {

namespace {

struct RawEdge {
  std::uint64_t u;
  std::uint64_t v;
  double weight;
};

}  // namespace

StatusOr<CsrGraph> ParseEdgeList(std::istream& in,
                                 const EdgeListOptions& options) {
  if (options.stats != nullptr) *options.stats = EdgeListStats{};
  if (!options.directed && !options.symmetrize) {
    return Status::InvalidArgument(
        "symmetrize=false requires directed=true (an undirected build "
        "merges reverse duplicates by construction; set directed to keep "
        "edge orientation)");
  }
  std::vector<RawEdge> raw_edges;
  std::unordered_map<std::uint64_t, VertexId> id_map;
  EdgeListStats stats;
  // Orientation bitmask per unordered pair {u,v} of *remapped* ids
  // (bit 0: the min→max arc seen, bit 1: max→min), so mirrored pairs are
  // counted exactly once however often each orientation repeats.
  std::unordered_map<std::uint64_t, unsigned char> orientations;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments ('#' to end of line) and skip blank lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::uint64_t u = 0, v = 0;
    if (!(fields >> u)) continue;  // blank or comment-only line
    if (!(fields >> v)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected two vertex ids");
    }
    double w = 1.0;
    if (options.allow_weights) {
      double parsed = 0.0;
      if (fields >> parsed) {
        if (!(parsed > 0.0)) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) +
              ": edge weight must be positive, got " + std::to_string(parsed));
        }
        w = parsed;
      }
    } else {
      std::string extra;
      if (fields >> extra) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": unexpected third column '" + extra +
            "' (weights not enabled)");
      }
    }
    raw_edges.push_back(RawEdge{u, v, w});
    ++stats.edge_lines;
    // Register ids in first-seen order for stable remapping.
    for (std::uint64_t id : {u, v}) {
      if (id_map.find(id) == id_map.end()) {
        const auto next = static_cast<VertexId>(id_map.size());
        id_map.emplace(id, next);
      }
    }
    if (u == v) {
      ++stats.self_loop_lines;
    } else {
      const VertexId mu = id_map.at(u);
      const VertexId mv = id_map.at(v);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(mu, mv)) << 32) |
          std::max(mu, mv);
      const unsigned char bit = mu < mv ? 1 : 2;
      unsigned char& mask = orientations[key];
      if ((mask | bit) == 3 && mask != 3) ++stats.mirrored_pairs;
      mask |= bit;
    }
  }
  if (options.stats != nullptr) *options.stats = stats;
  if (id_map.empty()) {
    return Status::InvalidArgument("edge list contains no edges");
  }

  GraphBuilder builder(static_cast<VertexId>(id_map.size()));
  builder.set_directed(options.directed);
  builder.set_ignore_self_loops(true).set_merge_duplicates(true);
  for (const RawEdge& e : raw_edges) {
    builder.AddWeightedEdge(id_map.at(e.u), id_map.at(e.v), e.weight);
  }
  StatusOr<CsrGraph> built = builder.Build();
  if (!built.ok()) return built.status();
  CsrGraph graph = std::move(built).value();
  if (options.largest_component_only) {
    graph = ExtractLargestComponent(graph);
  }
  return graph;
}

StatusOr<CsrGraph> LoadSnapEdgeList(const std::string& path,
                                    const EdgeListOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  StatusOr<CsrGraph> result = ParseEdgeList(in, options);
  if (result.ok()) result.value().set_name(path);
  return result;
}

void WriteEdgeList(const CsrGraph& graph, std::ostream& out) {
  out << "# mhbc edge list: n=" << graph.num_vertices()
      << " m=" << graph.num_edges()
      << (graph.weighted() ? " weighted" : "")
      << (graph.directed() ? " directed" : "") << "\n";
  for (const CsrGraph::Edge& e : graph.CollectEdges()) {
    out << e.u << '\t' << e.v;
    if (graph.weighted()) out << '\t' << e.weight;
    out << '\n';
  }
}

Status WriteEdgeList(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  WriteEdgeList(graph, out);
  out.flush();
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::Ok();
}

StatusOr<std::vector<VertexId>> ParseVertexIdListStrict(
    const std::string& csv) {
  std::vector<VertexId> ids;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t first = token.find_first_not_of(" \t");
    if (first != std::string::npos) {
      const std::size_t last = token.find_last_not_of(" \t");
      const std::string trimmed = token.substr(first, last - first + 1);
      if (trimmed.find_first_not_of("0123456789") != std::string::npos) {
        return Status::InvalidArgument("no vertex ids: '" + trimmed +
                                       "' is not a vertex id (expected "
                                       "comma-separated non-negative "
                                       "integers)");
      }
      // Overflow-safe: strtoull saturates at ULLONG_MAX, which the >=
      // kInvalidVertex check below rejects along with every 32-bit wrap.
      const unsigned long long value =
          std::strtoull(trimmed.c_str(), nullptr, 10);
      if (value >= static_cast<unsigned long long>(kInvalidVertex)) {
        return Status::InvalidArgument(
            "no vertex ids: '" + trimmed + "' exceeds the vertex-id range " +
            "(max " + std::to_string(kInvalidVertex - 1) + ")");
      }
      ids.push_back(static_cast<VertexId>(value));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (ids.empty()) {
    return Status::InvalidArgument("no vertex ids given");
  }
  return ids;
}

std::vector<VertexId> ParseVertexIdList(const std::string& csv) {
  auto strict = ParseVertexIdListStrict(csv);
  if (!strict.ok()) return {};
  return std::move(strict).value();
}

}  // namespace mhbc
