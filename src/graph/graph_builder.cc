#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace mhbc {

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : num_vertices_(num_vertices) {}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  AddWeightedEdge(u, v, 1.0);
}

void GraphBuilder::AddWeightedEdge(VertexId u, VertexId v, double w) {
  if (!deferred_error_.ok()) return;
  if (u >= num_vertices_ || v >= num_vertices_) {
    deferred_error_ = Status::InvalidArgument(
        "edge endpoint out of range: {" + std::to_string(u) + "," +
        std::to_string(v) + "} with n=" + std::to_string(num_vertices_));
    return;
  }
  if (u == v) {
    if (ignore_self_loops_) return;
    deferred_error_ =
        Status::InvalidArgument("self-loop on vertex " + std::to_string(u));
    return;
  }
  if (!(w > 0.0)) {
    deferred_error_ = Status::InvalidArgument(
        "non-positive edge weight " + std::to_string(w) + " on {" +
        std::to_string(u) + "," + std::to_string(v) + "}");
    return;
  }
  if (w != 1.0) weighted_ = true;
  if (directed_) {
    edges_.push_back(PendingEdge{u, v, w});
  } else {
    edges_.push_back(PendingEdge{std::min(u, v), std::max(u, v), w});
  }
}

StatusOr<CsrGraph> GraphBuilder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;

  std::sort(edges_.begin(), edges_.end(),
            [](const PendingEdge& a, const PendingEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              if (a.v != b.v) return a.v < b.v;
              return a.weight < b.weight;
            });

  // Deduplicate; after sorting equal endpoints are adjacent with the
  // smallest weight first, so "keep first" implements "keep min weight".
  // In directed mode endpoints are ordered pairs, so reciprocal arcs
  // survive as two distinct edges.
  std::vector<PendingEdge> unique_edges;
  unique_edges.reserve(edges_.size());
  for (const PendingEdge& e : edges_) {
    if (!unique_edges.empty() && unique_edges.back().u == e.u &&
        unique_edges.back().v == e.v) {
      if (!merge_duplicates_) {
        return Status::InvalidArgument(
            "duplicate edge {" + std::to_string(e.u) + "," +
            std::to_string(e.v) + "}");
      }
      continue;
    }
    unique_edges.push_back(e);
  }

  CsrGraph graph;
  graph.directed_ = directed_;
  const std::size_t n = num_vertices_;
  const std::size_t adjacency_len =
      unique_edges.size() * (directed_ ? 1 : 2);
  std::vector<std::uint32_t> degree(n, 0);
  for (const PendingEdge& e : unique_edges) {
    ++degree[e.u];
    if (!directed_) ++degree[e.v];
  }
  graph.offsets_store_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    graph.offsets_store_[v + 1] = graph.offsets_store_[v] + degree[v];
  }
  graph.neighbors_store_.resize(adjacency_len);
  if (weighted_) graph.weights_store_.resize(adjacency_len);

  std::vector<EdgeId> cursor(graph.offsets_store_.begin(), graph.offsets_store_.end() - 1);
  for (const PendingEdge& e : unique_edges) {
    graph.neighbors_store_[cursor[e.u]] = e.v;
    if (weighted_) graph.weights_store_[cursor[e.u]] = e.weight;
    ++cursor[e.u];
    if (!directed_) {
      graph.neighbors_store_[cursor[e.v]] = e.u;
      if (weighted_) graph.weights_store_[cursor[e.v]] = e.weight;
      ++cursor[e.v];
    }
  }
  // Edges were globally sorted by (u, v), so each vertex's neighbor slice is
  // already ascending for the u-side inserts (directed graphs are done
  // here), but v-side inserts interleave; sort each slice (weights must
  // follow their neighbor).
  for (std::size_t v = 0; !directed_ && v < n; ++v) {
    const std::size_t begin = graph.offsets_store_[v];
    const std::size_t end = graph.offsets_store_[v + 1];
    if (!weighted_) {
      std::sort(graph.neighbors_store_.begin() + static_cast<std::ptrdiff_t>(begin),
                graph.neighbors_store_.begin() + static_cast<std::ptrdiff_t>(end));
      continue;
    }
    std::vector<std::pair<VertexId, double>> slice;
    slice.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      slice.emplace_back(graph.neighbors_store_[i], graph.weights_store_[i]);
    }
    std::sort(slice.begin(), slice.end());
    for (std::size_t i = begin; i < end; ++i) {
      graph.neighbors_store_[i] = slice[i - begin].first;
      graph.weights_store_[i] = slice[i - begin].second;
    }
  }
  graph.BindOwned();
  return graph;
}

}  // namespace mhbc
