#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/csr_graph.h"
#include "util/status.h"

/// \file
/// Versioned binary CSR snapshots (`.mhbc`) with zero-copy mmap loading.
///
/// Text edge lists pay parse + id-remap + CSR-build cost on every load; a
/// snapshot stores the finished CSR arrays verbatim so a graph is parsed
/// once and then mapped straight into memory forever after. The byte-level
/// layout, versioning, and compatibility rules are specified in
/// docs/formats.md; in short: a fixed 64-byte little-endian header (magic,
/// format version, byte-order marker, flags, counts), the graph name, the
/// raw offset / adjacency / weight arrays each 8-byte aligned, and a
/// trailing FNV-1a 64 checksum over everything before it.
///
/// Three loaders, one format:
///  - LoadSnapshotMapped: `mmap`s the file and serves a read-only CsrGraph
///    *view* over the mapping (CsrGraph::WrapExternal) — no array copies.
///    Falls back to the buffered loader on platforms without mmap (or on
///    SnapshotOptions::force_buffered).
///  - LoadSnapshotBuffered: reads the arrays into an owning CsrGraph.
///  - InspectSnapshot: header + checksum metadata without building a graph.

namespace mhbc {

/// Current snapshot format version. The writer always emits this version;
/// readers additionally accept every version back to
/// kSnapshotMinReadVersion (v1 predates the directed flag bit, so a v1
/// file is always undirected). Versions outside that window are rejected
/// with an InvalidArgument naming both versions; see docs/formats.md for
/// the compatibility policy.
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/// Oldest snapshot version this build still reads.
inline constexpr std::uint32_t kSnapshotMinReadVersion = 1;

/// Conventional file extension for snapshot files.
inline constexpr const char* kSnapshotExtension = ".mhbc";

/// Loader knobs for LoadSnapshotMapped / LoadSnapshotBuffered.
struct SnapshotOptions {
  /// Recompute the trailing FNV-1a checksum on load and reject mismatches.
  /// Costs one sequential read of the file (which also pre-faults the
  /// mapping); disable only for trusted files on hot restart paths.
  bool verify_checksum = true;
  /// Use the buffered loader even where mmap is available (LoadSnapshotMapped
  /// then owns copies; MappedGraph::zero_copy() reports false).
  bool force_buffered = false;
};

/// Parsed snapshot metadata (InspectSnapshot).
struct SnapshotInfo {
  /// Format version stored in the header.
  std::uint32_t version = 0;
  /// True when the snapshot carries an edge-weight array.
  bool weighted = false;
  /// True when the snapshot stores a directed out-CSR (v2 flag bit 1;
  /// always false for v1 files, which predate the flag).
  bool directed = false;
  /// Vertex count n.
  std::uint64_t num_vertices = 0;
  /// Edge count m: undirected pairs (adjacency holds 2m entries) or
  /// directed arcs (adjacency holds m entries).
  std::uint64_t num_edges = 0;
  /// Graph name stored in the snapshot (source path or dataset key).
  std::string name;
  /// Total file size in bytes.
  std::uint64_t file_bytes = 0;
  /// Trailing checksum as stored in the file.
  std::uint64_t stored_checksum = 0;
  /// True when the stored checksum matches the recomputed one.
  bool checksum_ok = false;
};

/// A loaded snapshot: the mapping (or buffered copy) plus the CsrGraph
/// serving it. Movable, not copyable — the contained graph view points
/// into the mapping, so the MappedGraph must outlive every use of graph()
/// (and every copy made of it; see CsrGraph::WrapExternal).
class MappedGraph {
 public:
  MappedGraph() = default;
  ~MappedGraph();

  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;

  /// The graph. A zero-copy view into the mapping when zero_copy(), an
  /// owning graph after the buffered fallback.
  const CsrGraph& graph() const { return graph_; }

  /// True when graph() reads the mmap'ed file directly (no array copies).
  bool zero_copy() const { return map_base_ != nullptr; }

  /// Bytes mapped (0 after the buffered fallback).
  std::size_t mapped_bytes() const { return map_len_; }

 private:
  friend StatusOr<MappedGraph> LoadSnapshotMapped(const std::string& path,
                                                  const SnapshotOptions& options);

  CsrGraph graph_;
  void* map_base_ = nullptr;
  std::size_t map_len_ = 0;
};

/// Writes `graph` (arrays, weight flag, name) as a version-
/// kSnapshotFormatVersion snapshot at `path`. Overwrites existing files.
Status SaveSnapshot(const CsrGraph& graph, const std::string& path);

/// Loads a snapshot by mmap'ing it and wrapping the arrays zero-copy;
/// falls back to LoadSnapshotBuffered where mmap is unavailable. Rejects
/// truncated files, foreign magic/byte order, version mismatches, and
/// (unless disabled) checksum failures, all as InvalidArgument/IoError.
StatusOr<MappedGraph> LoadSnapshotMapped(
    const std::string& path, const SnapshotOptions& options = SnapshotOptions());

/// Loads a snapshot into an owning CsrGraph (arrays copied out of the
/// file). Same validation as LoadSnapshotMapped; bit-identical result.
StatusOr<CsrGraph> LoadSnapshotBuffered(
    const std::string& path, const SnapshotOptions& options = SnapshotOptions());

/// Reads header + checksum metadata without materializing a graph.
StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path);

}  // namespace mhbc
