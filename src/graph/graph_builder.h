#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "util/status.h"

/// \file
/// Mutable accumulator that validates and finalizes CsrGraph instances.

namespace mhbc {

/// Collects edges and finalizes them into an immutable CsrGraph.
///
/// Policy, matching the paper's graph model (§2): self-loops and duplicate
/// edges are rejected by default (Build returns InvalidArgument) but can be
/// silently dropped/merged via the setters, which the file loaders use since
/// raw SNAP files contain both directions of each edge. In directed mode
/// (set_directed) AddEdge records the oriented arc u→v, a duplicate is the
/// same ordered pair (so the reciprocal pair u→v plus v→u is two distinct
/// arcs), and Build finalizes the out-CSR plus the in-CSR transpose.
class GraphBuilder {
 public:
  /// `num_vertices` fixes the id range [0, n).
  explicit GraphBuilder(VertexId num_vertices);

  /// Adds the undirected edge {u,v} — or the arc u→v in directed mode —
  /// with weight 1.
  void AddEdge(VertexId u, VertexId v);

  /// Adds the undirected edge {u,v} — or the arc u→v in directed mode —
  /// with positive weight w. Mixing weighted and unweighted edges makes
  /// the graph weighted (unweighted edges keep weight 1).
  void AddWeightedEdge(VertexId u, VertexId v, double w);

  /// Build a directed graph: edges keep their orientation. Must be set
  /// before the first AddEdge (orientation is normalized away at insert
  /// time in undirected mode).
  GraphBuilder& set_directed(bool directed) {
    MHBC_DCHECK(edges_.empty());
    directed_ = directed;
    return *this;
  }

  /// Drop self-loops instead of failing.
  GraphBuilder& set_ignore_self_loops(bool ignore) {
    ignore_self_loops_ = ignore;
    return *this;
  }

  /// Merge duplicate edges (keeping the smallest weight) instead of failing.
  GraphBuilder& set_merge_duplicates(bool merge) {
    merge_duplicates_ = merge;
    return *this;
  }

  /// Number of edges accepted so far (before dedup).
  std::size_t num_pending_edges() const { return edges_.size(); }

  /// Validates and produces the CSR graph. Fails with InvalidArgument on
  /// out-of-range ids, non-positive weights, and (per policy) self-loops or
  /// duplicates.
  StatusOr<CsrGraph> Build();

 private:
  struct PendingEdge {
    VertexId u;
    VertexId v;
    double weight;
  };

  VertexId num_vertices_;
  std::vector<PendingEdge> edges_;
  bool directed_ = false;
  bool weighted_ = false;
  bool ignore_self_loops_ = false;
  bool merge_duplicates_ = false;
  Status deferred_error_;
};

}  // namespace mhbc
