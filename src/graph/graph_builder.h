#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "util/status.h"

/// \file
/// Mutable accumulator that validates and finalizes CsrGraph instances.

namespace mhbc {

/// Collects undirected edges and finalizes them into an immutable CsrGraph.
///
/// Policy, matching the paper's graph model (§2): self-loops and duplicate
/// edges are rejected by default (Build returns InvalidArgument) but can be
/// silently dropped/merged via the setters, which the file loaders use since
/// raw SNAP files contain both directions of each edge.
class GraphBuilder {
 public:
  /// `num_vertices` fixes the id range [0, n).
  explicit GraphBuilder(VertexId num_vertices);

  /// Adds the undirected edge {u,v} with weight 1.
  void AddEdge(VertexId u, VertexId v);

  /// Adds the undirected edge {u,v} with positive weight w. Mixing weighted
  /// and unweighted edges makes the graph weighted (unweighted edges keep
  /// weight 1).
  void AddWeightedEdge(VertexId u, VertexId v, double w);

  /// Drop self-loops instead of failing.
  GraphBuilder& set_ignore_self_loops(bool ignore) {
    ignore_self_loops_ = ignore;
    return *this;
  }

  /// Merge duplicate edges (keeping the smallest weight) instead of failing.
  GraphBuilder& set_merge_duplicates(bool merge) {
    merge_duplicates_ = merge;
    return *this;
  }

  /// Number of edges accepted so far (before dedup).
  std::size_t num_pending_edges() const { return edges_.size(); }

  /// Validates and produces the CSR graph. Fails with InvalidArgument on
  /// out-of-range ids, non-positive weights, and (per policy) self-loops or
  /// duplicates.
  StatusOr<CsrGraph> Build();

 private:
  struct PendingEdge {
    VertexId u;
    VertexId v;
    double weight;
  };

  VertexId num_vertices_;
  std::vector<PendingEdge> edges_;
  bool weighted_ = false;
  bool ignore_self_loops_ = false;
  bool merge_duplicates_ = false;
  Status deferred_error_;
};

}  // namespace mhbc
