#pragma once

#include <vector>

#include "graph/csr_graph.h"

/// \file
/// Structural graph algorithms: connectivity, component extraction, and the
/// G \ r decomposition that Theorem 2's mu(r) analysis is defined on.

namespace mhbc {

/// Component label per vertex (labels dense in [0, #components)).
struct ComponentInfo {
  std::vector<VertexId> label;      // size n
  std::vector<VertexId> sizes;      // size #components
  VertexId num_components = 0;
};

/// Connected components via BFS.
ComponentInfo ConnectedComponents(const CsrGraph& graph);

/// True if the graph is connected (and non-empty).
bool IsConnected(const CsrGraph& graph);

/// Induced subgraph on the largest connected component; vertex ids are
/// compacted preserving relative order. Name gains a "_lcc" suffix.
CsrGraph ExtractLargestComponent(const CsrGraph& graph);

/// Sizes of the connected components of G \ r (the set the paper denotes
/// C = {C1, .., Cl} in Theorem 2), in no particular order.
std::vector<VertexId> RemovedVertexComponentSizes(const CsrGraph& graph,
                                                  VertexId r);

/// True if r is a *balanced vertex separator* in the paper's generalized
/// sense (§4.2): G \ r has >= 2 components and at least two of them have
/// >= `theta_fraction` * n vertices.
bool IsBalancedSeparator(const CsrGraph& graph, VertexId r,
                         double theta_fraction);

/// Induced subgraph on `keep` (ids compacted in the order given; `keep`
/// must contain distinct valid ids).
CsrGraph InducedSubgraph(const CsrGraph& graph,
                         const std::vector<VertexId>& keep);

/// Rebuilds `graph` with vertex ids renamed by the bijection
/// `new_id[old] = new` (size n, a permutation of [0, n)). Adjacency,
/// weights, and the name are preserved: the result has an edge
/// {new_id[u], new_id[v]} of weight w exactly where the input has {u, v}
/// of weight w. The ingestion pipeline uses this for cache-locality
/// relabeling (graph/ingest.h).
CsrGraph ApplyVertexPermutation(const CsrGraph& graph,
                                const std::vector<VertexId>& new_id);

/// The degree-descending relabel permutation (`result[old] = new`): the
/// highest-degree vertex becomes id 0, ties broken by ascending old id.
/// Feeding it to ApplyVertexPermutation packs hub adjacency at the front
/// of the CSR arrays, which improves cache locality for the skewed-degree
/// SNAP graphs the paper evaluates on.
std::vector<VertexId> DegreeDescendingPermutation(const CsrGraph& graph);

}  // namespace mhbc
