#include "datasets/registry.h"

#include <filesystem>
#include <system_error>
#include <utility>

#include "graph/generators.h"
#include "graph/graph_algos.h"
#include "graph/snapshot.h"

namespace mhbc {

namespace {

/// Every dataset must be connected (the paper's model). Generators with a
/// connectivity risk (ER, WS rewiring) extract the largest component.
CsrGraph Connected(CsrGraph graph, const char* name) {
  if (!IsConnected(graph)) graph = ExtractLargestComponent(graph);
  graph.set_name(name);
  return graph;
}

CsrGraph MakeKarateScale() {
  // Small social-club scale: caveman communities with dense cores.
  return Connected(MakeConnectedCaveman(4, 9), "caveman-36");
}

CsrGraph MakeEmailLike() {
  // email-Enron-like: scale-free hub-and-spoke communication graph.
  return Connected(MakeBarabasiAlbert(1'000, 3, 0xE411), "email-like-1k");
}

CsrGraph MakeCollabLike() {
  // ca-GrQc-like: collaboration network, scale-free with denser cores.
  return Connected(MakeBarabasiAlbert(2'500, 2, 0xCA11AB), "collab-like-2.5k");
}

CsrGraph MakeP2pLike() {
  // p2p-Gnutella-like: sparse near-random overlay.
  return Connected(MakeErdosRenyiGnp(3'000, 0.0015, 0x9EE4), "p2p-like-3k");
}

CsrGraph MakeRoadLike() {
  // roadNet-like: high-diameter, near-planar lattice.
  return Connected(MakeGrid(45, 45), "road-like-grid45");
}

CsrGraph MakeSmallWorld() {
  // Watts-Strogatz small world (social-network clustering).
  return Connected(MakeWattsStrogatz(1'500, 8, 0.05, 0x5411), "smallworld-1.5k");
}

CsrGraph MakeCommunityRing() {
  // Girvan-Newman style planted communities joined by bridges.
  return Connected(MakeConnectedCaveman(12, 25), "community-ring-300");
}

CsrGraph MakeSocialLarge() {
  // com-DBLP-scale stand-in (kept modest for 1-core exact ground truth in
  // benches that need it; scalability benches generate larger ad hoc).
  return Connected(MakeBarabasiAlbert(8'000, 4, 0xD81F), "social-like-8k");
}

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* kRegistry = new std::vector<DatasetSpec>{
      {"caveman-36", "karate-club scale", "caveman communities", &MakeKarateScale},
      {"community-ring-300", "planted-community benchmarks", "caveman ring",
       &MakeCommunityRing},
      {"email-like-1k", "email-Enron", "Barabasi-Albert m=3", &MakeEmailLike},
      {"smallworld-1.5k", "social small-world", "Watts-Strogatz k=8 beta=.05",
       &MakeSmallWorld},
      {"collab-like-2.5k", "ca-GrQc / ca-HepTh", "Barabasi-Albert m=2",
       &MakeCollabLike},
      {"p2p-like-3k", "p2p-Gnutella", "Erdos-Renyi G(n,p)", &MakeP2pLike},
      {"road-like-grid45", "roadNet (patch)", "2-D grid 45x45", &MakeRoadLike},
      {"social-like-8k", "com-DBLP (scaled)", "Barabasi-Albert m=4",
       &MakeSocialLarge},
  };
  return *kRegistry;
}

}  // namespace

const std::vector<DatasetSpec>& DatasetRegistry() { return AllDatasets(); }

StatusOr<CsrGraph> MakeDataset(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == name) return spec.make();
  }
  return Status::NotFound("no dataset named '" + name + "' in the registry");
}

StatusOr<GraphSource> MaterializeDataset(const std::string& name,
                                         const std::string& cache_dir) {
  namespace fs = std::filesystem;
  StatusOr<CsrGraph> (*build)(const std::string&) = &MakeDataset;
  if (cache_dir.empty()) {
    auto graph = build(name);
    if (!graph.ok()) return graph.status();
    return GraphSource::FromOwned(std::move(graph).value(),
                                  GraphFileFormat::kSnapshot);
  }
  const fs::path cache_file =
      fs::path(cache_dir) / (name + kSnapshotExtension);
  std::error_code ec;
  if (fs::exists(cache_file, ec)) {
    auto cached = GraphSource::FromSnapshotFile(
        cache_file.string(), SnapshotOptions(), /*cache_hit=*/true,
        GraphFileFormat::kSnapshot);
    if (cached.ok()) return cached;
    // Corrupt or version-stale entry: regenerate and overwrite below.
  }
  auto graph = build(name);
  if (!graph.ok()) return graph.status();
  fs::create_directories(cache_dir, ec);
  if (!ec && SaveSnapshot(graph.value(), cache_file.string()).ok()) {
    auto cached = GraphSource::FromSnapshotFile(
        cache_file.string(), SnapshotOptions(), /*cache_hit=*/false,
        GraphFileFormat::kSnapshot);
    if (cached.ok()) return cached;
  }
  // Cache I/O failed; the generated graph is still good.
  return GraphSource::FromOwned(std::move(graph).value(),
                                GraphFileFormat::kSnapshot);
}

std::vector<std::string> DefaultExperimentDatasets() {
  return {"caveman-36", "community-ring-300", "email-like-1k",
          "smallworld-1.5k", "road-like-grid45"};
}

}  // namespace mhbc
