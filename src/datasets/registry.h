#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/ingest.h"
#include "util/status.h"

/// \file
/// Named experiment datasets.
///
/// The EDBT evaluation line uses SNAP networks; offline, the registry maps
/// each to a deterministic synthetic stand-in of the same topology class
/// and comparable scale (DESIGN.md §4 documents the substitution). Real
/// SNAP edge-list files can be substituted at run time via
/// LoadSnapEdgeList — the registry is what keeps benches self-contained.

namespace mhbc {

/// A dataset the experiment suite can materialize on demand.
struct DatasetSpec {
  /// Registry key, e.g. "ca-collab-like".
  std::string name;
  /// SNAP dataset this stands in for (documentation only).
  std::string stands_in_for;
  /// Topology class description for tables.
  std::string family;
  /// Construction is deterministic given the spec (fixed internal seed).
  CsrGraph (*make)();
};

/// All registered datasets, ordered small to large.
const std::vector<DatasetSpec>& DatasetRegistry();

/// Builds a registered dataset by name.
StatusOr<CsrGraph> MakeDataset(const std::string& name);

/// Materializes a registered dataset through a snapshot cache: the first
/// call generates the graph and writes `<cache_dir>/<name>.mhbc`
/// (graph/snapshot.h); later calls mmap-load that snapshot zero-copy and
/// report GraphSource::cache_hit(). Registry datasets are deterministic,
/// so the dataset name is the whole cache key; delete the file (or pass a
/// fresh directory) after changing a generator. With an empty `cache_dir`
/// this degrades to MakeDataset wrapped in a GraphSource, and any cache
/// I/O failure degrades the same way — materialization never fails for
/// cache reasons.
StatusOr<GraphSource> MaterializeDataset(const std::string& name,
                                         const std::string& cache_dir);

/// The subset of registry names used by the fast experiment defaults
/// (graphs small enough for exact ground truth on one core).
std::vector<std::string> DefaultExperimentDatasets();

}  // namespace mhbc
