#include "sp/distance.h"

#include <queue>
#include <utility>

namespace mhbc {

std::vector<std::uint32_t> BfsDistances(const CsrGraph& graph,
                                        VertexId source) {
  MHBC_DCHECK(source < graph.num_vertices());
  std::vector<std::uint32_t> dist(graph.num_vertices(), kUnreachedDistance);
  std::vector<VertexId> queue;
  queue.reserve(graph.num_vertices());
  queue.push_back(source);
  dist[source] = 0;
  std::size_t head = 0;
  while (head < queue.size()) {
    const VertexId u = queue[head++];
    for (VertexId v : graph.neighbors(u)) {
      if (dist[v] == kUnreachedDistance) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<double> DijkstraDistances(const CsrGraph& graph, VertexId source) {
  MHBC_DCHECK(source < graph.num_vertices());
  const VertexId n = graph.num_vertices();
  std::vector<double> dist(n, -1.0);
  std::vector<char> settled(n, 0);
  using HeapEntry = std::pair<double, VertexId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [du, u] = heap.top();
    heap.pop();
    if (settled[u]) continue;
    settled[u] = 1;
    const auto nbrs = graph.neighbors(u);
    const auto wts = graph.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (settled[v]) continue;
      const double w = graph.weighted() ? wts[i] : 1.0;
      const double candidate = du + w;
      if (dist[v] < 0.0 || candidate < dist[v]) {
        dist[v] = candidate;
        heap.emplace(candidate, v);
      }
    }
  }
  return dist;
}

}  // namespace mhbc
