#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "sp/bfs_spd.h"
#include "sp/delta_spd.h"
#include "sp/dijkstra_spd.h"

/// \file
/// Brandes dependency accumulation over a shortest-path DAG.
///
/// Computes the dependency scores delta_{s.}(v) of the pass source s on
/// every vertex v via the recursion (paper Eq. 4):
///   delta_{s.}(v) = sum over SPD-successors w of v of
///                   sigma_sv / sigma_sw * (1 + delta_{s.}(w)).
/// One accumulation costs O(|E|) after a BFS pass, O(|E|) after a weighted
/// pass — and only O(|SPD edges|) when the pass recorded explicit
/// predecessor lists (the weighted engines and the hybrid BFS kernel do),
/// because the backward sweep then walks the recorded parents instead of
/// re-deriving them by full neighbor rescans.
///
/// The sweep order is fixed by ForEachDeepestFirst (sp/spd.h): levels
/// deepest-first, in the DAG's canonical within-level order (ascending id
/// for BFS levels, ascending (wdist, id) for DeltaSpd waves). That order
/// is a property of the DAG alone — not of the traversal direction that
/// built it — which is what makes dependency vectors bit-identical across
/// SPD kernels and α/β settings.
///
/// With a borrowed worker pool the sweep runs level-parallel under the
/// same fixed-shard discipline as the BFS kernels for every DAG that
/// carries level offsets — BFS levels and DeltaSpd settle waves alike: per
/// level, fixed shards of the level slice bucket per-parent contributions
/// sigma_v * coeff_w by destination range, then each range owner folds its
/// deltas walking the buckets in shard order. For any fixed parent the
/// contributions fold in level-slice order — exactly the sequential
/// sweep's regrouping — so delta vectors stay bit-identical at every
/// thread count. Heap-order (Dijkstra) DAGs carry no level structure and
/// keep the sequential reverse-settle sweep.

namespace mhbc {

class ThreadPool;

/// Reusable accumulator bound to one graph.
class DependencyAccumulator {
 public:
  /// `pool` (optional, non-owning, may be null) enables the level-parallel
  /// sweep for DAGs that carry level offsets; callers share the SPD
  /// engine's pool (BfsSpd::intra_pool) so one pass + accumulate uses one
  /// set of threads. Levels whose degree sum is below `parallel_grain` run
  /// the (bit-identical) sequential body; the default matches
  /// SpdOptions::parallel_grain.
  explicit DependencyAccumulator(const CsrGraph& graph,
                                 ThreadPool* pool = nullptr,
                                 std::uint64_t parallel_grain =
                                     SpdOptions{}.parallel_grain);

  /// Accumulates dependencies of `dag.source` on all vertices — the single
  /// backward-sweep implementation every pass flavor (classic BFS, hybrid
  /// BFS, Dijkstra) funnels through. `graph` must be the graph the pass
  /// ran on; it is consulted only when the DAG carries no predecessor
  /// lists. Result valid until the next Accumulate call.
  const std::vector<double>& Accumulate(const ShortestPathDag& dag,
                                        const CsrGraph& graph);

  /// Convenience overloads for the engines.
  const std::vector<double>& Accumulate(const BfsSpd& bfs);
  const std::vector<double>& Accumulate(const DeltaSpd& delta);
  const std::vector<double>& Accumulate(const DijkstraSpd& dijkstra);

  /// Dependency of the last pass' source on v (0 for unreached vertices and
  /// for the source itself).
  double delta(VertexId v) const {
    MHBC_DCHECK(v < delta_.size());
    return delta_[v];
  }

  const std::vector<double>& deltas() const { return delta_; }

 private:
  /// One bucketed backward-sweep contribution: delta_[v] += c.
  struct Contribution {
    VertexId v;
    double c;
  };

  /// Level-parallel sweep over the recorded level structure (BFS DAGs).
  void AccumulateLevels(const ShortestPathDag& dag, const CsrGraph& graph);
  /// Lazily sizes destination ranges + buckets (same geometry rules as
  /// BfsSpd::EnsureParallelScratch — a pure function of |V|).
  void EnsureParallelScratch();

  std::vector<double> delta_;
  std::vector<VertexId> touched_;

  /// Intra-pass parallel state; pool_ null = always-sequential sweep.
  ThreadPool* pool_ = nullptr;
  std::uint64_t parallel_grain_ = 0;
  std::size_t num_vertices_ = 0;
  std::size_t num_ranges_ = 0;
  std::uint32_t range_shift_ = 0;
  /// Contribution buckets, indexed [shard * num_ranges_ + range].
  std::vector<std::vector<Contribution>> buckets_;
};

/// Pair dependency delta_{st}(v) = sigma_st(v) / sigma_st for all v, given a
/// fresh BFS engine. O(|V| + |E|) per (s, t) pair; used by tests as an
/// independent oracle for the recursion and by the extended relative score.
/// Unreachable t yields all-zeros.
std::vector<double> PairDependencies(const CsrGraph& graph, VertexId s,
                                     VertexId t);

/// sigma_st(v): number of shortest s-t paths through interior vertex v,
/// computed from two BFS passes as sigma_sv * sigma_vt when
/// d(s,v) + d(v,t) == d(s,t). Exposed for tests.
SigmaCount CountPathsThrough(const CsrGraph& graph, VertexId s, VertexId t,
                             VertexId v);

}  // namespace mhbc
