#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "sp/bfs_spd.h"
#include "sp/dijkstra_spd.h"

/// \file
/// Brandes dependency accumulation over a shortest-path DAG.
///
/// Computes the dependency scores delta_{s.}(v) of the pass source s on
/// every vertex v via the recursion (paper Eq. 4):
///   delta_{s.}(v) = sum over SPD-successors w of v of
///                   sigma_sv / sigma_sw * (1 + delta_{s.}(w)).
/// One accumulation costs O(|E|) after a BFS pass, O(|E|) after a Dijkstra
/// pass — and only O(|SPD edges|) when the pass recorded explicit
/// predecessor lists (the Dijkstra engine and the hybrid BFS kernel do),
/// because the backward sweep then walks the recorded parents instead of
/// re-deriving them by full neighbor rescans.
///
/// The sweep order is fixed by ForEachDeepestFirst (sp/spd.h): levels
/// deepest-first, ascending vertex id within a level. That order is a
/// property of the DAG alone — not of the traversal direction that built
/// it — which is what makes dependency vectors bit-identical across SPD
/// kernels and α/β settings.

namespace mhbc {

/// Reusable accumulator bound to one graph.
class DependencyAccumulator {
 public:
  explicit DependencyAccumulator(const CsrGraph& graph);

  /// Accumulates dependencies of `dag.source` on all vertices — the single
  /// backward-sweep implementation every pass flavor (classic BFS, hybrid
  /// BFS, Dijkstra) funnels through. `graph` must be the graph the pass
  /// ran on; it is consulted only when the DAG carries no predecessor
  /// lists. Result valid until the next Accumulate call.
  const std::vector<double>& Accumulate(const ShortestPathDag& dag,
                                        const CsrGraph& graph);

  /// Convenience overloads for the two engines.
  const std::vector<double>& Accumulate(const BfsSpd& bfs);
  const std::vector<double>& Accumulate(const DijkstraSpd& dijkstra);

  /// Dependency of the last pass' source on v (0 for unreached vertices and
  /// for the source itself).
  double delta(VertexId v) const {
    MHBC_DCHECK(v < delta_.size());
    return delta_[v];
  }

  const std::vector<double>& deltas() const { return delta_; }

 private:
  std::vector<double> delta_;
  std::vector<VertexId> touched_;
};

/// Pair dependency delta_{st}(v) = sigma_st(v) / sigma_st for all v, given a
/// fresh BFS engine. O(|V| + |E|) per (s, t) pair; used by tests as an
/// independent oracle for the recursion and by the extended relative score.
/// Unreachable t yields all-zeros.
std::vector<double> PairDependencies(const CsrGraph& graph, VertexId s,
                                     VertexId t);

/// sigma_st(v): number of shortest s-t paths through interior vertex v,
/// computed from two BFS passes as sigma_sv * sigma_vt when
/// d(s,v) + d(v,t) == d(s,t). Exposed for tests.
SigmaCount CountPathsThrough(const CsrGraph& graph, VertexId s, VertexId t,
                             VertexId v);

}  // namespace mhbc
