#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "sp/spd.h"

/// \file
/// Unweighted shortest-path-DAG construction by level-synchronous BFS.
///
/// Two kernels behind one engine (selected via SpdOptions::kernel):
///
///   kClassic — top-down expansion on every level.
///   kHybrid  — direction-optimizing traversal (Beamer, "Direction-
///              Optimizing Breadth-First Search"): per level, expand the
///              frontier top-down or scan unvisited vertices bottom-up
///              against a visited bitmap, whichever examines fewer edges
///              (the α/β heuristics in SpdOptions). Sigma counting stays
///              exact in both directions: a bottom-up step sums sigma over
///              a vertex's neighbors at the previous depth — the same
///              ascending-parent fold a top-down step performs against the
///              sorted frontier — so dist, sigma, and the canonical order
///              are bit-identical across kernels and α/β settings.
///
/// Both kernels emit the canonical DAG order (ascending vertex id within
/// each level, level slices recorded in ShortestPathDag::level_offsets).
/// The hybrid kernel additionally records explicit predecessor lists while
/// it traverses — it inspects every parent edge anyway — which is what lets
/// the fused backward sweep (sp/dependency.h) walk SPD edges only instead
/// of re-deriving parents by full neighbor rescans.

namespace mhbc {

/// Reusable BFS engine for one graph.
///
/// Run(source) costs O(|E|) with no allocation after the first call: state
/// is reset lazily via the previous pass' order. The engine is
/// single-threaded and not reentrant; samplers own one instance each.
class BfsSpd {
 public:
  /// Work counters of one pass (and totals across passes). "Edges
  /// examined" counts neighbor-list entries inspected: a top-down level
  /// examines the frontier's degree sum, a bottom-up level the degree sum
  /// of still-unvisited vertices.
  struct Stats {
    std::uint64_t edges_examined = 0;
    std::uint32_t top_down_levels = 0;
    std::uint32_t bottom_up_levels = 0;
    std::uint32_t direction_switches = 0;
  };

  /// The graph must outlive the engine.
  explicit BfsSpd(const CsrGraph& graph, SpdOptions options = SpdOptions());

  /// Computes dist/sigma/order (+ level offsets, + predecessors for the
  /// hybrid kernel) from `source`.
  void Run(VertexId source);

  /// Result of the last Run. Valid until the next Run.
  const ShortestPathDag& dag() const { return dag_; }

  const CsrGraph& graph() const { return *graph_; }
  const SpdOptions& options() const { return options_; }

  /// Counters of the last Run / summed over all Runs.
  const Stats& last_stats() const { return last_stats_; }
  const Stats& total_stats() const { return total_stats_; }

  /// True once the hybrid scratch (visited bitmap + predecessor storage)
  /// has been allocated. The classic kernel never allocates it, and the
  /// hybrid kernel falls back to the classic path — without touching the
  /// scratch — on degenerate graphs (no edges or a single vertex), where
  /// direction optimization has nothing to optimize.
  bool hybrid_scratch_allocated() const { return !visited_.empty(); }

 private:
  /// Top-down-only level loop (also the degenerate-graph fallback).
  void RunClassic(VertexId source);
  /// Direction-optimizing level loop.
  void RunHybrid(VertexId source);

  void SetVisited(VertexId v) {
    visited_[v >> 6] |= std::uint64_t{1} << (v & 63);
  }
  void ClearVisited(VertexId v) {
    visited_[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
  }

  const CsrGraph* graph_;
  SpdOptions options_;
  ShortestPathDag dag_;
  /// Frontier scratch: current level / next level under construction.
  std::vector<VertexId> frontier_;
  std::vector<VertexId> next_;
  /// Visited bitmap (one bit per vertex); lazily allocated by the first
  /// hybrid pass, empty otherwise.
  std::vector<std::uint64_t> visited_;
  Stats last_stats_;
  Stats total_stats_;
};

}  // namespace mhbc
