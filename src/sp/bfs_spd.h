#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr_graph.h"
#include "sp/spd.h"

/// \file
/// Unweighted shortest-path-DAG construction by level-synchronous BFS.
///
/// Two kernels behind one engine (selected via SpdOptions::kernel):
///
///   kClassic — top-down expansion on every level.
///   kHybrid  — direction-optimizing traversal (Beamer, "Direction-
///              Optimizing Breadth-First Search"): per level, expand the
///              frontier top-down or scan unvisited vertices bottom-up
///              against a visited bitmap, whichever examines fewer edges
///              (the α/β heuristics in SpdOptions). Sigma counting stays
///              exact in both directions: a bottom-up step sums sigma over
///              a vertex's neighbors at the previous depth — the same
///              ascending-parent fold a top-down step performs against the
///              sorted frontier — so dist, sigma, and the canonical order
///              are bit-identical across kernels and α/β settings.
///
/// Both kernels emit the canonical DAG order (ascending vertex id within
/// each level, level slices recorded in ShortestPathDag::level_offsets).
/// The hybrid kernel additionally records explicit predecessor lists while
/// it traverses — it inspects every parent edge anyway — which is what lets
/// the fused backward sweep (sp/dependency.h) walk SPD edges only instead
/// of re-deriving parents by full neighbor rescans.
///
/// Intra-pass parallelism (SpdOptions::num_threads > 1) runs the level
/// steps of either kernel frontier-parallel while keeping every output
/// bit-identical to the sequential pass. The structure is fixed and
/// thread-count-independent (the same discipline BrandesBetweenness uses
/// across sources):
///
///   * The frontier is split into kFrontierShards contiguous slices; the
///     vertex-id space into contiguous 64-aligned *destination ranges*
///     (a pure function of |V|, at most kFrontierShards of them).
///   * A top-down level runs two ParallelShardedLevel phases: frontier
///     shards bucket candidate DAG edges by destination range (dist is
///     read-only), then each range owner settles its vertices, folding
///     sigma and appending parents by walking the buckets in shard order —
///     which for any fixed vertex is ascending parent id, the exact
///     sequential fold order.
///   * A bottom-up level partitions the visited bitmap by word ranges;
///     each owner runs the sequential scan body on its words (every write
///     — dist/sigma/preds/bitmap — lands in the owned range) and tests
///     parents against a read-only frontier bitmap.
///   * Per-range next-frontier segments are sorted locally and
///     concatenated in range order, reproducing the globally sorted
///     frontier the sequential kernels build.
///
/// Levels below SpdOptions::parallel_grain examined edges run the
/// (identical-output) sequential step, so tiny levels pay no fan-out cost.
///
/// Directed graphs: top-down expansion walks out-edges and every parent
/// scan — the bottom-up step and recorded predecessor lists — walks
/// in-edges (CsrGraph::in_neighbors, the transpose view), which on
/// undirected graphs alias the out-edges, so the undirected pass is
/// unchanged. The direction heuristic's two ledgers split accordingly:
/// m_f is the frontier's out-degree sum, m_u the unvisited vertices'
/// in-degree sum. The sharded geometry and the determinism argument are
/// direction-blind (both CSRs are sorted), so directed passes keep the
/// bit-identity contract at every thread count.

namespace mhbc {

class ThreadPool;

/// Reusable BFS engine for one graph.
///
/// Run(source) costs O(|E|) with no allocation after the first call: state
/// is reset lazily via the previous pass' order. The engine is not
/// reentrant — one Run at a time; with SpdOptions::num_threads > 1 a Run
/// internally fans level steps out over an owned worker pool (see the
/// intra-pass notes above), which callers can share for the fused
/// dependency sweep via intra_pool(). Samplers own one instance each.
class BfsSpd {
 public:
  /// Work counters of one pass (and totals across passes). "Edges
  /// examined" counts neighbor-list entries inspected: a top-down level
  /// examines the frontier's degree sum, a bottom-up level the degree sum
  /// of still-unvisited vertices.
  struct Stats {
    std::uint64_t edges_examined = 0;
    std::uint32_t top_down_levels = 0;
    std::uint32_t bottom_up_levels = 0;
    std::uint32_t direction_switches = 0;
  };

  /// Fixed number of frontier shards (and the cap on destination ranges)
  /// a parallel level step uses. A constant — never derived from the
  /// thread count — which is what makes the shard-merge order, and with it
  /// every sigma/delta regrouping, identical at any parallelism level.
  static constexpr std::size_t kFrontierShards = 32;

  /// The graph must outlive the engine.
  explicit BfsSpd(const CsrGraph& graph, SpdOptions options = SpdOptions());
  ~BfsSpd();

  /// Computes dist/sigma/order (+ level offsets, + predecessors for the
  /// hybrid kernel) from `source`.
  void Run(VertexId source);

  /// Result of the last Run. Valid until the next Run.
  const ShortestPathDag& dag() const { return dag_; }

  const CsrGraph& graph() const { return *graph_; }
  const SpdOptions& options() const { return options_; }

  /// Counters of the last Run / summed over all Runs.
  const Stats& last_stats() const { return last_stats_; }
  const Stats& total_stats() const { return total_stats_; }

  /// True once the hybrid scratch (visited bitmap + predecessor storage)
  /// has been allocated. The classic kernel never allocates it, and the
  /// hybrid kernel falls back to the classic path — without touching the
  /// scratch — on degenerate graphs (no edges or a single vertex), where
  /// direction optimization has nothing to optimize.
  bool hybrid_scratch_allocated() const { return !visited_.empty(); }

  /// The engine's intra-pass worker pool; null when the pass is sequential
  /// (SpdOptions::num_threads resolved to 1). The fused dependency sweep
  /// borrows this pool so one pass + accumulate uses one set of threads.
  ThreadPool* intra_pool() const { return pool_.get(); }

 private:
  /// Top-down-only level loop (also the degenerate-graph fallback).
  void RunClassic(VertexId source);
  /// Direction-optimizing level loop.
  void RunHybrid(VertexId source);

  /// True when a level with `level_edges` of work should fan out: a pool
  /// exists and the level clears the (thread-count-independent) grain.
  bool UseParallel(std::uint64_t level_edges) const {
    return pool_ != nullptr && level_edges >= options_.parallel_grain;
  }
  /// Lazily sizes the destination ranges + per-shard buckets (a pure
  /// function of |V|).
  void EnsureParallelScratch();
  /// Frontier-parallel top-down level step: settles depth+1, fills next_
  /// (sorted) and returns its out-degree sum; adds the new level's
  /// in-degree sum (the bottom-up cost ledger, which differs from the
  /// out-degree sum on directed graphs) to *next_in_edges. record_preds
  /// selects the hybrid variant (visited bits + predecessor lists).
  std::uint64_t TopDownLevelParallel(std::uint32_t depth, bool record_preds,
                                     std::uint64_t* next_in_edges);
  /// Word-range-parallel bottom-up level step; same outputs as above,
  /// always records predecessors (hybrid only).
  std::uint64_t BottomUpLevelParallel(std::uint32_t depth,
                                      std::uint64_t tail_mask,
                                      std::uint64_t* next_in_edges);

  void SetVisited(VertexId v) {
    visited_[v >> 6] |= std::uint64_t{1} << (v & 63);
  }
  void ClearVisited(VertexId v) {
    visited_[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
  }

  const CsrGraph* graph_;
  SpdOptions options_;
  ShortestPathDag dag_;
  /// Frontier scratch: current level / next level under construction.
  std::vector<VertexId> frontier_;
  std::vector<VertexId> next_;
  /// Visited bitmap (one bit per vertex); lazily allocated by the first
  /// hybrid pass, empty otherwise.
  std::vector<std::uint64_t> visited_;
  Stats last_stats_;
  Stats total_stats_;

  /// A candidate DAG edge found by a top-down frontier shard: v is
  /// unreached at level start, u its frontier parent.
  struct TdCandidate {
    VertexId v;
    VertexId u;
  };

  /// Intra-pass parallel state; pool_ is null (and the scratch below
  /// empty) when the engine runs sequentially.
  std::unique_ptr<ThreadPool> pool_;
  /// Destination-range geometry: range of v is v >> range_shift_;
  /// num_ranges_ <= kFrontierShards. Ranges are 64-aligned so every
  /// visited-bitmap word has exactly one owner.
  std::size_t num_ranges_ = 0;
  std::uint32_t range_shift_ = 0;
  /// Candidate buckets, indexed [shard * num_ranges_ + range]; capacity is
  /// retained across levels and passes.
  std::vector<std::vector<TdCandidate>> buckets_;
  /// Per-range next-frontier segments + their out-/in-degree sums.
  std::vector<std::vector<VertexId>> range_next_;
  std::vector<std::uint64_t> range_edges_;
  std::vector<std::uint64_t> range_in_edges_;
  /// Bit-per-vertex image of the current frontier, published before a
  /// parallel bottom-up step so the parent test never reads a dist entry
  /// another range owner may be writing. All-zero outside a step.
  std::vector<std::uint64_t> frontier_bits_;
};

}  // namespace mhbc
