#ifndef MHBC_SP_BFS_SPD_H_
#define MHBC_SP_BFS_SPD_H_

#include <vector>

#include "graph/csr_graph.h"
#include "sp/spd.h"

/// \file
/// Unweighted shortest-path-DAG construction by BFS.

namespace mhbc {

/// Reusable BFS engine for one graph.
///
/// Run(source) costs O(|E|) with no allocation after the first call: state
/// is reset lazily via the previous pass' settle order. The engine is
/// single-threaded and not reentrant; samplers own one instance each.
class BfsSpd {
 public:
  /// The graph must outlive the engine.
  explicit BfsSpd(const CsrGraph& graph);

  /// Computes dist/sigma/order from `source`.
  void Run(VertexId source);

  /// Result of the last Run. Valid until the next Run.
  const ShortestPathDag& dag() const { return dag_; }

  const CsrGraph& graph() const { return *graph_; }

 private:
  const CsrGraph* graph_;
  ShortestPathDag dag_;
  std::vector<VertexId> queue_;
};

}  // namespace mhbc

#endif  // MHBC_SP_BFS_SPD_H_
