#include "sp/bfs_spd.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/thread_pool.h"

namespace mhbc {

BfsSpd::BfsSpd(const CsrGraph& graph, SpdOptions options)
    : graph_(&graph), options_(options) {
  const VertexId n = graph.num_vertices();
  dag_.dist.assign(n, kUnreachedDistance);
  dag_.sigma.assign(n, 0);
  dag_.order.reserve(n);
  dag_.weighted = false;
  frontier_.reserve(n);
  next_.reserve(n);
  // num_threads == 0 means "inherit": standalone construction has nothing
  // to inherit from, so it stays sequential; an owning engine substitutes
  // its resolved count before constructing us (see BetweennessEngine).
  const unsigned intra = options_.num_threads == 0 ? 1 : options_.num_threads;
  if (intra > 1) pool_ = std::make_unique<ThreadPool>(intra);
}

BfsSpd::~BfsSpd() = default;

void BfsSpd::Run(VertexId source) {
  MHBC_DCHECK(source < graph_->num_vertices());
  // Reset only what the previous pass touched.
  const bool reset_bitmap = !visited_.empty();
  const bool reset_preds = dag_.has_predecessors;
  for (VertexId v : dag_.order) {
    dag_.dist[v] = kUnreachedDistance;
    dag_.sigma[v] = 0;
    if (reset_bitmap) ClearVisited(v);
    if (reset_preds) dag_.pred_count[v] = 0;
  }
  dag_.order.clear();
  dag_.level_offsets.clear();
  dag_.has_predecessors = false;
  dag_.source = source;
  last_stats_ = Stats();

  // Degenerate graphs take the classic path unconditionally: with no edges
  // (or a single vertex) there is no direction to optimize, and the hybrid
  // scratch must stay untouched (it is lazily allocated by the first real
  // hybrid pass).
  const bool degenerate =
      graph_->num_vertices() <= 1 || graph_->num_edges() == 0;
  if (options_.kernel == SpdKernel::kClassic || degenerate) {
    RunClassic(source);
  } else {
    RunHybrid(source);
  }

  total_stats_.edges_examined += last_stats_.edges_examined;
  total_stats_.top_down_levels += last_stats_.top_down_levels;
  total_stats_.bottom_up_levels += last_stats_.bottom_up_levels;
  total_stats_.direction_switches += last_stats_.direction_switches;
}

void BfsSpd::RunClassic(VertexId source) {
  dag_.dist[source] = 0;
  dag_.sigma[source] = 1;
  frontier_.clear();
  frontier_.push_back(source);
  // Degree sum of the current frontier, maintained incrementally (add each
  // discovery's degree) so the parallel-or-sequential choice for a level
  // is known before expanding it.
  std::uint64_t frontier_edges = graph_->degree(source);
  std::uint32_t depth = 0;
  while (!frontier_.empty()) {
    dag_.level_offsets.push_back(dag_.order.size());
    dag_.order.insert(dag_.order.end(), frontier_.begin(), frontier_.end());
    next_.clear();
    last_stats_.edges_examined += frontier_edges;
    ++last_stats_.top_down_levels;
    std::uint64_t next_edges = 0;
    std::uint64_t ignored_in_edges = 0;
    if (UseParallel(frontier_edges)) {
      next_edges = TopDownLevelParallel(depth, /*record_preds=*/false,
                                        &ignored_in_edges);
    } else {
      for (VertexId u : frontier_) {
        const SigmaCount su = dag_.sigma[u];
        for (VertexId v : graph_->neighbors(u)) {
          if (dag_.dist[v] == kUnreachedDistance) {
            dag_.dist[v] = depth + 1;
            next_.push_back(v);
            next_edges += graph_->degree(v);
          }
          if (dag_.dist[v] == depth + 1) dag_.sigma[v] += su;
        }
      }
      // Canonicalize the next level: ascending vertex id, so the stored
      // order (and the frontier the next iteration expands, which fixes
      // the sigma fold) is independent of discovery order.
      std::sort(next_.begin(), next_.end());
    }
    frontier_.swap(next_);
    frontier_edges = next_edges;
    ++depth;
  }
  dag_.level_offsets.push_back(dag_.order.size());
}

void BfsSpd::RunHybrid(VertexId source) {
  const VertexId n = graph_->num_vertices();
  if (visited_.empty()) {
    visited_.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
    // Parents reach a vertex over its in-edges, so predecessor capacity is
    // the in-CSR layout (aliases the out-CSR when undirected).
    dag_.pred_begin = graph_->raw_in_offsets().data();
    dag_.pred_count.assign(n, 0);
    dag_.pred_storage.assign(graph_->raw_in_adjacency().size(),
                             kInvalidVertex);
  }
  // Bits past n in the last bitmap word never correspond to vertices; mask
  // them out of every bottom-up word scan.
  const std::uint64_t tail_mask =
      (n & 63) ? ((std::uint64_t{1} << (n & 63)) - 1) : ~std::uint64_t{0};

  dag_.dist[source] = 0;
  dag_.sigma[source] = 1;
  SetVisited(source);
  frontier_.clear();
  frontier_.push_back(source);
  // Beamer's two aggregates: edges a top-down step would examine
  // (out-degree sum of the frontier) vs edges a bottom-up step would
  // examine (in-degree sum of unvisited vertices — the bottom-up parent
  // scan walks in-edges). Both are maintained incrementally; on
  // undirected graphs the two degree notions coincide.
  std::uint64_t frontier_edges = graph_->degree(source);
  std::uint64_t unexplored_edges =
      graph_->raw_in_adjacency().size() - graph_->in_degree(source);
  std::size_t prev_frontier_size = 0;
  bool bottom_up = false;
  std::uint32_t depth = 0;

  while (!frontier_.empty()) {
    dag_.level_offsets.push_back(dag_.order.size());
    dag_.order.insert(dag_.order.end(), frontier_.begin(), frontier_.end());

    // Per-level direction choice (Beamer's edge-count test). Expanding
    // this frontier top-down examines m_f edges (the frontier's degree
    // sum); bottom-up examines m_u (the unvisited vertices' degree sum)
    // but at a per-edge cost alpha times cheaper — the bottom-up loop is a
    // sequential ascending scan with no discovery bookkeeping and no
    // frontier sort. So bottom-up is the profitable direction for a level
    // exactly when m_f * alpha > m_u; the exit test is the negation, and
    // entry is additionally gated on a growing frontier (a shrinking one
    // is draining a tail top-down handles better — without this gate,
    // plateaued frontiers on high-diameter graphs flap directions for zero
    // savings). Beamer's n/beta tail rule is kept as a secondary exit.
    const bool growing = frontier_.size() >= prev_frontier_size;
    const bool profitable =
        options_.alpha > 0.0 &&
        static_cast<double>(frontier_edges) * options_.alpha >
            static_cast<double>(unexplored_edges);
    const bool was_bottom_up = bottom_up;
    if (!bottom_up) {
      bottom_up = growing && profitable;
    } else if (!profitable ||
               (!growing && options_.beta > 0.0 &&
                static_cast<double>(frontier_.size()) * options_.beta <
                    static_cast<double>(n))) {
      bottom_up = false;
    }
    if (bottom_up != was_bottom_up) ++last_stats_.direction_switches;
    prev_frontier_size = frontier_.size();

    next_.clear();
    std::uint64_t next_edges = 0;
    std::uint64_t next_in_edges = 0;
    if (bottom_up) {
      ++last_stats_.bottom_up_levels;
      last_stats_.edges_examined += unexplored_edges;
      if (UseParallel(unexplored_edges)) {
        next_edges = BottomUpLevelParallel(depth, tail_mask, &next_in_edges);
      } else {
        // Scan unvisited vertices in ascending id (so the next level needs
        // no sort) and gather all in-edge parents at the current depth; no
        // early exit — exact sigma needs every parent.
        for (std::size_t word = 0; word < visited_.size(); ++word) {
          std::uint64_t unvisited = ~visited_[word];
          if (word + 1 == visited_.size()) unvisited &= tail_mask;
          while (unvisited != 0) {
            const VertexId v = static_cast<VertexId>(
                (word << 6) + std::countr_zero(unvisited));
            unvisited &= unvisited - 1;
            SigmaCount sv = 0;
            std::uint32_t parents = 0;
            const std::size_t base = dag_.pred_begin[v];
            for (VertexId u : graph_->in_neighbors(v)) {
              if (dag_.dist[u] == depth) {
                sv += dag_.sigma[u];
                dag_.pred_storage[base + parents++] = u;
              }
            }
            if (parents != 0) {
              dag_.dist[v] = depth + 1;
              dag_.sigma[v] = sv;
              dag_.pred_count[v] = parents;
              SetVisited(v);
              next_.push_back(v);
              next_edges += graph_->degree(v);
              next_in_edges += graph_->in_degree(v);
            }
          }
        }
      }
    } else {
      ++last_stats_.top_down_levels;
      last_stats_.edges_examined += frontier_edges;
      if (UseParallel(frontier_edges)) {
        next_edges =
            TopDownLevelParallel(depth, /*record_preds=*/true, &next_in_edges);
      } else {
        for (VertexId u : frontier_) {
          const SigmaCount su = dag_.sigma[u];
          for (VertexId v : graph_->neighbors(u)) {
            if (dag_.dist[v] == kUnreachedDistance) {
              dag_.dist[v] = depth + 1;
              SetVisited(v);
              next_.push_back(v);
              next_edges += graph_->degree(v);
              next_in_edges += graph_->in_degree(v);
            }
            if (dag_.dist[v] == depth + 1) {
              // The frontier is sorted, so parents append in ascending id
              // — the same sequence a bottom-up in-neighbor scan records —
              // and sigma folds in the same order.
              dag_.sigma[v] += su;
              dag_.pred_storage[dag_.pred_begin[v] + dag_.pred_count[v]++] =
                  u;
            }
          }
        }
        std::sort(next_.begin(), next_.end());
      }
    }
    unexplored_edges -= next_in_edges;
    frontier_edges = next_edges;
    frontier_.swap(next_);
    ++depth;
  }
  dag_.level_offsets.push_back(dag_.order.size());
  dag_.has_predecessors = true;
}

void BfsSpd::EnsureParallelScratch() {
  if (!range_next_.empty()) return;
  const std::size_t n = graph_->num_vertices();
  const std::size_t n_words = (n + 63) / 64;
  // Destination ranges are contiguous 64-aligned vertex-id slices — a pure
  // function of |V|, never of the thread count: the smallest power-of-two
  // word span that yields at most kFrontierShards ranges. Word alignment
  // makes every visited-bitmap word single-owner, so bottom-up steps and
  // hybrid discovery write the bitmap without synchronization.
  const std::size_t words_per_range =
      std::bit_ceil((n_words + kFrontierShards - 1) / kFrontierShards);
  range_shift_ =
      6 + static_cast<std::uint32_t>(std::countr_zero(words_per_range));
  num_ranges_ = (n_words + words_per_range - 1) / words_per_range;
  buckets_.resize(kFrontierShards * num_ranges_);
  range_next_.resize(num_ranges_);
  range_edges_.assign(num_ranges_, 0);
  range_in_edges_.assign(num_ranges_, 0);
  frontier_bits_.assign(n_words, 0);
}

std::uint64_t BfsSpd::TopDownLevelParallel(std::uint32_t depth,
                                           bool record_preds,
                                           std::uint64_t* next_in_edges) {
  EnsureParallelScratch();
  // Phase 1 — fan out over fixed frontier shards: each shard examines its
  // contiguous slice of the (sorted) frontier and buckets every candidate
  // DAG edge by destination range. dist is read-only in this phase, so a
  // vertex is bucketed once per frontier parent that reaches it; all
  // writes go to the shard's private bucket row.
  ParallelShardedLevel(
      pool_.get(), kFrontierShards,
      [this](unsigned, std::size_t shard) {
        const auto [begin, end] =
            ShardBounds(frontier_.size(), shard, kFrontierShards);
        std::vector<TdCandidate>* row = buckets_.data() + shard * num_ranges_;
        for (std::size_t i = begin; i < end; ++i) {
          const VertexId u = frontier_[i];
          for (VertexId v : graph_->neighbors(u)) {
            if (dag_.dist[v] == kUnreachedDistance) {
              row[v >> range_shift_].push_back({v, u});
            }
          }
        }
      },
      // Nothing to merge: phase 2 consumes the buckets in shard order.
      [](std::size_t) {});

  // Phase 2 — fan out over destination ranges: each range owner settles
  // its vertices. First touch assigns dist (and the visited bit); every
  // candidate then folds sigma and appends the parent. Buckets are walked
  // in ascending shard order and each shard bucketed its parents in
  // ascending frontier order, so for any fixed v the contributions arrive
  // in ascending parent id — the exact fold order of the sequential
  // kernels, making the (floating-point) sigma sums bit-identical. Every
  // write lands in the owner's range; sigma/dist reads of parents touch
  // the previous level only, which no one writes here.
  std::uint64_t next_edges = 0;
  ParallelShardedLevel(
      pool_.get(), num_ranges_,
      [this, depth, record_preds](unsigned, std::size_t range) {
        std::vector<VertexId>& seg = range_next_[range];
        seg.clear();
        std::uint64_t seg_edges = 0;
        std::uint64_t seg_in_edges = 0;
        for (std::size_t shard = 0; shard < kFrontierShards; ++shard) {
          std::vector<TdCandidate>& bucket =
              buckets_[shard * num_ranges_ + range];
          for (const TdCandidate& c : bucket) {
            if (dag_.dist[c.v] == kUnreachedDistance) {
              dag_.dist[c.v] = depth + 1;
              if (record_preds) SetVisited(c.v);
              seg.push_back(c.v);
              seg_edges += graph_->degree(c.v);
              seg_in_edges += graph_->in_degree(c.v);
            }
            dag_.sigma[c.v] += dag_.sigma[c.u];
            if (record_preds) {
              dag_.pred_storage[dag_.pred_begin[c.v] + dag_.pred_count[c.v]++] =
                  c.u;
            }
          }
          bucket.clear();
        }
        // Ranges partition the id space in order, so locally sorted
        // segments concatenate into the globally sorted next frontier.
        std::sort(seg.begin(), seg.end());
        range_edges_[range] = seg_edges;
        range_in_edges_[range] = seg_in_edges;
      },
      [this, &next_edges, next_in_edges](std::size_t range) {
        next_.insert(next_.end(), range_next_[range].begin(),
                     range_next_[range].end());
        next_edges += range_edges_[range];
        *next_in_edges += range_in_edges_[range];
      });
  return next_edges;
}

std::uint64_t BfsSpd::BottomUpLevelParallel(std::uint32_t depth,
                                            std::uint64_t tail_mask,
                                            std::uint64_t* next_in_edges) {
  EnsureParallelScratch();
  // Publish the current frontier as a bitmap. The parent test below must
  // not read dist[u]: a neighbor u may be a *newly discovered* vertex
  // whose dist another range owner is writing concurrently. Frontier bits
  // are written before the fan-out, read-only during it, and cleared
  // after, so the bitmap is all-zero between steps.
  for (VertexId u : frontier_) {
    frontier_bits_[u >> 6] |= std::uint64_t{1} << (u & 63);
  }
  const std::uint32_t word_shift = range_shift_ - 6;
  std::uint64_t next_edges = 0;
  // One fan-out over word ranges: each owner runs the sequential scan body
  // on its words. Every write — dist, sigma, pred_count, pred_storage, the
  // visited word — targets a vertex in the owned range; parent reads
  // (frontier bit, sigma) touch the stable previous level only. The scan
  // visits candidates in ascending id, so each segment is born sorted.
  ParallelShardedLevel(
      pool_.get(), num_ranges_,
      [this, depth, tail_mask, word_shift](unsigned, std::size_t range) {
        const std::size_t word_begin = range << word_shift;
        const std::size_t word_end =
            std::min(word_begin + (std::size_t{1} << word_shift),
                     visited_.size());
        std::vector<VertexId>& seg = range_next_[range];
        seg.clear();
        std::uint64_t seg_edges = 0;
        std::uint64_t seg_in_edges = 0;
        for (std::size_t word = word_begin; word < word_end; ++word) {
          std::uint64_t unvisited = ~visited_[word];
          if (word + 1 == visited_.size()) unvisited &= tail_mask;
          while (unvisited != 0) {
            const VertexId v = static_cast<VertexId>(
                (word << 6) + std::countr_zero(unvisited));
            unvisited &= unvisited - 1;
            SigmaCount sv = 0;
            std::uint32_t parents = 0;
            const std::size_t base = dag_.pred_begin[v];
            for (VertexId u : graph_->in_neighbors(v)) {
              if ((frontier_bits_[u >> 6] >> (u & 63)) & 1) {
                sv += dag_.sigma[u];
                dag_.pred_storage[base + parents++] = u;
              }
            }
            if (parents != 0) {
              dag_.dist[v] = depth + 1;
              dag_.sigma[v] = sv;
              dag_.pred_count[v] = parents;
              SetVisited(v);
              seg.push_back(v);
              seg_edges += graph_->degree(v);
              seg_in_edges += graph_->in_degree(v);
            }
          }
        }
        range_edges_[range] = seg_edges;
        range_in_edges_[range] = seg_in_edges;
      },
      [this, &next_edges, next_in_edges](std::size_t range) {
        next_.insert(next_.end(), range_next_[range].begin(),
                     range_next_[range].end());
        next_edges += range_edges_[range];
        *next_in_edges += range_in_edges_[range];
      });
  for (VertexId u : frontier_) {
    frontier_bits_[u >> 6] &= ~(std::uint64_t{1} << (u & 63));
  }
  return next_edges;
}

}  // namespace mhbc
