#include "sp/bfs_spd.h"

#include <algorithm>
#include <bit>

namespace mhbc {

BfsSpd::BfsSpd(const CsrGraph& graph, SpdOptions options)
    : graph_(&graph), options_(options) {
  const VertexId n = graph.num_vertices();
  dag_.dist.assign(n, kUnreachedDistance);
  dag_.sigma.assign(n, 0);
  dag_.order.reserve(n);
  dag_.weighted = false;
  frontier_.reserve(n);
  next_.reserve(n);
}

void BfsSpd::Run(VertexId source) {
  MHBC_DCHECK(source < graph_->num_vertices());
  // Reset only what the previous pass touched.
  const bool reset_bitmap = !visited_.empty();
  const bool reset_preds = dag_.has_predecessors;
  for (VertexId v : dag_.order) {
    dag_.dist[v] = kUnreachedDistance;
    dag_.sigma[v] = 0;
    if (reset_bitmap) ClearVisited(v);
    if (reset_preds) dag_.pred_count[v] = 0;
  }
  dag_.order.clear();
  dag_.level_offsets.clear();
  dag_.has_predecessors = false;
  dag_.source = source;
  last_stats_ = Stats();

  // Degenerate graphs take the classic path unconditionally: with no edges
  // (or a single vertex) there is no direction to optimize, and the hybrid
  // scratch must stay untouched (it is lazily allocated by the first real
  // hybrid pass).
  const bool degenerate =
      graph_->num_vertices() <= 1 || graph_->num_edges() == 0;
  if (options_.kernel == SpdKernel::kClassic || degenerate) {
    RunClassic(source);
  } else {
    RunHybrid(source);
  }

  total_stats_.edges_examined += last_stats_.edges_examined;
  total_stats_.top_down_levels += last_stats_.top_down_levels;
  total_stats_.bottom_up_levels += last_stats_.bottom_up_levels;
  total_stats_.direction_switches += last_stats_.direction_switches;
}

void BfsSpd::RunClassic(VertexId source) {
  dag_.dist[source] = 0;
  dag_.sigma[source] = 1;
  frontier_.clear();
  frontier_.push_back(source);
  std::uint32_t depth = 0;
  while (!frontier_.empty()) {
    dag_.level_offsets.push_back(dag_.order.size());
    dag_.order.insert(dag_.order.end(), frontier_.begin(), frontier_.end());
    next_.clear();
    std::uint64_t frontier_edges = 0;
    for (VertexId u : frontier_) {
      frontier_edges += graph_->degree(u);
      const SigmaCount su = dag_.sigma[u];
      for (VertexId v : graph_->neighbors(u)) {
        if (dag_.dist[v] == kUnreachedDistance) {
          dag_.dist[v] = depth + 1;
          next_.push_back(v);
        }
        if (dag_.dist[v] == depth + 1) dag_.sigma[v] += su;
      }
    }
    // Canonicalize the next level: ascending vertex id, so the stored
    // order (and the frontier the next iteration expands, which fixes the
    // sigma fold) is independent of discovery order.
    std::sort(next_.begin(), next_.end());
    last_stats_.edges_examined += frontier_edges;
    ++last_stats_.top_down_levels;
    frontier_.swap(next_);
    ++depth;
  }
  dag_.level_offsets.push_back(dag_.order.size());
}

void BfsSpd::RunHybrid(VertexId source) {
  const VertexId n = graph_->num_vertices();
  if (visited_.empty()) {
    visited_.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
    dag_.pred_begin = graph_->raw_offsets().data();
    dag_.pred_count.assign(n, 0);
    dag_.pred_storage.assign(graph_->raw_adjacency().size(), kInvalidVertex);
  }
  // Bits past n in the last bitmap word never correspond to vertices; mask
  // them out of every bottom-up word scan.
  const std::uint64_t tail_mask =
      (n & 63) ? ((std::uint64_t{1} << (n & 63)) - 1) : ~std::uint64_t{0};

  dag_.dist[source] = 0;
  dag_.sigma[source] = 1;
  SetVisited(source);
  frontier_.clear();
  frontier_.push_back(source);
  // Beamer's two aggregates: edges a top-down step would examine (degree
  // sum of the frontier) vs edges a bottom-up step would examine (degree
  // sum of unvisited vertices). Both are maintained incrementally.
  std::uint64_t frontier_edges = graph_->degree(source);
  std::uint64_t unexplored_edges =
      2 * graph_->num_edges() - graph_->degree(source);
  std::size_t prev_frontier_size = 0;
  bool bottom_up = false;
  std::uint32_t depth = 0;

  while (!frontier_.empty()) {
    dag_.level_offsets.push_back(dag_.order.size());
    dag_.order.insert(dag_.order.end(), frontier_.begin(), frontier_.end());

    // Per-level direction choice (Beamer's edge-count test). Expanding
    // this frontier top-down examines m_f edges (the frontier's degree
    // sum); bottom-up examines m_u (the unvisited vertices' degree sum)
    // but at a per-edge cost alpha times cheaper — the bottom-up loop is a
    // sequential ascending scan with no discovery bookkeeping and no
    // frontier sort. So bottom-up is the profitable direction for a level
    // exactly when m_f * alpha > m_u; the exit test is the negation, and
    // entry is additionally gated on a growing frontier (a shrinking one
    // is draining a tail top-down handles better — without this gate,
    // plateaued frontiers on high-diameter graphs flap directions for zero
    // savings). Beamer's n/beta tail rule is kept as a secondary exit.
    const bool growing = frontier_.size() >= prev_frontier_size;
    const bool profitable =
        options_.alpha > 0.0 &&
        static_cast<double>(frontier_edges) * options_.alpha >
            static_cast<double>(unexplored_edges);
    const bool was_bottom_up = bottom_up;
    if (!bottom_up) {
      bottom_up = growing && profitable;
    } else if (!profitable ||
               (!growing && options_.beta > 0.0 &&
                static_cast<double>(frontier_.size()) * options_.beta <
                    static_cast<double>(n))) {
      bottom_up = false;
    }
    if (bottom_up != was_bottom_up) ++last_stats_.direction_switches;
    prev_frontier_size = frontier_.size();

    next_.clear();
    std::uint64_t next_edges = 0;
    if (bottom_up) {
      ++last_stats_.bottom_up_levels;
      last_stats_.edges_examined += unexplored_edges;
      // Scan unvisited vertices in ascending id (so the next level needs
      // no sort) and gather all parents at the current depth; no early
      // exit — exact sigma needs every parent.
      for (std::size_t word = 0; word < visited_.size(); ++word) {
        std::uint64_t unvisited = ~visited_[word];
        if (word + 1 == visited_.size()) unvisited &= tail_mask;
        while (unvisited != 0) {
          const VertexId v = static_cast<VertexId>(
              (word << 6) + std::countr_zero(unvisited));
          unvisited &= unvisited - 1;
          SigmaCount sv = 0;
          std::uint32_t parents = 0;
          const std::size_t base = dag_.pred_begin[v];
          for (VertexId u : graph_->neighbors(v)) {
            if (dag_.dist[u] == depth) {
              sv += dag_.sigma[u];
              dag_.pred_storage[base + parents++] = u;
            }
          }
          if (parents != 0) {
            dag_.dist[v] = depth + 1;
            dag_.sigma[v] = sv;
            dag_.pred_count[v] = parents;
            SetVisited(v);
            next_.push_back(v);
            next_edges += graph_->degree(v);
          }
        }
      }
    } else {
      ++last_stats_.top_down_levels;
      last_stats_.edges_examined += frontier_edges;
      for (VertexId u : frontier_) {
        const SigmaCount su = dag_.sigma[u];
        for (VertexId v : graph_->neighbors(u)) {
          if (dag_.dist[v] == kUnreachedDistance) {
            dag_.dist[v] = depth + 1;
            SetVisited(v);
            next_.push_back(v);
            next_edges += graph_->degree(v);
          }
          if (dag_.dist[v] == depth + 1) {
            // The frontier is sorted, so parents append in ascending id —
            // the same sequence a bottom-up neighbor scan records — and
            // sigma folds in the same order.
            dag_.sigma[v] += su;
            dag_.pred_storage[dag_.pred_begin[v] + dag_.pred_count[v]++] = u;
          }
        }
      }
      std::sort(next_.begin(), next_.end());
    }
    unexplored_edges -= next_edges;
    frontier_edges = next_edges;
    frontier_.swap(next_);
    ++depth;
  }
  dag_.level_offsets.push_back(dag_.order.size());
  dag_.has_predecessors = true;
}

}  // namespace mhbc
