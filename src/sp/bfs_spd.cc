#include "sp/bfs_spd.h"

namespace mhbc {

BfsSpd::BfsSpd(const CsrGraph& graph) : graph_(&graph) {
  const VertexId n = graph.num_vertices();
  dag_.dist.assign(n, kUnreachedDistance);
  dag_.sigma.assign(n, 0);
  dag_.order.reserve(n);
  dag_.weighted = false;
  queue_.reserve(n);
}

void BfsSpd::Run(VertexId source) {
  MHBC_DCHECK(source < graph_->num_vertices());
  // Reset only what the previous pass touched.
  for (VertexId v : dag_.order) {
    dag_.dist[v] = kUnreachedDistance;
    dag_.sigma[v] = 0;
  }
  dag_.order.clear();
  dag_.source = source;

  queue_.clear();
  queue_.push_back(source);
  dag_.dist[source] = 0;
  dag_.sigma[source] = 1;
  std::size_t head = 0;
  while (head < queue_.size()) {
    const VertexId u = queue_[head++];
    dag_.order.push_back(u);
    const std::uint32_t du = dag_.dist[u];
    for (VertexId v : graph_->neighbors(u)) {
      if (dag_.dist[v] == kUnreachedDistance) {
        dag_.dist[v] = du + 1;
        queue_.push_back(v);
      }
      if (dag_.dist[v] == du + 1) {
        dag_.sigma[v] += dag_.sigma[u];
      }
    }
  }
}

}  // namespace mhbc
