#include "sp/dijkstra_spd.h"

#include <cmath>
#include <queue>
#include <utility>

namespace mhbc {

DijkstraSpd::DijkstraSpd(const CsrGraph& graph, double tie_epsilon)
    : graph_(&graph), tie_epsilon_(tie_epsilon) {
  MHBC_DCHECK(tie_epsilon_ >= 0.0);
  const VertexId n = graph.num_vertices();
  dag_.wdist.assign(n, -1.0);  // -1 marks unreached
  dag_.sigma.assign(n, 0);
  dag_.order.reserve(n);
  dag_.weighted = true;
  // Parent-list capacity is the in-degree (a parent reaches v over an
  // in-edge), so the graph's in-CSR offsets ARE the begin offsets —
  // reference them instead of rebuilding the array; they alias the
  // out-CSR on undirected graphs.
  dag_.pred_begin = graph.raw_in_offsets().data();
  dag_.pred_count.assign(n, 0);
  dag_.pred_storage.assign(graph.raw_in_adjacency().size(), kInvalidVertex);
  dag_.has_predecessors = true;
  settled_.assign(n, 0);
}

bool DijkstraSpd::Equal(double a, double b) const {
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= tie_epsilon_ * scale;
}

void DijkstraSpd::Run(VertexId source) {
  MHBC_DCHECK(source < graph_->num_vertices());
  for (VertexId v : dag_.order) {
    dag_.wdist[v] = -1.0;
    dag_.sigma[v] = 0;
    dag_.pred_count[v] = 0;
    settled_[v] = 0;
  }
  dag_.order.clear();
  dag_.source = source;

  using HeapEntry = std::pair<double, VertexId>;  // (dist, vertex)
  // Lazy deletion: stale heap entries are skipped on pop.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;

  dag_.wdist[source] = 0.0;
  dag_.sigma[source] = 1;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [du, u] = heap.top();
    heap.pop();
    if (settled_[u]) continue;
    if (!Equal(du, dag_.wdist[u])) continue;  // stale entry
    settled_[u] = 1;
    dag_.order.push_back(u);
    const auto nbrs = graph_->neighbors(u);
    const auto wts = graph_->weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      const double w = graph_->weighted() ? wts[i] : 1.0;
      const double candidate = dag_.wdist[u] + w;
      if (settled_[v]) continue;
      const double current = dag_.wdist[v];
      if (current < 0.0 || candidate < current - tie_epsilon_ * candidate) {
        // Strict improvement: reset predecessor set.
        dag_.wdist[v] = candidate;
        dag_.sigma[v] = dag_.sigma[u];
        dag_.pred_count[v] = 1;
        dag_.pred_storage[dag_.pred_begin[v]] = u;
        heap.emplace(candidate, v);
      } else if (Equal(candidate, current)) {
        // Tie: u is an additional predecessor (each neighbor appears once
        // per pass, so no duplicate check is needed).
        dag_.sigma[v] += dag_.sigma[u];
        MHBC_DCHECK(dag_.pred_count[v] < graph_->in_degree(v));
        dag_.pred_storage[dag_.pred_begin[v] + dag_.pred_count[v]] = u;
        ++dag_.pred_count[v];
      }
    }
  }
}

}  // namespace mhbc
