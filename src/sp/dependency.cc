#include "sp/dependency.h"

#include <bit>

#include "util/thread_pool.h"

namespace mhbc {

DependencyAccumulator::DependencyAccumulator(const CsrGraph& graph,
                                             ThreadPool* pool,
                                             std::uint64_t parallel_grain)
    : pool_(pool),
      parallel_grain_(parallel_grain),
      num_vertices_(graph.num_vertices()) {
  delta_.assign(graph.num_vertices(), 0.0);
  touched_.reserve(graph.num_vertices());
}

const std::vector<double>& DependencyAccumulator::Accumulate(
    const ShortestPathDag& dag, const CsrGraph& graph) {
  for (VertexId v : touched_) delta_[v] = 0.0;
  touched_.assign(dag.order.begin(), dag.order.end());

  if (pool_ != nullptr && !dag.level_offsets.empty()) {
    // Level-parallel sweep; only DAGs with a recorded level structure
    // qualify (Dijkstra DAGs keep the sequential reverse-settle sweep).
    AccumulateLevels(dag, graph);
  } else {
    // ForEachParent walks the recorded SPD edges when the pass stored them
    // (the fused path — no non-DAG edge is touched) and re-derives parents
    // from dist otherwise (classic BFS passes).
    ForEachDeepestFirst(dag, [this, &dag, &graph](VertexId w) {
      const double coeff =
          (1.0 + delta_[w]) / static_cast<double>(dag.sigma[w]);
      ForEachParent(dag, graph, w, [this, &dag, coeff](VertexId v) {
        delta_[v] += static_cast<double>(dag.sigma[v]) * coeff;
      });
    });
  }
  delta_[dag.source] = 0.0;  // dependency of s on itself is undefined/0
  return delta_;
}

void DependencyAccumulator::EnsureParallelScratch() {
  if (!buckets_.empty()) return;
  // Same destination-range geometry as BfsSpd::EnsureParallelScratch: a
  // pure function of |V| (64-alignment is irrelevant here — only delta_
  // entries are range-owned — but sharing the rule keeps one definition of
  // "range of v" across the intra-pass machinery).
  const std::size_t n_words = (num_vertices_ + 63) / 64;
  const std::size_t words_per_range = std::bit_ceil(
      (n_words + BfsSpd::kFrontierShards - 1) / BfsSpd::kFrontierShards);
  range_shift_ =
      6 + static_cast<std::uint32_t>(std::countr_zero(words_per_range));
  num_ranges_ = (n_words + words_per_range - 1) / words_per_range;
  buckets_.resize(BfsSpd::kFrontierShards * num_ranges_);
}

void DependencyAccumulator::AccumulateLevels(const ShortestPathDag& dag,
                                             const CsrGraph& graph) {
  for (std::size_t level = dag.num_levels(); level-- > 0;) {
    const std::size_t lo = dag.level_offsets[level];
    const std::size_t hi = dag.level_offsets[level + 1];
    // Work proxy for the grain test: the level's in-degree sum bounds the
    // parent edges a sweep of it examines (parents arrive over in-edges;
    // in-degree aliases degree on undirected graphs). A function of the
    // level only, so the parallel-or-sequential choice is
    // thread-count-independent.
    std::uint64_t level_edges = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      level_edges += graph.in_degree(dag.order[i]);
    }
    if (level_edges < parallel_grain_) {
      for (std::size_t i = lo; i < hi; ++i) {
        const VertexId w = dag.order[i];
        const double coeff =
            (1.0 + delta_[w]) / static_cast<double>(dag.sigma[w]);
        ForEachParent(dag, graph, w, [this, &dag, coeff](VertexId v) {
          delta_[v] += static_cast<double>(dag.sigma[v]) * coeff;
        });
      }
      continue;
    }
    EnsureParallelScratch();
    // Phase 1 — fixed shards of the level slice bucket per-parent
    // contributions by destination range. delta_[w] reads are finalized
    // (contributions to w all came from deeper levels, behind barriers);
    // all writes go to the shard's private bucket row.
    ParallelShardedLevel(
        pool_, BfsSpd::kFrontierShards,
        [this, &dag, &graph, lo, hi](unsigned, std::size_t shard) {
          const auto [begin, end] =
              ShardBounds(hi - lo, shard, BfsSpd::kFrontierShards);
          std::vector<Contribution>* row =
              buckets_.data() + shard * num_ranges_;
          for (std::size_t i = lo + begin; i < lo + end; ++i) {
            const VertexId w = dag.order[i];
            const double coeff =
                (1.0 + delta_[w]) / static_cast<double>(dag.sigma[w]);
            ForEachParent(dag, graph, w,
                          [this, &dag, coeff, row](VertexId v) {
                            row[v >> range_shift_].push_back(
                                {v, static_cast<double>(dag.sigma[v]) * coeff});
                          });
          }
        },
        // Nothing to merge: phase 2 consumes the buckets in shard order.
        [](std::size_t) {});
    // Phase 2 — each range owner folds its delta entries, walking the
    // buckets in ascending shard order. Shards bucket their slice of the
    // (ascending-id) level in order, so for any fixed parent v the
    // contributions fold in ascending w — the sequential sweep's exact
    // floating-point regrouping.
    ParallelShardedLevel(
        pool_, num_ranges_,
        [this](unsigned, std::size_t range) {
          for (std::size_t shard = 0; shard < BfsSpd::kFrontierShards;
               ++shard) {
            std::vector<Contribution>& bucket =
                buckets_[shard * num_ranges_ + range];
            for (const Contribution& contribution : bucket) {
              delta_[contribution.v] += contribution.c;
            }
            bucket.clear();
          }
        },
        [](std::size_t) {});
  }
}

const std::vector<double>& DependencyAccumulator::Accumulate(
    const BfsSpd& bfs) {
  return Accumulate(bfs.dag(), bfs.graph());
}

const std::vector<double>& DependencyAccumulator::Accumulate(
    const DeltaSpd& delta) {
  return Accumulate(delta.dag(), delta.graph());
}

const std::vector<double>& DependencyAccumulator::Accumulate(
    const DijkstraSpd& dijkstra) {
  return Accumulate(dijkstra.dag(), dijkstra.graph());
}

namespace {

/// The graph a "distance to t" BFS must run on: the graph itself when
/// undirected, its transpose when directed (dist(v, t) in G equals
/// dist(t, v) in Gᵀ). The transpose view borrows the graph's in-CSR
/// arrays, so it must not outlive `graph`.
CsrGraph ReverseViewFor(const CsrGraph& graph) {
  if (!graph.directed()) return graph;
  return CsrGraph::WrapExternal(graph.raw_in_offsets(),
                                graph.raw_in_adjacency(), {}, graph.name(),
                                /*directed=*/true);
}

}  // namespace

std::vector<double> PairDependencies(const CsrGraph& graph, VertexId s,
                                     VertexId t) {
  MHBC_DCHECK(s < graph.num_vertices());
  MHBC_DCHECK(t < graph.num_vertices());
  std::vector<double> result(graph.num_vertices(), 0.0);
  if (s == t) return result;
  const CsrGraph reverse = ReverseViewFor(graph);
  BfsSpd from_s(graph);
  BfsSpd from_t(reverse);
  from_s.Run(s);
  from_t.Run(t);
  const auto& ds = from_s.dag();
  const auto& dt = from_t.dag();
  if (ds.dist[t] == kUnreachedDistance) return result;
  const std::uint32_t dist_st = ds.dist[t];
  const double sigma_st = static_cast<double>(ds.sigma[t]);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (v == s || v == t) continue;
    if (ds.dist[v] == kUnreachedDistance || dt.dist[v] == kUnreachedDistance)
      continue;
    if (ds.dist[v] + dt.dist[v] == dist_st) {
      result[v] = static_cast<double>(ds.sigma[v]) *
                  static_cast<double>(dt.sigma[v]) / sigma_st;
    }
  }
  return result;
}

SigmaCount CountPathsThrough(const CsrGraph& graph, VertexId s, VertexId t,
                             VertexId v) {
  MHBC_DCHECK(v != s && v != t);
  const CsrGraph reverse = ReverseViewFor(graph);
  BfsSpd from_s(graph);
  BfsSpd from_t(reverse);
  from_s.Run(s);
  from_t.Run(t);
  const auto& ds = from_s.dag();
  const auto& dt = from_t.dag();
  if (ds.dist[t] == kUnreachedDistance) return 0;
  if (ds.dist[v] == kUnreachedDistance || dt.dist[v] == kUnreachedDistance)
    return 0;
  if (ds.dist[v] + dt.dist[v] != ds.dist[t]) return 0;
  return ds.sigma[v] * dt.sigma[v];
}

}  // namespace mhbc
