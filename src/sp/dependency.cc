#include "sp/dependency.h"

namespace mhbc {

DependencyAccumulator::DependencyAccumulator(const CsrGraph& graph) {
  delta_.assign(graph.num_vertices(), 0.0);
  touched_.reserve(graph.num_vertices());
}

const std::vector<double>& DependencyAccumulator::Accumulate(
    const BfsSpd& bfs) {
  const ShortestPathDag& dag = bfs.dag();
  const CsrGraph& graph = bfs.graph();
  for (VertexId v : touched_) delta_[v] = 0.0;
  touched_.assign(dag.order.begin(), dag.order.end());

  // Reverse settle order: every successor w of v in the SPD satisfies
  // dist[w] == dist[v] + 1 and is adjacent to v.
  for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
    const VertexId w = *it;
    const std::uint32_t dw = dag.dist[w];
    const double coeff = (1.0 + delta_[w]) / static_cast<double>(dag.sigma[w]);
    for (VertexId v : graph.neighbors(w)) {
      if (dag.dist[v] + 1 == dw) {
        // v is a parent of w in the SPD (paper's P_s(w)).
        delta_[v] += static_cast<double>(dag.sigma[v]) * coeff;
      }
    }
  }
  delta_[dag.source] = 0.0;  // dependency of s on itself is undefined/0
  return delta_;
}

const std::vector<double>& DependencyAccumulator::Accumulate(
    const DijkstraSpd& dijkstra) {
  const ShortestPathDag& dag = dijkstra.dag();
  for (VertexId v : touched_) delta_[v] = 0.0;
  touched_.assign(dag.order.begin(), dag.order.end());

  for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
    const VertexId w = *it;
    const double coeff = (1.0 + delta_[w]) / static_cast<double>(dag.sigma[w]);
    for (VertexId v : dijkstra.predecessors(w)) {
      delta_[v] += static_cast<double>(dag.sigma[v]) * coeff;
    }
  }
  delta_[dag.source] = 0.0;
  return delta_;
}

std::vector<double> PairDependencies(const CsrGraph& graph, VertexId s,
                                     VertexId t) {
  MHBC_DCHECK(s < graph.num_vertices());
  MHBC_DCHECK(t < graph.num_vertices());
  std::vector<double> result(graph.num_vertices(), 0.0);
  if (s == t) return result;
  BfsSpd from_s(graph);
  BfsSpd from_t(graph);
  from_s.Run(s);
  from_t.Run(t);
  const auto& ds = from_s.dag();
  const auto& dt = from_t.dag();
  if (ds.dist[t] == kUnreachedDistance) return result;
  const std::uint32_t dist_st = ds.dist[t];
  const double sigma_st = static_cast<double>(ds.sigma[t]);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (v == s || v == t) continue;
    if (ds.dist[v] == kUnreachedDistance || dt.dist[v] == kUnreachedDistance)
      continue;
    if (ds.dist[v] + dt.dist[v] == dist_st) {
      result[v] = static_cast<double>(ds.sigma[v]) *
                  static_cast<double>(dt.sigma[v]) / sigma_st;
    }
  }
  return result;
}

SigmaCount CountPathsThrough(const CsrGraph& graph, VertexId s, VertexId t,
                             VertexId v) {
  MHBC_DCHECK(v != s && v != t);
  BfsSpd from_s(graph);
  BfsSpd from_t(graph);
  from_s.Run(s);
  from_t.Run(t);
  const auto& ds = from_s.dag();
  const auto& dt = from_t.dag();
  if (ds.dist[t] == kUnreachedDistance) return 0;
  if (ds.dist[v] == kUnreachedDistance || dt.dist[v] == kUnreachedDistance)
    return 0;
  if (ds.dist[v] + dt.dist[v] != ds.dist[t]) return 0;
  return ds.sigma[v] * dt.sigma[v];
}

}  // namespace mhbc
