#include "sp/dependency.h"

namespace mhbc {

DependencyAccumulator::DependencyAccumulator(const CsrGraph& graph) {
  delta_.assign(graph.num_vertices(), 0.0);
  touched_.reserve(graph.num_vertices());
}

const std::vector<double>& DependencyAccumulator::Accumulate(
    const ShortestPathDag& dag, const CsrGraph& graph) {
  for (VertexId v : touched_) delta_[v] = 0.0;
  touched_.assign(dag.order.begin(), dag.order.end());

  // ForEachParent walks the recorded SPD edges when the pass stored them
  // (the fused path — no non-DAG edge is touched) and re-derives parents
  // from dist otherwise (classic BFS passes).
  ForEachDeepestFirst(dag, [this, &dag, &graph](VertexId w) {
    const double coeff = (1.0 + delta_[w]) / static_cast<double>(dag.sigma[w]);
    ForEachParent(dag, graph, w, [this, &dag, coeff](VertexId v) {
      delta_[v] += static_cast<double>(dag.sigma[v]) * coeff;
    });
  });
  delta_[dag.source] = 0.0;  // dependency of s on itself is undefined/0
  return delta_;
}

const std::vector<double>& DependencyAccumulator::Accumulate(
    const BfsSpd& bfs) {
  return Accumulate(bfs.dag(), bfs.graph());
}

const std::vector<double>& DependencyAccumulator::Accumulate(
    const DijkstraSpd& dijkstra) {
  return Accumulate(dijkstra.dag(), dijkstra.graph());
}

std::vector<double> PairDependencies(const CsrGraph& graph, VertexId s,
                                     VertexId t) {
  MHBC_DCHECK(s < graph.num_vertices());
  MHBC_DCHECK(t < graph.num_vertices());
  std::vector<double> result(graph.num_vertices(), 0.0);
  if (s == t) return result;
  BfsSpd from_s(graph);
  BfsSpd from_t(graph);
  from_s.Run(s);
  from_t.Run(t);
  const auto& ds = from_s.dag();
  const auto& dt = from_t.dag();
  if (ds.dist[t] == kUnreachedDistance) return result;
  const std::uint32_t dist_st = ds.dist[t];
  const double sigma_st = static_cast<double>(ds.sigma[t]);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (v == s || v == t) continue;
    if (ds.dist[v] == kUnreachedDistance || dt.dist[v] == kUnreachedDistance)
      continue;
    if (ds.dist[v] + dt.dist[v] == dist_st) {
      result[v] = static_cast<double>(ds.sigma[v]) *
                  static_cast<double>(dt.sigma[v]) / sigma_st;
    }
  }
  return result;
}

SigmaCount CountPathsThrough(const CsrGraph& graph, VertexId s, VertexId t,
                             VertexId v) {
  MHBC_DCHECK(v != s && v != t);
  BfsSpd from_s(graph);
  BfsSpd from_t(graph);
  from_s.Run(s);
  from_t.Run(t);
  const auto& ds = from_s.dag();
  const auto& dt = from_t.dag();
  if (ds.dist[t] == kUnreachedDistance) return 0;
  if (ds.dist[v] == kUnreachedDistance || dt.dist[v] == kUnreachedDistance)
    return 0;
  if (ds.dist[v] + dt.dist[v] != ds.dist[t]) return 0;
  return ds.sigma[v] * dt.sigma[v];
}

}  // namespace mhbc
