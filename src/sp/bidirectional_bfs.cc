#include "sp/bidirectional_bfs.h"

#include <algorithm>
#include <vector>

namespace mhbc {

namespace {

/// One direction's search state.
struct Side {
  std::vector<std::uint32_t> dist;
  std::vector<VertexId> frontier;
  std::uint32_t depth = 0;

  explicit Side(VertexId n, VertexId start) : dist(n, kUnreachedDistance) {
    dist[start] = 0;
    frontier.push_back(start);
  }

  /// Total degree of the current frontier (expansion cost estimate).
  std::uint64_t FrontierVolume(const CsrGraph& graph) const {
    std::uint64_t vol = 0;
    for (VertexId v : frontier) vol += graph.degree(v);
    return vol;
  }
};

}  // namespace

BbBfsResult BidirectionalBfsDistance(const CsrGraph& graph, VertexId s,
                                     VertexId t) {
  MHBC_DCHECK(s < graph.num_vertices());
  MHBC_DCHECK(t < graph.num_vertices());
  BbBfsResult result;
  if (s == t) {
    result.distance = 0;
    return result;
  }
  Side forward(graph.num_vertices(), s);
  Side backward(graph.num_vertices(), t);

  while (!forward.frontier.empty() && !backward.frontier.empty()) {
    // Expand the cheaper side (balanced rule).
    Side& self =
        forward.FrontierVolume(graph) <= backward.FrontierVolume(graph)
            ? forward
            : backward;
    Side& other = (&self == &forward) ? backward : forward;

    std::vector<VertexId> next;
    for (VertexId u : self.frontier) {
      for (VertexId v : graph.neighbors(u)) {
        ++result.edges_scanned;
        if (other.dist[v] != kUnreachedDistance) {
          // Frontiers meet: total = d_self(u) + 1 + d_other(v). Later
          // meetings in this level could be shorter by at most 0 (BFS level
          // order), but a meeting via a frontier vertex of `other` that is
          // one level shallower can beat this by 1, so finish scanning the
          // level and keep the minimum.
          const std::uint32_t total = self.dist[u] + 1 + other.dist[v];
          result.distance = std::min(result.distance, total);
        }
        if (self.dist[v] == kUnreachedDistance) {
          self.dist[v] = self.dist[u] + 1;
          next.push_back(v);
        }
      }
    }
    if (result.distance != kUnreachedDistance) {
      return result;
    }
    self.frontier = std::move(next);
    ++self.depth;
  }
  return result;  // disconnected
}

}  // namespace mhbc
