#pragma once

#include <cstdint>

#include "graph/csr_graph.h"

/// \file
/// Balanced bidirectional BFS distance queries (the bb-BFS primitive of
/// KADABRA, Borassi-Natale 2016, cited as related work §3.2). Used by the
/// harnesses for cheap pairwise distances on large graphs.

namespace mhbc {

/// Result of a bidirectional distance query.
struct BbBfsResult {
  /// Hop distance s->t, or kUnreachedDistance if disconnected.
  std::uint32_t distance = kUnreachedDistance;
  /// Edges scanned by the balanced search (the work measure bb-BFS
  /// optimizes; compare against m for the savings factor).
  std::uint64_t edges_scanned = 0;
};

/// Balanced bidirectional BFS: expands the frontier whose residual edge
/// volume is smaller until the frontiers meet.
BbBfsResult BidirectionalBfsDistance(const CsrGraph& graph, VertexId s,
                                     VertexId t);

}  // namespace mhbc
