#pragma once

#include <vector>

#include "graph/csr_graph.h"

/// \file
/// Independent all-pairs shortest-path oracle for validation: distances by
/// Floyd-Warshall (O(n^3), no BFS/Dijkstra code shared with the engines it
/// validates) and shortest-path counts by dynamic programming over the
/// distance matrix. Small graphs only; used by the engine-agreement tests.

namespace mhbc {

/// Dense all-pairs tables.
class ApspOracle {
 public:
  /// Builds the tables; O(n^3) time, O(n^2) memory. Works on weighted and
  /// unweighted graphs (unweighted edges count 1).
  explicit ApspOracle(const CsrGraph& graph);

  /// Shortest-path distance u -> v; negative when disconnected.
  double Distance(VertexId u, VertexId v) const {
    return dist_[index(u, v)];
  }

  /// Number of distinct shortest u-v paths (0 when disconnected; 1 when
  /// u == v). Exact for unweighted graphs; for weighted graphs ties are
  /// detected with a relative epsilon.
  double PathCount(VertexId u, VertexId v) const {
    return count_[index(u, v)];
  }

  /// Pair dependency delta_uv(w) = sigma_uv(w)/sigma_uv via the
  /// composition rule (0 when w is an endpoint or off every shortest path).
  double PairDependency(VertexId u, VertexId v, VertexId w) const;

  VertexId num_vertices() const { return n_; }

 private:
  std::size_t index(VertexId u, VertexId v) const {
    MHBC_DCHECK(u < n_ && v < n_);
    return static_cast<std::size_t>(u) * n_ + v;
  }
  bool Equal(double a, double b) const;

  VertexId n_;
  std::vector<double> dist_;   // -1 = unreachable
  std::vector<double> count_;  // shortest-path multiplicities
};

}  // namespace mhbc
