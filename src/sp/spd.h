#ifndef MHBC_SP_SPD_H_
#define MHBC_SP_SPD_H_

#include <vector>

#include "graph/csr_graph.h"
#include "util/common.h"

/// \file
/// Shared single-source shortest-path DAG (SPD) representation.
///
/// The paper (§2.1) calls the DAG of all shortest paths rooted at a source
/// the SPD. One SPD pass plus one dependency accumulation is the unit of
/// work of every sampler in this library, so the representation is a set of
/// flat arrays reused across passes (no per-pass allocation).

namespace mhbc {

/// Result arrays of one single-source pass. Arrays are indexed by vertex id
/// and sized to the graph; entries for unreached vertices hold
/// kUnreachedDistance / 0 sigma.
struct ShortestPathDag {
  /// Hop distance from the source (unweighted passes).
  std::vector<std::uint32_t> dist;
  /// Weighted distance from the source (weighted passes only).
  std::vector<double> wdist;
  /// Number of shortest source->v paths.
  std::vector<SigmaCount> sigma;
  /// Vertices in settle order (non-decreasing distance), source first.
  /// Doubles as the touched-list used to reset state in O(|reached|).
  std::vector<VertexId> order;
  /// The source of the pass.
  VertexId source = kInvalidVertex;
  /// True if the pass used edge weights.
  bool weighted = false;

  /// Number of vertices reached (including the source).
  std::size_t num_reached() const { return order.size(); }
};

}  // namespace mhbc

#endif  // MHBC_SP_SPD_H_
