#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.h"
#include "util/common.h"

/// \file
/// Shared single-source shortest-path DAG (SPD) representation.
///
/// The paper (§2.1) calls the DAG of all shortest paths rooted at a source
/// the SPD. One SPD pass plus one dependency accumulation is the unit of
/// work of every sampler in this library, so the representation is a set of
/// flat arrays reused across passes (no per-pass allocation).

namespace mhbc {

/// Which traversal the unweighted SPD engine (BfsSpd) runs.
enum class SpdKernel {
  /// Level-synchronous top-down expansion on every level — the reference
  /// kernel; examines every edge of the reached component twice per pass.
  kClassic,
  /// Direction-optimizing (Beamer-style) traversal: per level, switches
  /// between top-down edge expansion and bottom-up parent scanning using
  /// the edge-count heuristics below. Exact sigma counting in both
  /// directions; on low-diameter graphs the peak levels run bottom-up and
  /// the pass examines a fraction of the edges. The default.
  kHybrid,
};

/// Default relative tie window for weighted passes: two floating-point
/// path lengths within this relative distance count as the same shortest
/// distance (the canonical tie rule both weighted engines share — see
/// SpdOptions::tie_epsilon).
inline constexpr double kDefaultTieEpsilon = 1e-12;

/// Tuning knobs for the SPD engines (BfsSpd for unweighted graphs,
/// DeltaSpd/DijkstraSpd for weighted). Every knob except tie_epsilon —
/// kernel choice, the α/β thresholds, the thread count, the parallel
/// grain, the bucket width — changes only the work a pass does: dist,
/// sigma, the canonical order, and every dependency vector downstream are
/// bit-identical across all settings (see BfsSpd and DeltaSpd for why).
/// tie_epsilon is an *accuracy* knob (it defines which weighted paths
/// count as shortest) and therefore part of the determinism key.
struct SpdOptions {
  SpdKernel kernel = SpdKernel::kHybrid;
  /// Intra-pass parallelism: number of threads one SPD pass (and its fused
  /// dependency accumulation) may use for frontier-parallel level steps.
  /// 0 means "inherit": an owning BetweennessEngine substitutes its own
  /// resolved thread count where intra-pass parallelism should win (serial
  /// single-query paths), while standalone construction of BfsSpd /
  /// ExactBetweenness treats 0 as 1 (fully sequential — the historical
  /// behavior). Results are bit-identical at every value.
  unsigned num_threads = 0;
  /// Minimum per-level work (in examined edges, or edge-weighted vertices
  /// for the backward sweep) before a level fans out across threads;
  /// smaller levels run the sequential step, whose output is identical.
  /// The threshold is a function of the level only — never of the thread
  /// count — so the parallel/sequential choice cannot break determinism.
  /// 0 forces every level through the parallel path (used by tests).
  std::uint64_t parallel_grain = 2048;
  /// Per-level direction test (Beamer's CTB, recalibrated): a level runs
  /// bottom-up when m_f * alpha > m_u, where m_f is the degree sum of the
  /// current frontier (edges a top-down step examines) and m_u the degree
  /// sum of still-unvisited vertices (edges a bottom-up step examines).
  /// alpha is the measured per-edge discount of the bottom-up loop — a
  /// sequential ascending scan with no discovery bookkeeping and no
  /// frontier sort — so the test reads "bottom-up is the cheaper way to
  /// build this level". Exact sigma counting cannot early-exit the parent
  /// scan (Beamer's reachability-only BFS can, hence his much larger
  /// alpha = 14); the default here is the bench_e20 sweep optimum across
  /// the registry graphs. alpha <= 0 disables bottom-up entirely.
  double alpha = 3.0;
  /// Secondary bottom-up exit (Beamer's CBT): also return to top-down once
  /// the frontier is shrinking and has fewer than n / beta vertices.
  /// beta <= 0 disables this exit (the profit-test exit still applies).
  double beta = 24.0;
  /// Weighted passes only — the canonical tie rule: two path lengths a, b
  /// are the same shortest distance when a == b or |a - b| <=
  /// tie_epsilon * max(|a|, |b|); 0 requires exact FP equality. A parent u
  /// becomes an SPD predecessor of v exactly when its candidate
  /// wdist(u) + w(u,v) ties wdist(v) under this rule and u settles before
  /// v stops accepting candidates (DeltaSpd settles whole waves, so a tie
  /// that lands within tie_epsilon of the wave-settle bound is dropped —
  /// deterministically, at every thread count). Must be >= 0 (validated by
  /// both weighted engines) and should stay well below the smallest
  /// relative weight difference in the graph.
  double tie_epsilon = kDefaultTieEpsilon;
  /// Weighted passes only — the delta-stepping bucket width. 0 (default)
  /// picks the canonical width: the graph's mean edge weight, a pure
  /// function of the graph and never of the thread count. The width is a
  /// speed knob: DeltaSpd's wave structure — and with it every output bit
  /// — is invariant under it (waves are defined by distances and per-vertex
  /// minimum incident weights alone; buckets only organize the scan).
  double delta_width = 0.0;
};

/// Result arrays of one single-source pass. Arrays are indexed by vertex id
/// and sized to the graph; entries for unreached vertices hold
/// kUnreachedDistance / 0 sigma.
struct ShortestPathDag {
  /// Hop distance from the source (unweighted passes).
  std::vector<std::uint32_t> dist;
  /// Weighted distance from the source (weighted passes only).
  std::vector<double> wdist;
  /// Number of shortest source->v paths.
  std::vector<SigmaCount> sigma;
  /// Vertices in settle order, source first — always a topological order
  /// of the SPD (every parent precedes every child), which is what the
  /// backward dependency sweep needs. Doubles as the touched-list used to
  /// reset state in O(|reached|). Unweighted passes store the *canonical*
  /// order — ascending vertex id within each level, independent of
  /// traversal direction; DeltaSpd weighted passes store *its* canonical
  /// order — ascending (wdist, id) within each settle wave — so the
  /// backward sweep regroups identically at every thread count.
  std::vector<VertexId> order;
  /// Per-level slices of `order`:
  /// order[level_offsets[l] .. level_offsets[l+1]) holds the vertices of
  /// level l — the BFS frontier at hop distance l for unweighted passes,
  /// the l-th settle wave for DeltaSpd weighted passes. Either way no SPD
  /// edge connects two vertices of the same level, so the backward sweep
  /// walks levels deepest-first (and level-parallel) without re-deriving
  /// the structure. Empty for heap-order (Dijkstra) passes, which fall
  /// back to reverse settle order.
  std::vector<std::size_t> level_offsets;
  /// Explicit SPD predecessor (parent) lists in CSR-capacity layout:
  /// vertex v's parents occupy
  /// pred_storage[pred_begin[v] .. pred_begin[v] + pred_count[v]).
  /// pred_begin points at the graph's own *in*-CSR offsets (a parent of v
  /// reaches it over an in-edge, so a parent list can never outgrow the
  /// in-degree; on undirected graphs the in-CSR aliases the out-CSR), so
  /// it stays valid exactly as long as the
  /// graph the engine is bound to — no per-engine copy. Filled by the
  /// Dijkstra engine (parents in settle order) and by the hybrid BFS
  /// kernel (parents in ascending id — the same sequence a sorted
  /// neighbor scan yields, which is what keeps the accumulation
  /// regrouping kernel-independent). Classic BFS passes leave
  /// has_predecessors false; parents are then re-derived from dist.
  const EdgeId* pred_begin = nullptr;
  std::vector<std::uint32_t> pred_count;
  std::vector<VertexId> pred_storage;
  bool has_predecessors = false;
  /// The source of the pass.
  VertexId source = kInvalidVertex;
  /// True if the pass used edge weights.
  bool weighted = false;

  /// Number of vertices reached (including the source).
  std::size_t num_reached() const { return order.size(); }

  /// Number of BFS levels (0 when level offsets are absent).
  std::size_t num_levels() const {
    return level_offsets.empty() ? 0 : level_offsets.size() - 1;
  }

  /// Parents of v in the SPD; valid only when has_predecessors.
  std::span<const VertexId> predecessors(VertexId v) const {
    MHBC_DCHECK(v < pred_count.size());
    return {pred_storage.data() + pred_begin[v],
            pred_storage.data() + pred_begin[v] + pred_count[v]};
  }
};

/// Visits every reached vertex in the fixed backward-sweep order the
/// dependency accumulators use: levels deepest-first, ascending vertex id
/// within a level when the DAG carries level offsets (BFS kernels), falling
/// back to reverse settle order (Dijkstra). This single definition is what
/// pins the floating-point regrouping of every backward sweep in the
/// library, so it must not fork per caller.
template <typename Visit>
void ForEachDeepestFirst(const ShortestPathDag& dag, Visit&& visit) {
  if (!dag.level_offsets.empty()) {
    for (std::size_t level = dag.num_levels(); level-- > 0;) {
      const std::size_t end = dag.level_offsets[level + 1];
      for (std::size_t i = dag.level_offsets[level]; i < end; ++i) {
        visit(dag.order[i]);
      }
    }
  } else {
    for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
      visit(*it);
    }
  }
}

/// Visits every SPD parent of `w`: the recorded predecessor list when the
/// pass stored one, else the in-neighbors one hop closer to the source
/// (unweighted re-derivation from dist; a parent reaches w over an
/// in-edge, and on undirected graphs the in-neighbor list aliases the
/// neighbor list). For unweighted passes the enumeration order is
/// ascending parent id either way — recorded lists repeat the sorted
/// in-neighbor scan — so backward sweeps regroup identically whichever
/// path runs. Like ForEachDeepestFirst, this is the single definition of
/// parent enumeration; sweeps must not fork their own.
template <typename Visit>
void ForEachParent(const ShortestPathDag& dag, const CsrGraph& graph,
                   VertexId w, Visit&& visit) {
  if (dag.has_predecessors) {
    for (VertexId v : dag.predecessors(w)) visit(v);
  } else {
    const std::uint32_t dw = dag.dist[w];
    for (VertexId v : graph.in_neighbors(w)) {
      if (dag.dist[v] + 1 == dw) visit(v);
    }
  }
}

}  // namespace mhbc
