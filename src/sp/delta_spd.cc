#include "sp/delta_spd.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/thread_pool.h"

namespace mhbc {

DeltaSpd::DeltaSpd(const CsrGraph& graph, SpdOptions options)
    : graph_(&graph), options_(options) {
  MHBC_DCHECK(graph.weighted());
  MHBC_DCHECK(options_.tie_epsilon >= 0.0);
  MHBC_DCHECK(options_.delta_width >= 0.0);
  const VertexId n = graph.num_vertices();
  dag_.wdist.assign(n, -1.0);  // -1 marks unreached
  dag_.sigma.assign(n, 0);
  dag_.order.reserve(n);
  dag_.weighted = true;
  // Parent-list capacity is the in-degree (a parent reaches v over an
  // in-edge), so the graph's in-CSR offsets ARE the begin offsets —
  // reference them instead of rebuilding the array. On undirected graphs
  // the in-CSR aliases the out-CSR, preserving the historical layout.
  dag_.pred_begin = graph.raw_in_offsets().data();
  dag_.pred_count.assign(n, 0);
  dag_.pred_storage.assign(graph.raw_in_adjacency().size(), kInvalidVertex);
  dag_.has_predecessors = true;
  settled_.assign(n, 0);
  wave_.reserve(n);

  // Per-vertex settle slack minw(v) and the window span max_v minw(v) —
  // both pure functions of the graph, fixed for the engine's lifetime.
  // minw(v) is the minimum *incoming* weight: the wave rule bounds how
  // soon another relaxation can still improve wdist(v), and improvements
  // arrive over in-edges. Undirected graphs read the same values as
  // before (in-weights alias the incident weights).
  min_incident_.assign(n, std::numeric_limits<double>::infinity());
  double weight_sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const auto in_wts = graph.in_weights(v);
    for (const double w : in_wts) {
      MHBC_DCHECK(w > 0.0);
      min_incident_[v] = std::min(min_incident_[v], w);
      weight_sum += w;
    }
    if (!in_wts.empty()) {
      max_min_incident_ = std::max(max_min_incident_, min_incident_[v]);
    }
  }
  const std::span<const double> weights = graph.raw_weights();
  // Canonical auto width: the mean edge weight — a function of the graph,
  // never of the thread count. Any positive width yields the same outputs
  // (see the header); the mean keeps the wave window a few buckets wide.
  bucket_width_ = options_.delta_width > 0.0 ? options_.delta_width
                  : weights.empty()
                      ? 1.0
                      : weight_sum / static_cast<double>(weights.size());

  // num_threads == 0 means "inherit": standalone construction has nothing
  // to inherit from, so it stays sequential; an owning engine substitutes
  // its resolved count before constructing us (see BetweennessEngine).
  const unsigned intra = options_.num_threads == 0 ? 1 : options_.num_threads;
  if (intra > 1) pool_ = std::make_unique<ThreadPool>(intra);
}

DeltaSpd::~DeltaSpd() = default;

bool DeltaSpd::Equal(double a, double b) const {
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= options_.tie_epsilon * scale;
}

void DeltaSpd::PushBucket(std::size_t bucket, VertexId v) {
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1);
  buckets_[bucket].push_back(v);
  max_bucket_ = std::max(max_bucket_, bucket);
}

template <typename Push>
void DeltaSpd::RelaxCandidate(VertexId u, VertexId v, double candidate,
                              Push&& push) {
  const double current = dag_.wdist[v];
  if (current < 0.0 ||
      candidate < current - options_.tie_epsilon * candidate) {
    // Strict improvement: reset predecessor set, re-bucket v.
    dag_.wdist[v] = candidate;
    dag_.sigma[v] = dag_.sigma[u];
    dag_.pred_count[v] = 1;
    dag_.pred_storage[dag_.pred_begin[v]] = u;
    push(BucketOf(candidate), v);
  } else if (Equal(candidate, current)) {
    // Tie: u is an additional predecessor (each directed edge relaxes at
    // most once per pass — when u settles — so no duplicate check).
    dag_.sigma[v] += dag_.sigma[u];
    MHBC_DCHECK(dag_.pred_count[v] < graph_->in_degree(v));
    dag_.pred_storage[dag_.pred_begin[v] + dag_.pred_count[v]] = u;
    ++dag_.pred_count[v];
  }
}

void DeltaSpd::Run(VertexId source) {
  MHBC_DCHECK(source < graph_->num_vertices());
  // Reset only what the previous pass touched. Every reached vertex
  // settled (the wave loop drains all buckets), so the previous order is
  // the complete touched set and all buckets are already empty.
  for (VertexId v : dag_.order) {
    dag_.wdist[v] = -1.0;
    dag_.sigma[v] = 0;
    dag_.pred_count[v] = 0;
    settled_[v] = 0;
  }
  dag_.order.clear();
  dag_.level_offsets.clear();
  dag_.source = source;
  last_stats_ = Stats();
  max_bucket_ = 0;

  dag_.wdist[source] = 0.0;
  dag_.sigma[source] = 1;
  PushBucket(0, source);

  std::size_t cur = 0;
  while (cur <= max_bucket_) {
    // Compact the head bucket — drop settled and stale entries (an entry
    // is live only while its vertex' tentative distance still maps here;
    // every improvement pushed an entry to the new bucket) — and find
    // d_min. Monotone BucketOf means the first non-empty compacted bucket
    // holds the global minimum tentative distance.
    std::vector<VertexId>& head = buckets_[cur];
    std::size_t keep = 0;
    double d_min = std::numeric_limits<double>::infinity();
    last_stats_.bucket_entries_scanned += head.size();
    for (VertexId v : head) {
      if (settled_[v] || BucketOf(dag_.wdist[v]) != cur) continue;
      head[keep++] = v;
      d_min = std::min(d_min, dag_.wdist[v]);
    }
    head.resize(keep);
    if (keep == 0) {
      ++cur;
      continue;
    }

    // Wave selection over the window of buckets that can hold members:
    // wdist(v) < d_min + minw(v) <= d_min + max_min_incident_, and
    // BucketOf is monotone. Qualifying vertices settle immediately (which
    // also dedups repeated lazy entries); the rest stay bucketed.
    const std::size_t window_end =
        std::min(BucketOf(d_min + max_min_incident_), max_bucket_);
    wave_.clear();
    std::uint64_t wave_edges = 0;
    for (std::size_t b = cur; b <= window_end; ++b) {
      std::vector<VertexId>& bucket = buckets_[b];
      if (bucket.empty()) continue;
      last_stats_.bucket_entries_scanned += bucket.size();
      std::size_t retained = 0;
      for (VertexId v : bucket) {
        if (settled_[v] || BucketOf(dag_.wdist[v]) != b) continue;
        if (dag_.wdist[v] < d_min + min_incident_[v]) {
          settled_[v] = 1;
          wave_.push_back(v);
          wave_edges += graph_->degree(v);
        } else {
          bucket[retained++] = v;
        }
      }
      bucket.resize(retained);
    }
    // The d_min achiever always qualifies (minw > 0), so progress is
    // guaranteed.
    MHBC_DCHECK(!wave_.empty());

    // Canonicalize the wave: ascending (wdist, id). This fixes the settle
    // order, the per-target relaxation fold order, and the level slice the
    // backward sweep walks — independent of bucket-scan order.
    std::sort(wave_.begin(), wave_.end(), [this](VertexId a, VertexId b) {
      if (dag_.wdist[a] != dag_.wdist[b]) return dag_.wdist[a] < dag_.wdist[b];
      return a < b;
    });
    dag_.level_offsets.push_back(dag_.order.size());
    dag_.order.insert(dag_.order.end(), wave_.begin(), wave_.end());

    ++last_stats_.waves;
    last_stats_.edges_examined += wave_edges;
    if (UseParallel(wave_edges)) {
      ++last_stats_.parallel_waves;
      RelaxWaveParallel();
    } else {
      RelaxWaveSequential();
    }
  }
  dag_.level_offsets.push_back(dag_.order.size());

  total_stats_.edges_examined += last_stats_.edges_examined;
  total_stats_.bucket_entries_scanned += last_stats_.bucket_entries_scanned;
  total_stats_.waves += last_stats_.waves;
  total_stats_.parallel_waves += last_stats_.parallel_waves;
}

void DeltaSpd::RelaxWaveSequential() {
  for (VertexId u : wave_) {
    const double du = dag_.wdist[u];
    const auto nbrs = graph_->neighbors(u);
    const auto wts = graph_->weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (settled_[v]) continue;
      RelaxCandidate(u, v, du + wts[i],
                     [this](std::size_t bucket, VertexId v2) {
                       PushBucket(bucket, v2);
                     });
    }
  }
}

void DeltaSpd::EnsureParallelScratch() {
  if (!range_pushes_.empty()) return;
  // Same destination-range geometry as BfsSpd::EnsureParallelScratch (a
  // pure function of |V|): one definition of "range of v" across the
  // intra-pass machinery.
  const std::size_t n = graph_->num_vertices();
  const std::size_t n_words = (n + 63) / 64;
  const std::size_t words_per_range =
      std::bit_ceil((n_words + kFrontierShards - 1) / kFrontierShards);
  range_shift_ =
      6 + static_cast<std::uint32_t>(std::countr_zero(words_per_range));
  num_ranges_ = (n_words + words_per_range - 1) / words_per_range;
  cand_buckets_.resize(kFrontierShards * num_ranges_);
  range_pushes_.resize(num_ranges_);
}

void DeltaSpd::RelaxWaveParallel() {
  EnsureParallelScratch();
  // Phase 1 — fan out over fixed shards of the (sorted) wave: each shard
  // examines its contiguous slice and buckets every candidate relaxation
  // by destination range. Wave members' wdist/sigma were finalized before
  // relaxation began and settled_ is not written during relaxation, so
  // this phase only reads shared state; all writes go to the shard's
  // private bucket row. The wdist[v] prefilter is an optimization only:
  // tentative distances never increase, so a candidate that neither
  // improves nor ties the wave-start wdist[v] can never do so against a
  // smaller value — phase 2 re-applies the exact relax rule regardless.
  ParallelShardedLevel(
      pool_.get(), kFrontierShards,
      [this](unsigned, std::size_t shard) {
        const auto [begin, end] =
            ShardBounds(wave_.size(), shard, kFrontierShards);
        std::vector<Candidate>* row =
            cand_buckets_.data() + shard * num_ranges_;
        for (std::size_t i = begin; i < end; ++i) {
          const VertexId u = wave_[i];
          const double du = dag_.wdist[u];
          const auto nbrs = graph_->neighbors(u);
          const auto wts = graph_->weights(u);
          for (std::size_t j = 0; j < nbrs.size(); ++j) {
            const VertexId v = nbrs[j];
            if (settled_[v]) continue;
            const double candidate = du + wts[j];
            const double current = dag_.wdist[v];
            if (current >= 0.0 && candidate > current &&
                !Equal(candidate, current)) {
              continue;
            }
            row[v >> range_shift_].push_back({v, u, candidate});
          }
        }
      },
      // Nothing to merge: phase 2 consumes the buckets in shard order.
      [](std::size_t) {});

  // Phase 2 — fan out over destination ranges: each range owner commits
  // its targets' relaxations, walking the candidate buckets in ascending
  // shard order. Shards bucketed their slice of the sorted wave in order,
  // so for any fixed target the candidates arrive in ascending (wdist, id)
  // parent order — the exact sequential fold, making sigma sums and
  // predecessor lists bit-identical. Every write (wdist/sigma/preds) lands
  // in the owner's range; parent reads touch settled wave state only.
  // Bucket insertions cross ranges, so they are staged per range and
  // applied below in range order (the global bucket array is only ever
  // written by the calling thread).
  ParallelShardedLevel(
      pool_.get(), num_ranges_,
      [this](unsigned, std::size_t range) {
        std::vector<StagedPush>& pushes = range_pushes_[range];
        pushes.clear();
        for (std::size_t shard = 0; shard < kFrontierShards; ++shard) {
          std::vector<Candidate>& bucket =
              cand_buckets_[shard * num_ranges_ + range];
          for (const Candidate& c : bucket) {
            RelaxCandidate(c.u, c.v, c.candidate,
                           [&pushes](std::size_t b, VertexId v2) {
                             pushes.push_back({b, v2});
                           });
          }
          bucket.clear();
        }
      },
      [this](std::size_t range) {
        for (const StagedPush& push : range_pushes_[range]) {
          PushBucket(push.bucket, push.v);
        }
      });
}

}  // namespace mhbc
