#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr_graph.h"
#include "sp/spd.h"

/// \file
/// Weighted shortest-path-DAG construction by canonical-wave delta-stepping.
///
/// The weighted analogue of the hybrid BFS engine: one pass costs
/// O(|E| + waves * window) like delta-stepping (Meyer & Sanders), but the
/// settle schedule is *canonical* — a pure function of the graph and the
/// source, never of the bucket width or the thread count — so weighted
/// passes join the determinism contract the unweighted kernels already
/// honor.
///
/// The wave rule. Let d_min be the smallest tentative distance over all
/// reached-but-unsettled vertices and minw(v) the smallest weight incident
/// to v. One step settles the *wave*
///
///     W = { unsettled reached v : wdist(v) < d_min + minw(v) }
///
/// all at once, then relaxes every edge out of W. Finality: any later
/// candidate path into v ends with an edge from a vertex settling at
/// distance >= d_min, so it costs >= d_min + minw(v) > wdist(v) — the
/// tentative distance is already final (positive weights make every
/// unsettled vertex' final distance >= d_min, the textbook Dijkstra
/// argument). The d_min achiever always qualifies (minw > 0), so every
/// step makes progress. Ties that land within tie_epsilon of the
/// wave-settle bound are dropped — deterministically, at every thread
/// count and bucket width (see SpdOptions::tie_epsilon).
///
/// Waves are levels. No SPD edge connects two wave members (an intra-wave
/// candidate costs >= d_min + minw(v) and so cannot tie wdist(v)), and
/// every parent settles in an earlier wave — the settle order is
/// topological, exactly what the backward dependency sweep needs. Waves
/// are recorded as ShortestPathDag::level_offsets with members in
/// ascending (wdist, id) order, so weighted passes reuse the *same* fused
/// level-parallel sweep (sp/dependency.h) as hybrid BFS. Note the order is
/// NOT globally distance-sorted (a heap engine's order is): a vertex with
/// a large minw may settle before a nearer vertex with a small minw.
///
/// Buckets only organize the scan. Tentative distances are kept in an
/// array of width-Δ buckets (Δ = SpdOptions::delta_width, defaulting to
/// the graph's mean edge weight — a pure function of the graph). Entries
/// are lazy — duplicates allowed, stale ones filtered against the current
/// wdist — and each step scans the window of buckets that can contain wave
/// members, [bucket(d_min), bucket(d_min + max_v minw(v))]. Because wave
/// membership is defined by distances and minw alone, every output bit is
/// invariant under Δ; the width trades bucket-scan overhead against window
/// size only.
///
/// Intra-pass parallelism (SpdOptions::num_threads > 1) fans each wave's
/// relaxation out under the same fixed-shard discipline as the BFS
/// kernels: kFrontierShards contiguous slices of the (sorted) wave bucket
/// candidate relaxations by 64-aligned destination range (a pure function
/// of |V|); each range owner then commits its targets' relaxations walking
/// the buckets in shard order — for any fixed target that is ascending
/// (wdist, id) parent order, the exact sequential fold — staging bucket
/// insertions that the calling thread applies in range order. Since wave
/// members' wdist/sigma are fixed before relaxation begins and each
/// target's state is owned by exactly one range, wdist/sigma/order/preds —
/// and every dependency vector downstream — are bit-identical to the
/// sequential pass at any thread count.

namespace mhbc {

class ThreadPool;

/// Reusable canonical-wave delta-stepping engine for one positively-
/// weighted graph.
///
/// Like DijkstraSpd it always records explicit predecessor lists (weighted
/// ties cannot be re-derived from distances) into the shared CSR-capacity
/// pred_* storage; unlike DijkstraSpd it also records the wave structure
/// in level_offsets, which is what unlocks the fused level-parallel
/// backward sweep. Run(source) allocates nothing after the first call. The
/// engine is not reentrant — one Run at a time; with num_threads > 1 a Run
/// fans wave relaxations out over an owned worker pool, which callers
/// share for the fused sweep via intra_pool().
class DeltaSpd {
 public:
  /// Work counters of one pass (and totals across passes). "Edges
  /// examined" counts neighbor-list entries inspected by wave relaxations
  /// (each directed edge at most once per pass); "bucket entries scanned"
  /// counts the lazy-queue overhead (compaction + wave selection visits).
  struct Stats {
    std::uint64_t edges_examined = 0;
    std::uint64_t bucket_entries_scanned = 0;
    std::uint32_t waves = 0;
    std::uint32_t parallel_waves = 0;
  };

  /// Fixed shard count of a parallel wave relaxation — the same constant
  /// (and the same destination-range geometry) as BfsSpd::kFrontierShards,
  /// never derived from the thread count.
  static constexpr std::size_t kFrontierShards = 32;

  /// The graph must be weighted with positive weights and outlive the
  /// engine. options.tie_epsilon must be >= 0 and options.delta_width
  /// >= 0 (0 = auto width); both are validated here.
  explicit DeltaSpd(const CsrGraph& graph, SpdOptions options = SpdOptions());
  ~DeltaSpd();

  /// Computes wdist/sigma/order/level_offsets/predecessors from `source`.
  void Run(VertexId source);

  /// Result of the last Run. `dag().wdist` holds weighted distances;
  /// `dag().dist` is not populated. Valid until the next Run.
  const ShortestPathDag& dag() const { return dag_; }

  /// Predecessors of v in the SPD of the last Run (dag().predecessors).
  std::span<const VertexId> predecessors(VertexId v) const {
    MHBC_DCHECK(v < graph_->num_vertices());
    return dag_.predecessors(v);
  }

  const CsrGraph& graph() const { return *graph_; }
  const SpdOptions& options() const { return options_; }

  /// The bucket width Δ in effect: options().delta_width when positive,
  /// else the canonical auto width (mean edge weight; 1.0 on an edgeless
  /// graph). Outputs are invariant under it — see the file comment.
  double bucket_width() const { return bucket_width_; }

  /// Smallest weight incident to v — the minimum *incoming* weight on
  /// directed graphs (+infinity for vertices with no in-edge): relaxations
  /// arrive over in-edges, so that is the wave rule's per-vertex settle
  /// slack. Exposed for the oracle's selective weighted invalidation and
  /// for tests.
  double min_incident_weight(VertexId v) const {
    MHBC_DCHECK(v < min_incident_.size());
    return min_incident_[v];
  }

  /// Counters of the last Run / summed over all Runs.
  const Stats& last_stats() const { return last_stats_; }
  const Stats& total_stats() const { return total_stats_; }

  /// The engine's intra-pass worker pool; null when the pass is sequential
  /// (SpdOptions::num_threads resolved to 1). The fused dependency sweep
  /// borrows this pool so one pass + accumulate uses one set of threads.
  ThreadPool* intra_pool() const { return pool_.get(); }

 private:
  /// The canonical tie rule (shared with DijkstraSpd): a == b or
  /// |a - b| <= tie_epsilon * max(|a|, |b|).
  bool Equal(double a, double b) const;

  /// Bucket index of distance d; monotone in d, so the first non-empty
  /// bucket always contains the global minimum tentative distance.
  std::size_t BucketOf(double d) const {
    return static_cast<std::size_t>(d / bucket_width_);
  }

  /// Appends a lazy entry for v to `bucket`, growing the array as needed.
  void PushBucket(std::size_t bucket, VertexId v);

  /// Relaxes one candidate edge u -> v (v unsettled): strict improvement
  /// resets v's predecessor set and re-buckets v via `push(bucket, v)`;
  /// a tie folds sigma and appends u. The single relax body both the
  /// sequential and the parallel path funnel through.
  template <typename Push>
  void RelaxCandidate(VertexId u, VertexId v, double candidate, Push&& push);

  /// Relaxes every edge out of wave_ in wave order on the calling thread.
  void RelaxWaveSequential();
  /// Fixed-shard parallel wave relaxation (see the file comment); output
  /// bit-identical to RelaxWaveSequential.
  void RelaxWaveParallel();

  /// True when a wave with `wave_edges` of work should fan out: a pool
  /// exists and the wave clears the (thread-count-independent) grain.
  bool UseParallel(std::uint64_t wave_edges) const {
    return pool_ != nullptr && wave_edges >= options_.parallel_grain;
  }
  /// Lazily sizes the destination ranges + per-shard candidate buckets
  /// (the BfsSpd geometry — a pure function of |V|).
  void EnsureParallelScratch();

  const CsrGraph* graph_;
  SpdOptions options_;
  ShortestPathDag dag_;
  /// Per-vertex smallest incident weight minw(v); +infinity for isolated
  /// vertices (only consulted for reached vertices, which have an edge).
  std::vector<double> min_incident_;
  /// max_v minw(v) over non-isolated vertices — the window span.
  double max_min_incident_ = 0.0;
  double bucket_width_ = 1.0;
  std::vector<char> settled_;
  /// Lazy bucket queue: buckets_[b] holds candidate entries for vertices
  /// whose tentative distance mapped to bucket b when last improved.
  /// Duplicates and stale entries are allowed; compaction filters them
  /// against wdist. All buckets are empty between Runs.
  std::vector<std::vector<VertexId>> buckets_;
  std::size_t max_bucket_ = 0;
  /// The current wave, ascending (wdist, id).
  std::vector<VertexId> wave_;
  Stats last_stats_;
  Stats total_stats_;

  /// A candidate relaxation found by a wave shard: settled parent u offers
  /// v the path length `candidate`.
  struct Candidate {
    VertexId v;
    VertexId u;
    double candidate;
  };
  /// A bucket insertion staged by a range owner, applied by the calling
  /// thread in range order.
  struct StagedPush {
    std::size_t bucket;
    VertexId v;
  };

  /// Intra-pass parallel state; pool_ is null (and the scratch below
  /// empty) when the engine runs sequentially.
  std::unique_ptr<ThreadPool> pool_;
  /// Destination-range geometry: range of v is v >> range_shift_;
  /// num_ranges_ <= kFrontierShards (same rule as BfsSpd).
  std::size_t num_ranges_ = 0;
  std::uint32_t range_shift_ = 0;
  /// Candidate buckets, indexed [shard * num_ranges_ + range]; capacity is
  /// retained across waves and passes.
  std::vector<std::vector<Candidate>> cand_buckets_;
  /// Per-range staged bucket insertions.
  std::vector<std::vector<StagedPush>> range_pushes_;
};

}  // namespace mhbc
