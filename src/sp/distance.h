#pragma once

#include <vector>

#include "graph/csr_graph.h"

/// \file
/// Plain distance computations (no sigma counting), for the
/// distance-proportional baseline sampler [13] and the harnesses.

namespace mhbc {

/// Hop distances from `source` (kUnreachedDistance where unreachable).
std::vector<std::uint32_t> BfsDistances(const CsrGraph& graph,
                                        VertexId source);

/// Weighted distances from `source` (negative where unreachable). Works on
/// unweighted graphs too (all weights 1).
std::vector<double> DijkstraDistances(const CsrGraph& graph, VertexId source);

}  // namespace mhbc
