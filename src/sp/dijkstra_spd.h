#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "sp/spd.h"

/// \file
/// Weighted shortest-path-DAG construction by Dijkstra's algorithm.
///
/// Used for the paper's weighted-graph cost claims: one pass is
/// O(|E| + |V| log |V|)-ish (binary heap with lazy deletion, so
/// O(|E| log |V|) worst case — equivalent for the sparse networks here).

namespace mhbc {

/// Reusable Dijkstra engine for one positively-weighted graph.
///
/// Unlike BFS, shortest-path ties under floating-point addition cannot be
/// re-derived from distances alone, so the engine always records explicit
/// predecessor lists (the SPD edges) into the shared
/// ShortestPathDag::pred_* storage (CSR-capacity layout keyed by degree,
/// so no per-pass allocation is needed).
class DijkstraSpd {
 public:
  /// The graph must be weighted with positive weights and outlive the
  /// engine. Tie detection follows the canonical tie rule (see
  /// SpdOptions::tie_epsilon — this engine shares it with DeltaSpd):
  /// distances within `tie_epsilon` (relative) are equal; 0 requires exact
  /// FP equality. Must be >= 0 (validated).
  explicit DijkstraSpd(const CsrGraph& graph,
                       double tie_epsilon = kDefaultTieEpsilon);

  /// Computes wdist/sigma/order/predecessors from `source`.
  void Run(VertexId source);

  /// Result of the last Run. `dag().wdist` holds weighted distances;
  /// `dag().dist` is not populated.
  const ShortestPathDag& dag() const { return dag_; }

  /// Predecessors of v in the SPD of the last Run (dag().predecessors).
  std::span<const VertexId> predecessors(VertexId v) const {
    MHBC_DCHECK(v < graph_->num_vertices());
    return dag_.predecessors(v);
  }

  const CsrGraph& graph() const { return *graph_; }

 private:
  bool Equal(double a, double b) const;

  const CsrGraph* graph_;
  double tie_epsilon_;
  ShortestPathDag dag_;
  std::vector<char> settled_;
};

}  // namespace mhbc
