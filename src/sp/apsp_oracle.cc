#include "sp/apsp_oracle.h"

#include <algorithm>
#include <cmath>

namespace mhbc {

namespace {
constexpr double kTieEpsilon = 1e-9;
}  // namespace

bool ApspOracle::Equal(double a, double b) const {
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= kTieEpsilon * std::max(scale, 1.0);
}

ApspOracle::ApspOracle(const CsrGraph& graph) : n_(graph.num_vertices()) {
  const std::size_t total = static_cast<std::size_t>(n_) * n_;
  dist_.assign(total, -1.0);
  count_.assign(total, 0.0);
  for (VertexId v = 0; v < n_; ++v) {
    dist_[index(v, v)] = 0.0;
    count_[index(v, v)] = 1.0;
  }
  for (VertexId u = 0; u < n_; ++u) {
    const auto nbrs = graph.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double w = graph.weighted() ? graph.weights(u)[i] : 1.0;
      dist_[index(u, nbrs[i])] = w;
    }
  }
  // Floyd-Warshall on distances.
  for (VertexId k = 0; k < n_; ++k) {
    for (VertexId i = 0; i < n_; ++i) {
      const double dik = dist_[index(i, k)];
      if (dik < 0.0) continue;
      for (VertexId j = 0; j < n_; ++j) {
        const double dkj = dist_[index(k, j)];
        if (dkj < 0.0) continue;
        const double through = dik + dkj;
        double& dij = dist_[index(i, j)];
        if (dij < 0.0 || through < dij) dij = through;
      }
    }
  }
  // Path counts by DP over the settled distance matrix: process target
  // vertices for each source in order of increasing distance; sigma(u,v) =
  // sum over neighbors z of v with d(u,z) + w(z,v) == d(u,v) of sigma(u,z).
  std::vector<VertexId> order(n_);
  for (VertexId u = 0; u < n_; ++u) {
    for (VertexId v = 0; v < n_; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [this, u](VertexId a, VertexId b) {
      const double da = dist_[index(u, a)];
      const double db = dist_[index(u, b)];
      // Unreachable last.
      if ((da < 0.0) != (db < 0.0)) return db < 0.0;
      return da < db;
    });
    for (VertexId v : order) {
      if (v == u) continue;
      const double duv = dist_[index(u, v)];
      if (duv < 0.0) break;  // all remaining are unreachable
      double sigma = 0.0;
      const auto nbrs = graph.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId z = nbrs[i];
        const double w = graph.weighted() ? graph.weights(v)[i] : 1.0;
        const double duz = dist_[index(u, z)];
        if (duz < 0.0) continue;
        if (Equal(duz + w, duv)) sigma += count_[index(u, z)];
      }
      count_[index(u, v)] = sigma;
    }
  }
}

double ApspOracle::PairDependency(VertexId u, VertexId v, VertexId w) const {
  MHBC_DCHECK(w < n_);
  if (w == u || w == v || u == v) return 0.0;
  const double duv = dist_[index(u, v)];
  if (duv < 0.0) return 0.0;
  const double duw = dist_[index(u, w)];
  const double dwv = dist_[index(w, v)];
  if (duw < 0.0 || dwv < 0.0) return 0.0;
  if (!Equal(duw + dwv, duv)) return 0.0;
  return count_[index(u, w)] * count_[index(w, v)] / count_[index(u, v)];
}

}  // namespace mhbc
