#include "core/mh_chain.h"

#include <algorithm>

namespace mhbc {

double MhAcceptanceProbability(double delta_current, double delta_proposed) {
  MHBC_DCHECK(delta_current >= 0.0);
  MHBC_DCHECK(delta_proposed >= 0.0);
  if (delta_current == 0.0) return 1.0;  // covers the 0/0 convention too
  return std::min(1.0, delta_proposed / delta_current);
}

double MhAcceptanceProbability(double delta_current, double delta_proposed,
                               double q_current, double q_proposed) {
  MHBC_DCHECK(q_current > 0.0);
  MHBC_DCHECK(q_proposed > 0.0);
  if (delta_current == 0.0) return 1.0;
  return std::min(1.0,
                  (delta_proposed * q_current) / (delta_current * q_proposed));
}

VertexId DrawProposal(const CsrGraph& graph, ProposalKind kind, Rng* rng) {
  switch (kind) {
    case ProposalKind::kUniform:
      return rng->NextVertex(graph.num_vertices());
    case ProposalKind::kDegreeProportional: {
      // A uniform entry of the adjacency array is an edge endpoint drawn
      // proportionally to degree. Isolated vertices get zero proposal mass,
      // which the Hastings correction accounts for (they also have zero
      // dependency, so excluding them does not bias the estimate support).
      const std::uint64_t entries = graph.num_edges() * 2;
      MHBC_DCHECK(entries > 0);
      const std::uint64_t pick = rng->NextBounded(entries);
      // Binary search for the vertex owning adjacency slot `pick`, using
      // neighbors(v).data() - neighbors(0).data() == CSR offset of v.
      VertexId lo = 0;
      VertexId hi = graph.num_vertices() - 1;
      while (lo < hi) {
        const VertexId mid = lo + (hi - lo + 1) / 2;
        const auto base = static_cast<std::uint64_t>(
            graph.neighbors(mid).data() - graph.neighbors(0).data());
        if (base <= pick) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      return lo;
    }
  }
  MHBC_DCHECK(false);
  return kInvalidVertex;
}

double ProposalMass(const CsrGraph& graph, ProposalKind kind, VertexId v) {
  switch (kind) {
    case ProposalKind::kUniform:
      return 1.0;
    case ProposalKind::kDegreeProportional:
      return static_cast<double>(graph.degree(v));
  }
  MHBC_DCHECK(false);
  return 0.0;
}

}  // namespace mhbc
