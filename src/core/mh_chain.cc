#include "core/mh_chain.h"

#include <algorithm>

namespace mhbc {

double MhAcceptanceProbability(double delta_current, double delta_proposed) {
  MHBC_DCHECK(delta_current >= 0.0);
  MHBC_DCHECK(delta_proposed >= 0.0);
  if (delta_current == 0.0) return 1.0;  // covers the 0/0 convention too
  return std::min(1.0, delta_proposed / delta_current);
}

double MhAcceptanceProbability(double delta_current, double delta_proposed,
                               double q_current, double q_proposed) {
  MHBC_DCHECK(q_current > 0.0);
  MHBC_DCHECK(q_proposed > 0.0);
  if (delta_current == 0.0) return 1.0;
  return std::min(1.0,
                  (delta_proposed * q_current) / (delta_current * q_proposed));
}

VertexId DrawProposal(const CsrGraph& graph, ProposalKind kind, Rng* rng) {
  switch (kind) {
    case ProposalKind::kUniform:
      return rng->NextVertex(graph.num_vertices());
    case ProposalKind::kDegreeProportional: {
      // A uniform entry of the adjacency array is an edge endpoint drawn
      // proportionally to degree. Isolated vertices get zero proposal mass,
      // which the Hastings correction accounts for (they also have zero
      // dependency, so excluding them does not bias the estimate support).
      //
      // Undirected: the 2m-entry adjacency array alone realizes the draw
      // (each edge contributes both endpoints). Directed: the out-CSR
      // holds only m arc tails, so the draw spans the out array *and* the
      // in array — slot ownership over out ⊎ in is proportional to
      // outdeg(v) + indeg(v), the total degree ProposalMass reports.
      const std::uint64_t out_entries = graph.raw_adjacency().size();
      const std::uint64_t entries =
          graph.directed() ? out_entries + graph.raw_in_adjacency().size()
                           : out_entries;
      MHBC_DCHECK(entries > 0);
      std::uint64_t pick = rng->NextBounded(entries);
      std::span<const EdgeId> offsets = graph.raw_offsets();
      if (pick >= out_entries) {
        pick -= out_entries;
        offsets = graph.raw_in_offsets();
      }
      // Owner of slot `pick`: the v with offsets[v] <= pick < offsets[v+1].
      const auto it = std::upper_bound(offsets.begin(), offsets.end(),
                                       static_cast<EdgeId>(pick));
      return static_cast<VertexId>((it - offsets.begin()) - 1);
    }
  }
  MHBC_DCHECK(false);
  return kInvalidVertex;
}

double ProposalMass(const CsrGraph& graph, ProposalKind kind, VertexId v) {
  switch (kind) {
    case ProposalKind::kUniform:
      return 1.0;
    case ProposalKind::kDegreeProportional:
      // Directed mass is the total degree — the out ⊎ in slot count the
      // draw above assigns to v. Undirected keeps degree(v) (in aliases
      // out; doubling both masses would cancel in the Hastings ratio but
      // needlessly change no-op arithmetic).
      return graph.directed()
                 ? static_cast<double>(graph.degree(v)) + graph.in_degree(v)
                 : static_cast<double>(graph.degree(v));
  }
  MHBC_DCHECK(false);
  return 0.0;
}

}  // namespace mhbc
