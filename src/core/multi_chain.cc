#include "core/multi_chain.h"

#include <cmath>
#include <limits>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace mhbc {

double GelmanRubinRhat(const std::vector<std::vector<double>>& chains) {
  MHBC_DCHECK(chains.size() >= 2);
  const std::size_t m = chains.size();
  const std::size_t len = chains[0].size();
  MHBC_DCHECK(len >= 2);
  for (const auto& chain : chains) MHBC_DCHECK(chain.size() == len);

  std::vector<double> means(m);
  std::vector<double> variances(m);
  for (std::size_t c = 0; c < m; ++c) {
    RunningStats stats;
    for (double x : chains[c]) stats.Add(x);
    means[c] = stats.mean();
    variances[c] = stats.variance();
  }
  RunningStats across;
  for (double mean : means) across.Add(mean);
  const double between = static_cast<double>(len) * across.variance();
  const double within = Mean(variances);
  if (within <= 0.0) {
    // All chains constant: perfect agreement is R-hat = 1 exactly, but
    // constant chains stuck at different levels disagree maximally.
    return between <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  const double n = static_cast<double>(len);
  const double pooled = (n - 1.0) / n * within + between / n;
  return std::sqrt(pooled / within);
}

MultiChainResult RunMultipleChains(const CsrGraph& graph, VertexId r,
                                   std::uint64_t iterations,
                                   std::uint32_t num_chains,
                                   const MhOptions& options,
                                   unsigned num_threads) {
  MHBC_DCHECK(num_chains >= 2);
  // Each chain is a pure function of its index (seed derivation below), so
  // the chains can run on any number of workers; pooling below folds the
  // per-chain results in chain order, which keeps every field bit-identical
  // to the sequential run.
  ThreadPool pool(ResolveThreadCount(num_threads));
  const std::vector<MhResult> results = ParallelMap<MhResult>(
      &pool, num_chains, [&graph, r, iterations, &options](unsigned,
                                                           std::size_t c) {
        MhOptions chain_options = options;
        chain_options.seed = options.seed + 0x9e3779b97f4a7c15ULL * (c + 1);
        chain_options.record_trace = true;
        MhBetweennessSampler sampler(graph, chain_options);
        return sampler.Run(r, iterations);
      });

  MultiChainResult out;
  std::vector<std::vector<double>> series;
  double estimate_sum = 0.0;
  double proposal_sum = 0.0;
  for (const MhResult& result : results) {
    out.chain_estimates.push_back(result.estimate);
    estimate_sum += result.estimate;
    proposal_sum += result.proposal_estimate;
    out.sp_passes += result.diagnostics.sp_passes;
    series.push_back(result.f_series);
  }
  out.pooled_estimate = estimate_sum / num_chains;
  out.pooled_proposal_estimate = proposal_sum / num_chains;
  out.r_hat = GelmanRubinRhat(series);
  return out;
}

}  // namespace mhbc
