#include "core/joint_space.h"

#include <cmath>
#include <limits>
#include <unordered_set>

#include "util/stats.h"

namespace mhbc {

JointSpaceSampler::JointSpaceSampler(const CsrGraph& graph,
                                     std::vector<VertexId> targets,
                                     JointOptions options,
                                     DependencyOracle* shared_oracle)
    : graph_(&graph),
      targets_(std::move(targets)),
      options_(options),
      owned_oracle_(shared_oracle ? nullptr
                                  : std::make_unique<DependencyOracle>(graph)),
      oracle_(shared_oracle ? shared_oracle : owned_oracle_.get()),
      rng_(options.seed) {
  MHBC_DCHECK(graph.num_vertices() >= 2);
  MHBC_DCHECK(targets_.size() >= 2);
  std::unordered_set<VertexId> seen;
  for (VertexId r : targets_) {
    MHBC_DCHECK(r < graph.num_vertices());
    const bool inserted = seen.insert(r).second;
    MHBC_DCHECK(inserted);  // targets must be distinct
  }
}

JointResult JointSpaceSampler::Run(std::uint64_t iterations) {
  MHBC_DCHECK(iterations >= 1);
  const VertexId n = graph_->num_vertices();
  const std::size_t k = targets_.size();

  JointResult result;
  const std::uint64_t passes_before = oracle_->num_passes();
  result.samples_per_target.assign(k, 0);
  // accum[j][i] collects sum over M(j) of min{1, delta_v(ri)/delta_v(rj)}.
  std::vector<std::vector<double>> accum(k, std::vector<double>(k, 0.0));
  std::unordered_set<std::uint64_t> distinct;

  // Dependencies of the current state's v on every target (delta row).
  std::vector<double> row_current(k, 0.0);
  std::vector<double> row_proposed(k, 0.0);

  auto load_row = [&](VertexId v, std::vector<double>* row) {
    const std::vector<double>& deltas = oracle_->Dependencies(v);
    for (std::size_t i = 0; i < k; ++i) (*row)[i] = deltas[targets_[i]];
  };

  // Initial state <r0, v0>, both uniform (paper §4.3).
  std::size_t current_target = static_cast<std::size_t>(rng_.NextBounded(k));
  VertexId current_v = rng_.NextVertex(n);
  load_row(current_v, &row_current);

  auto record_state = [&](std::size_t target_idx, VertexId v,
                          const std::vector<double>& row) {
    ++result.samples_per_target[target_idx];
    const double delta_j = row[target_idx];
    for (std::size_t i = 0; i < k; ++i) {
      accum[target_idx][i] += ClippedRatio(row[i], delta_j);
    }
    distinct.insert(static_cast<std::uint64_t>(target_idx) << 32 |
                    static_cast<std::uint64_t>(v));
    if (options_.record_trace) result.trace.emplace_back(target_idx, v);
  };
  if (options_.burn_in == 0) {
    record_state(current_target, current_v, row_current);
  }

  for (std::uint64_t t = 1; t <= options_.burn_in + iterations; ++t) {
    const std::size_t proposed_target =
        static_cast<std::size_t>(rng_.NextBounded(k));
    const VertexId proposed_v = rng_.NextVertex(n);
    load_row(proposed_v, &row_proposed);

    const double accept_probability = MhAcceptanceProbability(
        row_current[current_target], row_proposed[proposed_target]);
    if (rng_.NextBernoulli(accept_probability)) {
      current_target = proposed_target;
      current_v = proposed_v;
      row_current.swap(row_proposed);
      ++result.diagnostics.accepted;
    } else {
      ++result.diagnostics.rejected;
    }
    if (t > options_.burn_in) {
      record_state(current_target, current_v, row_current);
    }
  }

  result.diagnostics.iterations = options_.burn_in + iterations;
  // Work this run actually paid for (oracle memo hits cost no pass).
  result.diagnostics.sp_passes = oracle_->num_passes() - passes_before;
  result.diagnostics.distinct_states = distinct.size();

  // Finalize Eq. 23 estimates and Eq. 22 ratios.
  result.relative.assign(k, std::vector<double>(k, 0.0));
  result.ratio.assign(k, std::vector<double>(k,
                      std::numeric_limits<double>::quiet_NaN()));
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint64_t m_j = result.samples_per_target[j];
    if (m_j == 0) {
      result.undersampled = true;
      continue;
    }
    for (std::size_t i = 0; i < k; ++i) {
      result.relative[j][i] = accum[j][i] / static_cast<double>(m_j);
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) {
        result.ratio[i][j] = 1.0;
        continue;
      }
      const double numerator = result.relative[j][i];    // over M(j)
      const double denominator = result.relative[i][j];  // over M(i)
      if (result.samples_per_target[j] > 0 &&
          result.samples_per_target[i] > 0 && denominator > 0.0) {
        result.ratio[i][j] = numerator / denominator;
      }
    }
  }

  // Copeland-style ranking aggregate over pairwise ratio comparisons.
  result.copeland_scores.assign(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const double r_ij = result.ratio[i][j];
      if (!std::isnan(r_ij) && r_ij >= 1.0) result.copeland_scores[i] += 1.0;
    }
  }
  return result;
}

}  // namespace mhbc
