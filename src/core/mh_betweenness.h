#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/diagnostics.h"
#include "core/mh_chain.h"
#include "exact/dependency_oracle.h"
#include "graph/csr_graph.h"
#include "util/rng.h"

/// \file
/// The paper's single-space Metropolis-Hastings betweenness sampler (§4.2).
///
/// A Markov chain on V(G): from state v, propose v' (uniformly in the
/// paper), accept with min{1, delta_{v'.}(r) / delta_{v.}(r)} (Eq. 6). The
/// stationary distribution is the optimal source distribution of [13]
/// (Eq. 5). The betweenness estimate (Eq. 7) averages
/// f(v) = delta_{v.}(r) / (n-1) over the chain's T+1 states (a rejected
/// iteration re-counts the held state, which is what dividing by T+1
/// requires).
///
/// Each iteration costs exactly one shortest-path pass (for the proposal;
/// the current state's dependency is cached), so T iterations cost T + 1
/// passes — the "worst case time complexity of processing each sample is
/// O(|E|)" claim of §4.2.

namespace mhbc {

/// Knobs for one chain run. Defaults reproduce the paper's algorithm.
struct MhOptions {
  std::uint64_t seed = 0x5eed;
  /// Iterations to discard before recording. The paper proves its bound
  /// holds *without* burn-in; nonzero values exist for the E11 ablation.
  std::uint64_t burn_in = 0;
  /// Proposal distribution (paper: uniform). Non-uniform proposals apply
  /// the Hastings correction.
  ProposalKind proposal = ProposalKind::kUniform;
  /// Fixed initial state; kInvalidVertex draws it uniformly at random
  /// (the paper's choice). Theorem 1 holds from any initial state.
  VertexId initial_state = kInvalidVertex;
  /// Record the state trace and per-state f-series (memory O(T); needed by
  /// the stationarity tests and the mixing bench E6). Implies
  /// record_series.
  bool record_trace = false;
  /// Record only the f-series and proposal-series (memory O(T), no vertex
  /// trace) — what the engine's ESS / standard-error diagnostics need.
  bool record_series = false;
};

/// Outcome of one chain run.
struct MhResult {
  /// Paper Eq. 7: the chain-average estimate of BC(r), Eq. 1 normalization.
  double estimate = 0.0;
  /// Rao-Blackwellized companion estimate (library extension, not in the
  /// paper): the proposals of an independence chain are iid draws from the
  /// proposal distribution, so importance-averaging their dependencies
  /// gives an *unbiased* estimate of BC(r) from the same passes. The E15
  /// ablation compares the two.
  double proposal_estimate = 0.0;
  ChainDiagnostics diagnostics;
  /// States of the chain at steps 0..T (only when record_trace).
  std::vector<VertexId> trace;
  /// f(state) series over the recorded chain states (when record_trace or
  /// record_series).
  std::vector<double> f_series;
  /// Paper-normalized importance-weighted proposal terms, one per
  /// iteration (when record_trace or record_series). These are iid draws
  /// whose mean is `proposal_estimate`, so stddev/sqrt(T) is its standard
  /// error.
  std::vector<double> proposal_series;
};

/// Reusable single-vertex MH estimator bound to one graph.
///
/// Reuse contract: one instance may run any number of chains (each Run is
/// a fresh chain continuing the instance's random stream, for any target).
/// Reset(seed) rewinds the stream so a cached instance reproduces a fresh
/// one bit-for-bit.
class MhBetweennessSampler {
 public:
  /// Graph must be non-trivial (n >= 2) and outlive the sampler. A
  /// non-null `shared_oracle` (bound to the same graph, outliving the
  /// sampler) replaces the internally owned one; its memo can serve
  /// repeated proposal sources without re-running passes (see
  /// DependencyOracle) without changing any estimate.
  MhBetweennessSampler(const CsrGraph& graph, MhOptions options,
                       DependencyOracle* shared_oracle = nullptr);

  /// Runs a fresh chain of `iterations` MH steps targeting vertex r.
  MhResult Run(VertexId r, std::uint64_t iterations);

  /// Convenience: Run(...).estimate.
  double Estimate(VertexId r, std::uint64_t iterations) {
    return Run(r, iterations).estimate;
  }

  /// Rewinds the random stream to that of a fresh sampler seeded `seed`.
  void Reset(std::uint64_t seed) {
    options_.seed = seed;
    rng_ = Rng(seed);
  }

  const MhOptions& options() const { return options_; }
  MhOptions* mutable_options() { return &options_; }

  /// Total shortest-path passes across all runs through this sampler's
  /// oracle (a shared oracle also counts the other users' work; per-run
  /// work is in MhResult::diagnostics.sp_passes).
  std::uint64_t num_passes() const { return oracle_->num_passes(); }

 private:
  const CsrGraph* graph_;
  MhOptions options_;
  std::unique_ptr<DependencyOracle> owned_oracle_;
  DependencyOracle* oracle_;
  Rng rng_;
};

}  // namespace mhbc
