#pragma once

#include <cstdint>
#include <vector>

#include "core/mh_betweenness.h"
#include "graph/csr_graph.h"

/// \file
/// Multi-chain extension (not in the paper): run K independent chains with
/// different seeds/initial states, pool the estimates, and compute the
/// Gelman-Rubin potential scale reduction factor (R-hat) over the f-series
/// — the standard MCMC convergence check. The paper argues no burn-in is
/// needed; R-hat ~ 1 across arbitrary initial states is the measurable
/// form of that claim (tested in multi_chain_test.cc).

namespace mhbc {

/// Pooled outcome of K independent chains.
struct MultiChainResult {
  /// Mean of the per-chain Eq. 7 estimates.
  double pooled_estimate = 0.0;
  /// Mean of the per-chain Rao-Blackwell estimates.
  double pooled_proposal_estimate = 0.0;
  /// Per-chain Eq. 7 estimates.
  std::vector<double> chain_estimates;
  /// Gelman-Rubin potential scale reduction factor of the f-series;
  /// values near 1 indicate the chains agree (converged).
  double r_hat = 0.0;
  /// Total shortest-path passes across all chains.
  std::uint64_t sp_passes = 0;
};

/// Runs `num_chains` chains of `iterations` steps each; seeds are derived
/// from options.seed, initial states are drawn independently per chain.
///
/// The chains are fully independent (each owns its sampler and oracle), so
/// `num_threads` > 1 runs them concurrently on a fixed worker pool
/// (0 = hardware concurrency). Per-chain seeds depend only on the chain
/// index and the per-chain results are pooled in chain order, so the
/// result is bit-identical at every thread count.
MultiChainResult RunMultipleChains(const CsrGraph& graph, VertexId r,
                                   std::uint64_t iterations,
                                   std::uint32_t num_chains,
                                   const MhOptions& options,
                                   unsigned num_threads = 1);

/// Gelman-Rubin R-hat for equal-length scalar series (>= 2 chains of >= 2
/// elements). Uses the classic between/within variance form. Degenerate
/// inputs: identical constant chains agree perfectly and return exactly 1;
/// constant chains at *different* levels have zero within-chain variance
/// but real disagreement and return +infinity.
double GelmanRubinRhat(const std::vector<std::vector<double>>& chains);

}  // namespace mhbc
