#ifndef MHBC_CORE_MULTI_CHAIN_H_
#define MHBC_CORE_MULTI_CHAIN_H_

#include <cstdint>
#include <vector>

#include "core/mh_betweenness.h"
#include "graph/csr_graph.h"

/// \file
/// Multi-chain extension (not in the paper): run K independent chains with
/// different seeds/initial states, pool the estimates, and compute the
/// Gelman-Rubin potential scale reduction factor (R-hat) over the f-series
/// — the standard MCMC convergence check. The paper argues no burn-in is
/// needed; R-hat ~ 1 across arbitrary initial states is the measurable
/// form of that claim (tested in multi_chain_test.cc).

namespace mhbc {

/// Pooled outcome of K independent chains.
struct MultiChainResult {
  /// Mean of the per-chain Eq. 7 estimates.
  double pooled_estimate = 0.0;
  /// Mean of the per-chain Rao-Blackwell estimates.
  double pooled_proposal_estimate = 0.0;
  /// Per-chain Eq. 7 estimates.
  std::vector<double> chain_estimates;
  /// Gelman-Rubin potential scale reduction factor of the f-series;
  /// values near 1 indicate the chains agree (converged).
  double r_hat = 0.0;
  /// Total shortest-path passes across all chains.
  std::uint64_t sp_passes = 0;
};

/// Runs `num_chains` chains of `iterations` steps each; seeds are derived
/// from options.seed, initial states are drawn independently per chain.
MultiChainResult RunMultipleChains(const CsrGraph& graph, VertexId r,
                                   std::uint64_t iterations,
                                   std::uint32_t num_chains,
                                   const MhOptions& options);

/// Gelman-Rubin R-hat for equal-length scalar series (>= 2 chains). Uses
/// the classic between/within variance form; returns 1 for degenerate
/// (zero-variance) inputs.
double GelmanRubinRhat(const std::vector<std::vector<double>>& chains);

}  // namespace mhbc

#endif  // MHBC_CORE_MULTI_CHAIN_H_
