#pragma once

#include <vector>

#include "util/common.h"

/// \file
/// Exact single-sample variances of the source-sampling estimators, from a
/// dependency profile. This is the analytic backbone of the sampling story
/// the paper builds on: [13]'s "optimal" distribution (Eq. 5) is the one
/// that drives the importance-weighted estimator's variance to zero, and
/// every practical sampler is judged by how close it gets.
///
/// All estimators below are unbiased for the paper-normalized BC(r); the
/// reported value is the variance of ONE importance-weighted sample (the
/// k-sample estimator's variance is this divided by k). Zero-probability
/// sources with nonzero dependency would make an estimator biased; the
/// functions MHBC_DCHECK against that.

namespace mhbc {

/// Variance of the uniform source sampler: sample s ~ Uniform(V),
/// estimate delta_s/(n-1) * n/n... i.e. importance weight n. Exact:
/// Var = (1/(n(n-1)^2)) * sum delta^2 - BC^2 ... computed directly.
double UniformSamplerVariance(const std::vector<double>& profile);

/// Variance of an arbitrary-source-distribution importance sampler:
/// sample s ~ p, estimate delta_s / (p_s * n(n-1)). `probabilities` must
/// sum to ~1 and dominate the profile's support.
double ImportanceSamplerVariance(const std::vector<double>& profile,
                                 const std::vector<double>& probabilities);

/// Variance under the distance-proportional distribution of [13]
/// (P[s] proportional to the given nonnegative weights, e.g. distances).
double WeightedSamplerVariance(const std::vector<double>& profile,
                               const std::vector<double>& weights);

/// Variance under the optimal distribution (Eq. 5): exactly zero, provided
/// analytically for the tables (and as a tautology check in tests).
double OptimalSamplerVariance(const std::vector<double>& profile);

/// Variance of f(v) = delta_v/(n-1) under the chain's stationary
/// distribution pi (Eq. 5) — the asymptotic per-sample variance scale of
/// the Eq. 7 readout around its own limit E_pi[f] (the iid part; chain
/// autocorrelation multiplies it by 1/ESS-rate, measured in E6).
double ChainStationaryVariance(const std::vector<double>& profile);

}  // namespace mhbc
