#include "core/adaptive.h"

#include <cmath>

#include "core/diagnostics.h"
#include "util/stats.h"

namespace mhbc {

AdaptiveResult AdaptiveMhEstimate(const CsrGraph& graph, VertexId r,
                                  const AdaptiveOptions& options) {
  MHBC_DCHECK(options.epsilon > 0.0);
  MHBC_DCHECK(options.z > 0.0);
  MHBC_DCHECK(options.initial_batch >= 2);

  MhOptions chain_options;
  chain_options.seed = options.seed;
  chain_options.record_trace = true;  // f-series feeds the ESS estimate
  MhBetweennessSampler sampler(graph, chain_options);

  AdaptiveResult out;
  std::uint64_t budget = options.initial_batch;
  while (true) {
    // Re-run a fresh chain at the doubled budget. Re-running (rather than
    // extending) keeps the result a pure function of (seed, budget); the
    // doubling schedule caps total work at 2x the final chain length.
    const MhResult result = sampler.Run(r, budget);
    out.estimate = result.estimate;
    out.proposal_estimate = result.proposal_estimate;
    out.iterations = budget;

    RunningStats stats;
    for (double f : result.f_series) stats.Add(f);
    const double ess = EffectiveSampleSize(result.f_series);
    const double std_error =
        ess > 1.0 ? std::sqrt(stats.variance() / ess) : stats.stddev();
    out.half_width = options.z * std_error;
    if (out.half_width <= options.epsilon && stats.count() >= 2) {
      out.converged = true;
      return out;
    }
    if (budget >= options.max_iterations) {
      out.converged = false;
      return out;
    }
    budget = std::min<std::uint64_t>(budget * 2, options.max_iterations);
  }
}

}  // namespace mhbc
