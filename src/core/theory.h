#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

/// \file
/// The paper's theoretical quantities, computed exactly from a dependency
/// profile (the vector delta_{v.}(r) over all sources v; see
/// exact/brandes.h DependencyProfile). Backs experiments E4 (bound
/// validation) and E5 (Theorem 2 mu scaling), and EXPERIMENTS.md's
/// bias analysis.

namespace mhbc {

/// delta-bar(r): the average dependency on r over all n vertices
/// (Theorem 1's normalizer).
double MeanDependency(const std::vector<double>& profile);

/// mu(r): the smallest value satisfying Inequality 11,
/// delta_{v.}(r) <= mu(r) * delta-bar(r) for all v — i.e.
/// max_v delta_v / delta-bar. Requires a strictly positive mean
/// (r must have nonzero betweenness).
double MuFromProfile(const std::vector<double>& profile);

/// Eq. 14 / Eq. 27 sample bound: smallest T with
/// T >= mu^2 / (2 eps^2) * ln(2/delta). eps > 0, delta in (0,1).
std::uint64_t SampleBound(double mu, double eps, double delta);

/// Eq. 12 / Eq. 25 tail bound: 2 exp{-(T/2) (2 eps / mu - 3/T)^2}, clamped
/// to 1, and 1 when 2 eps / mu <= 3 / T (the bound's validity edge: the
/// paper approximates 3/T by 0 for large T).
double TailBound(double mu, double eps, std::uint64_t chain_length);

/// The value Eq. 7's chain average converges to as T grows:
/// E_pi[f] = sum_v delta_v^2 / (sum_v delta_v * (n-1)), with pi the
/// stationary distribution of Eq. 5. Comparing this against the true
/// BC(r) = sum_v delta_v / (n (n-1)) quantifies the estimator's
/// asymptotic bias; the gap factor is bounded by mu(r) (tight when the
/// support's dependencies are uniform, the Theorem 2 regime).
double ChainLimitEstimate(const std::vector<double>& profile);

/// Exact relative betweenness BC_{rj}(ri), Eq. 23: the *uniform* average
/// over v of min{1, delta_v(ri)/delta_v(rj)} (ClippedRatio conventions).
double ExactRelativeBetweenness(const std::vector<double>& profile_i,
                                const std::vector<double>& profile_j);

/// The value the joint-space estimate of BC_{rj}(ri) converges to:
/// E_{P_rj}[min{1, delta(ri)/delta(rj)}] =
///   sum_v min(delta_v(ri), delta_v(rj)) / sum_v delta_v(rj).
/// Note the numerator is symmetric in (i, j) — this is why the Eq. 22
/// *ratio* is exactly consistent for BC(ri)/BC(rj) (Theorem 3) even though
/// each side individually converges to this, not to Eq. 23.
double ChainLimitRelative(const std::vector<double>& profile_i,
                          const std::vector<double>& profile_j);

}  // namespace mhbc
