#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/diagnostics.h"
#include "core/mh_chain.h"
#include "exact/dependency_oracle.h"
#include "graph/csr_graph.h"
#include "util/rng.h"

/// \file
/// The paper's joint-space Metropolis-Hastings sampler (§4.3): a chain on
/// R x V(G) estimating, for every ordered pair (ri, rj) in R, the relative
/// betweenness score BC_{rj}(ri) (Eq. 23) and the betweenness ratio
/// BC(ri)/BC(rj) (Eq. 22).
///
/// State: (r, v). Proposal: fresh uniform r' in R and v' in V(G). The move
/// is accepted with min{1, delta_{v'.}(r') / delta_{v.}(r)} (Eq. 17), which
/// gives the stationary distribution of Eq. 18.
///
/// A key implementation choice: one shortest-path pass from v' yields the
/// whole dependency vector delta_{v'.}(.), so every sample contributes its
/// clipped ratios min{1, delta_v(ri)/delta_v(rj)} for *all* pairs at no
/// extra pass cost. Per iteration: exactly one pass, as in §4.2.
///
/// This is the Bennett acceptance-ratio construction from statistical
/// physics ([5]) that the paper imports: ratios of normalizing constants
/// (here: betweenness scores) from per-space clipped-ratio averages.

namespace mhbc {

/// Knobs for a joint-space run.
struct JointOptions {
  std::uint64_t seed = 0x5eed;
  /// Iterations to discard (paper needs none; ablation knob).
  std::uint64_t burn_in = 0;
  /// Record the (r-index, v) trace (memory O(T)).
  bool record_trace = false;
};

/// Outcome of a joint-space run over the vertex set R.
struct JointResult {
  /// relative[j][i] estimates BC_{rj}(ri) (Eq. 23): the average over
  /// samples with r-component rj of min{1, delta_v(ri)/delta_v(rj)}.
  /// relative[j][j] == 1 by construction.
  std::vector<std::vector<double>> relative;
  /// ratio[i][j] estimates BC(ri)/BC(rj) via Eq. 22:
  /// relative[j][i] / relative[i][j]. NaN when the denominator average is
  /// empty (an r-component never visited — flagged by `undersampled`).
  std::vector<std::vector<double>> ratio;
  /// Number of samples whose r-component was r_k (|M(k)| in the paper).
  std::vector<std::uint64_t> samples_per_target;
  /// True if some target in R was never visited (T too small for |R|).
  bool undersampled = false;
  ChainDiagnostics diagnostics;
  /// Chain trace as (index into R, vertex) pairs (only when record_trace).
  std::vector<std::pair<std::size_t, VertexId>> trace;

  /// Ranking scores: score[i] = sum over j != i of 1 if ratio[i][j] >= 1.
  /// A simple Copeland-style aggregate for ranking R by betweenness
  /// (application use case from §1). Computed by the sampler.
  std::vector<double> copeland_scores;
};

/// Joint-space MH estimator for relative betweenness over a set R.
///
/// Reuse contract: one instance may run any number of chains (each Run is
/// a fresh chain continuing the instance's random stream); Reset(seed)
/// rewinds the stream so a cached instance reproduces a fresh one.
class JointSpaceSampler {
 public:
  /// `targets` (the paper's R) must hold >= 2 distinct valid vertex ids.
  /// A non-null `shared_oracle` (bound to the same graph, outliving the
  /// sampler) replaces the internally owned one; its memo can serve
  /// repeated chain states without re-running passes.
  JointSpaceSampler(const CsrGraph& graph, std::vector<VertexId> targets,
                    JointOptions options,
                    DependencyOracle* shared_oracle = nullptr);

  /// Runs a fresh chain of `iterations` MH steps.
  JointResult Run(std::uint64_t iterations);

  /// Rewinds the random stream to that of a fresh sampler seeded `seed`.
  void Reset(std::uint64_t seed) {
    options_.seed = seed;
    rng_ = Rng(seed);
  }

  const std::vector<VertexId>& targets() const { return targets_; }

  std::uint64_t num_passes() const { return oracle_->num_passes(); }

 private:
  const CsrGraph* graph_;
  std::vector<VertexId> targets_;
  JointOptions options_;
  std::unique_ptr<DependencyOracle> owned_oracle_;
  DependencyOracle* oracle_;
  Rng rng_;
};

}  // namespace mhbc
