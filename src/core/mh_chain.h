#pragma once

#include <cstdint>

#include "graph/csr_graph.h"
#include "util/rng.h"

/// \file
/// Shared Metropolis-Hastings conventions for the paper's two samplers.
///
/// Both samplers accept a proposed state with probability
/// min{1, delta' / delta} (paper Eqs. 6 and 17). Dependency scores can be
/// zero (e.g. the target r itself, leaves of the SPD, or vertices whose
/// shortest paths never cross r), which the paper leaves implicit; the
/// library-wide conventions, pinned by tests, are:
///
///   delta > 0, delta' > 0  ->  min{1, delta'/delta}   (the generic case)
///   delta = 0, delta' > 0  ->  1   (ratio diverges; always move up)
///   delta > 0, delta' = 0  ->  0   (never move from support to null state)
///   delta = 0, delta' = 0  ->  1   (move freely among null states so the
///                                   chain cannot stall before reaching the
///                                   support; such holds contribute f = 0)

namespace mhbc {

/// Proposal distribution for the chain's candidate states. The paper uses
/// the uniform proposal; the degree-proportional alternative is the E12
/// ablation (with the corresponding Hastings correction applied).
enum class ProposalKind {
  kUniform,
  kDegreeProportional,
};

/// MH acceptance probability for target ratio delta'/delta under the
/// conventions above (uniform proposal; no Hastings correction).
double MhAcceptanceProbability(double delta_current, double delta_proposed);

/// Acceptance probability with the Hastings correction for an arbitrary
/// positive proposal mass q(.): min{1, (delta' q_cur) / (delta q_prop)}.
double MhAcceptanceProbability(double delta_current, double delta_proposed,
                               double q_current, double q_proposed);

/// Draws a proposal vertex according to `kind`. Degree-proportional
/// proposals draw an edge endpoint (degree-biased) in O(log n) via the
/// CSR adjacency array; on directed graphs the draw spans the out- and
/// in-CSR together, so the bias is by total degree outdeg + indeg.
VertexId DrawProposal(const CsrGraph& graph, ProposalKind kind, Rng* rng);

/// Proposal mass q(v) (unnormalized is fine for ratios): 1 for uniform,
/// degree(v) for degree-proportional (outdeg(v) + indeg(v) on directed
/// graphs, matching DrawProposal's slot ownership).
double ProposalMass(const CsrGraph& graph, ProposalKind kind, VertexId v);

}  // namespace mhbc
