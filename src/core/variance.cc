#include "core/variance.h"

namespace mhbc {

namespace {

/// Shared: Var over s~p of delta_s/(p_s * n(n-1)), via
/// E[X^2] - E[X]^2 with E[X] = BC exactly (unbiasedness).
double VarianceUnderDistribution(const std::vector<double>& profile,
                                 const std::vector<double>& probabilities) {
  MHBC_DCHECK(profile.size() == probabilities.size());
  MHBC_DCHECK(profile.size() >= 2);
  const double n = static_cast<double>(profile.size());
  const double norm = n * (n - 1.0);
  double bc = 0.0;
  for (double d : profile) bc += d;
  bc /= norm;

  double second_moment = 0.0;
  for (std::size_t s = 0; s < profile.size(); ++s) {
    if (profile[s] == 0.0) continue;
    MHBC_DCHECK(probabilities[s] > 0.0);  // support domination
    const double x = profile[s] / (probabilities[s] * norm);
    second_moment += probabilities[s] * x * x;
  }
  const double variance = second_moment - bc * bc;
  return variance < 0.0 ? 0.0 : variance;  // clamp FP slack
}

}  // namespace

double UniformSamplerVariance(const std::vector<double>& profile) {
  std::vector<double> uniform(profile.size(),
                              1.0 / static_cast<double>(profile.size()));
  return VarianceUnderDistribution(profile, uniform);
}

double ImportanceSamplerVariance(const std::vector<double>& profile,
                                 const std::vector<double>& probabilities) {
  return VarianceUnderDistribution(profile, probabilities);
}

double WeightedSamplerVariance(const std::vector<double>& profile,
                               const std::vector<double>& weights) {
  MHBC_DCHECK(profile.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    MHBC_DCHECK(w >= 0.0);
    total += w;
  }
  MHBC_DCHECK(total > 0.0);
  std::vector<double> probabilities(weights.size());
  for (std::size_t s = 0; s < weights.size(); ++s) {
    probabilities[s] = weights[s] / total;
  }
  return VarianceUnderDistribution(profile, probabilities);
}

double OptimalSamplerVariance(const std::vector<double>& profile) {
  double total = 0.0;
  for (double d : profile) total += d;
  MHBC_DCHECK(total > 0.0);
  std::vector<double> probabilities(profile.size());
  for (std::size_t s = 0; s < profile.size(); ++s) {
    probabilities[s] = profile[s] / total;
  }
  // Analytically zero; compute anyway so tests can assert the identity.
  return VarianceUnderDistribution(profile, probabilities);
}

double ChainStationaryVariance(const std::vector<double>& profile) {
  MHBC_DCHECK(profile.size() >= 2);
  const double n_minus_1 = static_cast<double>(profile.size()) - 1.0;
  double total = 0.0;
  for (double d : profile) total += d;
  MHBC_DCHECK(total > 0.0);
  double mean = 0.0;
  double second = 0.0;
  for (double d : profile) {
    const double pi = d / total;
    const double f = d / n_minus_1;
    mean += pi * f;
    second += pi * f * f;
  }
  const double variance = second - mean * mean;
  return variance < 0.0 ? 0.0 : variance;
}

}  // namespace mhbc
