#include "core/mh_betweenness.h"

#include <unordered_set>

namespace mhbc {

MhBetweennessSampler::MhBetweennessSampler(const CsrGraph& graph,
                                           MhOptions options,
                                           DependencyOracle* shared_oracle)
    : graph_(&graph),
      options_(options),
      owned_oracle_(shared_oracle ? nullptr
                                  : std::make_unique<DependencyOracle>(graph)),
      oracle_(shared_oracle ? shared_oracle : owned_oracle_.get()),
      rng_(options.seed) {
  MHBC_DCHECK(graph.num_vertices() >= 2);
}

MhResult MhBetweennessSampler::Run(VertexId r, std::uint64_t iterations) {
  MHBC_DCHECK(r < graph_->num_vertices());
  MHBC_DCHECK(iterations >= 1);
  const VertexId n = graph_->num_vertices();
  const double n_minus_1 = static_cast<double>(n) - 1.0;

  MhResult result;
  std::unordered_set<VertexId> distinct;
  const std::uint64_t passes_before = oracle_->num_passes();

  // Initial state v0 (uniform unless pinned) and its dependency, 1 pass.
  VertexId current = options_.initial_state != kInvalidVertex
                         ? options_.initial_state
                         : rng_.NextVertex(n);
  MHBC_DCHECK(current < n);
  double delta_current = oracle_->Dependency(current, r);

  double f_sum = 0.0;            // sum of f over recorded chain states
  std::uint64_t f_count = 0;     // recorded states (T + 1 when burn_in == 0)
  double proposal_sum = 0.0;     // sum of importance-weighted proposal terms
  std::uint64_t proposal_count = 0;

  const bool record_series = options_.record_trace || options_.record_series;
  auto record_state = [&](VertexId v, double delta) {
    f_sum += delta / n_minus_1;
    ++f_count;
    distinct.insert(v);
    if (options_.record_trace) result.trace.push_back(v);
    if (record_series) result.f_series.push_back(delta / n_minus_1);
  };
  if (options_.burn_in == 0) record_state(current, delta_current);

  // Degree-proportional total mass: sum of degrees = 2m undirected, and
  // sum of (outdeg + indeg) = 2m arcs directed — num_edges()*2 either way.
  const double total_proposal_mass =
      options_.proposal == ProposalKind::kUniform
          ? static_cast<double>(n)
          : static_cast<double>(graph_->num_edges() * 2);

  for (std::uint64_t t = 1; t <= options_.burn_in + iterations; ++t) {
    const VertexId proposed = DrawProposal(*graph_, options_.proposal, &rng_);
    const double delta_proposed = oracle_->Dependency(proposed, r);

    // Rao-Blackwellized companion: proposals are iid from q, so
    // delta(proposed) / q(proposed) is an unbiased estimate of raw BC(r).
    const double q_mass =
        ProposalMass(*graph_, options_.proposal, proposed) /
        total_proposal_mass;
    proposal_sum += delta_proposed / q_mass;
    ++proposal_count;
    if (record_series) {
      result.proposal_series.push_back(delta_proposed / q_mass /
                                       (static_cast<double>(n) * n_minus_1));
    }

    const double accept_probability =
        options_.proposal == ProposalKind::kUniform
            ? MhAcceptanceProbability(delta_current, delta_proposed)
            : MhAcceptanceProbability(
                  delta_current, delta_proposed,
                  ProposalMass(*graph_, options_.proposal, current),
                  ProposalMass(*graph_, options_.proposal, proposed));
    if (rng_.NextBernoulli(accept_probability)) {
      current = proposed;
      delta_current = delta_proposed;
      ++result.diagnostics.accepted;
    } else {
      ++result.diagnostics.rejected;
    }
    if (t > options_.burn_in) record_state(current, delta_current);
  }

  result.diagnostics.iterations = options_.burn_in + iterations;
  // Work this run actually paid for (oracle memo hits cost no pass).
  result.diagnostics.sp_passes = oracle_->num_passes() - passes_before;
  result.diagnostics.distinct_states = distinct.size();

  // Eq. 7 exactly: BC^(r) = (1/((T+1)(n-1))) sum over chain states of
  // delta_{v.}(r) — i.e. the chain average of f(v) = delta/(n-1). The
  // chain's stationary mean of f approaches the uniform mean (Theorem 1's
  // theta = BC(r)) with the delta-spread-controlled gap mu(r) bounds.
  MHBC_DCHECK(f_count > 0);
  result.estimate = f_sum / static_cast<double>(f_count);
  // E_q[delta/q] = raw BC(r); apply the Eq. 1 normalization n(n-1).
  result.proposal_estimate =
      proposal_sum / static_cast<double>(proposal_count) /
      (static_cast<double>(n) * n_minus_1);
  return result;
}

}  // namespace mhbc
