#pragma once

#include <cstdint>

#include "core/diagnostics.h"
#include "graph/csr_graph.h"
#include "util/rng.h"

/// \file
/// Future-work instantiation (paper §5: "proposing algorithms similar to
/// our work that estimate other network indices"): the same
/// Metropolis-Hastings construction applied to pairwise *co-betweenness*
/// (Kolaczyk et al. 2009; §3.1 of the paper) — the number of shortest paths
/// passing through BOTH vertices of a pair {u, w}.
///
/// The source decomposition mirrors betweenness exactly: with the
/// co-dependency kappa_v(u, w) = sum over t of sigma_vt(u and w)/sigma_vt,
/// the raw co-betweenness is sum over sources v of kappa_v. The chain on
/// V(G) with acceptance min{1, kappa(v')/kappa(v)} therefore has the
/// "optimal sampling" stationary distribution for this index, and both
/// readouts of the betweenness sampler carry over:
///  - chain average of kappa/(n-1)  (Eq. 7 analogue; same E_pi bias), and
///  - the unbiased Rao-Blackwell proposal average.
///
/// Per sample: one BFS from the proposal plus an O(n) table scan against
/// precomputed BFS tables of u and w. Unweighted graphs.

namespace mhbc {

/// Options for a co-betweenness chain run.
struct CoBetweennessMhOptions {
  std::uint64_t seed = 0x5eed;
};

/// Outcome of a co-betweenness chain run.
struct CoBetweennessMhResult {
  /// Eq. 7 analogue readout (paper-normalized by n(n-1)).
  double estimate = 0.0;
  /// Unbiased Rao-Blackwell readout (paper-normalized).
  double proposal_estimate = 0.0;
  ChainDiagnostics diagnostics;
};

/// MH estimator for the co-betweenness of the pair {u, w}.
class CoBetweennessMhSampler {
 public:
  /// Graph must be unweighted, n >= 3; u != w.
  CoBetweennessMhSampler(const CsrGraph& graph, VertexId u, VertexId w,
                         CoBetweennessMhOptions options);
  ~CoBetweennessMhSampler();

  CoBetweennessMhSampler(const CoBetweennessMhSampler&) = delete;
  CoBetweennessMhSampler& operator=(const CoBetweennessMhSampler&) = delete;

  /// Runs a fresh chain of `iterations` steps.
  CoBetweennessMhResult Run(std::uint64_t iterations);

  /// Co-dependency kappa_v(u, w) of one source (exposed for tests; one BFS
  /// pass + O(n) scan).
  double CoDependency(VertexId v);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace mhbc
