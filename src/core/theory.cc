#include "core/theory.h"

#include <algorithm>
#include <cmath>

#include "core/mh_chain.h"
#include "util/common.h"
#include "util/stats.h"

namespace mhbc {

double MeanDependency(const std::vector<double>& profile) {
  MHBC_DCHECK(!profile.empty());
  double sum = 0.0;
  for (double d : profile) {
    MHBC_DCHECK(d >= 0.0);
    sum += d;
  }
  return sum / static_cast<double>(profile.size());
}

double MuFromProfile(const std::vector<double>& profile) {
  const double mean = MeanDependency(profile);
  MHBC_DCHECK(mean > 0.0);
  const double peak = *std::max_element(profile.begin(), profile.end());
  return peak / mean;
}

std::uint64_t SampleBound(double mu, double eps, double delta) {
  MHBC_DCHECK(mu >= 1.0);  // max/mean is always >= 1
  MHBC_DCHECK(eps > 0.0);
  MHBC_DCHECK(delta > 0.0 && delta < 1.0);
  const double bound = mu * mu / (2.0 * eps * eps) * std::log(2.0 / delta);
  return static_cast<std::uint64_t>(std::ceil(bound));
}

double TailBound(double mu, double eps, std::uint64_t chain_length) {
  MHBC_DCHECK(mu >= 1.0);
  MHBC_DCHECK(eps > 0.0);
  MHBC_DCHECK(chain_length >= 1);
  const double t = static_cast<double>(chain_length);
  const double margin = 2.0 * eps / mu - 3.0 / t;
  if (margin <= 0.0) return 1.0;  // bound vacuous in this regime
  const double value = 2.0 * std::exp(-t / 2.0 * margin * margin);
  return std::min(1.0, value);
}

double ChainLimitEstimate(const std::vector<double>& profile) {
  MHBC_DCHECK(profile.size() >= 2);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double d : profile) {
    sum += d;
    sum_sq += d * d;
  }
  MHBC_DCHECK(sum > 0.0);
  const double n_minus_1 = static_cast<double>(profile.size()) - 1.0;
  return sum_sq / (sum * n_minus_1);
}

double ExactRelativeBetweenness(const std::vector<double>& profile_i,
                                const std::vector<double>& profile_j) {
  MHBC_DCHECK(profile_i.size() == profile_j.size());
  MHBC_DCHECK(!profile_i.empty());
  double acc = 0.0;
  for (std::size_t v = 0; v < profile_i.size(); ++v) {
    acc += ClippedRatio(profile_i[v], profile_j[v]);
  }
  return acc / static_cast<double>(profile_i.size());
}

double ChainLimitRelative(const std::vector<double>& profile_i,
                          const std::vector<double>& profile_j) {
  MHBC_DCHECK(profile_i.size() == profile_j.size());
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t v = 0; v < profile_i.size(); ++v) {
    numerator += std::min(profile_i[v], profile_j[v]);
    denominator += profile_j[v];
  }
  MHBC_DCHECK(denominator > 0.0);
  return numerator / denominator;
}

}  // namespace mhbc
