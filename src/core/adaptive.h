#pragma once

#include <cstdint>

#include "core/mh_betweenness.h"
#include "graph/csr_graph.h"

/// \file
/// Adaptive-budget extension (not in the paper): the Eq. 14 budget needs
/// mu(r), which is as hard to get as BC(r) itself. This runner grows the
/// chain geometrically and stops when a normal-approximation confidence
/// interval on the chain mean — with the effective sample size standing in
/// for the iid count, KADABRA-style adaptivity in spirit — falls below the
/// requested half-width. The guarantee is heuristic (CLT + ESS estimate),
/// which is exactly the trade the adaptive samplers in this literature
/// make; E16 measures the realized budgets against Eq. 14.

namespace mhbc {

/// Configuration for adaptive estimation.
struct AdaptiveOptions {
  std::uint64_t seed = 0x5eed;
  /// Target half-width of the confidence interval on the chain mean.
  double epsilon = 0.05;
  /// Normal quantile for the interval (1.96 ~ 95%).
  double z = 1.96;
  /// First batch size; the chain doubles until the stop rule fires.
  std::uint64_t initial_batch = 128;
  /// Hard cap on total iterations (safety valve).
  std::uint64_t max_iterations = 1 << 20;
};

/// Outcome of an adaptive run.
struct AdaptiveResult {
  /// Eq. 7 readout at stopping time.
  double estimate = 0.0;
  /// Unbiased Rao-Blackwell readout at stopping time.
  double proposal_estimate = 0.0;
  /// Iterations actually spent.
  std::uint64_t iterations = 0;
  /// Half-width of the final confidence interval.
  double half_width = 0.0;
  /// True if the rule fired before max_iterations.
  bool converged = false;
};

/// Runs the paper's chain with the adaptive stopping rule.
AdaptiveResult AdaptiveMhEstimate(const CsrGraph& graph, VertexId r,
                                  const AdaptiveOptions& options);

}  // namespace mhbc
