#include "core/co_betweenness_mh.h"

#include "core/mh_chain.h"
#include "sp/bfs_spd.h"

namespace mhbc {

struct CoBetweennessMhSampler::Impl {
  Impl(const CsrGraph& g, VertexId u_in, VertexId w_in,
       CoBetweennessMhOptions opts)
      : graph(&g),
        u(u_in),
        w(w_in),
        options(opts),
        from_u(g),
        from_w(g),
        from_v(g),
        rng(opts.seed) {
    from_u.Run(u);
    from_w.Run(w);
    dist_uw = from_u.dag().dist[w];
    sigma_uw = static_cast<double>(from_u.dag().sigma[w]);
  }

  const CsrGraph* graph;
  VertexId u;
  VertexId w;
  CoBetweennessMhOptions options;
  BfsSpd from_u;
  BfsSpd from_w;
  BfsSpd from_v;
  Rng rng;
  std::uint32_t dist_uw = kUnreachedDistance;
  double sigma_uw = 0.0;

  /// kappa_v(u, w): one BFS from v + O(n) composition scan.
  double CoDependency(VertexId v) {
    if (v == u || v == w) return 0.0;
    if (dist_uw == kUnreachedDistance) return 0.0;
    from_v.Run(v);
    const ShortestPathDag& dv = from_v.dag();
    const ShortestPathDag& du = from_u.dag();
    const ShortestPathDag& dw = from_w.dag();
    double kappa = 0.0;
    for (VertexId t : dv.order) {
      if (t == v || t == u || t == w) continue;
      const std::uint32_t dvt = dv.dist[t];
      const double sigma_vt = static_cast<double>(dv.sigma[t]);
      // v -> u -> w -> t composition.
      if (dv.dist[u] != kUnreachedDistance &&
          dw.dist[t] != kUnreachedDistance &&
          dv.dist[u] + dist_uw + dw.dist[t] == dvt) {
        kappa += static_cast<double>(dv.sigma[u]) * sigma_uw *
                 static_cast<double>(dw.sigma[t]) / sigma_vt;
      }
      // v -> w -> u -> t composition.
      if (dv.dist[w] != kUnreachedDistance &&
          du.dist[t] != kUnreachedDistance &&
          dv.dist[w] + dist_uw + du.dist[t] == dvt) {
        kappa += static_cast<double>(dv.sigma[w]) * sigma_uw *
                 static_cast<double>(du.sigma[t]) / sigma_vt;
      }
    }
    return kappa;
  }
};

CoBetweennessMhSampler::CoBetweennessMhSampler(const CsrGraph& graph,
                                               VertexId u, VertexId w,
                                               CoBetweennessMhOptions options)
    : impl_(new Impl(graph, u, w, options)) {
  MHBC_DCHECK(!graph.weighted());
  MHBC_DCHECK(graph.num_vertices() >= 3);
  MHBC_DCHECK(u < graph.num_vertices());
  MHBC_DCHECK(w < graph.num_vertices());
  MHBC_DCHECK(u != w);
}

CoBetweennessMhSampler::~CoBetweennessMhSampler() { delete impl_; }

double CoBetweennessMhSampler::CoDependency(VertexId v) {
  MHBC_DCHECK(v < impl_->graph->num_vertices());
  return impl_->CoDependency(v);
}

CoBetweennessMhResult CoBetweennessMhSampler::Run(std::uint64_t iterations) {
  MHBC_DCHECK(iterations >= 1);
  const VertexId n = impl_->graph->num_vertices();
  const double n_minus_1 = static_cast<double>(n) - 1.0;

  CoBetweennessMhResult result;
  VertexId current = impl_->rng.NextVertex(n);
  double kappa_current = impl_->CoDependency(current);

  double chain_sum = kappa_current / n_minus_1;
  std::uint64_t chain_count = 1;
  double proposal_sum = 0.0;

  for (std::uint64_t t = 1; t <= iterations; ++t) {
    const VertexId proposed = impl_->rng.NextVertex(n);
    const double kappa_proposed = impl_->CoDependency(proposed);
    // Proposals are iid uniform: unbiased companion, E[kappa * n] = raw.
    proposal_sum += kappa_proposed;
    const double accept =
        MhAcceptanceProbability(kappa_current, kappa_proposed);
    if (impl_->rng.NextBernoulli(accept)) {
      current = proposed;
      kappa_current = kappa_proposed;
      ++result.diagnostics.accepted;
    } else {
      ++result.diagnostics.rejected;
    }
    chain_sum += kappa_current / n_minus_1;
    ++chain_count;
  }
  result.diagnostics.iterations = iterations;
  result.diagnostics.sp_passes = iterations + 1;
  result.estimate = chain_sum / static_cast<double>(chain_count);
  result.proposal_estimate =
      proposal_sum / static_cast<double>(iterations) /
      (static_cast<double>(n) - 1.0);
  return result;
}

}  // namespace mhbc
