#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

/// \file
/// Chain-quality diagnostics backing the mixing experiment (E6) and the
/// stationary-distribution tests.

namespace mhbc {

/// Counters every chain run reports.
struct ChainDiagnostics {
  /// Number of MH iterations performed (T in the paper; the chain holds
  /// T + 1 states counting the initial one).
  std::uint64_t iterations = 0;
  /// Accepted proposals (state actually changed or re-accepted).
  std::uint64_t accepted = 0;
  /// Proposals rejected (chain held its state).
  std::uint64_t rejected = 0;
  /// Shortest-path passes consumed (the work currency).
  std::uint64_t sp_passes = 0;
  /// Distinct states visited (support exploration measure).
  std::uint64_t distinct_states = 0;

  /// Fraction of proposals accepted.
  double acceptance_rate() const {
    const std::uint64_t total = accepted + rejected;
    return total == 0 ? 0.0
                      : static_cast<double>(accepted) /
                            static_cast<double>(total);
  }
};

/// Lag-k autocorrelation of a scalar chain series (biased estimator,
/// standard for MCMC diagnostics). Returns 0 for degenerate series.
double Autocorrelation(const std::vector<double>& series, std::size_t lag);

/// Effective sample size from the initial-positive-sequence estimator
/// (Geyer): n / (1 + 2 * sum of leading positive autocorrelations).
double EffectiveSampleSize(const std::vector<double>& series);

/// Visit histogram of a state trace (counts per vertex id).
std::vector<std::uint64_t> VisitCounts(const std::vector<VertexId>& trace,
                                       VertexId num_vertices);

}  // namespace mhbc
