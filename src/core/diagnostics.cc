#include "core/diagnostics.h"

#include "util/common.h"
#include "util/stats.h"

namespace mhbc {

double Autocorrelation(const std::vector<double>& series, std::size_t lag) {
  const std::size_t n = series.size();
  if (n < 2 || lag >= n) return 0.0;
  const double mean = Mean(series);
  double var = 0.0;
  for (double x : series) var += (x - mean) * (x - mean);
  if (var <= 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    cov += (series[i] - mean) * (series[i + lag] - mean);
  }
  return cov / var;
}

double EffectiveSampleSize(const std::vector<double>& series) {
  const std::size_t n = series.size();
  if (n < 2) return static_cast<double>(n);
  double rho_sum = 0.0;
  for (std::size_t lag = 1; lag < n; ++lag) {
    const double rho = Autocorrelation(series, lag);
    if (rho <= 0.0) break;  // initial positive sequence cutoff
    rho_sum += rho;
  }
  const double denom = 1.0 + 2.0 * rho_sum;
  MHBC_DCHECK(denom > 0.0);
  return static_cast<double>(n) / denom;
}

std::vector<std::uint64_t> VisitCounts(const std::vector<VertexId>& trace,
                                       VertexId num_vertices) {
  std::vector<std::uint64_t> counts(num_vertices, 0);
  for (VertexId v : trace) {
    MHBC_DCHECK(v < num_vertices);
    ++counts[v];
  }
  return counts;
}

}  // namespace mhbc
