#include "centrality/engine.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "baselines/distance_sampler.h"
#include "baselines/geisberger_sampler.h"
#include "baselines/rk_sampler.h"
#include "baselines/uniform_sampler.h"
#include "core/diagnostics.h"
#include "exact/brandes.h"
#include "graph/graph_stats.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mhbc {

// ------------------------------------------------------------- registry

namespace {

EstimatorEntry MakeEntry(EstimatorKind kind) {
  EstimatorEntry entry;
  entry.kind = kind;
  entry.name = EstimatorKindName(kind);
  entry.supports_weighted = true;
  entry.chain_based = false;
  // Per-vertex queries are independent for every sampling kind; only the
  // whole-graph products (exact scores, the RK credit vector) are computed
  // once and served to all vertices, so sharding them would waste work.
  entry.sharded_many = true;
  switch (kind) {
    case EstimatorKind::kExact:
      entry.summary = "exact Brandes (n passes, zero error)";
      entry.sharded_many = false;
      break;
    case EstimatorKind::kMetropolisHastings:
      entry.summary = "single-space MH chain average (paper Eq. 7)";
      entry.chain_based = true;
      break;
    case EstimatorKind::kMhRaoBlackwell:
      entry.summary = "unbiased Rao-Blackwellized MH companion";
      entry.chain_based = true;
      break;
    case EstimatorKind::kUniformSource:
      entry.summary = "uniform source sampling (Bader et al.)";
      break;
    case EstimatorKind::kDistanceProportional:
      entry.summary = "distance-proportional sources (Chehreghani [13])";
      break;
    case EstimatorKind::kShortestPath:
      entry.summary = "Riondato-Kornaropoulos shortest-path sampling";
      entry.sharded_many = false;
      break;
    case EstimatorKind::kLinearScaling:
      entry.summary = "Geisberger linear-scaling sources (unweighted only)";
      entry.supports_weighted = false;
      break;
  }
  return entry;
}

}  // namespace

const std::vector<EstimatorEntry>& EstimatorRegistry() {
  static const std::vector<EstimatorEntry>* kRegistry = [] {
    auto* entries = new std::vector<EstimatorEntry>();
    for (EstimatorKind kind : AllEstimatorKinds()) {
      entries->push_back(MakeEntry(kind));
    }
    return entries;
  }();
  return *kRegistry;
}

const EstimatorEntry* FindEstimator(EstimatorKind kind) {
  for (const EstimatorEntry& entry : EstimatorRegistry()) {
    if (entry.kind == kind) return &entry;
  }
  return nullptr;
}

const EstimatorEntry* FindEstimator(const std::string& name) {
  // One name-resolution path: delegate to the canonical parser so a
  // future alias cannot make the CLI and the registry disagree.
  EstimatorKind kind;
  if (!ParseEstimatorKind(name, &kind)) return nullptr;
  return FindEstimator(kind);
}

// ------------------------------------------------------- cached results

struct BetweennessEngine::RkCredit {
  std::uint64_t samples = 0;
  std::uint64_t seed = 0;
  /// Paper-normalized estimates for every vertex.
  std::vector<double> values;
};

struct BetweennessEngine::JointCache {
  std::vector<VertexId> targets;
  std::uint64_t iterations = 0;
  std::uint64_t seed = 0;
  JointResult result;
};

// ---------------------------------------------------------- construction

BetweennessEngine::BetweennessEngine(const CsrGraph& graph,
                                     EngineOptions options)
    : graph_(&graph), options_(options) {}

BetweennessEngine::~BetweennessEngine() = default;

// ------------------------------------------------------------ lazy state

std::size_t BetweennessEngine::DependencyCacheEntries(
    const CsrGraph& graph) const {
  // Entry capacity from the byte budget: one memoized vector costs n
  // doubles, plus the pass distances kept for ApplyDelta's selective
  // invalidation (n u32 hop distances unweighted, n double weighted
  // distances weighted); more than n entries can never be used.
  const std::size_t bytes_per_entry =
      static_cast<std::size_t>(graph.num_vertices()) *
      (graph.weighted() ? sizeof(double) + sizeof(double)
                        : sizeof(double) + sizeof(std::uint32_t));
  if (bytes_per_entry == 0) return 0;
  return std::min<std::size_t>(
      options_.dependency_cache_bytes / bytes_per_entry,
      graph.num_vertices());
}

DependencyOracle* BetweennessEngine::oracle() {
  if (!oracle_) {
    oracle_ = std::make_unique<DependencyOracle>(*graph_, IntraPassSpd());
    oracle_->set_cache_capacity(DependencyCacheEntries(*graph_));
  }
  return oracle_.get();
}

MhBetweennessSampler* BetweennessEngine::mh_sampler() {
  if (!mh_) {
    MhOptions mh_options;
    mh_options.record_series = true;  // f/proposal series feed diagnostics
    mh_ = std::make_unique<MhBetweennessSampler>(*graph_, mh_options,
                                                 oracle());
  }
  return mh_.get();
}

UniformSourceSampler* BetweennessEngine::uniform_sampler() {
  if (!uniform_) {
    uniform_ = std::make_unique<UniformSourceSampler>(*graph_, /*seed=*/0,
                                                      oracle());
  }
  return uniform_.get();
}

DistanceProportionalSampler* BetweennessEngine::distance_sampler() {
  if (!distance_) {
    distance_ = std::make_unique<DistanceProportionalSampler>(
        *graph_, /*seed=*/0, oracle());
  }
  return distance_.get();
}

RkSampler* BetweennessEngine::rk_sampler() {
  if (!rk_) {
    rk_ = std::make_unique<RkSampler>(*graph_, /*seed=*/0, IntraPassSpd());
  }
  return rk_.get();
}

GeisbergerSampler* BetweennessEngine::geisberger_sampler() {
  if (!geisberger_) {
    geisberger_ = std::make_unique<GeisbergerSampler>(*graph_, /*seed=*/0,
                                                      IntraPassSpd());
  }
  return geisberger_.get();
}

unsigned BetweennessEngine::resolved_threads() const {
  return ResolveThreadCount(options_.num_threads);
}

SpdOptions BetweennessEngine::IntraPassSpd() const {
  SpdOptions spd = options_.spd;
  // 0 = inherit: the engine's serial-path pass engines get the full thread
  // budget for frontier-parallel level steps. Explicit values pass through.
  if (spd.num_threads == 0) spd.num_threads = resolved_threads();
  return spd;
}

ThreadPool* BetweennessEngine::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(resolved_threads());
  return pool_.get();
}

void BetweennessEngine::EnsureShards() {
  if (!shards_.empty()) return;
  // One fully sequential engine per pool worker. Shards split the memo
  // byte budget so the engine's total cache footprint stays within the
  // configured bound no matter how wide the pool is — but never below one
  // entry (n doubles), or a large graph would silently disable shard
  // memoization entirely. 0 stays 0: caching explicitly off.
  EngineOptions shard_options = options_;
  shard_options.num_threads = 1;
  // Shards are the parallel axis of a fan-out; their passes must stay
  // sequential or the pool would be oversubscribed num_threads-fold.
  shard_options.spd.num_threads = 1;
  shard_options.dependency_cache_bytes =
      options_.dependency_cache_bytes / resolved_threads();
  const std::size_t one_entry_bytes =
      static_cast<std::size_t>(graph_->num_vertices()) * sizeof(double);
  if (options_.dependency_cache_bytes > 0) {
    shard_options.dependency_cache_bytes =
        std::max(shard_options.dependency_cache_bytes, one_entry_bytes);
  }
  shards_.reserve(pool()->num_threads());
  for (unsigned w = 0; w < pool()->num_threads(); ++w) {
    shards_.push_back(
        std::make_unique<BetweennessEngine>(*graph_, shard_options));
  }
}

template <typename VertexAt, typename RequestAt>
std::vector<EstimateReport> BetweennessEngine::ServeSharded(
    std::size_t count, VertexAt vertex_at, RequestAt request_at) {
  EnsureShards();
  // Pre-warm each shard from the owning oracle's memo (a vector copy is
  // much cheaper than the pass it replaces), then fan out. Within one
  // fan-out the shards still pay their passes independently — that is the
  // price of a zero-synchronization hot path — but knowledge accumulated
  // by earlier queries and earlier fan-outs is shared.
  if (oracle_) {
    for (const std::unique_ptr<BetweennessEngine>& shard : shards_) {
      shard->oracle()->MergeCacheFrom(*oracle_);
    }
  }
  std::vector<EstimateReport> reports = ParallelMap<EstimateReport>(
      pool(), count, [this, &vertex_at, &request_at](unsigned worker,
                                                     std::size_t i) {
        StatusOr<EstimateReport> report =
            shards_[worker]->Estimate(vertex_at(i), request_at(i));
        // Requests were validated against this engine's graph up front, and
        // shards are bound to the same graph.
        MHBC_DCHECK(report.ok());
        return std::move(report).value();
      });
  // Pull the shards' freshly memoized dependency vectors into the owning
  // oracle so sequential queries after the fan-out reuse the passes.
  for (const std::unique_ptr<BetweennessEngine>& shard : shards_) {
    if (shard->oracle_) oracle()->MergeCacheFrom(*shard->oracle_);
  }
  return reports;
}

const std::vector<double>& BetweennessEngine::exact_scores() {
  if (!exact_ready_) {
    exact_scores_ = BrandesBetweenness(*graph_, Normalization::kPaper,
                                       resolved_threads(), options_.spd);
    extra_passes_ += graph_->num_vertices();
    exact_ready_ = true;
  }
  return exact_scores_;
}

std::uint32_t BetweennessEngine::vertex_diameter(std::uint64_t seed) {
  if (!vertex_diameter_.has_value() || diameter_seed_ != seed) {
    vertex_diameter_ =
        ApproxVertexDiameter(*graph_, options_.diameter_probes, seed);
    diameter_seed_ = seed;
    extra_passes_ += 2ull * options_.diameter_probes;  // double-sweep probes
  }
  return *vertex_diameter_;
}

const BetweennessEngine::RkCredit& BetweennessEngine::EnsureRkCredit(
    std::uint64_t samples, std::uint64_t seed, VertexId se_vertex,
    std::vector<double>* batch_estimates, bool* served_from_cache) {
  if (rk_credit_ && rk_credit_->samples == samples &&
      rk_credit_->seed == seed) {
    *served_from_cache = true;
    return *rk_credit_;
  }
  *served_from_cache = false;
  const std::uint64_t batches = std::max<std::uint64_t>(
      1, std::min(options_.report_batches, samples));
  const std::uint64_t base = samples / batches;
  const std::uint64_t extra = samples % batches;
  // Each batch runs a sampler stream seeded purely from (seed, batch
  // index) — the batch structure and seeds never depend on the thread
  // count, and the weighted merge below folds in batch order, so the
  // credit vector is bit-identical at any parallelism level. Samplers are
  // per worker and Reset to each batch seed (the documented reuse
  // contract: Reset reproduces a freshly-constructed sampler's stream),
  // so the per-sampler pass scratch is paid once per worker, not once per
  // batch.
  std::vector<std::unique_ptr<RkSampler>> worker_samplers(
      pool()->num_threads());
  const std::vector<std::vector<double>> batch_credit =
      ParallelMap<std::vector<double>>(
          pool(), static_cast<std::size_t>(batches),
          [this, seed, base, extra, &worker_samplers](unsigned worker,
                                                      std::size_t b) {
            std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * (b + 1);
            std::unique_ptr<RkSampler>& sampler = worker_samplers[worker];
            if (sampler == nullptr) {
              // With a parallel pool the batches are the parallel axis, so
              // per-worker samplers run sequential passes (intra-pass
              // threads would oversubscribe); a 1-wide pool runs batches
              // inline and the passes keep the intra-pass budget.
              SpdOptions batch_spd = IntraPassSpd();
              if (pool()->num_threads() > 1) batch_spd.num_threads = 1;
              sampler = std::make_unique<RkSampler>(*graph_, /*seed=*/0,
                                                    batch_spd);
            }
            sampler->Reset(SplitMix64(&state));
            return sampler->EstimateAll(base + (b < extra ? 1 : 0));
          });
  auto credit = std::make_unique<RkCredit>();
  credit->samples = samples;
  credit->seed = seed;
  credit->values.assign(graph_->num_vertices(), 0.0);
  for (std::uint64_t b = 0; b < batches; ++b) {
    const std::vector<double>& estimates = batch_credit[b];
    const double weight = static_cast<double>(base + (b < extra ? 1 : 0));
    for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
      credit->values[v] += estimates[v] * weight;
    }
    if (batch_estimates != nullptr) {
      batch_estimates->push_back(estimates[se_vertex]);
    }
  }
  for (double& value : credit->values) {
    value /= static_cast<double>(samples);
  }
  extra_passes_ += samples;  // one pass per sampled path, on batch samplers
  rk_credit_ = std::move(credit);
  return *rk_credit_;
}

std::uint64_t BetweennessEngine::total_sp_passes() const {
  std::uint64_t passes = extra_passes_;
  if (oracle_) passes += oracle_->num_passes();
  if (rk_) passes += rk_->num_passes();
  if (geisberger_) passes += geisberger_->num_passes();
  for (const std::unique_ptr<BetweennessEngine>& shard : shards_) {
    passes += shard->total_sp_passes();
  }
  return passes;
}

std::uint64_t BetweennessEngine::dependency_cache_hits() const {
  std::uint64_t hits = oracle_ ? oracle_->cache_hits() : 0;
  for (const std::unique_ptr<BetweennessEngine>& shard : shards_) {
    hits += shard->dependency_cache_hits();
  }
  return hits;
}

// ------------------------------------------------------------ validation

Status BetweennessEngine::ValidateRequest(
    VertexId r, const EstimateRequest& request) const {
  if (graph_->num_vertices() < 2) {
    return Status::InvalidArgument("graph needs at least two vertices");
  }
  if (r >= graph_->num_vertices()) {
    return Status::InvalidArgument(
        "vertex " + std::to_string(r) + " out of range (n=" +
        std::to_string(graph_->num_vertices()) + ")");
  }
  const EstimatorEntry* entry = FindEstimator(request.kind);
  if (entry == nullptr) {
    return Status::InvalidArgument("unknown estimator kind");
  }
  if (graph_->weighted() && !entry->supports_weighted) {
    return Status::InvalidArgument(std::string(entry->name) +
                                   " estimator supports unweighted graphs "
                                   "only");
  }
  if (request.kind == EstimatorKind::kExact) return Status::Ok();
  switch (request.budget) {
    case BudgetKind::kSamples:
      if (request.samples == 0) {
        return Status::InvalidArgument("sampling budget must be positive");
      }
      break;
    case BudgetKind::kDeadline:
      if (!(request.deadline_seconds > 0.0)) {
        return Status::InvalidArgument(
            "deadline_seconds must be positive for a deadline budget");
      }
      break;
    case BudgetKind::kStandardError:
      if (!(request.target_std_error > 0.0)) {
        return Status::InvalidArgument(
            "target_std_error must be positive for a standard-error budget");
      }
      break;
  }
  if (request.budget != BudgetKind::kSamples && request.max_samples == 0) {
    return Status::InvalidArgument("max_samples must be positive");
  }
  return Status::Ok();
}

Status BetweennessEngine::ValidateTargets(const std::vector<VertexId>& targets,
                                          std::uint64_t iterations) const {
  if (graph_->num_vertices() < 2) {
    return Status::InvalidArgument("graph needs at least two vertices");
  }
  if (targets.size() < 2) {
    return Status::InvalidArgument("need at least two target vertices");
  }
  if (iterations == 0) {
    return Status::InvalidArgument("iteration budget must be positive");
  }
  for (VertexId r : targets) {
    if (r >= graph_->num_vertices()) {
      return Status::InvalidArgument("target vertex " + std::to_string(r) +
                                     " out of range");
    }
  }
  std::vector<VertexId> sorted = targets;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("target vertices must be distinct");
  }
  return Status::Ok();
}

// -------------------------------------------------------------- serving

namespace {

/// Fills value / acceptance / ESS / std-error of a report from one chain
/// run. kMetropolisHastings reads the Eq. 7 chain average (standard error
/// via the Geyer ESS, as in core/adaptive.h); kMhRaoBlackwell reads the
/// unbiased proposal average (its terms are iid, so plain sqrt(T) SE).
void FillChainReport(const MhResult& result, EstimatorKind kind,
                     EstimateReport* report) {
  report->acceptance_rate = result.diagnostics.acceptance_rate();
  if (kind == EstimatorKind::kMetropolisHastings) {
    report->value = result.estimate;
    RunningStats stats;
    for (double f : result.f_series) stats.Add(f);
    const double ess = EffectiveSampleSize(result.f_series);
    report->ess = ess;
    report->std_error =
        ess > 1.0 ? std::sqrt(stats.variance() / ess) : stats.stddev();
  } else {
    report->value = result.proposal_estimate;
    const double count = static_cast<double>(result.proposal_series.size());
    report->ess = count;
    report->std_error =
        count > 1.0 ? StdDev(result.proposal_series) / std::sqrt(count) : 0.0;
  }
}

}  // namespace

double BetweennessEngine::RunBatch(EstimatorKind kind, VertexId r,
                                   std::uint64_t count, MhResult* chain_out) {
  switch (kind) {
    case EstimatorKind::kExact:
      return exact_scores()[r];
    case EstimatorKind::kMetropolisHastings:
    case EstimatorKind::kMhRaoBlackwell: {
      MhResult result = mh_sampler()->Run(r, count);
      const double value = kind == EstimatorKind::kMetropolisHastings
                               ? result.estimate
                               : result.proposal_estimate;
      if (chain_out != nullptr) *chain_out = std::move(result);
      return value;
    }
    case EstimatorKind::kUniformSource:
      return uniform_sampler()->Estimate(r, count);
    case EstimatorKind::kDistanceProportional:
      return distance_sampler()->Estimate(r, count);
    case EstimatorKind::kShortestPath:
      return rk_sampler()->Estimate(r, count);
    case EstimatorKind::kLinearScaling:
      return geisberger_sampler()->Estimate(r, count);
  }
  MHBC_DCHECK(false);
  return 0.0;
}

void BetweennessEngine::ServeSamplesBudget(VertexId r,
                                           const EstimateRequest& request,
                                           EstimateReport* report) {
  const EstimatorKind kind = request.kind;
  if (kind == EstimatorKind::kExact) {
    report->cache_hit = exact_ready_;
    report->value = exact_scores()[r];
    return;
  }
  if (kind == EstimatorKind::kMetropolisHastings ||
      kind == EstimatorKind::kMhRaoBlackwell) {
    MhBetweennessSampler* sampler = mh_sampler();
    sampler->Reset(request.seed);
    const MhResult result = sampler->Run(r, request.samples);
    FillChainReport(result, kind, report);
    report->samples_used = request.samples;
    return;
  }
  if (kind == EstimatorKind::kShortestPath) {
    std::vector<double> batch_estimates;
    bool served_from_cache = false;
    const RkCredit& credit = EnsureRkCredit(
        request.samples, request.seed, r, &batch_estimates, &served_from_cache);
    report->value = credit.values[r];
    report->ess = static_cast<double>(request.samples);
    if (served_from_cache) {
      // Whole-graph credit vector from an earlier query (or TopK) —
      // serving any vertex costs zero passes and spends no new samples.
      report->cache_hit = true;
      return;
    }
    report->samples_used = request.samples;
    if (batch_estimates.size() >= 2) {
      RunningStats batch_means;
      for (double estimate : batch_estimates) batch_means.Add(estimate);
      report->std_error = batch_means.stddev() /
                          std::sqrt(static_cast<double>(batch_means.count()));
    }
    return;
  }

  // iid source samplers: split the budget into near-equal batches so the
  // report carries a standard error; the weighted batch mean regroups the
  // exact same sample stream, so the estimate matches a single full call.
  switch (kind) {
    case EstimatorKind::kUniformSource:
      uniform_sampler()->Reset(request.seed);
      break;
    case EstimatorKind::kDistanceProportional:
      distance_sampler()->Reset(request.seed);
      break;
    case EstimatorKind::kLinearScaling:
      geisberger_sampler()->Reset(request.seed);
      break;
    default:
      MHBC_DCHECK(false);
  }
  const std::uint64_t batches = std::max<std::uint64_t>(
      1, std::min(options_.report_batches, request.samples));
  const std::uint64_t base = request.samples / batches;
  const std::uint64_t extra = request.samples % batches;
  double weighted_sum = 0.0;
  RunningStats batch_means;
  for (std::uint64_t b = 0; b < batches; ++b) {
    const std::uint64_t size = base + (b < extra ? 1 : 0);
    const double estimate = RunBatch(kind, r, size, nullptr);
    weighted_sum += estimate * static_cast<double>(size);
    batch_means.Add(estimate);
  }
  report->value = weighted_sum / static_cast<double>(request.samples);
  report->samples_used = request.samples;
  report->ess = static_cast<double>(request.samples);
  if (batch_means.count() >= 2) {
    report->std_error = batch_means.stddev() /
                        std::sqrt(static_cast<double>(batch_means.count()));
  }
}

void BetweennessEngine::ServeAdaptiveBudget(VertexId r,
                                            const EstimateRequest& request,
                                            EstimateReport* report) {
  WallTimer timer;
  const bool se_mode = request.budget == BudgetKind::kStandardError;
  const EstimatorKind kind = request.kind;

  if (kind == EstimatorKind::kMetropolisHastings ||
      kind == EstimatorKind::kMhRaoBlackwell) {
    // Doubling re-runs, as in core/adaptive.h. Reseeding before every
    // run makes each chain a pure function of (seed, budget): the
    // converged report is reproducible as a kSamples request with
    // samples=samples_used and the same seed. Total iterations stay
    // within 2x the final chain length (and replayed prefixes hit the
    // dependency memo, so the pass cost of re-running is small).
    MhBetweennessSampler* sampler = mh_sampler();
    std::uint64_t budget =
        std::min(std::max<std::uint64_t>(options_.initial_batch, 2),
                 request.max_samples);
    while (true) {
      sampler->Reset(request.seed);
      const MhResult result = sampler->Run(r, budget);
      FillChainReport(result, kind, report);
      report->samples_used = budget;
      if (se_mode && report->std_error <= request.target_std_error) {
        report->converged = true;
        return;
      }
      if (!se_mode &&
          timer.ElapsedSeconds() >= request.deadline_seconds) {
        return;  // deadline reached; converged stays true
      }
      if (budget >= request.max_samples) {
        report->converged = !se_mode;
        return;
      }
      budget = std::min(budget * 2, request.max_samples);
    }
  }

  // iid kinds: accumulate fixed-size batches (the weighted mean equals a
  // single call of the total size; batch means feed the stop rule).
  switch (kind) {
    case EstimatorKind::kUniformSource:
      uniform_sampler()->Reset(request.seed);
      break;
    case EstimatorKind::kDistanceProportional:
      distance_sampler()->Reset(request.seed);
      break;
    case EstimatorKind::kShortestPath:
      rk_sampler()->Reset(request.seed);
      break;
    case EstimatorKind::kLinearScaling:
      geisberger_sampler()->Reset(request.seed);
      break;
    default:
      MHBC_DCHECK(false);
  }
  double weighted_sum = 0.0;
  std::uint64_t total = 0;
  RunningStats batch_means;
  while (true) {
    const std::uint64_t batch = std::min(
        std::max<std::uint64_t>(options_.initial_batch, 1),
        request.max_samples - total);
    if (batch == 0) {
      report->converged = !se_mode;
      return;
    }
    const double estimate = RunBatch(kind, r, batch, nullptr);
    weighted_sum += estimate * static_cast<double>(batch);
    total += batch;
    batch_means.Add(estimate);
    report->value = weighted_sum / static_cast<double>(total);
    report->samples_used = total;
    report->ess = static_cast<double>(total);
    if (batch_means.count() >= 2) {
      report->std_error = batch_means.stddev() /
                          std::sqrt(static_cast<double>(batch_means.count()));
    }
    if (se_mode) {
      if (batch_means.count() >= 3 &&
          report->std_error <= request.target_std_error) {
        report->converged = true;
        return;
      }
    } else if (timer.ElapsedSeconds() >= request.deadline_seconds) {
      return;  // deadline reached; converged stays true
    }
  }
}

StatusOr<EstimateReport> BetweennessEngine::Estimate(
    VertexId r, const EstimateRequest& request) {
  const Status status = ValidateRequest(r, request);
  if (!status.ok()) return status;

  EstimateReport report;
  report.vertex = r;
  report.kind = request.kind;
  const std::uint64_t passes_before = total_sp_passes();
  const std::uint64_t hits_before = dependency_cache_hits();
  WallTimer timer;

  if (request.kind == EstimatorKind::kExact ||
      request.budget == BudgetKind::kSamples) {
    ServeSamplesBudget(r, request, &report);
  } else {
    ServeAdaptiveBudget(r, request, &report);
  }

  report.seconds = timer.ElapsedSeconds();
  report.sp_passes = total_sp_passes() - passes_before;
  report.cache_hit =
      report.cache_hit || dependency_cache_hits() > hits_before;
  report.ci_half_width = request.z * report.std_error;
  return report;
}

StatusOr<std::vector<EstimateReport>> BetweennessEngine::EstimateBatch(
    const std::vector<EstimateRequest>& requests) {
  bool all_sharded = !requests.empty();
  for (const EstimateRequest& request : requests) {
    const Status status = ValidateRequest(request.vertex, request);
    if (!status.ok()) return status;  // fail fast, before any work
    all_sharded = all_sharded && FindEstimator(request.kind)->sharded_many;
  }
  // Pool-splitting policy (see engine.h): fan out across shards only when
  // the queries can occupy the pool; smaller batches serve sequentially on
  // the owning engine, whose passes then use the pool internally. Both
  // shapes return identical statistical fields.
  if (all_sharded && requests.size() > 1 && resolved_threads() > 1 &&
      requests.size() >= resolved_threads()) {
    return ServeSharded(
        requests.size(), [&requests](std::size_t i) { return requests[i].vertex; },
        [&requests](std::size_t i) -> const EstimateRequest& {
          return requests[i];
        });
  }
  std::vector<EstimateReport> reports;
  reports.reserve(requests.size());
  for (const EstimateRequest& request : requests) {
    StatusOr<EstimateReport> report = Estimate(request.vertex, request);
    if (!report.ok()) return report.status();
    reports.push_back(std::move(report).value());
  }
  return reports;
}

StatusOr<std::vector<EstimateReport>> BetweennessEngine::EstimateMany(
    const std::vector<VertexId>& vertices, const EstimateRequest& request) {
  for (VertexId vertex : vertices) {
    const Status status = ValidateRequest(vertex, request);
    if (!status.ok()) return status;  // fail fast, before any work
  }
  // Same pool-splitting policy as EstimateBatch: shard only when the
  // vertex count can occupy the pool.
  if (!vertices.empty() && FindEstimator(request.kind)->sharded_many &&
      vertices.size() > 1 && resolved_threads() > 1 &&
      vertices.size() >= resolved_threads()) {
    return ServeSharded(
        vertices.size(), [&vertices](std::size_t i) { return vertices[i]; },
        [&request](std::size_t) -> const EstimateRequest& { return request; });
  }
  std::vector<EstimateReport> reports;
  reports.reserve(vertices.size());
  for (VertexId vertex : vertices) {
    StatusOr<EstimateReport> report = Estimate(vertex, request);
    if (!report.ok()) return report.status();
    reports.push_back(std::move(report).value());
  }
  return reports;
}

StatusOr<JointResult> BetweennessEngine::EstimateRelative(
    const std::vector<VertexId>& targets, std::uint64_t iterations,
    std::uint64_t seed) {
  const Status status = ValidateTargets(targets, iterations);
  if (!status.ok()) return status;
  if (joint_cache_ && joint_cache_->targets == targets &&
      joint_cache_->iterations == iterations && joint_cache_->seed == seed) {
    return joint_cache_->result;
  }
  JointOptions joint_options;
  joint_options.seed = seed;
  JointSpaceSampler sampler(*graph_, targets, joint_options, oracle());
  auto cache = std::make_unique<JointCache>();
  cache->targets = targets;
  cache->iterations = iterations;
  cache->seed = seed;
  cache->result = sampler.Run(iterations);
  joint_cache_ = std::move(cache);
  return joint_cache_->result;
}

StatusOr<std::vector<std::size_t>> BetweennessEngine::RankTargets(
    const std::vector<VertexId>& targets, std::uint64_t iterations,
    std::uint64_t seed) {
  StatusOr<JointResult> result = EstimateRelative(targets, iterations, seed);
  if (!result.ok()) return result.status();
  return RankOrderFromScores(result.value().copeland_scores);
}

StatusOr<std::vector<TopKEntry>> BetweennessEngine::TopK(std::uint32_t k,
                                                         double eps,
                                                         double delta,
                                                         std::uint64_t seed) {
  if (graph_->num_vertices() < 2) {
    return Status::InvalidArgument("graph needs at least two vertices");
  }
  if (k == 0 || k > graph_->num_vertices()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  if (!(eps > 0.0 && eps < 1.0) || !(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("eps and delta must lie in (0, 1)");
  }
  const std::uint32_t diameter = std::max(vertex_diameter(seed), 2u);
  const std::uint64_t samples = RkSampler::SampleBound(diameter, eps, delta);
  bool served_from_cache = false;
  const RkCredit& credit = EnsureRkCredit(samples, seed, /*se_vertex=*/0,
                                          /*batch_estimates=*/nullptr,
                                          &served_from_cache);
  const std::vector<std::size_t> order = RankOrderFromScores(credit.values);
  std::vector<TopKEntry> top;
  top.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    top.push_back(TopKEntry{static_cast<VertexId>(order[i]),
                            credit.values[order[i]]});
  }
  return top;
}

// -------------------------------------------------------------- mutation

Status BetweennessEngine::ApplyDelta(const GraphDelta& delta) {
  if (delta.empty()) return Status::Ok();
  if (!dynamic_) {
    // First mutation: take over graph ownership. The base starts as a
    // zero-copy *view* of the construction graph — no O(n+m) copy, and
    // nothing heavy retained if this first delta is rejected. The view
    // never dangles: the construction graph outlives the engine per the
    // constructor contract, and the first successful Apply is compacted
    // into owned storage immediately below (Csr()).
    dynamic_ = std::make_unique<DynamicGraph>(CsrGraph::WrapExternal(
        graph_->raw_offsets(), graph_->raw_adjacency(),
        graph_->raw_weights(), graph_->name()));
  }
  std::vector<GraphEdit> resolved;
  MHBC_RETURN_IF_ERROR(dynamic_->Apply(delta, &resolved));

  // Drop every piece of state bound to the pre-edit graph *before*
  // materializing the post-edit CSR — compaction frees the old arrays.
  // Samplers and shards rebuild lazily on next use. Whole-graph products
  // (exact scores, RK credit vector, diameter estimate, joint-space
  // result) are aggregates over all vertex pairs, which any edge edit —
  // or, for a vertex append, the n-dependent normalization — touches, so
  // they always reset; the dependency memo is the selectively-surviving
  // part, handled by the oracle below.
  mh_.reset();
  uniform_.reset();
  distance_.reset();
  rk_.reset();
  geisberger_.reset();
  shards_.clear();
  exact_scores_.clear();
  exact_ready_ = false;
  vertex_diameter_.reset();
  rk_credit_.reset();
  joint_cache_.reset();

  const CsrGraph& next = dynamic_->Csr();  // materializes the edits
  if (oracle_) {
    oracle_->ApplyGraphDelta(next, resolved);
    oracle_->set_cache_capacity(DependencyCacheEntries(next));
  }
  graph_ = &next;
  ++graph_epoch_;
  return Status::Ok();
}

}  // namespace mhbc
