#include "centrality/estimate.h"

namespace mhbc {

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kExact:
      return "exact";
    case EstimatorKind::kMetropolisHastings:
      return "mh";
    case EstimatorKind::kMhRaoBlackwell:
      return "mh-rb";
    case EstimatorKind::kUniformSource:
      return "uniform";
    case EstimatorKind::kDistanceProportional:
      return "distance";
    case EstimatorKind::kShortestPath:
      return "rk";
    case EstimatorKind::kLinearScaling:
      return "geisberger";
  }
  return "unknown";
}

bool ParseEstimatorKind(const std::string& name, EstimatorKind* kind) {
  for (EstimatorKind candidate :
       {EstimatorKind::kExact, EstimatorKind::kMetropolisHastings,
        EstimatorKind::kMhRaoBlackwell, EstimatorKind::kUniformSource,
        EstimatorKind::kDistanceProportional, EstimatorKind::kShortestPath,
        EstimatorKind::kLinearScaling}) {
    if (name == EstimatorKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace mhbc
