#include "centrality/estimate.h"

#include <algorithm>
#include <numeric>

namespace mhbc {

const std::vector<EstimatorKind>& AllEstimatorKinds() {
  static const std::vector<EstimatorKind> kKinds{
      EstimatorKind::kExact,          EstimatorKind::kMetropolisHastings,
      EstimatorKind::kMhRaoBlackwell, EstimatorKind::kUniformSource,
      EstimatorKind::kDistanceProportional, EstimatorKind::kShortestPath,
      EstimatorKind::kLinearScaling};
  return kKinds;
}

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kExact:
      return "exact";
    case EstimatorKind::kMetropolisHastings:
      return "mh";
    case EstimatorKind::kMhRaoBlackwell:
      return "mh-rb";
    case EstimatorKind::kUniformSource:
      return "uniform";
    case EstimatorKind::kDistanceProportional:
      return "distance";
    case EstimatorKind::kShortestPath:
      return "rk";
    case EstimatorKind::kLinearScaling:
      return "geisberger";
  }
  return "unknown";
}

bool ParseEstimatorKind(const std::string& name, EstimatorKind* kind) {
  for (EstimatorKind candidate : AllEstimatorKinds()) {
    if (name == EstimatorKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

std::vector<std::size_t> RankOrderFromScores(
    const std::vector<double>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  return order;
}

}  // namespace mhbc
