#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "centrality/estimate.h"
#include "core/joint_space.h"
#include "core/mh_betweenness.h"
#include "exact/dependency_oracle.h"
#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "sp/spd.h"
#include "util/status.h"

/// \file
/// BetweennessEngine — the session-object estimation API.
///
/// Every estimator in this library is a "pay setup once, then iterate"
/// algorithm, and one shortest-path pass from a source v yields the
/// dependency of v on *every* target at once. An engine exploits both: it
/// is constructed once per graph, owns lazily-built per-estimator state
/// (a memoizing dependency oracle shared by the source samplers, distance
/// proposal tables, the RK diameter probe and all-vertices credit vector,
/// cached exact scores, the last joint-space result), and serves
/// EstimateRequest -> EstimateReport queries whose work amortizes across
/// calls. Querying a second vertex on a live engine costs strictly fewer
/// shortest-path passes than a second one-shot call, because dependency
/// vectors computed for the first query are served from the memo.
///
/// Quickstart:
/// \code
///   mhbc::BetweennessEngine engine(graph);
///   mhbc::EstimateRequest req;
///   req.kind = mhbc::EstimatorKind::kMetropolisHastings;
///   req.samples = 2'000;
///   auto a = engine.Estimate(10, req);   // pays the passes
///   auto b = engine.Estimate(11, req);   // reuses a's dependency vectors
///   // b.value().std_error, .acceptance_rate, .ess, .cache_hit ...
/// \endcode
///
/// Reports are deterministic: a fixed (request, engine-construction) pair
/// reproduces the same value bit-for-bit no matter how many queries ran in
/// between (samplers are Reset to the request seed per query, and memo
/// hits return bit-identical vectors), only the work accounting differs.
/// The SPD kernel knob (EngineOptions::spd) is deliberately *outside* the
/// determinism key: dependency vectors — and therefore every statistical
/// report field — are bit-identical across SpdKernel choices and α/β
/// settings, because both BFS kernels emit the canonical per-level
/// ascending order and the backward sweep is pinned to it (sp/spd.h).
/// Kernel selection changes how fast a pass runs, never what it returns.
///
/// Parallelism and the thread contract. Set EngineOptions::num_threads to
/// parallelize *inside* the engine: the exact-score build runs the
/// source-parallel Brandes, the RK credit vector accumulates its sample
/// batches concurrently, and EstimateMany / EstimateBatch fan independent
/// per-vertex queries out across internal per-worker engine shards (each
/// shard is a fully sequential engine with its own samplers and a private
/// dependency oracle; shard memos merge back into the owning engine's
/// oracle when the fan-out completes, so later queries reuse the shards'
/// passes). Because every per-vertex report is a pure function of
/// (graph, request) and every parallel reduction uses a fixed,
/// thread-count-independent grouping, all *statistical* report fields —
/// value, samples_used, acceptance_rate, ess, std_error, ci_half_width,
/// converged — are bit-identical at every num_threads setting. Work
/// accounting (sp_passes attribution, cache_hit, seconds) legitimately
/// depends on scheduling and is excluded from that guarantee, as are
/// kDeadline budgets (wall-clock stop rules are nondeterministic even
/// sequentially). Chain-driven calls (EstimateRelative / RankTargets) stay
/// sequential by design: a Markov chain is one serial dependency, and
/// splitting it would change the estimator — but their *passes* do
/// parallelize: with EngineOptions::spd.num_threads inherited (0), the
/// engine's own pass engines run frontier-parallel level steps inside each
/// BFS + dependency sweep (sp/bfs_spd.h), which is what makes single-query
/// Estimate / EstimateRelative latency scale with cores.
///
/// Pool-splitting policy. Query-level sharding and intra-pass parallelism
/// split one thread budget instead of multiplying: EstimateMany /
/// EstimateBatch fan out across engine shards only when the query count
/// can occupy the pool (count >= resolved threads, shards run fully
/// sequential passes); smaller batches are served sequentially on the
/// owning engine, whose passes then use the whole pool internally
/// (sequential-across-sources × parallel-within-pass). The exact-score
/// build (BrandesBetweenness) and the RK credit batches likewise force
/// per-worker passes sequential while their own fan-out is the parallel
/// axis. Every choice on this policy surface is bit-neutral: both serving
/// shapes and every spd.num_threads value produce identical statistical
/// fields.
///
/// External thread-compatibility is unchanged: concurrent calls into ONE
/// engine still require external synchronization (queries mutate shared
/// caches). For concurrent serving either put a mutex in front of one
/// engine or shard one engine per server worker — engines share nothing
/// but the graph.
///
/// Graph mutation. ApplyDelta(delta) edits the served graph in place
/// (through an internal DynamicGraph overlay; see graph/dynamic_graph.h)
/// and advances graph_epoch(). The determinism contract extends to
/// mutation: after ApplyDelta, every statistical report field is
/// bit-identical to what a cold engine constructed on the post-edit graph
/// (same options) would return for the same request — at every thread
/// count and SPD kernel setting. Whole-graph products (exact scores, the
/// RK credit vector, the diameter probe, the joint-space result) are
/// rebuilt on next use; the dependency memo survives *selectively* —
/// only cached passes whose BFS trees an edit touches are dropped
/// (DependencyOracle::ApplyGraphDelta), which is what makes a small edit
/// batch cheaper to re-estimate than a cold rebuild. After the first
/// ApplyDelta, graph() returns the engine-owned post-edit graph; the
/// construction graph is no longer referenced.

namespace mhbc {

class UniformSourceSampler;
class DistanceProportionalSampler;
class RkSampler;
class GeisbergerSampler;
class ThreadPool;

/// How an EstimateRequest's budget is interpreted.
enum class BudgetKind {
  /// Spend exactly `samples` samples / chain iterations (kExact: n/a).
  kSamples,
  /// Keep sampling in batches until `deadline_seconds` of wall clock.
  kDeadline,
  /// Keep sampling in batches until the estimate's standard error drops
  /// to `target_std_error` (or `max_samples` is hit); KADABRA-style
  /// adaptivity driven by batch means / chain ESS (see core/adaptive.h).
  kStandardError,
};

/// One estimation query. Generalizes EstimateOptions: the budget is a
/// sample count, a wall-clock deadline, or a target standard error.
struct EstimateRequest {
  /// Target vertex — used by EstimateBatch; Estimate/EstimateMany take the
  /// vertex as an argument and ignore this field.
  VertexId vertex = kInvalidVertex;
  EstimatorKind kind = EstimatorKind::kMetropolisHastings;
  BudgetKind budget = BudgetKind::kSamples;
  /// kSamples: the exact budget. Other budgets: ignored.
  std::uint64_t samples = 1000;
  /// kDeadline only: wall-clock budget in seconds (> 0).
  double deadline_seconds = 0.0;
  /// kStandardError only: stop once std_error <= this (> 0).
  double target_std_error = 0.0;
  /// Normal quantile for the reported confidence half-width (1.96 ~ 95%).
  double z = 1.96;
  /// Safety valve for kDeadline / kStandardError runs.
  std::uint64_t max_samples = 1 << 20;
  std::uint64_t seed = 0x5eed;
};

/// Outcome of one engine query: the plain estimate plus diagnostics.
struct EstimateReport : BetweennessEstimate {
  /// The queried vertex.
  VertexId vertex = kInvalidVertex;
  /// Samples / chain iterations backing `value` (0 for kExact and for
  /// result-cache serves, which spend no new work). For adaptive chain
  /// budgets this is the *final* chain's length — the value is
  /// reproducible as a kSamples request with this count and the same
  /// seed; the doubling re-runs' total work shows up in sp_passes.
  std::uint64_t samples_used = 0;
  /// Fraction of MH proposals accepted (chain estimators only, else 0).
  double acceptance_rate = 0.0;
  /// Effective sample size: Geyer ESS of the chain's f-series for
  /// kMetropolisHastings, the iid draw count otherwise (0 for kExact).
  double ess = 0.0;
  /// Standard error of `value` (0 when not measurable: kExact,
  /// result-cache serves, or single-batch runs).
  double std_error = 0.0;
  /// z * std_error — the normal-approximation confidence half-width.
  double ci_half_width = 0.0;
  /// True when engine caches did part of the work: dependency-memo hits,
  /// or a whole-result serve (exact scores, RK credit vector).
  bool cache_hit = false;
  /// kStandardError: whether the target was met before max_samples.
  /// Other budgets: always true.
  bool converged = true;
};

/// Engine-wide knobs.
struct EngineOptions {
  /// Memory budget (bytes) for the shared dependency-vector memo; the
  /// engine derives the entry capacity as budget / per-entry-bytes (n
  /// doubles, plus n u32 hop distances unweighted or n double weighted
  /// distances weighted, kept for edit invalidation), so the footprint
  /// stays bounded on any graph size
  /// (capped at n entries — beyond that every source is already
  /// memoized). 0 disables cross-query pass reuse.
  std::size_t dependency_cache_bytes = std::size_t{256} << 20;  // 256 MiB
  /// Double-sweep probes for the cached vertex-diameter estimate backing
  /// TopK's VC sample bound.
  std::uint32_t diameter_probes = 4;
  /// First batch size for kDeadline / kStandardError budgets (the total
  /// doubles until the stop rule fires).
  std::uint64_t initial_batch = 128;
  /// kSamples budgets are split into up to this many equal batches so the
  /// report carries a standard error. For the iid source samplers batching
  /// only regroups one sample stream, so the estimate is invariant to this
  /// knob; for kShortestPath the batches are independently seeded (that is
  /// what lets the credit vector build in parallel), so this knob is part
  /// of the RK sampling plan — changing it redraws the paths. For fixed
  /// options every estimate is deterministic at any thread count.
  std::uint64_t report_batches = 16;
  /// Worker threads for the engine's parallel paths (exact Brandes build,
  /// RK credit batches, sharded EstimateMany / EstimateBatch). 0 = one per
  /// hardware thread, 1 = fully sequential (the pre-parallel behavior).
  /// Statistical report fields are bit-identical at every setting — see
  /// the file comment for the exact contract.
  unsigned num_threads = 1;
  /// Shortest-path kernel tuning — BFS kernel selection + direction
  /// switching unweighted, canonical-wave delta-stepping bucket width
  /// weighted — applied to every pass the engine (and its shards,
  /// samplers, and exact builds) runs. spd.num_threads == 0 (the default)
  /// inherits
  /// num_threads for the engine's serial-path pass engines, giving
  /// single-query calls frontier-parallel passes; fan-out paths force
  /// per-worker passes sequential (pool-splitting — see the file comment).
  /// Off the determinism key: all settings produce bit-identical reports.
  SpdOptions spd;
};

/// Registry metadata for one estimator. The registry is the single
/// dispatch table the engine, CLI tools, benches, and tests share, keyed
/// by both EstimatorKind and its stable string name.
struct EstimatorEntry {
  EstimatorKind kind;
  /// EstimatorKindName(kind): "exact", "mh", "mh-rb", ...
  const char* name;
  /// One-line description for CLI help / bench tables.
  const char* summary;
  /// False for estimators restricted to unweighted graphs.
  bool supports_weighted;
  /// True for the MH chain family (acceptance rate / ESS diagnostics).
  bool chain_based;
  /// True when EstimateMany / EstimateBatch may fan this kind out across
  /// per-worker engine shards (each per-vertex query is independent).
  /// False for whole-graph products (exact scores, the RK credit vector)
  /// that are computed once and serve every vertex at zero marginal
  /// passes — sharding those would rebuild the product per worker.
  bool sharded_many;
};

/// All registered estimators, in AllEstimatorKinds() order.
const std::vector<EstimatorEntry>& EstimatorRegistry();

/// Registry lookup by kind; never null for a valid kind.
const EstimatorEntry* FindEstimator(EstimatorKind kind);

/// Registry lookup by stable name; null for unknown names.
const EstimatorEntry* FindEstimator(const std::string& name);

/// Reusable estimation session bound to one graph. See file comment.
class BetweennessEngine {
 public:
  /// The graph must outlive the engine. Construction is O(1); all
  /// per-estimator state is built lazily on first use.
  explicit BetweennessEngine(const CsrGraph& graph,
                             EngineOptions options = EngineOptions());
  ~BetweennessEngine();

  BetweennessEngine(const BetweennessEngine&) = delete;
  BetweennessEngine& operator=(const BetweennessEngine&) = delete;

  /// Estimates the (paper-normalized) betweenness of vertex r.
  ///
  /// Fails with InvalidArgument for out-of-range r, empty/ill-formed
  /// budgets, or an estimator that does not support the graph (e.g.
  /// linear-scaling sampling on weighted graphs). The graph should be
  /// connected for meaningful scores (the paper's model); disconnected
  /// graphs are allowed and treat cross-component pairs as zero.
  StatusOr<EstimateReport> Estimate(VertexId r, const EstimateRequest& request);

  /// Serves heterogeneous requests (each naming its vertex in
  /// `request.vertex`) through the shared caches. Fails fast: the first
  /// invalid request aborts the batch.
  StatusOr<std::vector<EstimateReport>> EstimateBatch(
      const std::vector<EstimateRequest>& requests);

  /// One request applied to many vertices — the multi-vertex serving shape
  /// setup amortizes best over (for kShortestPath, all vertices after the
  /// first are served from the shared credit vector at zero passes).
  StatusOr<std::vector<EstimateReport>> EstimateMany(
      const std::vector<VertexId>& vertices, const EstimateRequest& request);

  /// Relative betweenness scores and ratios for `targets` via the paper's
  /// joint-space sampler (§4.3). The last result is cached keyed on
  /// (targets, iterations, seed), so asking for scores and then a ranking
  /// runs the chain once.
  StatusOr<JointResult> EstimateRelative(const std::vector<VertexId>& targets,
                                         std::uint64_t iterations,
                                         std::uint64_t seed = 0x5eed);

  /// Ranks `targets` by the joint-space chain's Copeland scores; returns
  /// indices into `targets`, most central first. Ties keep input order
  /// (RankOrderFromScores contract).
  StatusOr<std::vector<std::size_t>> RankTargets(
      const std::vector<VertexId>& targets, std::uint64_t iterations,
      std::uint64_t seed = 0x5eed);

  /// Approximate top-k betweenness vertices via shortest-path sampling at
  /// the VC-dimension budget for (eps, delta) uniform accuracy. The
  /// diameter probe and the credit vector are cached, so repeat calls
  /// (any k) cost no new passes.
  StatusOr<std::vector<TopKEntry>> TopK(std::uint32_t k, double eps = 0.02,
                                        double delta = 0.1,
                                        std::uint64_t seed = 0x5eed);

  /// Applies a batched edit script to the served graph, atomically: on any
  /// invalid op (duplicate insert, missing removal, self-loop,
  /// out-of-range vertex) the engine and its caches are left untouched.
  /// On success the graph epoch advances, state bound to the pre-edit
  /// graph is dropped or selectively invalidated (see the file comment's
  /// mutation contract), and subsequent queries serve the post-edit graph
  /// bit-identically to a cold engine built on it. An empty delta is a
  /// no-op that keeps the epoch.
  Status ApplyDelta(const GraphDelta& delta);

  /// Number of successful non-empty ApplyDelta batches so far.
  std::uint64_t graph_epoch() const { return graph_epoch_; }

  const CsrGraph& graph() const { return *graph_; }
  const EngineOptions& options() const { return options_; }

  /// Total shortest-path passes this engine has executed, over all
  /// estimators and queries (setup passes included).
  std::uint64_t total_sp_passes() const;

  /// Dependencies served from the shared memo instead of a pass.
  std::uint64_t dependency_cache_hits() const;

 private:
  struct RkCredit;     // cached all-vertices RK credit vector
  struct JointCache;   // cached joint-space result

  Status ValidateRequest(VertexId r, const EstimateRequest& request) const;
  Status ValidateTargets(const std::vector<VertexId>& targets,
                         std::uint64_t iterations) const;

  /// Dependency-memo entry capacity for `graph` under the byte budget
  /// (entries also carry the pass distances for edit invalidation).
  std::size_t DependencyCacheEntries(const CsrGraph& graph) const;

  /// options_.num_threads resolved (0 -> hardware concurrency).
  unsigned resolved_threads() const;
  /// options_.spd with num_threads == 0 (inherit) resolved to the engine's
  /// thread budget — the SpdOptions the engine's own serial-path pass
  /// engines (oracle, RK/Geisberger samplers) are built with, so
  /// single-query latency scales with the pool via frontier-parallel
  /// passes. Fan-out paths instead force per-worker spd.num_threads to 1
  /// (see the pool-splitting policy in the file comment). An explicit
  /// options_.spd.num_threads is passed through untouched.
  SpdOptions IntraPassSpd() const;
  /// Lazily-built worker pool (resolved_threads() wide).
  ThreadPool* pool();
  /// Lazily builds one sequential engine shard per pool worker.
  void EnsureShards();
  /// Parallel fan-out used by EstimateMany / EstimateBatch once requests
  /// are validated: query i = (vertex_at(i), request_at(i)) runs on
  /// whichever shard its claiming worker owns; shard oracle memos merge
  /// back on completion. Reports come back in query order (defined in
  /// engine.cc, the only translation unit that instantiates it).
  template <typename VertexAt, typename RequestAt>
  std::vector<EstimateReport> ServeSharded(std::size_t count,
                                           VertexAt vertex_at,
                                           RequestAt request_at);

  // Lazily-built shared state.
  DependencyOracle* oracle();
  MhBetweennessSampler* mh_sampler();
  UniformSourceSampler* uniform_sampler();
  DistanceProportionalSampler* distance_sampler();
  RkSampler* rk_sampler();
  GeisbergerSampler* geisberger_sampler();
  const std::vector<double>& exact_scores();
  std::uint32_t vertex_diameter(std::uint64_t seed);

  /// Returns the all-vertices RK credit vector for (samples, seed),
  /// serving the cache when the key matches and (re)building it through
  /// the batched accumulation otherwise — one construction path, so a
  /// cache serve is always bit-identical to a rebuild. When building and
  /// `batch_estimates` is non-null, it receives the per-batch estimates
  /// of `se_vertex` (for the standard-error readout).
  const RkCredit& EnsureRkCredit(std::uint64_t samples, std::uint64_t seed,
                                 VertexId se_vertex,
                                 std::vector<double>* batch_estimates,
                                 bool* served_from_cache);

  /// Runs `count` more samples of `kind` for vertex r, continuing the
  /// current sampler stream, and returns the batch estimate. Chain kinds
  /// run one fresh chain of `count` iterations (`chain_out` receives its
  /// full result).
  double RunBatch(EstimatorKind kind, VertexId r, std::uint64_t count,
                  MhResult* chain_out);

  void ServeSamplesBudget(VertexId r, const EstimateRequest& request,
                          EstimateReport* report);
  void ServeAdaptiveBudget(VertexId r, const EstimateRequest& request,
                           EstimateReport* report);

  const CsrGraph* graph_;
  EngineOptions options_;

  /// Mutation substrate, created by the first ApplyDelta; from then on
  /// graph_ points at its materialized CSR.
  std::unique_ptr<DynamicGraph> dynamic_;
  std::uint64_t graph_epoch_ = 0;

  std::unique_ptr<DependencyOracle> oracle_;
  std::unique_ptr<MhBetweennessSampler> mh_;
  std::unique_ptr<UniformSourceSampler> uniform_;
  std::unique_ptr<DistanceProportionalSampler> distance_;
  std::unique_ptr<RkSampler> rk_;
  std::unique_ptr<GeisbergerSampler> geisberger_;

  std::vector<double> exact_scores_;
  bool exact_ready_ = false;
  std::optional<std::uint32_t> vertex_diameter_;
  std::uint64_t diameter_seed_ = 0;
  std::unique_ptr<RkCredit> rk_credit_;
  std::unique_ptr<JointCache> joint_cache_;

  /// Worker pool and per-worker engine shards for the parallel paths;
  /// both lazily built, both absent while the engine runs sequentially.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<BetweennessEngine>> shards_;

  /// Passes run outside the oracle and samplers (exact build, RK credit
  /// batches, probes).
  std::uint64_t extra_passes_ = 0;
};

}  // namespace mhbc
