#pragma once

#include <vector>

#include "centrality/engine.h"
#include "centrality/estimate.h"
#include "core/joint_space.h"
#include "graph/csr_graph.h"
#include "util/status.h"

/// \file
/// One-shot convenience wrappers over BetweennessEngine.
///
/// The session-object API (centrality/engine.h) is the primary surface:
/// construct a BetweennessEngine once per graph and issue
/// EstimateRequest -> EstimateReport queries; setup state (distance
/// tables, dependency vectors, diameter probes, credit vectors) is cached
/// and amortized across queries, and reports carry diagnostics
/// (acceptance rate, ESS, confidence interval, cache-hit flag).
///
/// Quickstart:
/// \code
///   mhbc::CsrGraph g = mhbc::MakeBarabasiAlbert(10'000, 4, /*seed=*/7);
///   mhbc::BetweennessEngine engine(g);   // construct once, query often
///   mhbc::EstimateRequest req;           // defaults to the MH sampler
///   req.samples = 2'000;
///   auto a = engine.Estimate(42, req);   // pays ~2'001 BFS passes
///   auto b = engine.Estimate(43, req);   // strictly cheaper: reuses a's
///                                        // dependency vectors
///   // a.value().value ~= exact BC(42); a.value().ci_half_width bounds it.
/// \endcode
///
/// Parallelism: set EngineOptions::num_threads (or
/// EstimateOptions::num_threads here) to run the engine's internal
/// parallel paths — sharded EstimateMany/EstimateBatch fan-out, the
/// source-parallel exact build, concurrent RK credit batches. Reported
/// values are bit-identical at every thread count; see centrality/engine.h
/// for the precise contract.
///
/// Migration note: the free functions below predate the engine and are
/// kept as thin wrappers that build a throwaway engine per call — correct,
/// but they re-pay setup every time and return bare results without
/// diagnostics. They are deprecated for new code; prefer a long-lived
/// BetweennessEngine anywhere more than one call touches the same graph.
/// Mapping:
///   EstimateBetweenness(g, r, opt)  -> engine.Estimate(r, request)
///   EstimateRelativeBetweenness(..) -> engine.EstimateRelative(..)
///   RankByBetweenness(..)           -> engine.RankTargets(..)
///   EstimateTopKBetweenness(..)     -> engine.TopK(..)

namespace mhbc {

/// Estimates the (paper-normalized) betweenness of vertex r.
///
/// Fails with InvalidArgument for out-of-range r, empty budgets, or an
/// estimator that does not support the graph (e.g. linear-scaling
/// sampling on weighted graphs). The graph should be connected for
/// meaningful scores (the paper's model); disconnected graphs are allowed
/// and treat cross-component pairs as contributing zero.
///
/// \deprecated Prefer BetweennessEngine::Estimate for any repeated use —
/// it amortizes passes across queries and reports diagnostics. Migration:
/// \code
///   // before:
///   mhbc::EstimateOptions opt;
///   opt.kind = mhbc::EstimatorKind::kMetropolisHastings;
///   opt.samples = 2'000;
///   auto est = mhbc::EstimateBetweenness(g, 42, opt);
///   // est.value().value
///
///   // after:
///   mhbc::BetweennessEngine engine(g);   // keep it alive per graph
///   mhbc::EstimateRequest req;
///   req.kind = mhbc::EstimatorKind::kMetropolisHastings;
///   req.samples = 2'000;
///   auto rep = engine.Estimate(42, req);
///   // rep.value().value, plus .std_error/.ci_half_width/.ess/...
/// \endcode
StatusOr<BetweennessEstimate> EstimateBetweenness(const CsrGraph& graph,
                                                  VertexId r,
                                                  const EstimateOptions& options);

/// Estimates relative betweenness scores and ratios for the vertex set
/// `targets` via the paper's joint-space sampler (§4.3). `iterations` is
/// the chain length T (one shortest-path pass each).
///
/// \deprecated Prefer BetweennessEngine::EstimateRelative, which caches
/// the chain result for a following RankTargets call. Migration:
/// \code
///   // before:
///   auto joint = mhbc::EstimateRelativeBetweenness(g, targets, 20'000);
///   // after (scores + ranking run the chain ONCE):
///   mhbc::BetweennessEngine engine(g);
///   auto joint = engine.EstimateRelative(targets, 20'000);
///   auto order = engine.RankTargets(targets, 20'000);  // cache hit
/// \endcode
StatusOr<JointResult> EstimateRelativeBetweenness(
    const CsrGraph& graph, const std::vector<VertexId>& targets,
    std::uint64_t iterations, std::uint64_t seed = 0x5eed);

/// Ranks `targets` by estimated betweenness using the joint-space chain's
/// Copeland scores; returns indices into `targets`, most central first.
/// Ties (equal Copeland scores) keep the input order of `targets`
/// (RankOrderFromScores stable_sort contract).
///
/// \deprecated Prefer BetweennessEngine::RankTargets (same contract; the
/// joint-space chain result is cached for a preceding/following
/// EstimateRelative with the same arguments):
/// \code
///   auto order = mhbc::BetweennessEngine(g).RankTargets(targets, 20'000);
/// \endcode
StatusOr<std::vector<std::size_t>> RankByBetweenness(
    const CsrGraph& graph, const std::vector<VertexId>& targets,
    std::uint64_t iterations, std::uint64_t seed = 0x5eed);

/// Approximate top-k betweenness vertices (the [30] use case the paper's
/// intro contrasts with single-vertex estimation). Uses shortest-path
/// sampling over the whole graph with the VC-dimension budget for
/// (eps, delta) uniform accuracy, then returns the k best by estimate.
/// Vertices whose scores differ by less than ~2 eps may swap ranks; exact
/// ties keep vertex-id order.
///
/// \deprecated Prefer BetweennessEngine::TopK — the diameter probe and
/// credit vector are cached, so repeat calls (any k, same eps/delta/seed)
/// cost zero new passes:
/// \code
///   mhbc::BetweennessEngine engine(g);
///   auto top10 = engine.TopK(10, 0.02, 0.1);
///   auto top50 = engine.TopK(50, 0.02, 0.1);  // free: same credit vector
/// \endcode
StatusOr<std::vector<TopKEntry>> EstimateTopKBetweenness(
    const CsrGraph& graph, std::uint32_t k, double eps = 0.02,
    double delta = 0.1, std::uint64_t seed = 0x5eed);

}  // namespace mhbc
