#ifndef MHBC_CENTRALITY_API_H_
#define MHBC_CENTRALITY_API_H_

#include <vector>

#include "centrality/estimate.h"
#include "core/joint_space.h"
#include "graph/csr_graph.h"
#include "util/status.h"

/// \file
/// Unified entry points. This is the API the examples and most downstream
/// users consume; power users can instantiate the estimator classes in
/// core/ and baselines/ directly for reuse across calls.
///
/// Quickstart:
/// \code
///   mhbc::CsrGraph g = mhbc::MakeBarabasiAlbert(10'000, 4, /*seed=*/7);
///   mhbc::EstimateOptions opt;            // defaults to the MH sampler
///   opt.samples = 2'000;
///   auto est = mhbc::EstimateBetweenness(g, /*r=*/42, opt);
///   // est.value().value ~= exact BC(42) with ~2'001 BFS passes of work.
/// \endcode

namespace mhbc {

/// Estimates the (paper-normalized) betweenness of vertex r.
///
/// Fails with InvalidArgument for out-of-range r, empty budgets, or an
/// estimator that does not support the graph (e.g. shortest-path sampling
/// on weighted graphs). The graph should be connected for meaningful
/// scores (the paper's model); disconnected graphs are allowed and treat
/// cross-component pairs as contributing zero.
StatusOr<BetweennessEstimate> EstimateBetweenness(const CsrGraph& graph,
                                                  VertexId r,
                                                  const EstimateOptions& options);

/// Estimates relative betweenness scores and ratios for the vertex set
/// `targets` via the paper's joint-space sampler (§4.3). `iterations` is
/// the chain length T (one shortest-path pass each).
StatusOr<JointResult> EstimateRelativeBetweenness(
    const CsrGraph& graph, const std::vector<VertexId>& targets,
    std::uint64_t iterations, std::uint64_t seed = 0x5eed);

/// Ranks `targets` by estimated betweenness using the joint-space chain's
/// Copeland scores; returns indices into `targets`, most central first.
StatusOr<std::vector<std::size_t>> RankByBetweenness(
    const CsrGraph& graph, const std::vector<VertexId>& targets,
    std::uint64_t iterations, std::uint64_t seed = 0x5eed);

/// One entry of a top-k result.
struct TopKEntry {
  VertexId vertex = kInvalidVertex;
  /// Paper-normalized estimated betweenness.
  double estimate = 0.0;
};

/// Approximate top-k betweenness vertices (the [30] use case the paper's
/// intro contrasts with single-vertex estimation). Uses shortest-path
/// sampling over the whole graph with the VC-dimension budget for
/// (eps, delta) uniform accuracy, then returns the k best by estimate.
/// Vertices whose scores differ by less than ~2 eps may swap ranks.
StatusOr<std::vector<TopKEntry>> EstimateTopKBetweenness(
    const CsrGraph& graph, std::uint32_t k, double eps = 0.02,
    double delta = 0.1, std::uint64_t seed = 0x5eed);

}  // namespace mhbc

#endif  // MHBC_CENTRALITY_API_H_
