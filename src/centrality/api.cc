#include "centrality/api.h"

namespace mhbc {

StatusOr<BetweennessEstimate> EstimateBetweenness(
    const CsrGraph& graph, VertexId r, const EstimateOptions& options) {
  EngineOptions engine_options;
  engine_options.num_threads = options.num_threads;
  BetweennessEngine engine(graph, engine_options);
  EstimateRequest request;
  request.kind = options.kind;
  request.samples = options.samples;
  request.seed = options.seed;
  StatusOr<EstimateReport> report = engine.Estimate(r, request);
  if (!report.ok()) return report.status();
  // Slice the report down to the legacy result type.
  return static_cast<const BetweennessEstimate&>(report.value());
}

StatusOr<JointResult> EstimateRelativeBetweenness(
    const CsrGraph& graph, const std::vector<VertexId>& targets,
    std::uint64_t iterations, std::uint64_t seed) {
  BetweennessEngine engine(graph);
  return engine.EstimateRelative(targets, iterations, seed);
}

StatusOr<std::vector<std::size_t>> RankByBetweenness(
    const CsrGraph& graph, const std::vector<VertexId>& targets,
    std::uint64_t iterations, std::uint64_t seed) {
  BetweennessEngine engine(graph);
  return engine.RankTargets(targets, iterations, seed);
}

StatusOr<std::vector<TopKEntry>> EstimateTopKBetweenness(
    const CsrGraph& graph, std::uint32_t k, double eps, double delta,
    std::uint64_t seed) {
  BetweennessEngine engine(graph);
  return engine.TopK(k, eps, delta, seed);
}

}  // namespace mhbc
