#include "centrality/api.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "baselines/distance_sampler.h"
#include "baselines/geisberger_sampler.h"
#include "baselines/rk_sampler.h"
#include "baselines/uniform_sampler.h"
#include "core/mh_betweenness.h"
#include "exact/brandes.h"
#include "graph/graph_stats.h"
#include "util/timer.h"

namespace mhbc {

StatusOr<BetweennessEstimate> EstimateBetweenness(
    const CsrGraph& graph, VertexId r, const EstimateOptions& options) {
  if (graph.num_vertices() < 2) {
    return Status::InvalidArgument("graph needs at least two vertices");
  }
  if (r >= graph.num_vertices()) {
    return Status::InvalidArgument("vertex " + std::to_string(r) +
                                   " out of range (n=" +
                                   std::to_string(graph.num_vertices()) + ")");
  }
  if (options.kind != EstimatorKind::kExact && options.samples == 0) {
    return Status::InvalidArgument("sampling budget must be positive");
  }
  if (graph.weighted() && options.kind == EstimatorKind::kLinearScaling) {
    return Status::InvalidArgument(
        std::string(EstimatorKindName(options.kind)) +
        " estimator supports unweighted graphs only");
  }

  BetweennessEstimate out;
  out.kind = options.kind;
  WallTimer timer;
  switch (options.kind) {
    case EstimatorKind::kExact: {
      out.value = ExactBetweennessSingle(graph, r);
      out.sp_passes = graph.num_vertices();
      break;
    }
    case EstimatorKind::kMetropolisHastings: {
      MhOptions mh;
      mh.seed = options.seed;
      MhBetweennessSampler sampler(graph, mh);
      out.value = sampler.Estimate(r, options.samples);
      out.sp_passes = sampler.num_passes();
      break;
    }
    case EstimatorKind::kMhRaoBlackwell: {
      MhOptions mh;
      mh.seed = options.seed;
      MhBetweennessSampler sampler(graph, mh);
      out.value = sampler.Run(r, options.samples).proposal_estimate;
      out.sp_passes = sampler.num_passes();
      break;
    }
    case EstimatorKind::kUniformSource: {
      UniformSourceSampler sampler(graph, options.seed);
      out.value = sampler.Estimate(r, options.samples);
      out.sp_passes = sampler.num_passes();
      break;
    }
    case EstimatorKind::kDistanceProportional: {
      DistanceProportionalSampler sampler(graph, options.seed);
      out.value = sampler.Estimate(r, options.samples);
      out.sp_passes = sampler.num_passes() + 1;  // + distance setup pass
      break;
    }
    case EstimatorKind::kShortestPath: {
      RkSampler sampler(graph, options.seed);
      out.value = sampler.Estimate(r, options.samples);
      out.sp_passes = sampler.num_passes();
      break;
    }
    case EstimatorKind::kLinearScaling: {
      GeisbergerSampler sampler(graph, options.seed);
      out.value = sampler.Estimate(r, options.samples);
      out.sp_passes = sampler.num_passes();
      break;
    }
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

StatusOr<JointResult> EstimateRelativeBetweenness(
    const CsrGraph& graph, const std::vector<VertexId>& targets,
    std::uint64_t iterations, std::uint64_t seed) {
  if (graph.num_vertices() < 2) {
    return Status::InvalidArgument("graph needs at least two vertices");
  }
  if (targets.size() < 2) {
    return Status::InvalidArgument("need at least two target vertices");
  }
  if (iterations == 0) {
    return Status::InvalidArgument("iteration budget must be positive");
  }
  for (VertexId r : targets) {
    if (r >= graph.num_vertices()) {
      return Status::InvalidArgument("target vertex " + std::to_string(r) +
                                     " out of range");
    }
  }
  std::vector<VertexId> sorted = targets;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("target vertices must be distinct");
  }
  JointOptions options;
  options.seed = seed;
  JointSpaceSampler sampler(graph, targets, options);
  return sampler.Run(iterations);
}

StatusOr<std::vector<std::size_t>> RankByBetweenness(
    const CsrGraph& graph, const std::vector<VertexId>& targets,
    std::uint64_t iterations, std::uint64_t seed) {
  StatusOr<JointResult> result =
      EstimateRelativeBetweenness(graph, targets, iterations, seed);
  if (!result.ok()) return result.status();
  const std::vector<double>& scores = result.value().copeland_scores;
  std::vector<std::size_t> order(targets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  return order;
}

StatusOr<std::vector<TopKEntry>> EstimateTopKBetweenness(
    const CsrGraph& graph, std::uint32_t k, double eps, double delta,
    std::uint64_t seed) {
  if (graph.num_vertices() < 2) {
    return Status::InvalidArgument("graph needs at least two vertices");
  }
  if (k == 0 || k > graph.num_vertices()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  if (!(eps > 0.0 && eps < 1.0) || !(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("eps and delta must lie in (0, 1)");
  }
  const std::uint32_t vertex_diameter =
      ApproxVertexDiameter(graph, /*probes=*/4, seed);
  const std::uint64_t samples =
      RkSampler::SampleBound(std::max(vertex_diameter, 2u), eps, delta);
  RkSampler sampler(graph, seed);
  const std::vector<double> estimates = sampler.EstimateAll(samples);

  std::vector<std::size_t> order(estimates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&estimates](std::size_t a, std::size_t b) {
                     return estimates[a] > estimates[b];
                   });
  std::vector<TopKEntry> top;
  top.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    top.push_back(TopKEntry{static_cast<VertexId>(order[i]),
                            estimates[order[i]]});
  }
  return top;
}

}  // namespace mhbc
