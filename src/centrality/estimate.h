#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

/// \file
/// Common result/config types of the unified estimation API (see
/// centrality/engine.h for the session-object entry point and
/// centrality/api.h for the one-shot convenience wrappers).

namespace mhbc {

/// Which estimator backs an estimate.
enum class EstimatorKind {
  /// Exact Brandes (no sampling; `samples` ignored).
  kExact,
  /// The paper's single-space Metropolis-Hastings chain (§4.2) — the
  /// library's headline estimator (Eq. 7 chain average). Note: converges
  /// to E_pi[f], which exceeds BC(r) by up to the mu(r) factor on skewed
  /// dependency profiles (see core/theory.h ChainLimitEstimate).
  kMetropolisHastings,
  /// Library extension: the same MH chain's Rao-Blackwellized companion —
  /// the proposals of an independence chain are iid draws from the
  /// proposal distribution, so importance-averaging their dependencies is
  /// an *unbiased* estimator using the exact same shortest-path passes.
  kMhRaoBlackwell,
  /// Uniform source sampling (Bader et al. style).
  kUniformSource,
  /// Distance-proportional source sampling (Chehreghani 2014).
  kDistanceProportional,
  /// Riondato-Kornaropoulos shortest-path sampling.
  kShortestPath,
  /// Geisberger et al. linear-scaling source sampling.
  kLinearScaling,
};

/// Every EstimatorKind, in canonical (declaration) order. The single
/// source of truth the name round-trip, the estimator registry
/// (centrality/engine.h), and the experiment harnesses iterate.
const std::vector<EstimatorKind>& AllEstimatorKinds();

/// Returns a stable lowercase name ("mh", "uniform", ...) for tables/CLIs.
const char* EstimatorKindName(EstimatorKind kind);

/// Parses EstimatorKindName output back to the kind. Returns false on
/// unknown names.
bool ParseEstimatorKind(const std::string& name, EstimatorKind* kind);

/// Configuration for a one-shot single-vertex estimate (the free-function
/// API; BetweennessEngine requests use the richer EstimateRequest).
struct EstimateOptions {
  EstimatorKind kind = EstimatorKind::kMetropolisHastings;
  /// Sampling budget: MH iterations or sample count (kind-dependent);
  /// ignored by kExact.
  std::uint64_t samples = 1000;
  std::uint64_t seed = 0x5eed;
  /// Worker threads for the call's parallel paths (0 = hardware
  /// concurrency, 1 = sequential). Forwarded to
  /// EngineOptions::num_threads; values are bit-identical at any setting.
  unsigned num_threads = 1;
};

/// Outcome of a single-vertex estimate.
struct BetweennessEstimate {
  /// Paper-normalized (Eq. 1) betweenness score in [0, 1].
  double value = 0.0;
  /// Shortest-path passes the call consumed (work unit; exact runs report
  /// n passes; cache-served engine calls can report 0).
  std::uint64_t sp_passes = 0;
  /// Wall-clock seconds.
  double seconds = 0.0;
  /// Estimator that produced the value.
  EstimatorKind kind = EstimatorKind::kExact;
};

/// One entry of a top-k result.
struct TopKEntry {
  VertexId vertex = kInvalidVertex;
  /// Paper-normalized estimated betweenness.
  double estimate = 0.0;
};

/// Indices into `scores`, highest score first. Stable: entries with equal
/// scores keep their input order (std::stable_sort contract) — callers may
/// rely on this for deterministic tie-breaking, e.g. "first-listed target
/// wins" in RankByBetweenness.
std::vector<std::size_t> RankOrderFromScores(const std::vector<double>& scores);

}  // namespace mhbc
