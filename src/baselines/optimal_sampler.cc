#include "baselines/optimal_sampler.h"

#include "exact/brandes.h"

namespace mhbc {

OptimalSampler::OptimalSampler(const CsrGraph& graph, std::uint64_t seed,
                               DependencyOracle* shared_oracle)
    : graph_(&graph),
      owned_oracle_(shared_oracle ? nullptr
                                  : std::make_unique<DependencyOracle>(graph)),
      oracle_(shared_oracle ? shared_oracle : owned_oracle_.get()),
      rng_(seed) {}

void OptimalSampler::PrepareTarget(VertexId r) {
  if (prepared_target_ == r) return;
  const std::vector<double> profile = DependencyProfile(*graph_, r);
  oracle_->RecordSetupPasses(graph_->num_vertices());  // one per source
  raw_betweenness_ = 0.0;
  for (double d : profile) raw_betweenness_ += d;
  MHBC_DCHECK(raw_betweenness_ > 0.0);
  probabilities_.assign(profile.size(), 0.0);
  for (std::size_t v = 0; v < profile.size(); ++v) {
    probabilities_[v] = profile[v] / raw_betweenness_;
  }
  table_ = std::make_unique<DiscreteSampler>(profile);
  prepared_target_ = r;
}

const std::vector<double>& OptimalSampler::probabilities(VertexId r) {
  MHBC_DCHECK(r < graph_->num_vertices());
  PrepareTarget(r);
  return probabilities_;
}

double OptimalSampler::Estimate(VertexId r, std::uint64_t num_samples) {
  MHBC_DCHECK(r < graph_->num_vertices());
  MHBC_DCHECK(num_samples > 0);
  PrepareTarget(r);
  const double n = static_cast<double>(graph_->num_vertices());
  // Importance-weighted term delta / P[s] == raw BC(r) for every sample:
  // the variance is exactly zero ([13], "optimal sampling ... error 0").
  // We still draw and run the passes so work accounting stays comparable.
  double acc = 0.0;
  for (std::uint64_t i = 0; i < num_samples; ++i) {
    const auto s = static_cast<VertexId>(table_->Sample(&rng_));
    const double p = probabilities_[s];
    MHBC_DCHECK(p > 0.0);
    acc += oracle_->Dependency(s, r) / p;
  }
  const double raw = acc / static_cast<double>(num_samples);
  return raw / (n * (n - 1.0));
}

}  // namespace mhbc
