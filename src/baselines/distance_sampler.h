#ifndef MHBC_BASELINES_DISTANCE_SAMPLER_H_
#define MHBC_BASELINES_DISTANCE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exact/dependency_oracle.h"
#include "graph/csr_graph.h"
#include "util/rng.h"

/// \file
/// Distance-proportional source sampler of Chehreghani [13] (§3.2 of the
/// paper): P[s] = d(r,s) / sum_u d(r,u) over s in V \ {r}.

namespace mhbc {

/// Estimates BC(r) with distance-proportional importance sampling.
///
/// Intuition from [13]: far-away sources tend to have higher dependency on
/// r than the uniform average, so weighting by distance reduces variance on
/// many topologies (and the estimator stays unbiased thanks to the
/// importance weights delta / (P[s] * n(n-1))).
///
/// Setup costs one distance pass from r; each sample costs one
/// shortest-path pass.
class DistanceProportionalSampler {
 public:
  DistanceProportionalSampler(const CsrGraph& graph, std::uint64_t seed);

  /// Paper-normalized estimate of BC(r) from `num_samples` draws.
  double Estimate(VertexId r, std::uint64_t num_samples);

  std::uint64_t num_passes() const { return oracle_.num_passes(); }

 private:
  /// (Re)builds the distance table for target r (cached between calls with
  /// the same r).
  void PrepareTarget(VertexId r);

  const CsrGraph* graph_;
  DependencyOracle oracle_;
  Rng rng_;
  VertexId prepared_target_ = kInvalidVertex;
  std::vector<double> probabilities_;  // indexed by vertex, 0 at r
  std::unique_ptr<DiscreteSampler> table_;
};

}  // namespace mhbc

#endif  // MHBC_BASELINES_DISTANCE_SAMPLER_H_
