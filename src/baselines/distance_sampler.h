#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exact/dependency_oracle.h"
#include "graph/csr_graph.h"
#include "util/rng.h"

/// \file
/// Distance-proportional source sampler of Chehreghani [13] (§3.2 of the
/// paper): P[s] = d(r,s) / sum_u d(r,u) over s in V \ {r}.

namespace mhbc {

/// Estimates BC(r) with distance-proportional importance sampling.
///
/// Intuition from [13]: far-away sources tend to have higher dependency on
/// r than the uniform average, so weighting by distance reduces variance on
/// many topologies (and the estimator stays unbiased thanks to the
/// importance weights delta / (P[s] * n(n-1))).
///
/// Setup costs one distance pass from r (recorded in num_passes; cached
/// between calls with the same r); each sample costs one shortest-path
/// pass.
///
/// Reuse contract: an instance may serve any number of Estimate calls for
/// any targets; the proposal table is rebuilt only when the target
/// changes. Reset(seed) rewinds the random stream so a cached instance
/// reproduces a fresh one bit-for-bit (the distance table is
/// deterministic, so it is deliberately *not* invalidated by Reset).
class DistanceProportionalSampler {
 public:
  /// Graph must outlive the sampler. A non-null `shared_oracle` (bound to
  /// the same graph, outliving the sampler) replaces the internally owned
  /// one; see DependencyOracle for the memoization this enables.
  DistanceProportionalSampler(const CsrGraph& graph, std::uint64_t seed,
                              DependencyOracle* shared_oracle = nullptr);

  /// Paper-normalized estimate of BC(r) from `num_samples` draws.
  double Estimate(VertexId r, std::uint64_t num_samples);

  /// Rewinds the random stream to that of a fresh sampler seeded `seed`.
  void Reset(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Total shortest-path passes, *including* the distance-setup pass each
  /// prepared target costs (a shared oracle also counts the other users'
  /// work).
  std::uint64_t num_passes() const { return oracle_->num_passes(); }

 private:
  /// (Re)builds the distance table for target r (cached between calls with
  /// the same r). Records the distance pass with the oracle.
  void PrepareTarget(VertexId r);

  const CsrGraph* graph_;
  std::unique_ptr<DependencyOracle> owned_oracle_;
  DependencyOracle* oracle_;
  Rng rng_;
  VertexId prepared_target_ = kInvalidVertex;
  std::vector<double> probabilities_;  // indexed by vertex, 0 at r
  std::unique_ptr<DiscreteSampler> table_;
};

}  // namespace mhbc
