#include "baselines/geisberger_sampler.h"

namespace mhbc {

GeisbergerSampler::GeisbergerSampler(const CsrGraph& graph,
                                     std::uint64_t seed, SpdOptions spd)
    : graph_(&graph), bfs_(graph, spd), rng_(seed) {
  MHBC_DCHECK(!graph.weighted());
  MHBC_DCHECK(graph.num_vertices() >= 2);
  aux_.assign(graph.num_vertices(), 0.0);
  scaled_.assign(graph.num_vertices(), 0.0);
}

const std::vector<double>& GeisbergerSampler::ScaledDependencies(VertexId s) {
  bfs_.Run(s);
  ++num_passes_;
  const ShortestPathDag& dag = bfs_.dag();
  for (VertexId v : touched_) {
    aux_[v] = 0.0;
    scaled_[v] = 0.0;
  }
  touched_.assign(dag.order.begin(), dag.order.end());

  ForEachDeepestFirst(dag, [this, &dag, s](VertexId w) {
    if (w == s) return;
    const std::uint32_t dw = dag.dist[w];
    // Contribution of target w itself (1/d(s,w)) plus accumulated flows.
    const double coeff = (1.0 / static_cast<double>(dw) + aux_[w]) /
                         static_cast<double>(dag.sigma[w]);
    ForEachParent(dag, *graph_, w, [this, &dag, coeff](VertexId v) {
      aux_[v] += static_cast<double>(dag.sigma[v]) * coeff;
    });
    scaled_[w] = static_cast<double>(dw) * aux_[w];
  });
  scaled_[s] = 0.0;
  return scaled_;
}

double GeisbergerSampler::Estimate(VertexId r, std::uint64_t num_samples) {
  MHBC_DCHECK(r < graph_->num_vertices());
  MHBC_DCHECK(num_samples > 0);
  const double n = static_cast<double>(graph_->num_vertices());
  double acc = 0.0;
  for (std::uint64_t i = 0; i < num_samples; ++i) {
    const VertexId s = rng_.NextVertex(graph_->num_vertices());
    acc += 2.0 * ScaledDependencies(s)[r];
  }
  // E[2*delta'_s(r)] = raw BC(r) / n under uniform s, so raw ~= mean * n and
  // the Eq. 1 normalization divides by n(n-1).
  const double mean = acc / static_cast<double>(num_samples);
  return mean / (n - 1.0);
}

}  // namespace mhbc
