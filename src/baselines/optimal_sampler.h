#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "exact/dependency_oracle.h"
#include "graph/csr_graph.h"
#include "util/rng.h"

/// \file
/// The *optimal* sampler of Chehreghani [13] (paper Eq. 5): sources drawn
/// with P_r[v] = delta_{v.}(r) / sum_u delta_{u.}(r).
///
/// Building this distribution requires the exact dependency profile — i.e.
/// the betweenness of r itself — so it is only usable as a validation
/// yardstick (importance weighting gives a zero-variance estimator). It is
/// also the *stationary distribution* of the paper's MH sampler, which is
/// how the library's tests verify the chain: the MH visit histogram must
/// converge to OptimalSampler::probabilities().

namespace mhbc {

/// Zero-variance reference sampler (needs O(nm) setup per target).
///
/// Reuse contract: serves repeated Estimate calls for any targets (the
/// Eq. 5 table is rebuilt only on target change, n recorded setup passes);
/// Reset(seed) rewinds the random stream to a fresh sampler's.
class OptimalSampler {
 public:
  /// A non-null `shared_oracle` (same graph, outliving the sampler)
  /// replaces the internally owned one.
  OptimalSampler(const CsrGraph& graph, std::uint64_t seed,
                 DependencyOracle* shared_oracle = nullptr);

  /// Paper-normalized estimate (equal to the exact value for any
  /// num_samples >= 1, up to floating-point accumulation).
  double Estimate(VertexId r, std::uint64_t num_samples);

  /// The exact stationary distribution P_r[.] of Eq. 5 for target r
  /// (computes the dependency profile on first use per target).
  const std::vector<double>& probabilities(VertexId r);

  /// Rewinds the random stream to that of a fresh sampler seeded `seed`.
  void Reset(std::uint64_t seed) { rng_ = Rng(seed); }

  std::uint64_t num_passes() const { return oracle_->num_passes(); }

 private:
  void PrepareTarget(VertexId r);

  const CsrGraph* graph_;
  std::unique_ptr<DependencyOracle> owned_oracle_;
  DependencyOracle* oracle_;
  Rng rng_;
  VertexId prepared_target_ = kInvalidVertex;
  std::vector<double> probabilities_;
  double raw_betweenness_ = 0.0;  // normalization constant of Eq. 5
  std::unique_ptr<DiscreteSampler> table_;
};

}  // namespace mhbc
