#ifndef MHBC_BASELINES_UNIFORM_SAMPLER_H_
#define MHBC_BASELINES_UNIFORM_SAMPLER_H_

#include <cstdint>

#include "exact/dependency_oracle.h"
#include "graph/csr_graph.h"
#include "util/rng.h"

/// \file
/// Uniform source sampling baseline (Bader et al. 2007 style, and the
/// uniform instantiation of Chehreghani's randomized framework [13]).

namespace mhbc {

/// Estimates BC(r) by sampling source vertices uniformly from V(G) and
/// averaging importance-weighted dependencies.
///
/// Unbiased: with s ~ Uniform(V), E[delta_{s.}(r)] = raw BC(r) / n, so
/// mean(delta) / (n-1) estimates the paper-normalized BC(r) (Eq. 1).
/// Per sample: one shortest-path pass.
class UniformSourceSampler {
 public:
  /// Graph must outlive the sampler.
  UniformSourceSampler(const CsrGraph& graph, std::uint64_t seed);

  /// Draws `num_samples` sources; returns the paper-normalized estimate.
  double Estimate(VertexId r, std::uint64_t num_samples);

  /// Total shortest-path passes consumed so far.
  std::uint64_t num_passes() const { return oracle_.num_passes(); }

 private:
  const CsrGraph* graph_;
  DependencyOracle oracle_;
  Rng rng_;
};

}  // namespace mhbc

#endif  // MHBC_BASELINES_UNIFORM_SAMPLER_H_
