#pragma once

#include <cstdint>
#include <memory>

#include "exact/dependency_oracle.h"
#include "graph/csr_graph.h"
#include "util/rng.h"

/// \file
/// Uniform source sampling baseline (Bader et al. 2007 style, and the
/// uniform instantiation of Chehreghani's randomized framework [13]).

namespace mhbc {

/// Estimates BC(r) by sampling source vertices uniformly from V(G) and
/// averaging importance-weighted dependencies.
///
/// Unbiased: with s ~ Uniform(V), E[delta_{s.}(r)] = raw BC(r) / n, so
/// mean(delta) / (n-1) estimates the paper-normalized BC(r) (Eq. 1).
/// Per sample: one shortest-path pass.
///
/// Reuse contract: a sampler instance may serve any number of Estimate
/// calls (for any targets). Reset(seed) rewinds the random stream so a
/// cached instance reproduces a fresh one bit-for-bit; consecutive
/// Estimate calls continue one stream, so splitting a budget into batches
/// and weight-averaging the batch means equals a single full-budget call.
class UniformSourceSampler {
 public:
  /// Graph must outlive the sampler. When `shared_oracle` is non-null the
  /// sampler runs its passes through it (and profits from its memo; see
  /// DependencyOracle::set_cache_capacity) instead of owning one; the
  /// oracle must be bound to the same graph and outlive the sampler.
  UniformSourceSampler(const CsrGraph& graph, std::uint64_t seed,
                       DependencyOracle* shared_oracle = nullptr);

  /// Draws `num_samples` sources; returns the paper-normalized estimate.
  double Estimate(VertexId r, std::uint64_t num_samples);

  /// Rewinds the random stream to that of a fresh sampler seeded `seed`.
  void Reset(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Total shortest-path passes consumed so far through this sampler's
  /// oracle (a shared oracle also counts the other users' work).
  std::uint64_t num_passes() const { return oracle_->num_passes(); }

 private:
  const CsrGraph* graph_;
  std::unique_ptr<DependencyOracle> owned_oracle_;
  DependencyOracle* oracle_;
  Rng rng_;
};

}  // namespace mhbc
