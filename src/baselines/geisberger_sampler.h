#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "sp/bfs_spd.h"
#include "util/rng.h"

/// \file
/// Geisberger-Sanders-Schultes linear-scaling source sampler ([17], §3.2 of
/// the paper). Uniform source sampling, but each pair contribution is
/// scaled by d(s,v)/d(s,t) so that vertices do not profit from being near a
/// sampled source — the bias the plain Brandes-Pich scheme suffers from.
///
/// Unbiasedness: for an ordered pair (s,t) and an interior v, the two
/// directions contribute d(s,v)/d(s,t) + d(t,v)/d(t,s) = 1 (v lies on a
/// shortest path), so 2x the linear-scaled dependency summed over uniform
/// sources has expectation equal to the raw betweenness.

namespace mhbc {

/// Linear-scaling betweenness estimator for a single vertex.
class GeisbergerSampler {
 public:
  /// `spd` configures the BFS kernel; estimates are bit-identical across
  /// kernels and α/β settings (the scaled sweep runs in the canonical
  /// deepest-first order either way).
  explicit GeisbergerSampler(const CsrGraph& graph, std::uint64_t seed,
                             SpdOptions spd = SpdOptions());

  /// Paper-normalized estimate of BC(r) from `num_samples` uniform sources.
  /// Per sample: one BFS pass + one linear-scaled accumulation (O(|E|)).
  double Estimate(VertexId r, std::uint64_t num_samples);

  /// Rewinds the random stream to that of a fresh sampler seeded `seed`
  /// (reuse contract: consecutive Estimate calls continue one stream).
  void Reset(std::uint64_t seed) { rng_ = Rng(seed); }

  std::uint64_t num_passes() const { return num_passes_; }

 private:
  /// Linear-scaled dependency of source s on every vertex, via the
  /// generalized recursion A(v) = sum_{w: v in P_s(w)} sigma_sv/sigma_sw *
  /// (1/d(s,w) + A(w)), delta'(v) = d(s,v) * A(v).
  const std::vector<double>& ScaledDependencies(VertexId s);

  const CsrGraph* graph_;
  BfsSpd bfs_;
  Rng rng_;
  std::vector<double> aux_;     // A(v)
  std::vector<double> scaled_;  // delta'(v)
  std::vector<VertexId> touched_;
  std::uint64_t num_passes_ = 0;
};

}  // namespace mhbc
