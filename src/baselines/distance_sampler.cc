#include "baselines/distance_sampler.h"

#include "sp/distance.h"

namespace mhbc {

DistanceProportionalSampler::DistanceProportionalSampler(
    const CsrGraph& graph, std::uint64_t seed, DependencyOracle* shared_oracle)
    : graph_(&graph),
      owned_oracle_(shared_oracle ? nullptr
                                  : std::make_unique<DependencyOracle>(graph)),
      oracle_(shared_oracle ? shared_oracle : owned_oracle_.get()),
      rng_(seed) {}

void DistanceProportionalSampler::PrepareTarget(VertexId r) {
  if (prepared_target_ == r) return;
  const VertexId n = graph_->num_vertices();
  std::vector<double> weights(n, 0.0);
  if (graph_->weighted()) {
    const std::vector<double> dist = DijkstraDistances(*graph_, r);
    for (VertexId v = 0; v < n; ++v) {
      if (v != r && dist[v] > 0.0) weights[v] = dist[v];
    }
  } else {
    const std::vector<std::uint32_t> dist = BfsDistances(*graph_, r);
    for (VertexId v = 0; v < n; ++v) {
      if (v != r && dist[v] != kUnreachedDistance) {
        weights[v] = static_cast<double>(dist[v]);
      }
    }
  }
  oracle_->RecordSetupPasses(1);  // the distance pass above is real work
  table_ = std::make_unique<DiscreteSampler>(weights);
  probabilities_.assign(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    probabilities_[v] = table_->Probability(v);
  }
  prepared_target_ = r;
}

double DistanceProportionalSampler::Estimate(VertexId r,
                                             std::uint64_t num_samples) {
  MHBC_DCHECK(r < graph_->num_vertices());
  MHBC_DCHECK(num_samples > 0);
  const double n = static_cast<double>(graph_->num_vertices());
  MHBC_DCHECK(n >= 2.0);
  PrepareTarget(r);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < num_samples; ++i) {
    const auto s = static_cast<VertexId>(table_->Sample(&rng_));
    const double p = probabilities_[s];
    MHBC_DCHECK(p > 0.0);
    acc += oracle_->Dependency(s, r) / p;
  }
  const double raw = acc / static_cast<double>(num_samples);
  return raw / (n * (n - 1.0));
}

}  // namespace mhbc
