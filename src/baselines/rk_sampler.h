#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr_graph.h"
#include "sp/bfs_spd.h"
#include "sp/delta_spd.h"
#include "util/rng.h"

/// \file
/// Riondato-Kornaropoulos shortest-path sampler ([30], §3.2 of the paper):
/// draw a uniform vertex pair (s, t), pick one shortest s-t path uniformly
/// at random, and credit its interior vertices. The expected credit rate of
/// v is exactly the paper-normalized BC(v) (Eq. 1), and VC-dimension theory
/// gives a distribution-free sample bound in terms of the vertex diameter.
///
/// Supports weighted graphs: the path backtrack then walks the weighted
/// SPD's explicit predecessor lists instead of the BFS distance test.

namespace mhbc {

/// Shortest-path sampling estimator.
class RkSampler {
 public:
  /// `spd` configures the pass kernel (BFS unweighted, canonical-wave
  /// delta-stepping weighted). The sampled paths — and therefore the
  /// estimates — are bit-identical across kernels, α/β settings, thread
  /// counts, and bucket widths: the backtrack walks parents in a fixed
  /// canonical order either way.
  explicit RkSampler(const CsrGraph& graph, std::uint64_t seed,
                     SpdOptions spd = SpdOptions());

  /// Paper-normalized estimate of BC(r) from `num_samples` sampled paths.
  /// Per sample: one shortest-path pass + one backtrack.
  double Estimate(VertexId r, std::uint64_t num_samples);

  /// Estimates all vertices at once from `num_samples` paths (the [30]
  /// use case; the single-vertex harnesses read one entry).
  std::vector<double> EstimateAll(std::uint64_t num_samples);

  /// VC-dimension sample bound of [30]: r = (c/eps^2) *
  /// (floor(log2(vd - 2)) + 1 + ln(1/delta)), with the universal constant
  /// c = 0.5 and `vertex_diameter` the number of vertices on a longest
  /// shortest path. Requires vd >= 2; eps in (0,1), delta in (0,1).
  static std::uint64_t SampleBound(std::uint32_t vertex_diameter, double eps,
                                   double delta);

  /// Rewinds the random stream to that of a fresh sampler seeded `seed`
  /// (reuse contract: consecutive Estimate/EstimateAll calls continue one
  /// stream, so batched credit accumulation equals a single full run).
  void Reset(std::uint64_t seed) { rng_ = Rng(seed); }

  std::uint64_t num_passes() const { return num_passes_; }

 private:
  /// Samples one shortest path; adds 1 to `credit[v]` for each interior
  /// vertex v of the chosen path. A disconnected pair contributes no credit
  /// but still counts as a sample (keeps Eq. 1 unbiasedness on general
  /// graphs).
  void SampleOnePath(std::vector<double>* credit);

  const CsrGraph* graph_;
  std::unique_ptr<BfsSpd> bfs_;
  std::unique_ptr<DeltaSpd> delta_;
  Rng rng_;
  /// Parents of the backtrack's current vertex (reused across steps).
  std::vector<VertexId> parent_scratch_;
  std::uint64_t num_passes_ = 0;
};

}  // namespace mhbc
