#include "baselines/uniform_sampler.h"

namespace mhbc {

UniformSourceSampler::UniformSourceSampler(const CsrGraph& graph,
                                           std::uint64_t seed,
                                           DependencyOracle* shared_oracle)
    : graph_(&graph),
      owned_oracle_(shared_oracle ? nullptr
                                  : std::make_unique<DependencyOracle>(graph)),
      oracle_(shared_oracle ? shared_oracle : owned_oracle_.get()),
      rng_(seed) {}

double UniformSourceSampler::Estimate(VertexId r, std::uint64_t num_samples) {
  MHBC_DCHECK(r < graph_->num_vertices());
  MHBC_DCHECK(num_samples > 0);
  const VertexId n = graph_->num_vertices();
  MHBC_DCHECK(n >= 2);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < num_samples; ++i) {
    const VertexId s = rng_.NextVertex(n);
    acc += oracle_->Dependency(s, r);
  }
  const double mean = acc / static_cast<double>(num_samples);
  return mean / (static_cast<double>(n) - 1.0);
}

}  // namespace mhbc
