#include "baselines/rk_sampler.h"

#include <cmath>

namespace mhbc {

RkSampler::RkSampler(const CsrGraph& graph, std::uint64_t seed,
                     SpdOptions spd)
    : graph_(&graph), rng_(seed) {
  MHBC_DCHECK(graph.num_vertices() >= 2);
  if (graph.weighted()) {
    delta_ = std::make_unique<DeltaSpd>(graph, spd);
  } else {
    bfs_ = std::make_unique<BfsSpd>(graph, spd);
  }
}

void RkSampler::SampleOnePath(std::vector<double>* credit) {
  const VertexId n = graph_->num_vertices();
  VertexId s = rng_.NextVertex(n);
  VertexId t = rng_.NextVertex(n);
  while (t == s) t = rng_.NextVertex(n);
  ++num_passes_;

  const ShortestPathDag* dag;
  if (delta_ != nullptr) {
    delta_->Run(s);
    dag = &delta_->dag();
    if (dag->wdist[t] < 0.0) return;  // zero-credit sample
  } else {
    bfs_->Run(s);
    dag = &bfs_->dag();
    if (dag->dist[t] == kUnreachedDistance) return;  // zero-credit sample
  }

  // Backtrack from t, choosing predecessor z with probability
  // sigma_sz / sigma_sw, which selects each shortest s-t path uniformly.
  // ForEachParent walks recorded SPD edges when the pass stored them and
  // re-derives parents from dist otherwise; either way the enumeration is
  // the same sequence, so the chosen path — and the RNG stream — is
  // bit-identical across kernels.
  VertexId w = t;
  while (w != s) {
    parent_scratch_.clear();
    ForEachParent(*dag, *graph_, w,
                  [this](VertexId z) { parent_scratch_.push_back(z); });
    MHBC_DCHECK(!parent_scratch_.empty());
    const double total = static_cast<double>(dag->sigma[w]);
    double target = rng_.NextDouble() * total;
    // The fp tail (target still >= 0 after every parent) falls back to the
    // last parent.
    VertexId chosen = parent_scratch_.back();
    for (VertexId z : parent_scratch_) {
      target -= static_cast<double>(dag->sigma[z]);
      if (target < 0.0) {
        chosen = z;
        break;
      }
    }
    w = chosen;
    if (w != s) (*credit)[w] += 1.0;
  }
}

double RkSampler::Estimate(VertexId r, std::uint64_t num_samples) {
  MHBC_DCHECK(r < graph_->num_vertices());
  MHBC_DCHECK(num_samples > 0);
  std::vector<double> credit(graph_->num_vertices(), 0.0);
  for (std::uint64_t i = 0; i < num_samples; ++i) SampleOnePath(&credit);
  return credit[r] / static_cast<double>(num_samples);
}

std::vector<double> RkSampler::EstimateAll(std::uint64_t num_samples) {
  MHBC_DCHECK(num_samples > 0);
  std::vector<double> credit(graph_->num_vertices(), 0.0);
  for (std::uint64_t i = 0; i < num_samples; ++i) SampleOnePath(&credit);
  for (double& c : credit) c /= static_cast<double>(num_samples);
  return credit;
}

std::uint64_t RkSampler::SampleBound(std::uint32_t vertex_diameter, double eps,
                                     double delta) {
  MHBC_DCHECK(vertex_diameter >= 2);
  MHBC_DCHECK(eps > 0.0 && eps < 1.0);
  MHBC_DCHECK(delta > 0.0 && delta < 1.0);
  constexpr double kUniversalConstant = 0.5;
  // VC dimension of the range set is at most floor(log2(vd - 2)) + 1 for
  // vd > 2; a single-edge "path system" (vd == 2) has VC dimension 1.
  const double vc =
      vertex_diameter > 2
          ? std::floor(std::log2(static_cast<double>(vertex_diameter) - 2.0)) +
                1.0
          : 1.0;
  const double bound =
      kUniversalConstant / (eps * eps) * (vc + std::log(1.0 / delta));
  return static_cast<std::uint64_t>(std::ceil(bound));
}

}  // namespace mhbc
