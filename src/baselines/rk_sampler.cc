#include "baselines/rk_sampler.h"

#include <cmath>

namespace mhbc {

RkSampler::RkSampler(const CsrGraph& graph, std::uint64_t seed)
    : graph_(&graph), rng_(seed) {
  MHBC_DCHECK(graph.num_vertices() >= 2);
  if (graph.weighted()) {
    dijkstra_ = std::make_unique<DijkstraSpd>(graph);
  } else {
    bfs_ = std::make_unique<BfsSpd>(graph);
  }
}

void RkSampler::SampleOnePath(std::vector<double>* credit) {
  const VertexId n = graph_->num_vertices();
  VertexId s = rng_.NextVertex(n);
  VertexId t = rng_.NextVertex(n);
  while (t == s) t = rng_.NextVertex(n);
  ++num_passes_;

  if (dijkstra_ != nullptr) {
    dijkstra_->Run(s);
    const ShortestPathDag& dag = dijkstra_->dag();
    if (dag.wdist[t] < 0.0) return;  // zero-credit sample
    VertexId w = t;
    while (w != s) {
      const auto preds = dijkstra_->predecessors(w);
      MHBC_DCHECK(!preds.empty());
      const double total = static_cast<double>(dag.sigma[w]);
      double target = rng_.NextDouble() * total;
      VertexId chosen = preds.back();
      for (VertexId z : preds) {
        target -= static_cast<double>(dag.sigma[z]);
        if (target < 0.0) {
          chosen = z;
          break;
        }
      }
      w = chosen;
      if (w != s) (*credit)[w] += 1.0;
    }
    return;
  }

  bfs_->Run(s);
  const ShortestPathDag& dag = bfs_->dag();
  if (dag.dist[t] == kUnreachedDistance) return;  // zero-credit sample

  // Backtrack from t, choosing predecessor z with probability
  // sigma_sz / sigma_sw, which selects each shortest s-t path uniformly.
  VertexId w = t;
  while (w != s) {
    const std::uint32_t dw = dag.dist[w];
    const double total = static_cast<double>(dag.sigma[w]);
    double target = rng_.NextDouble() * total;
    VertexId chosen = kInvalidVertex;
    for (VertexId z : graph_->neighbors(w)) {
      if (dag.dist[z] + 1 != dw) continue;  // not a predecessor
      target -= static_cast<double>(dag.sigma[z]);
      chosen = z;
      if (target < 0.0) break;
    }
    MHBC_DCHECK(chosen != kInvalidVertex);
    w = chosen;
    if (w != s) (*credit)[w] += 1.0;
  }
}

double RkSampler::Estimate(VertexId r, std::uint64_t num_samples) {
  MHBC_DCHECK(r < graph_->num_vertices());
  MHBC_DCHECK(num_samples > 0);
  std::vector<double> credit(graph_->num_vertices(), 0.0);
  for (std::uint64_t i = 0; i < num_samples; ++i) SampleOnePath(&credit);
  return credit[r] / static_cast<double>(num_samples);
}

std::vector<double> RkSampler::EstimateAll(std::uint64_t num_samples) {
  MHBC_DCHECK(num_samples > 0);
  std::vector<double> credit(graph_->num_vertices(), 0.0);
  for (std::uint64_t i = 0; i < num_samples; ++i) SampleOnePath(&credit);
  for (double& c : credit) c /= static_cast<double>(num_samples);
  return credit;
}

std::uint64_t RkSampler::SampleBound(std::uint32_t vertex_diameter, double eps,
                                     double delta) {
  MHBC_DCHECK(vertex_diameter >= 2);
  MHBC_DCHECK(eps > 0.0 && eps < 1.0);
  MHBC_DCHECK(delta > 0.0 && delta < 1.0);
  constexpr double kUniversalConstant = 0.5;
  // VC dimension of the range set is at most floor(log2(vd - 2)) + 1 for
  // vd > 2; a single-edge "path system" (vd == 2) has VC dimension 1.
  const double vc =
      vertex_diameter > 2
          ? std::floor(std::log2(static_cast<double>(vertex_diameter) - 2.0)) +
                1.0
          : 1.0;
  const double bound =
      kUniversalConstant / (eps * eps) * (vc + std::log(1.0 / delta));
  return static_cast<std::uint64_t>(std::ceil(bound));
}

}  // namespace mhbc
