#include "exact/extended_relative.h"

#include "sp/bfs_spd.h"
#include "util/stats.h"

namespace mhbc {

double ExactExtendedRelativeBetweenness(const CsrGraph& graph, VertexId ri,
                                        VertexId rj) {
  MHBC_DCHECK(!graph.weighted());
  const VertexId n = graph.num_vertices();
  MHBC_DCHECK(n >= 2);
  MHBC_DCHECK(ri < n && rj < n);
  MHBC_DCHECK(ri != rj);

  // Fixed tables from the two reference vertices.
  BfsSpd from_ri(graph), from_rj(graph), from_v(graph);
  from_ri.Run(ri);
  from_rj.Run(rj);
  const ShortestPathDag& di = from_ri.dag();
  const ShortestPathDag& dj = from_rj.dag();

  auto pair_dependency = [](const ShortestPathDag& dr,
                            const ShortestPathDag& dv, VertexId r, VertexId v,
                            VertexId t) -> double {
    // delta_{vt}(r) = sigma_vr * sigma_rt / sigma_vt when r is interior on
    // a shortest v-t path; dv is the SPD rooted at v, dr the one at r.
    if (t == r || v == r) return 0.0;
    if (dv.dist[t] == kUnreachedDistance ||
        dv.dist[r] == kUnreachedDistance ||
        dr.dist[t] == kUnreachedDistance) {
      return 0.0;
    }
    if (dv.dist[r] + dr.dist[t] != dv.dist[t]) return 0.0;
    return static_cast<double>(dv.sigma[r]) *
           static_cast<double>(dr.sigma[t]) /
           static_cast<double>(dv.sigma[t]);
  };

  double total = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    from_v.Run(v);
    const ShortestPathDag& dv = from_v.dag();
    for (VertexId t = 0; t < n; ++t) {
      if (t == v) continue;
      const double dep_i = pair_dependency(di, dv, ri, v, t);
      const double dep_j = pair_dependency(dj, dv, rj, v, t);
      total += ClippedRatio(dep_i, dep_j);
    }
  }
  return total / (static_cast<double>(n) * (static_cast<double>(n) - 1.0));
}

}  // namespace mhbc
