#include "exact/dependency_oracle.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace mhbc {

namespace {

/// True when the edit batch provably leaves the pass' shortest-path DAG —
/// and therefore its dependency vector, bit-for-bit — unchanged. `hops`
/// holds the pass' pre-edit hop distances (kUnreachedDistance sentinel for
/// unreached vertices; appended vertices index past the end and read as
/// unreached). Unweighted criterion per edit {u,v}: the DAG is untouched
/// iff dist(s,u) == dist(s,v) — an intra-level edge lies on no shortest
/// path, removing one deletes no DAG edge and inserting one creates none,
/// and two equal *unreached* sentinels mean the edit happens outside the
/// pass' component entirely. Any distance mismatch can change distances,
/// sigma counts, or the level structure, so the pass is dropped. The test
/// is evaluated against the original distances for every edit in the
/// batch, which is sound by induction: each passing edit leaves all
/// distances unchanged, so the stored vector stays valid for the next
/// edit. Vertex appends never touch an existing pass.
bool PassSurvivesEdits(const std::vector<std::uint32_t>& hops,
                       std::span<const GraphEdit> edits, bool directed) {
  const auto dist_of = [&hops](VertexId v) {
    return v < hops.size() ? hops[v] : kUnreachedDistance;
  };
  for (const GraphEdit& edit : edits) {
    if (edit.kind == GraphEdit::Kind::kAddVertex) continue;
    if (directed) {
      // Directed arc u→v: only paths *through* the arc matter, and those
      // enter at u. An unreached u can never feed the arc (insert or
      // remove). A reached u leaves the DAG untouched iff the arc is
      // slack: dist(u)+1 > dist(v) means it lies on no shortest path
      // (remove deletes nothing) and cannot create or tie one (insert
      // adds nothing). dist(u)+1 <= dist(v) — including an unreached v,
      // which an insert would newly reach — can change distances or
      // sigma, so the pass drops. The comparison is overflow-safe: u is
      // reached, so dist(u)+1 fits.
      const std::uint32_t du = dist_of(edit.u);
      if (du == kUnreachedDistance) continue;
      if (static_cast<std::uint64_t>(du) + 1 <=
          static_cast<std::uint64_t>(dist_of(edit.v))) {
        return false;
      }
      continue;
    }
    if (dist_of(edit.u) != dist_of(edit.v)) return false;
  }
  return true;
}

/// Weighted companion of PassSurvivesEdits (see the class comment for the
/// full soundness argument). `wdists` holds the pass' pre-edit weighted
/// distances (-1 sentinel for unreached; appended vertices index past the
/// end and read as unreached); `delta` is the engine still bound to the
/// *pre-edit* graph, consulted for the canonical tie epsilon and the
/// per-vertex minimum incident weights the wave rule depends on. Per edit
/// {u,v,w}: both endpoints unreached survives (the edit cannot touch the
/// pass' component); one reached endpoint drops (an inserted edge extends
/// the component, and an undirected edge with one reached endpoint always
/// made the other reachable, so this only arises on insert); both reached
/// survives iff the edge is slack both ways under the canonical tie rule
/// AND w cannot change either endpoint's minimum incident weight. Sound by
/// induction over the batch: each passing edit changes no distance, no
/// tie, and no minw, so the stored vectors (and the old engine's minw
/// table) stay valid for the next edit.
bool WeightedPassSurvivesEdits(const std::vector<double>& wdists,
                               std::span<const GraphEdit> edits,
                               const DeltaSpd& delta, bool directed) {
  const auto wdist_of = [&wdists](VertexId v) {
    return v < wdists.size() ? wdists[v] : -1.0;
  };
  const double eps = delta.options().tie_epsilon;
  const auto equal = [eps](double a, double b) {
    if (a == b) return true;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= eps * scale;
  };
  for (const GraphEdit& edit : edits) {
    if (edit.kind == GraphEdit::Kind::kAddVertex) continue;
    const double du = wdist_of(edit.u);
    const double dv = wdist_of(edit.v);
    const bool u_reached = du >= 0.0;
    const bool v_reached = dv >= 0.0;
    const double w = edit.weight;
    if (directed) {
      // Directed arc u→v: paths through it enter at u, so an unreached u
      // makes the edit invisible to the pass. A reached u with an
      // unreached v drops (an insert newly reaches v; a removal from a
      // reached u to an unreached v cannot exist). Both reached survives
      // iff the arc is slack one way — du + w strictly above dv and not
      // within the canonical tie window — and w cannot change v's
      // minimum *incoming* weight, the only minw the wave rule reads for
      // relaxations into v (min_incident_weight is the min in-weight on
      // directed graphs).
      if (!u_reached) continue;
      if (!v_reached) return false;
      if (du + w < dv || equal(du + w, dv)) return false;
      const double minw_v = delta.min_incident_weight(edit.v);
      if (edit.kind == GraphEdit::Kind::kAddEdge) {
        if (w < minw_v) return false;
      } else {
        if (w <= minw_v) return false;
      }
      continue;
    }
    if (!u_reached && !v_reached) continue;
    if (u_reached != v_reached) return false;
    // Slack both ways: on no shortest path, creates none, ties nothing.
    if (du + w < dv || equal(du + w, dv)) return false;
    if (dv + w < du || equal(dv + w, du)) return false;
    // minw gate: the wave geometry consults min incident weights, so the
    // edit must leave both endpoints' minimum unchanged. An insert needs
    // w >= minw (it cannot become the new minimum); a removal needs
    // w > minw (at w == minw it may have *been* the minimum).
    const double minw_u = delta.min_incident_weight(edit.u);
    const double minw_v = delta.min_incident_weight(edit.v);
    if (edit.kind == GraphEdit::Kind::kAddEdge) {
      if (w < minw_u || w < minw_v) return false;
    } else {
      if (w <= minw_u || w <= minw_v) return false;
    }
  }
  return true;
}

}  // namespace

DependencyOracle::DependencyOracle(const CsrGraph& graph, SpdOptions spd)
    : graph_(&graph), spd_(spd), accumulator_(graph) {
  // The backward sweep borrows the pass engine's intra-pass pool (null
  // when spd.num_threads resolves to sequential), so one pass + accumulate
  // runs on one set of threads.
  if (graph.weighted()) {
    delta_ = std::make_unique<DeltaSpd>(graph, spd);
    accumulator_ =
        DependencyAccumulator(graph, delta_->intra_pool(), spd.parallel_grain);
  } else {
    bfs_ = std::make_unique<BfsSpd>(graph, spd);
    accumulator_ =
        DependencyAccumulator(graph, bfs_->intra_pool(), spd.parallel_grain);
  }
}

void DependencyOracle::set_cache_capacity(std::size_t max_entries) {
  cache_capacity_ = max_entries;
  if (cache_capacity_ == 0) cache_.clear();
}

void DependencyOracle::MergeCacheFrom(const DependencyOracle& other) {
  MHBC_DCHECK(graph_ == other.graph_);
  if (cache_capacity_ == 0) return;
  for (const auto& [source, entry] : other.cache_) {
    if (cache_.size() >= cache_capacity_) return;
    cache_.emplace(source, entry);  // no-op when the source is present
  }
}

void DependencyOracle::ApplyGraphDelta(const CsrGraph& new_graph,
                                       std::span<const GraphEdit> edits) {
  ++graph_epoch_;
  const bool weighted = graph_->weighted() && new_graph.weighted();
  const bool directed = graph_->directed();
  if (!edits.empty()) {
    if (graph_->weighted() != new_graph.weighted() ||
        graph_->directed() != new_graph.directed()) {
      // A weightedness or directedness flip re-keys every distance; drop
      // everything.
      invalidated_entries_ += cache_.size();
      cache_.clear();
    } else {
      for (auto it = cache_.begin(); it != cache_.end();) {
        const bool survives =
            weighted ? WeightedPassSurvivesEdits(it->second.wdists, edits,
                                                 *delta_, directed)
                     : PassSurvivesEdits(it->second.hops, edits, directed);
        if (survives) {
          ++it;
        } else {
          ++invalidated_entries_;
          it = cache_.erase(it);
        }
      }
    }
  }
  // Surviving passes never reach an appended vertex: extend with the
  // exact values a fresh pass on the new graph would store.
  const std::size_t n = new_graph.num_vertices();
  for (auto& [source, entry] : cache_) {
    entry.deps.resize(n, 0.0);
    if (weighted) {
      entry.wdists.resize(n, -1.0);
    } else {
      entry.hops.resize(n, kUnreachedDistance);
    }
  }
  graph_ = &new_graph;
  // Rebuild the pass engine first: the new accumulator borrows its
  // intra-pass pool, so the pool must already belong to the new engine.
  if (new_graph.weighted()) {
    delta_ = std::make_unique<DeltaSpd>(new_graph, spd_);
    bfs_.reset();
    accumulator_ = DependencyAccumulator(new_graph, delta_->intra_pool(),
                                         spd_.parallel_grain);
  } else {
    bfs_ = std::make_unique<BfsSpd>(new_graph, spd_);
    delta_.reset();
    accumulator_ = DependencyAccumulator(new_graph, bfs_->intra_pool(),
                                         spd_.parallel_grain);
  }
}

const std::vector<double>& DependencyOracle::Dependencies(VertexId source) {
  MHBC_DCHECK(source < graph_->num_vertices());
  if (cache_capacity_ > 0) {
    const auto it = cache_.find(source);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second.deps;
    }
  }
  ++num_passes_;
  const std::vector<double>* deps;
  const ShortestPathDag* dag;
  if (delta_) {
    delta_->Run(source);
    deps = &accumulator_.Accumulate(*delta_);
    dag = &delta_->dag();
  } else {
    bfs_->Run(source);
    deps = &accumulator_.Accumulate(*bfs_);
    dag = &bfs_->dag();
  }
  if (cache_capacity_ > 0) {
    // Bulk eviction keeps the policy trivial and deterministic; the cache
    // refills from the live working set within one query's worth of passes.
    if (cache_.size() >= cache_capacity_) cache_.clear();
    CacheEntry entry;
    entry.deps = *deps;
    // Each pass keeps its distances for the edit-survival test
    // (ApplyGraphDelta): hop distances unweighted, weighted distances
    // weighted.
    if (graph_->weighted()) {
      entry.wdists = dag->wdist;
    } else {
      entry.hops = dag->dist;
    }
    return cache_.emplace(source, std::move(entry)).first->second.deps;
  }
  return *deps;
}

double DependencyOracle::Dependency(VertexId source, VertexId target) {
  MHBC_DCHECK(target < graph_->num_vertices());
  return Dependencies(source)[target];
}

double DependencyOracle::EstimatorTerm(VertexId v, VertexId r) {
  const double n = static_cast<double>(graph_->num_vertices());
  MHBC_DCHECK(n >= 2.0);
  return Dependency(v, r) / (n - 1.0);
}

}  // namespace mhbc
