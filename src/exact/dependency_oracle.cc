#include "exact/dependency_oracle.h"

#include <utility>

namespace mhbc {

namespace {

/// True when the edit batch provably leaves the pass' shortest-path DAG —
/// and therefore its dependency vector, bit-for-bit — unchanged. `hops`
/// holds the pass' pre-edit hop distances (kUnreachedDistance sentinel for
/// unreached vertices; appended vertices index past the end and read as
/// unreached). Unweighted criterion per edit {u,v}: the DAG is untouched
/// iff dist(s,u) == dist(s,v) — an intra-level edge lies on no shortest
/// path, removing one deletes no DAG edge and inserting one creates none,
/// and two equal *unreached* sentinels mean the edit happens outside the
/// pass' component entirely. Any distance mismatch can change distances,
/// sigma counts, or the level structure, so the pass is dropped. The test
/// is evaluated against the original distances for every edit in the
/// batch, which is sound by induction: each passing edit leaves all
/// distances unchanged, so the stored vector stays valid for the next
/// edit. Vertex appends never touch an existing pass.
bool PassSurvivesEdits(const std::vector<std::uint32_t>& hops,
                       std::span<const GraphEdit> edits) {
  const auto dist_of = [&hops](VertexId v) {
    return v < hops.size() ? hops[v] : kUnreachedDistance;
  };
  for (const GraphEdit& edit : edits) {
    if (edit.kind == GraphEdit::Kind::kAddVertex) continue;
    if (dist_of(edit.u) != dist_of(edit.v)) return false;
  }
  return true;
}

}  // namespace

DependencyOracle::DependencyOracle(const CsrGraph& graph, SpdOptions spd)
    : graph_(&graph), spd_(spd), accumulator_(graph) {
  if (graph.weighted()) {
    dijkstra_ = std::make_unique<DijkstraSpd>(graph);
  } else {
    bfs_ = std::make_unique<BfsSpd>(graph, spd);
    // The backward sweep borrows the pass engine's intra-pass pool (null
    // when spd.num_threads resolves to sequential), so one pass +
    // accumulate runs on one set of threads.
    accumulator_ =
        DependencyAccumulator(graph, bfs_->intra_pool(), spd.parallel_grain);
  }
}

void DependencyOracle::set_cache_capacity(std::size_t max_entries) {
  cache_capacity_ = max_entries;
  if (cache_capacity_ == 0) cache_.clear();
}

void DependencyOracle::MergeCacheFrom(const DependencyOracle& other) {
  MHBC_DCHECK(graph_ == other.graph_);
  if (cache_capacity_ == 0) return;
  for (const auto& [source, entry] : other.cache_) {
    if (cache_.size() >= cache_capacity_) return;
    cache_.emplace(source, entry);  // no-op when the source is present
  }
}

void DependencyOracle::ApplyGraphDelta(const CsrGraph& new_graph,
                                       std::span<const GraphEdit> edits) {
  ++graph_epoch_;
  if (!edits.empty()) {
    if (graph_->weighted() || new_graph.weighted()) {
      // No sound per-pass survival test for weighted passes (see class
      // comment): drop everything.
      invalidated_entries_ += cache_.size();
      cache_.clear();
    } else {
      for (auto it = cache_.begin(); it != cache_.end();) {
        if (PassSurvivesEdits(it->second.hops, edits)) {
          ++it;
        } else {
          ++invalidated_entries_;
          it = cache_.erase(it);
        }
      }
    }
  }
  // Surviving passes never reach an appended vertex: extend with the
  // exact values a fresh pass on the new graph would store.
  const std::size_t n = new_graph.num_vertices();
  for (auto& [source, entry] : cache_) {
    entry.deps.resize(n, 0.0);
    entry.hops.resize(n, kUnreachedDistance);
  }
  graph_ = &new_graph;
  // Rebuild the pass engine first: the new accumulator borrows its
  // intra-pass pool, so the pool must already belong to the new engine.
  if (new_graph.weighted()) {
    dijkstra_ = std::make_unique<DijkstraSpd>(new_graph);
    bfs_.reset();
    accumulator_ = DependencyAccumulator(new_graph);
  } else {
    bfs_ = std::make_unique<BfsSpd>(new_graph, spd_);
    dijkstra_.reset();
    accumulator_ = DependencyAccumulator(new_graph, bfs_->intra_pool(),
                                         spd_.parallel_grain);
  }
}

const std::vector<double>& DependencyOracle::Dependencies(VertexId source) {
  MHBC_DCHECK(source < graph_->num_vertices());
  if (cache_capacity_ > 0) {
    const auto it = cache_.find(source);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second.deps;
    }
  }
  ++num_passes_;
  const std::vector<double>* deps;
  const ShortestPathDag* dag;
  if (dijkstra_) {
    dijkstra_->Run(source);
    deps = &accumulator_.Accumulate(*dijkstra_);
    dag = &dijkstra_->dag();
  } else {
    bfs_->Run(source);
    deps = &accumulator_.Accumulate(*bfs_);
    dag = &bfs_->dag();
  }
  if (cache_capacity_ > 0) {
    // Bulk eviction keeps the policy trivial and deterministic; the cache
    // refills from the live working set within one query's worth of passes.
    if (cache_.size() >= cache_capacity_) cache_.clear();
    CacheEntry entry;
    entry.deps = *deps;
    // Unweighted passes keep their hop distances for the edit-survival
    // test (ApplyGraphDelta); weighted passes invalidate wholesale.
    if (!graph_->weighted()) entry.hops = dag->dist;
    return cache_.emplace(source, std::move(entry)).first->second.deps;
  }
  return *deps;
}

double DependencyOracle::Dependency(VertexId source, VertexId target) {
  MHBC_DCHECK(target < graph_->num_vertices());
  return Dependencies(source)[target];
}

double DependencyOracle::EstimatorTerm(VertexId v, VertexId r) {
  const double n = static_cast<double>(graph_->num_vertices());
  MHBC_DCHECK(n >= 2.0);
  return Dependency(v, r) / (n - 1.0);
}

}  // namespace mhbc
