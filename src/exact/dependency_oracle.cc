#include "exact/dependency_oracle.h"

namespace mhbc {

DependencyOracle::DependencyOracle(const CsrGraph& graph)
    : graph_(&graph), accumulator_(graph) {
  if (graph.weighted()) {
    dijkstra_ = std::make_unique<DijkstraSpd>(graph);
  } else {
    bfs_ = std::make_unique<BfsSpd>(graph);
  }
}

const std::vector<double>& DependencyOracle::Dependencies(VertexId source) {
  MHBC_DCHECK(source < graph_->num_vertices());
  ++num_passes_;
  if (dijkstra_) {
    dijkstra_->Run(source);
    return accumulator_.Accumulate(*dijkstra_);
  }
  bfs_->Run(source);
  return accumulator_.Accumulate(*bfs_);
}

double DependencyOracle::Dependency(VertexId source, VertexId target) {
  MHBC_DCHECK(target < graph_->num_vertices());
  return Dependencies(source)[target];
}

double DependencyOracle::EstimatorTerm(VertexId v, VertexId r) {
  const double n = static_cast<double>(graph_->num_vertices());
  MHBC_DCHECK(n >= 2.0);
  return Dependency(v, r) / (n - 1.0);
}

}  // namespace mhbc
