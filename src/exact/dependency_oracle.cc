#include "exact/dependency_oracle.h"

namespace mhbc {

DependencyOracle::DependencyOracle(const CsrGraph& graph, SpdOptions spd)
    : graph_(&graph), accumulator_(graph) {
  if (graph.weighted()) {
    dijkstra_ = std::make_unique<DijkstraSpd>(graph);
  } else {
    bfs_ = std::make_unique<BfsSpd>(graph, spd);
  }
}

void DependencyOracle::set_cache_capacity(std::size_t max_entries) {
  cache_capacity_ = max_entries;
  if (cache_capacity_ == 0) cache_.clear();
}

void DependencyOracle::MergeCacheFrom(const DependencyOracle& other) {
  MHBC_DCHECK(graph_ == other.graph_);
  if (cache_capacity_ == 0) return;
  for (const auto& [source, deps] : other.cache_) {
    if (cache_.size() >= cache_capacity_) return;
    cache_.emplace(source, deps);  // no-op when the source is present
  }
}

const std::vector<double>& DependencyOracle::Dependencies(VertexId source) {
  MHBC_DCHECK(source < graph_->num_vertices());
  if (cache_capacity_ > 0) {
    const auto it = cache_.find(source);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }
  ++num_passes_;
  const std::vector<double>* deps;
  if (dijkstra_) {
    dijkstra_->Run(source);
    deps = &accumulator_.Accumulate(*dijkstra_);
  } else {
    bfs_->Run(source);
    deps = &accumulator_.Accumulate(*bfs_);
  }
  if (cache_capacity_ > 0) {
    // Bulk eviction keeps the policy trivial and deterministic; the cache
    // refills from the live working set within one query's worth of passes.
    if (cache_.size() >= cache_capacity_) cache_.clear();
    return cache_.emplace(source, *deps).first->second;
  }
  return *deps;
}

double DependencyOracle::Dependency(VertexId source, VertexId target) {
  MHBC_DCHECK(target < graph_->num_vertices());
  return Dependencies(source)[target];
}

double DependencyOracle::EstimatorTerm(VertexId v, VertexId r) {
  const double n = static_cast<double>(graph_->num_vertices());
  MHBC_DCHECK(n >= 2.0);
  return Dependency(v, r) / (n - 1.0);
}

}  // namespace mhbc
