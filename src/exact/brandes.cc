#include "exact/brandes.h"

#include <algorithm>

#include "sp/bfs_spd.h"
#include "sp/delta_spd.h"
#include "sp/dependency.h"
#include "util/thread_pool.h"

namespace mhbc {

void NormalizeScores(std::vector<double>* scores, Normalization norm,
                     VertexId num_vertices, bool directed) {
  if (norm == Normalization::kNone) return;
  const double n = static_cast<double>(num_vertices);
  double divisor = 1.0;
  switch (norm) {
    case Normalization::kPaper:
      divisor = n * (n - 1.0);
      break;
    case Normalization::kUnorderedPairs:
      // Directed raw sums already count each ordered pair once — there is
      // no double-counted unordered pair to halve.
      divisor = directed ? 1.0 : 2.0;
      break;
    case Normalization::kNone:
      break;
  }
  MHBC_DCHECK(divisor > 0.0);
  for (double& s : *scores) s /= divisor;
}

namespace {

/// Shared driver: runs one pass per source in [begin, end) in ascending
/// order and hands each dependency vector to the callback.
template <typename PerSource>
void ForEachSourceDependenciesInRange(const CsrGraph& graph, VertexId begin,
                                      VertexId end, SpdOptions spd,
                                      PerSource&& per_source) {
  // Either way the sweep borrows the pass engine's intra-pass pool (null
  // when the pass is sequential), so pass + accumulate share one set of
  // threads.
  if (graph.weighted()) {
    DeltaSpd engine(graph, spd);
    DependencyAccumulator accumulator(graph, engine.intra_pool(),
                                      spd.parallel_grain);
    for (VertexId s = begin; s < end; ++s) {
      engine.Run(s);
      per_source(accumulator.Accumulate(engine));
    }
  } else {
    BfsSpd engine(graph, spd);
    DependencyAccumulator accumulator(graph, engine.intra_pool(),
                                      spd.parallel_grain);
    for (VertexId s = begin; s < end; ++s) {
      engine.Run(s);
      per_source(accumulator.Accumulate(engine));
    }
  }
}

/// All sources, in order (the sequential driver).
template <typename PerSource>
void ForEachSourceDependencies(const CsrGraph& graph, SpdOptions spd,
                               PerSource&& per_source) {
  ForEachSourceDependenciesInRange(graph, 0, graph.num_vertices(), spd,
                                   std::forward<PerSource>(per_source));
}

/// Source shards for BrandesBetweenness. Fixed (a function of n only) so
/// the merge regrouping — and therefore every bit of the result — is
/// independent of the thread count. 32 shards parallelize well past the
/// core counts of the target machines while keeping the per-shard partial
/// vectors (32 * n doubles) an acceptable footprint.
constexpr std::size_t kBrandesSourceShards = 32;

}  // namespace

std::vector<double> ExactBetweenness(const CsrGraph& graph,
                                     Normalization norm, SpdOptions spd) {
  const VertexId n = graph.num_vertices();
  std::vector<double> scores(n, 0.0);
  ForEachSourceDependenciesInRange(
      graph, 0, n, spd, [&scores, n](const std::vector<double>& delta) {
        for (VertexId v = 0; v < n; ++v) scores[v] += delta[v];
      });
  NormalizeScores(&scores, norm, n, graph.directed());
  return scores;
}

std::vector<double> BrandesBetweenness(const CsrGraph& graph,
                                       Normalization norm,
                                       unsigned num_threads, SpdOptions spd) {
  const VertexId n = graph.num_vertices();
  std::vector<double> scores(n, 0.0);
  if (n == 0) return scores;
  const std::size_t shards =
      std::min<std::size_t>(n, kBrandesSourceShards);
  ThreadPool pool(ResolveThreadCount(num_threads));
  // Pool-splitting policy: with source-parallelism active the shards
  // saturate the pool, so per-shard passes run sequentially (intra-pass
  // threads would only oversubscribe). A 1-wide pool leaves the caller's
  // intra-pass setting untouched — the passes become the parallel axis.
  if (pool.num_threads() > 1) spd.num_threads = 1;
  // Each shard accumulates its contiguous source range into a private
  // partial vector; the per-vertex sums regroup as
  //   ((partial_0 + partial_1) + partial_2) + ...
  // which depends only on the shard structure, not on which worker ran
  // which shard or how many workers there were.
  ParallelOrderedReduce<std::vector<double>>(
      &pool, shards,
      [&graph, n, shards, spd](unsigned, std::size_t shard) {
        const auto [shard_begin, shard_end] =
            ShardBounds(static_cast<std::size_t>(n), shard, shards);
        const auto begin = static_cast<VertexId>(shard_begin);
        const auto end = static_cast<VertexId>(shard_end);
        std::vector<double> partial(n, 0.0);
        ForEachSourceDependenciesInRange(
            graph, begin, end, spd,
            [&partial, n](const std::vector<double>& delta) {
              for (VertexId v = 0; v < n; ++v) partial[v] += delta[v];
            });
        return partial;
      },
      &scores,
      [n](std::vector<double>* accum, std::vector<double> partial,
          std::size_t) {
        for (VertexId v = 0; v < n; ++v) (*accum)[v] += partial[v];
      });
  NormalizeScores(&scores, norm, n, graph.directed());
  return scores;
}

double ExactBetweennessSingle(const CsrGraph& graph, VertexId r,
                              Normalization norm, SpdOptions spd) {
  MHBC_DCHECK(r < graph.num_vertices());
  double raw = 0.0;
  ForEachSourceDependencies(
      graph, spd,
      [&raw, r](const std::vector<double>& delta) { raw += delta[r]; });
  std::vector<double> one{raw};
  NormalizeScores(&one, norm, graph.num_vertices(), graph.directed());
  return one[0];
}

std::vector<double> DependencyProfile(const CsrGraph& graph, VertexId r,
                                      SpdOptions spd) {
  MHBC_DCHECK(r < graph.num_vertices());
  std::vector<double> profile(graph.num_vertices(), 0.0);
  VertexId source = 0;
  ForEachSourceDependencies(graph, spd,
                            [&profile, &source, r](const std::vector<double>& delta) {
                              profile[source] = delta[r];
                              ++source;
                            });
  return profile;
}

}  // namespace mhbc
