#include "exact/brandes.h"

#include "sp/bfs_spd.h"
#include "sp/dependency.h"
#include "sp/dijkstra_spd.h"

namespace mhbc {

void NormalizeScores(std::vector<double>* scores, Normalization norm,
                     VertexId num_vertices) {
  if (norm == Normalization::kNone) return;
  const double n = static_cast<double>(num_vertices);
  double divisor = 1.0;
  switch (norm) {
    case Normalization::kPaper:
      divisor = n * (n - 1.0);
      break;
    case Normalization::kUnorderedPairs:
      divisor = 2.0;
      break;
    case Normalization::kNone:
      break;
  }
  MHBC_DCHECK(divisor > 0.0);
  for (double& s : *scores) s /= divisor;
}

namespace {

/// Shared driver: accumulates per-source dependencies into `into` (which
/// may be a full vector or a single slot via the callback).
template <typename PerSource>
void ForEachSourceDependencies(const CsrGraph& graph, PerSource&& per_source) {
  const VertexId n = graph.num_vertices();
  DependencyAccumulator accumulator(graph);
  if (graph.weighted()) {
    DijkstraSpd engine(graph);
    for (VertexId s = 0; s < n; ++s) {
      engine.Run(s);
      per_source(accumulator.Accumulate(engine));
    }
  } else {
    BfsSpd engine(graph);
    for (VertexId s = 0; s < n; ++s) {
      engine.Run(s);
      per_source(accumulator.Accumulate(engine));
    }
  }
}

}  // namespace

std::vector<double> ExactBetweenness(const CsrGraph& graph,
                                     Normalization norm) {
  const VertexId n = graph.num_vertices();
  std::vector<double> scores(n, 0.0);
  ForEachSourceDependencies(graph, [&scores, n](const std::vector<double>& delta) {
    for (VertexId v = 0; v < n; ++v) scores[v] += delta[v];
  });
  NormalizeScores(&scores, norm, n);
  return scores;
}

double ExactBetweennessSingle(const CsrGraph& graph, VertexId r,
                              Normalization norm) {
  MHBC_DCHECK(r < graph.num_vertices());
  double raw = 0.0;
  ForEachSourceDependencies(
      graph, [&raw, r](const std::vector<double>& delta) { raw += delta[r]; });
  std::vector<double> one{raw};
  NormalizeScores(&one, norm, graph.num_vertices());
  return one[0];
}

std::vector<double> DependencyProfile(const CsrGraph& graph, VertexId r) {
  MHBC_DCHECK(r < graph.num_vertices());
  std::vector<double> profile(graph.num_vertices(), 0.0);
  VertexId source = 0;
  ForEachSourceDependencies(graph,
                            [&profile, &source, r](const std::vector<double>& delta) {
                              profile[source] = delta[r];
                              ++source;
                            });
  return profile;
}

}  // namespace mhbc
