#pragma once

#include "graph/csr_graph.h"

/// \file
/// The paper's footnote-2 extension of the relative betweenness score:
///
///   BC'_{rj}(ri) = 1/(n(n-1)) * sum over v, sum over t != v of
///                  min{1, delta_{vt}(ri) / delta_{vt}(rj)}
///
/// i.e. the clipping happens per (source, target) *pair* dependency rather
/// than per aggregated source dependency (Eq. 23). The paper defines the
/// quantity but gives no estimator; this module provides the exact value in
/// O(n * m) time using three-BFS pair-dependency evaluation per source,
/// serving as ground truth for future estimator work.

namespace mhbc {

/// Exact extended relative betweenness BC'_{rj}(ri). Unweighted graphs.
/// Pair dependencies follow ClippedRatio conventions (0/0 -> 1).
double ExactExtendedRelativeBetweenness(const CsrGraph& graph, VertexId ri,
                                        VertexId rj);

}  // namespace mhbc
