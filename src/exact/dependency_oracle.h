#ifndef MHBC_EXACT_DEPENDENCY_ORACLE_H_
#define MHBC_EXACT_DEPENDENCY_ORACLE_H_

#include <cstdint>
#include <memory>

#include "graph/csr_graph.h"
#include "sp/bfs_spd.h"
#include "sp/dependency.h"
#include "sp/dijkstra_spd.h"

/// \file
/// The per-sample work unit shared by all samplers: a single-source
/// shortest-path pass plus dependency accumulation, exposing
/// delta_{source.}(target).

namespace mhbc {

/// Computes dependency scores delta_{v.}(r) on demand.
///
/// This is exactly the quantity the paper's acceptance ratio (Eq. 6/17)
/// needs: "it can be done in O(|E|) time for unweighted graphs and in
/// O(|E| + |V| log |V|) for weighted graphs" (§4.1). The oracle counts its
/// passes so harnesses can report work in pass units — the fair comparison
/// currency across samplers.
class DependencyOracle {
 public:
  /// The graph must outlive the oracle. Weighted graphs automatically use
  /// the Dijkstra engine.
  explicit DependencyOracle(const CsrGraph& graph);

  /// Runs one pass from `source` and returns delta_{source.}(target).
  double Dependency(VertexId source, VertexId target);

  /// Runs one pass from `source` and returns the whole dependency vector
  /// delta_{source.}(.) (valid until the next call).
  const std::vector<double>& Dependencies(VertexId source);

  /// Paper Eq. 7 integrand: f(v) = 1/(n-1) * sum_u sigma_{vu}(r)/sigma_{vu}
  ///                             = delta_{v.}(r) / (n-1).
  /// One pass from v.
  double EstimatorTerm(VertexId v, VertexId r);

  /// Number of shortest-path passes executed so far.
  std::uint64_t num_passes() const { return num_passes_; }

  const CsrGraph& graph() const { return *graph_; }

 private:
  const CsrGraph* graph_;
  std::unique_ptr<BfsSpd> bfs_;
  std::unique_ptr<DijkstraSpd> dijkstra_;
  DependencyAccumulator accumulator_;
  std::uint64_t num_passes_ = 0;
};

}  // namespace mhbc

#endif  // MHBC_EXACT_DEPENDENCY_ORACLE_H_
