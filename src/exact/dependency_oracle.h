#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "sp/bfs_spd.h"
#include "sp/delta_spd.h"
#include "sp/dependency.h"

/// \file
/// The per-sample work unit shared by all samplers: a single-source
/// shortest-path pass plus dependency accumulation, exposing
/// delta_{source.}(target).

namespace mhbc {

/// Computes dependency scores delta_{v.}(r) on demand.
///
/// This is exactly the quantity the paper's acceptance ratio (Eq. 6/17)
/// needs: "it can be done in O(|E|) time for unweighted graphs and in
/// O(|E| + |V| log |V|) for weighted graphs" (§4.1). The oracle counts its
/// passes so harnesses can report work in pass units — the fair comparison
/// currency across samplers.
///
/// One pass from source v yields the dependency of v on *every* target at
/// once, so a single oracle shared by several estimators (or by one
/// estimator serving several target vertices — see centrality/engine.h)
/// can memoize whole dependency vectors and serve repeated sources without
/// re-running the pass. Memoization is opt-in via set_cache_capacity();
/// cached answers are bit-identical to recomputed ones (the passes are
/// deterministic), so caching never changes estimates, only work.
///
/// Graph mutation. The oracle supports epoch-tagged rebinding for the
/// dynamic-graph path (BetweennessEngine::ApplyDelta): ApplyGraphDelta
/// points the oracle at the post-edit graph and drops *only* the memoized
/// passes whose BFS trees an edit touches. For unweighted graphs each
/// cached pass keeps its hop-distance vector, and an edit {u,v} provably
/// leaves the pass' whole shortest-path DAG — distances, sigma, canonical
/// order, and therefore the dependency vector bit-for-bit — unchanged iff
/// dist(s,u) == dist(s,v) (an intra-level or fully-unreached edge lies on
/// no shortest path, and inserting one creates none). Weighted passes keep
/// their weighted-distance vector instead and survive an edit {u,v,w} iff
/// (a) both endpoints were unreached (the edit happens outside the pass'
/// component), or (b) both were reached, the edge is *slack both ways* —
/// wdist(s,u) + w exceeds wdist(s,v) by more than the canonical tie
/// epsilon and vice versa, so it lies on no shortest path, creates none,
/// and creates or breaks no tie — and w leaves both endpoints' minimum
/// incident weight unchanged (>= minw on insert, > minw on remove). The
/// minw gate is what makes the test sound for DeltaSpd's canonical waves:
/// wave membership — and with it the settle order, the level slices, and
/// every floating-point regrouping downstream — is a function of distances
/// and per-vertex minimum incident weights alone (the bucket width drifts
/// with the mean edge weight, but outputs are invariant under it, see
/// sp/delta_spd.h). Passes failing their test for any edit in the batch
/// are dropped; survivors are extended with unreached sentinels for
/// appended vertices and served exactly as a fresh pass on the new graph
/// would compute them.
class DependencyOracle {
 public:
  /// The graph must outlive the oracle. Weighted graphs automatically use
  /// the canonical-wave delta-stepping engine, unweighted graphs the BFS
  /// engine — both configured by `spd` (kernel choice, α/β, thread count,
  /// grain, and bucket width change only the work per pass — the
  /// dependency vectors are bit-identical across all settings, see
  /// sp/bfs_spd.h and sp/delta_spd.h).
  explicit DependencyOracle(const CsrGraph& graph, SpdOptions spd = SpdOptions());

  /// Runs one pass from `source` and returns delta_{source.}(target).
  double Dependency(VertexId source, VertexId target);

  /// Runs one pass from `source` (or serves the memoized vector) and
  /// returns the whole dependency vector delta_{source.}(.) (valid until
  /// the next call).
  const std::vector<double>& Dependencies(VertexId source);

  /// Paper Eq. 7 integrand: f(v) = 1/(n-1) * sum_u sigma_{vu}(r)/sigma_{vu}
  ///                             = delta_{v.}(r) / (n-1).
  /// One pass from v.
  double EstimatorTerm(VertexId v, VertexId r);

  /// Enables memoization of up to `max_entries` dependency vectors
  /// (memory: max_entries * n doubles, plus n u32 hop distances per entry
  /// on unweighted graphs or n doubles of weighted distances on weighted
  /// ones; the cache is bulk-evicted when full). The distance vectors are
  /// kept unconditionally — a +50-100% per-entry cost even for
  /// never-mutated workloads — because the passes memoized *before* the
  /// first edit are exactly the warm state ApplyGraphDelta exists to
  /// preserve; retaining distances lazily would force that first edit to
  /// drop everything. 0 (the default) disables caching and frees the
  /// store.
  void set_cache_capacity(std::size_t max_entries);

  /// Copies `other`'s memoized dependency vectors into this oracle's memo
  /// (skipping sources already present) until this oracle's capacity is
  /// reached. Counts no passes and no hits — it moves knowledge, not work.
  /// Used by the engine's sharded fan-out: per-worker oracles run races-free
  /// in isolation and their memos merge back on completion, so later
  /// queries on the owning engine reuse the shards' passes. Both oracles
  /// must be bound to the same graph; memoized vectors are deterministic,
  /// so merged entries are bit-identical to locally computed ones.
  void MergeCacheFrom(const DependencyOracle& other);

  /// Rebinds the oracle to `new_graph` — the graph produced by applying
  /// the resolved edit batch `edits` (DynamicGraph::Apply output, with
  /// kRemoveEdge weights filled in) to the currently-bound graph — and
  /// advances the graph epoch. Memoized passes the edits provably do not
  /// touch survive (see class comment); the SPD engines and accumulator
  /// are rebuilt against the new graph. `new_graph` must outlive the
  /// oracle like the construction graph did.
  void ApplyGraphDelta(const CsrGraph& new_graph,
                       std::span<const GraphEdit> edits);

  /// Records `count` shortest-path passes executed *outside* the oracle on
  /// its behalf (distance-table setup, diameter probes), so every sampler
  /// reports its true total work through this one counter.
  void RecordSetupPasses(std::uint64_t count) { num_passes_ += count; }

  /// Number of shortest-path passes executed so far (including recorded
  /// setup passes; excluding cache hits, which cost no pass).
  std::uint64_t num_passes() const { return num_passes_; }

  /// Number of Dependencies() calls served from the memo without a pass.
  std::uint64_t cache_hits() const { return cache_hits_; }

  /// Number of ApplyGraphDelta rebinds so far (0 = construction graph).
  std::uint64_t graph_epoch() const { return graph_epoch_; }

  /// Memoized passes currently held.
  std::size_t cached_entries() const { return cache_.size(); }

  /// Cumulative memo entries dropped by ApplyGraphDelta edits (the
  /// selectivity readout: low relative to cached_entries() means most
  /// passes survive each edit batch).
  std::uint64_t invalidated_entries() const { return invalidated_entries_; }

  const CsrGraph& graph() const { return *graph_; }

 private:
  /// One memoized pass: the dependency vector plus the pass' distances —
  /// hop distances on unweighted graphs, weighted distances on weighted
  /// ones — kept for the edit-survival test.
  struct CacheEntry {
    std::vector<double> deps;
    std::vector<std::uint32_t> hops;
    std::vector<double> wdists;
  };

  const CsrGraph* graph_;
  SpdOptions spd_;
  std::unique_ptr<BfsSpd> bfs_;
  std::unique_ptr<DeltaSpd> delta_;
  DependencyAccumulator accumulator_;
  std::uint64_t num_passes_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t graph_epoch_ = 0;
  std::uint64_t invalidated_entries_ = 0;
  std::size_t cache_capacity_ = 0;
  std::unordered_map<VertexId, CacheEntry> cache_;
};

}  // namespace mhbc
