#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "sp/spd.h"

/// \file
/// Exact betweenness centrality (Brandes 2001), the ground truth every
/// estimator in this library is evaluated against.
///
/// Conventions. The *raw* score of v is sum over sources s != v of
/// delta_{s.}(v); on an undirected graph this counts each ordered
/// (s, t) pair, i.e. each unordered pair twice. The paper's Eq. 1/3
/// normalization divides the raw score by n(n-1), giving values in [0, 1].
/// On a directed graph ordered pairs are the native counting unit, so the
/// unordered-pair halving does not apply (kUnorderedPairs degrades to the
/// raw ordered-pair sum); kPaper's n(n-1) is already an ordered-pair
/// normalizer and carries over unchanged.

namespace mhbc {

/// How to scale raw dependency sums.
enum class Normalization {
  /// Raw sum of dependencies over sources (ordered-pair counting).
  kNone,
  /// Paper Eq. 1: divide by n(n-1). This is the library-wide default; all
  /// samplers estimate this quantity.
  kPaper,
  /// Classic undirected convention: divide by 2 (each unordered pair once).
  kUnorderedPairs,
};

/// Applies `norm` to a raw score vector (in place helper for callers that
/// compute raw sums themselves). `directed` drops the kUnorderedPairs
/// halving — ordered pairs are the native unit on directed graphs.
void NormalizeScores(std::vector<double>* scores, Normalization norm,
                     VertexId num_vertices, bool directed = false);

/// Exact betweenness of all vertices. O(nm) unweighted, O(nm + n^2 log n)
/// weighted. Works on disconnected graphs (unreachable pairs contribute 0).
/// Sequential across sources; see BrandesBetweenness for the
/// source-parallel form. `spd` selects the unweighted SPD kernel and, via
/// spd.num_threads, frontier-parallel execution *within* each pass
/// (ignored for weighted graphs); scores are bit-identical across kernels,
/// α/β settings, and thread counts.
std::vector<double> ExactBetweenness(const CsrGraph& graph,
                                     Normalization norm = Normalization::kPaper,
                                     SpdOptions spd = SpdOptions());

/// Source-parallel exact betweenness: the n single-source passes are
/// independent, so they are split into a *fixed* number of contiguous
/// source shards (a function of n only, never of the thread count), each
/// accumulated into its own per-shard score vector by whichever worker
/// claims it, and merged in shard order at the end. The fixed shard
/// structure plus the ordered merge make the result bit-identical at every
/// `num_threads` (0 = hardware concurrency, 1 = sequential). Values may
/// differ from ExactBetweenness by floating-point regrouping only (last
/// ulp); both are exact Brandes. Pool-splitting: when num_threads > 1 the
/// sources are the parallel axis and spd.num_threads is forced to 1
/// (intra-pass threads would oversubscribe); at num_threads == 1 the
/// caller's spd.num_threads applies within each pass. Either way the
/// result is bit-identical.
std::vector<double> BrandesBetweenness(
    const CsrGraph& graph, Normalization norm = Normalization::kPaper,
    unsigned num_threads = 0, SpdOptions spd = SpdOptions());

/// Exact betweenness of a single vertex r (same asymptotic cost as the full
/// computation — the point the paper's samplers attack — but with O(n)
/// memory for results instead of O(n)... provided for API symmetry and for
/// ground truth in the harnesses).
double ExactBetweennessSingle(const CsrGraph& graph, VertexId r,
                              Normalization norm = Normalization::kPaper,
                              SpdOptions spd = SpdOptions());

/// Exact dependency profile for a fixed target r: the vector
/// [delta_{v.}(r)] over all sources v. This is the unnormalized target
/// distribution of the paper's MH sampler (Eq. 5); its sum is the raw
/// betweenness of r. O(nm). Used by the optimal baseline sampler [13] and
/// by the theory module to compute mu(r) exactly.
std::vector<double> DependencyProfile(const CsrGraph& graph, VertexId r,
                                      SpdOptions spd = SpdOptions());

}  // namespace mhbc
