#pragma once

#include "graph/csr_graph.h"
#include "exact/brandes.h"

/// \file
/// Set extensions of betweenness (§3.1 of the paper): pairwise
/// co-betweenness (shortest paths through *both* vertices; Kolaczyk et al.
/// 2009, Chehreghani 2014 WSDM) and group betweenness (through *at least
/// one*; Everett-Borgatti 1999), related by inclusion-exclusion.
///
/// These are exact, all-pairs-table computations: O(nm) time and O(n^2)
/// memory — small/mid graphs only, used by tests and the community example.

namespace mhbc {

/// Raw co-betweenness of the pair {u, w}: sum over ordered (s, t), s,t not
/// in {u,w}, of sigma_st(u and w)/sigma_st. Normalization as in brandes.h.
double CoBetweennessPair(const CsrGraph& graph, VertexId u, VertexId w,
                         Normalization norm = Normalization::kPaper);

/// Raw group betweenness of {u, w}: paths through u or w (or both),
/// endpoints excluded from {u, w}. Computed as BC-restricted(u) +
/// BC-restricted(w) - co(u, w) where the restricted scores exclude s/t in
/// {u, w}.
double GroupBetweennessPair(const CsrGraph& graph, VertexId u, VertexId w,
                            Normalization norm = Normalization::kPaper);

}  // namespace mhbc
