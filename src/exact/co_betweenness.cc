#include "exact/co_betweenness.h"

#include <vector>

#include "sp/bfs_spd.h"

namespace mhbc {

namespace {

/// Accumulates, over all ordered (s, t) with s, t outside {u, w}:
///   through_u    += sigma_st(u)/sigma_st
///   through_w    += sigma_st(w)/sigma_st
///   through_both += sigma_st(u and w)/sigma_st
/// using per-source BFS tables against the fixed tables of u and w. O(nm).
struct PairAccumulation {
  double through_u = 0.0;
  double through_w = 0.0;
  double through_both = 0.0;
};

PairAccumulation AccumulatePair(const CsrGraph& graph, VertexId u, VertexId w) {
  MHBC_DCHECK(!graph.weighted());
  const VertexId n = graph.num_vertices();
  BfsSpd from_u(graph), from_w(graph), from_s(graph);
  from_u.Run(u);
  from_w.Run(w);
  const auto& du = from_u.dag();
  const auto& dw = from_w.dag();
  const std::uint32_t dist_uw = du.dist[w];
  const double sigma_uw = static_cast<double>(du.sigma[w]);

  PairAccumulation acc;
  for (VertexId s = 0; s < n; ++s) {
    if (s == u || s == w) continue;
    from_s.Run(s);
    const auto& ds = from_s.dag();
    for (VertexId t = 0; t < n; ++t) {
      if (t == s || t == u || t == w) continue;
      if (ds.dist[t] == kUnreachedDistance) continue;
      const std::uint32_t dist_st = ds.dist[t];
      const double sigma_st = static_cast<double>(ds.sigma[t]);
      // Through u (as interior vertex).
      if (ds.dist[u] != kUnreachedDistance &&
          du.dist[t] != kUnreachedDistance &&
          ds.dist[u] + du.dist[t] == dist_st) {
        acc.through_u += static_cast<double>(ds.sigma[u]) *
                         static_cast<double>(du.sigma[t]) / sigma_st;
      }
      // Through w.
      if (ds.dist[w] != kUnreachedDistance &&
          dw.dist[t] != kUnreachedDistance &&
          ds.dist[w] + dw.dist[t] == dist_st) {
        acc.through_w += static_cast<double>(ds.sigma[w]) *
                         static_cast<double>(dw.sigma[t]) / sigma_st;
      }
      if (dist_uw == kUnreachedDistance) continue;
      // Through u then w: s -> u -> w -> t.
      if (ds.dist[u] != kUnreachedDistance &&
          dw.dist[t] != kUnreachedDistance &&
          ds.dist[u] + dist_uw + dw.dist[t] == dist_st) {
        acc.through_both += static_cast<double>(ds.sigma[u]) * sigma_uw *
                            static_cast<double>(dw.sigma[t]) / sigma_st;
      }
      // Through w then u: s -> w -> u -> t.
      if (ds.dist[w] != kUnreachedDistance &&
          du.dist[t] != kUnreachedDistance &&
          ds.dist[w] + dist_uw + du.dist[t] == dist_st) {
        acc.through_both += static_cast<double>(ds.sigma[w]) * sigma_uw *
                            static_cast<double>(du.sigma[t]) / sigma_st;
      }
    }
  }
  return acc;
}

double Normalized(double raw, Normalization norm, VertexId n) {
  std::vector<double> one{raw};
  NormalizeScores(&one, norm, n);
  return one[0];
}

}  // namespace

double CoBetweennessPair(const CsrGraph& graph, VertexId u, VertexId w,
                         Normalization norm) {
  MHBC_DCHECK(u < graph.num_vertices());
  MHBC_DCHECK(w < graph.num_vertices());
  MHBC_DCHECK(u != w);
  const PairAccumulation acc = AccumulatePair(graph, u, w);
  return Normalized(acc.through_both, norm, graph.num_vertices());
}

double GroupBetweennessPair(const CsrGraph& graph, VertexId u, VertexId w,
                            Normalization norm) {
  MHBC_DCHECK(u < graph.num_vertices());
  MHBC_DCHECK(w < graph.num_vertices());
  MHBC_DCHECK(u != w);
  const PairAccumulation acc = AccumulatePair(graph, u, w);
  const double raw = acc.through_u + acc.through_w - acc.through_both;
  return Normalized(raw, norm, graph.num_vertices());
}

}  // namespace mhbc
