#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

/// \file
/// Fixed-size worker pool for the library's parallel paths (multi-chain
/// runs, source-parallel Brandes, engine query sharding).
///
/// Determinism is the design constraint: every parallel algorithm in this
/// library must reproduce its single-threaded result bit-for-bit at any
/// thread count. The pool supports that discipline rather than enforcing
/// it — work items are claimed dynamically (scheduling is *not*
/// deterministic), so callers must (a) make each item a pure function of
/// its index, (b) write results into index-addressed slots (ParallelMap),
/// and (c) reduce the slots in index order on the calling thread
/// (ParallelOrderedReduce). Floating-point reductions additionally need a
/// grouping that is fixed independently of the thread count (see
/// BrandesBetweenness for the fixed-shard pattern).

namespace mhbc {

/// Maps a user-facing thread-count knob to a concrete worker count:
/// 0 means one thread per hardware thread (at least 1), anything else is
/// taken literally.
unsigned ResolveThreadCount(unsigned requested);

/// Fixed pool of `num_threads - 1` worker threads; the calling thread
/// participates in every ParallelFor as worker 0, so `num_threads == 1`
/// spawns no threads at all and runs everything inline (exactly the
/// sequential behavior, with zero synchronization cost).
///
/// ParallelFor calls must not be nested (a work item must not call back
/// into the same pool), and work items must not throw — the library
/// reports errors through Status, never exceptions.
class ThreadPool {
 public:
  /// `num_threads` is resolved via ResolveThreadCount (0 = hardware
  /// concurrency).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total computing threads (workers + the participating caller).
  unsigned num_threads() const { return num_threads_; }

  /// Runs fn(worker, index) once for every index in [0, count) and blocks
  /// until all items completed. `worker` is in [0, num_threads()) and is
  /// stable for the duration of one item — use it to index per-worker
  /// scratch state. Indices are claimed dynamically for load balance.
  void ParallelFor(std::size_t count,
                   const std::function<void(unsigned, std::size_t)>& fn);

 private:
  void WorkerLoop(unsigned worker);

  const unsigned num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current job; all guarded by mu_ except next_index_ (claimed lock-free).
  const std::function<void(unsigned, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::uint64_t job_generation_ = 0;
  unsigned job_pending_workers_ = 0;
  bool shutdown_ = false;
  std::atomic<std::size_t> next_index_{0};
};

/// Runs produce(worker, index) for every index and returns the results in
/// index order — the deterministic fan-out shape: any thread count yields
/// the same vector. T must be default-constructible and move-assignable.
template <typename T, typename Produce>
std::vector<T> ParallelMap(ThreadPool* pool, std::size_t count,
                           Produce produce) {
  std::vector<T> results(count);
  pool->ParallelFor(count, [&results, &produce](unsigned worker,
                                                std::size_t index) {
    results[index] = produce(worker, index);
  });
  return results;
}

/// Deterministic ordered reduce: computes produce(worker, index) for every
/// index in parallel, then folds the results into `accum` in index order
/// on the calling thread via fold(accum, result, index). Because the fold
/// order is fixed, the reduction is bit-identical at any thread count.
template <typename T, typename Accum, typename Produce, typename Fold>
void ParallelOrderedReduce(ThreadPool* pool, std::size_t count,
                           Produce produce, Accum* accum, Fold fold) {
  std::vector<T> results = ParallelMap<T>(pool, count, std::move(produce));
  for (std::size_t index = 0; index < count; ++index) {
    fold(accum, std::move(results[index]), index);
  }
}

/// Contiguous half-open range [first, second) that shard `shard` of
/// `num_shards` covers when [0, count) is split into fixed shards — the
/// same arithmetic BrandesBetweenness uses for its source shards. The
/// boundaries are a function of (count, num_shards) only, never of the
/// thread count, which is what makes shard-structured reductions
/// bit-identical at any parallelism level. Shards are balanced to within
/// one element; trailing shards may be empty when num_shards > count.
std::pair<std::size_t, std::size_t> ShardBounds(std::size_t count,
                                                std::size_t shard,
                                                std::size_t num_shards);

/// One deterministic level-synchronous step — the building block of the
/// frontier-parallel SPD kernels (sp/bfs_spd.cc) and the parallel backward
/// dependency sweep (sp/dependency.cc):
///
///   1. expand(worker, shard) runs for every shard in [0, num_shards) in
///      parallel (dynamically claimed, like ParallelFor). Each shard must
///      write only shard-private state (per-shard buffers, or slots no
///      other shard touches) that is a pure function of its shard index.
///   2. merge(shard) then runs for every shard in ascending shard order on
///      the calling thread.
///
/// Returning from this function is the level barrier: every expansion and
/// every merge has completed. Because the shard structure is fixed (pass a
/// num_shards that does not depend on the thread count) and the merge
/// order is fixed, the step's result — including any floating-point
/// regrouping in the merges — is bit-identical at any thread count.
template <typename Expand, typename Merge>
void ParallelShardedLevel(ThreadPool* pool, std::size_t num_shards,
                          Expand&& expand, Merge&& merge) {
  pool->ParallelFor(num_shards,
                    [&expand](unsigned worker, std::size_t shard) {
                      expand(worker, shard);
                    });
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    merge(shard);
  }
}

}  // namespace mhbc
