#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Summary statistics, error metrics, and rank correlation used by the
/// experiment harnesses (EXPERIMENTS.md) and tests.

namespace mhbc {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// min{1, a/b} under the library-wide zero conventions shared by the MH
/// acceptance ratios and the relative betweenness score (Eq. 23):
/// ClippedRatio(a, a) == 1 even at a == 0, and b == 0 clips to 1. Lives in
/// util so both exact/ and core/ can use it without a layering cycle.
double ClippedRatio(double a, double b);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& xs);

/// Linear-interpolation quantile, q in [0,1]. Sorts a copy.
double Quantile(std::vector<double> xs, double q);

/// Mean absolute error between parallel vectors (must be equal length).
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Maximum absolute error between parallel vectors.
double MaxAbsoluteError(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Mean of |a_i - b_i| / max(b_i, floor); b is the reference. Entries whose
/// reference magnitude is below `floor` are compared against `floor` to
/// avoid division blow-ups on near-zero true scores.
double MeanRelativeError(const std::vector<double>& a,
                         const std::vector<double>& b, double floor);

/// Spearman rank correlation of two equal-length vectors (average ranks on
/// ties). Returns 0 for inputs shorter than 2 or with zero rank variance.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Kendall tau-b rank correlation, O(n^2) pair scan (fine for the |R|-sized
/// rankings the harnesses compare). Returns 0 for degenerate inputs.
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

/// Pearson correlation; 0 for degenerate inputs.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Average ranks (1-based, ties share the average of their positions).
std::vector<double> AverageRanks(const std::vector<double>& xs);

/// Chi-square statistic of observed counts against expected probabilities:
/// sum over i of (obs_i - N*p_i)^2 / (N*p_i), skipping cells with p_i == 0
/// (their observed count must be 0, enforced by MHBC_DCHECK).
double ChiSquareStatistic(const std::vector<std::uint64_t>& observed,
                          const std::vector<double>& probabilities);

/// Total variation distance between an empirical distribution given by
/// counts and a reference probability vector (same length).
double TotalVariationDistance(const std::vector<std::uint64_t>& observed,
                              const std::vector<double>& probabilities);

}  // namespace mhbc
