#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "util/common.h"

namespace mhbc {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double ClippedRatio(double a, double b) {
  MHBC_DCHECK(a >= 0.0);
  MHBC_DCHECK(b >= 0.0);
  if (b == 0.0) return 1.0;  // both-zero and a>0 cases clip to 1
  return std::min(1.0, a / b);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  return rs.stddev();
}

double Quantile(std::vector<double> xs, double q) {
  MHBC_DCHECK(!xs.empty());
  MHBC_DCHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  MHBC_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

double MaxAbsoluteError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  MHBC_DCHECK(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  return worst;
}

double MeanRelativeError(const std::vector<double>& a,
                         const std::vector<double>& b, double floor) {
  MHBC_DCHECK(a.size() == b.size());
  MHBC_DCHECK(floor > 0.0);
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::fabs(a[i] - b[i]) / std::max(std::fabs(b[i]), floor);
  }
  return acc / static_cast<double>(a.size());
}

std::vector<double> AverageRanks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  MHBC_DCHECK(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  MHBC_DCHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(a), AverageRanks(b));
}

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  MHBC_DCHECK(a.size() == b.size());
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  std::int64_t concordant = 0, discordant = 0;
  std::int64_t ties_a = 0, ties_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) {
        ++ties_a;
        ++ties_b;
      } else if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0.0) == (db > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n_pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  const double denom = std::sqrt((n_pairs - static_cast<double>(ties_a)) *
                                 (n_pairs - static_cast<double>(ties_b)));
  if (denom <= 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double ChiSquareStatistic(const std::vector<std::uint64_t>& observed,
                          const std::vector<double>& probabilities) {
  MHBC_DCHECK(observed.size() == probabilities.size());
  std::uint64_t total = 0;
  for (std::uint64_t c : observed) total += c;
  MHBC_DCHECK(total > 0);
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = static_cast<double>(total) * probabilities[i];
    if (probabilities[i] == 0.0) {
      MHBC_DCHECK(observed[i] == 0);
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

double TotalVariationDistance(const std::vector<std::uint64_t>& observed,
                              const std::vector<double>& probabilities) {
  MHBC_DCHECK(observed.size() == probabilities.size());
  std::uint64_t total = 0;
  for (std::uint64_t c : observed) total += c;
  MHBC_DCHECK(total > 0);
  double dist = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double empirical =
        static_cast<double>(observed[i]) / static_cast<double>(total);
    dist += std::fabs(empirical - probabilities[i]);
  }
  return dist / 2.0;
}

}  // namespace mhbc
