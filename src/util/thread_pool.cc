#include "util/thread_pool.h"

#include "util/common.h"

namespace mhbc {

unsigned ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

std::pair<std::size_t, std::size_t> ShardBounds(std::size_t count,
                                                std::size_t shard,
                                                std::size_t num_shards) {
  MHBC_DCHECK(num_shards > 0);
  MHBC_DCHECK(shard < num_shards);
  return {count * shard / num_shards, count * (shard + 1) / num_shards};
}

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (unsigned w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(
    std::size_t count, const std::function<void(unsigned, std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t index = 0; index < count; ++index) fn(0, index);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    MHBC_DCHECK(job_ == nullptr);  // ParallelFor must not be nested
    job_ = &fn;
    job_count_ = count;
    next_index_.store(0, std::memory_order_relaxed);
    job_pending_workers_ = static_cast<unsigned>(workers_.size());
    ++job_generation_;
  }
  work_cv_.notify_all();
  // The caller is worker 0; it claims items alongside the pool threads.
  while (true) {
    const std::size_t index = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (index >= count) break;
    fn(0, index);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return job_pending_workers_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(unsigned worker) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(unsigned, std::size_t)>* job;
    std::size_t count;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_generation] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      job = job_;
      count = job_count_;
    }
    while (true) {
      const std::size_t index =
          next_index_.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) break;
      (*job)(worker, index);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--job_pending_workers_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace mhbc
