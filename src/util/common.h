#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

/// \file
/// Project-wide fundamental types and assertion macros.
///
/// Vertex ids are 32-bit unsigned integers: every target workload in the
/// paper (SNAP mid-size networks, a few hundred thousand vertices) fits
/// comfortably, and halving the id width doubles CSR cache density, which
/// is what the per-sample O(m) BFS pass lives on.

namespace mhbc {

/// Vertex identifier. Valid ids are dense in [0, n).
using VertexId = std::uint32_t;

/// Edge index into CSR adjacency arrays (2m entries for undirected graphs).
using EdgeId = std::uint64_t;

/// Shortest-path multiplicity counter. Double, not an integer type: sigma
/// grows exponentially with graph depth (a 45x45 grid already has
/// C(88,44) ~ 1.8e25 shortest corner-to-corner paths, far past 2^64).
/// Doubles count exactly up to 2^53 and then degrade gracefully in relative
/// precision, which is what the dependency *ratios* need; integer counters
/// silently wrap and corrupt every score downstream. This matches the
/// practice of production Brandes implementations.
using SigmaCount = double;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// Sentinel for "unreached" BFS distance.
inline constexpr std::uint32_t kUnreachedDistance = static_cast<std::uint32_t>(-1);

namespace internal {

[[noreturn]] inline void DcheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "MHBC_DCHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();  // NOLINT(mhbc-exit-paths): the one sanctioned invariant trap
}

}  // namespace internal

/// Internal invariant check. Enabled in all build types (the project builds
/// -O2 with assertions kept); use for programming errors, never for
/// recoverable input validation (that is Status' job).
#define MHBC_DCHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::mhbc::internal::DcheckFailed(#expr, __FILE__, __LINE__); \
  } while (0)

}  // namespace mhbc
