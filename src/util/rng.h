#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/common.h"

/// \file
/// Deterministic pseudo-random number generation.
///
/// Every randomized component in the library (samplers, generators,
/// benchmarks) takes an explicit 64-bit seed and derives its stream from
/// this Rng, so every experiment in EXPERIMENTS.md is reproducible
/// bit-for-bit. The core generator is xoshiro256**, seeded via SplitMix64
/// per the reference recommendation; both are tiny, fast, and ours (no
/// dependence on unspecified std:: distribution implementations).

namespace mhbc {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
std::uint64_t SplitMix64(std::uint64_t* state);

/// xoshiro256** generator with explicit-seed determinism.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64 random bits.
  std::uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Uniform VertexId in [0, n). Requires n > 0.
  VertexId NextVertex(VertexId n) {
    return static_cast<VertexId>(NextBounded(n));
  }

  /// Standard normal via Box-Muller (used only by weight generators).
  double NextGaussian();

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child stream; distinct labels give streams that
  /// do not overlap in practice (distinct SplitMix64 trajectories).
  Rng Fork(std::uint64_t label);

 private:
  std::array<std::uint64_t, 4> s_;
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Samples an index from unnormalized non-negative weights in O(n).
/// Requires at least one strictly positive weight.
std::size_t SampleDiscrete(const std::vector<double>& weights, Rng* rng);

/// Cumulative-table discrete sampler: O(n) build, O(log n) per draw.
/// Used by baseline samplers that draw many times from a fixed distribution.
class DiscreteSampler {
 public:
  /// `weights` are unnormalized, non-negative, with a positive sum.
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight.
  std::size_t Sample(Rng* rng) const;

  /// Probability of index i under the normalized distribution.
  double Probability(std::size_t i) const;

  std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // inclusive prefix sums
  double total_;
};

}  // namespace mhbc
