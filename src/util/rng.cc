#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace mhbc {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // All-zero state is the one invalid xoshiro state; SplitMix64 cannot
  // produce four zero outputs in a row, but keep the guard explicit.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  MHBC_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  MHBC_DCHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 2^64 range: raw bits are already uniform.
  if (span == 0) return static_cast<std::int64_t>(NextU64());
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

Rng Rng::Fork(std::uint64_t label) {
  // Mix the parent's stream position with the label so forks from the same
  // parent at different times, or with different labels, diverge.
  std::uint64_t mix = NextU64();
  std::uint64_t sm = mix ^ (label * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  return Rng(SplitMix64(&sm));
}

std::size_t SampleDiscrete(const std::vector<double>& weights, Rng* rng) {
  MHBC_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MHBC_DCHECK(w >= 0.0);
    total += w;
  }
  MHBC_DCHECK(total > 0.0);
  double target = rng->NextDouble() * total;
  double acc = 0.0;
  std::size_t last_positive = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) last_positive = i;
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack at the right edge: return the last feasible index.
  return last_positive;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  MHBC_DCHECK(!weights.empty());
  cumulative_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    MHBC_DCHECK(weights[i] >= 0.0);
    acc += weights[i];
    cumulative_[i] = acc;
  }
  total_ = acc;
  MHBC_DCHECK(total_ > 0.0);
}

std::size_t DiscreteSampler::Sample(Rng* rng) const {
  const double target = rng->NextDouble() * total_;
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  if (it == cumulative_.end()) --it;
  return static_cast<std::size_t>(it - cumulative_.begin());
}

double DiscreteSampler::Probability(std::size_t i) const {
  MHBC_DCHECK(i < cumulative_.size());
  const double prev = (i == 0) ? 0.0 : cumulative_[i - 1];
  return (cumulative_[i] - prev) / total_;
}

}  // namespace mhbc
