#pragma once

#include <chrono>
#include <cstdint>

/// \file
/// Wall-clock timing for the experiment harnesses.

namespace mhbc {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction or last Reset.
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mhbc
