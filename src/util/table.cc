#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "util/common.h"

namespace mhbc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MHBC_DCHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  MHBC_DCHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToMarkdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += "\"\"";
      else quoted += ch;
    }
    quoted += "\"";
    return quoted;
  };
  auto render = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ",";
      line += escape(cells[c]);
    }
    return line + "\n";
  };
  std::string out = render(headers_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string Table::ToJson() const {
  auto render = [](const std::vector<std::string>& cells) {
    std::string line = "[";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ", ";
      // Appended piecewise: `const char* + std::string&&` trips a GCC 12
      // -Wrestrict false positive in the inlined libstdc++ concatenation.
      line += '"';
      line += EscapeJson(cells[c]);
      line += '"';
    }
    return line + "]";
  };
  std::string out = "{\"columns\": " + render(headers_) + ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ", ";
    out += render(rows_[r]);
  }
  return out + "]}";
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatScientific(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
  return buf;
}

std::string FormatCount(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace mhbc
