#pragma once

#include <string>
#include <utility>

#include "util/common.h"

/// \file
/// Minimal Status / StatusOr error-propagation types.
///
/// The public API does not throw: recoverable failures (malformed input
/// files, invalid estimator configuration, disconnected graphs where the
/// algorithm requires connectivity) travel as Status values, mirroring the
/// convention of Arrow / RocksDB style database code.

namespace mhbc {

/// Coarse error category; the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kIoError,
  kOutOfRange,
};

/// Returns a stable human-readable name for a code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a value payload.
class Status {
 public:
  /// Constructs OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Intentionally tiny: no monadic API,
/// just the accessors call sites need.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value (the overwhelmingly common construction).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    MHBC_DCHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MHBC_DCHECK(status_.ok());
    return value_;
  }
  T& value() & {
    MHBC_DCHECK(status_.ok());
    return value_;
  }
  T&& value() && {
    MHBC_DCHECK(status_.ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK Status to the caller.
#define MHBC_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::mhbc::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace mhbc
