// E10 — Speedup vs exact Brandes: pass-count and wall-clock comparison of
// the MH sampler at the Eq. 14 budget (mu measured exactly) against the
// full exact computation for one vertex. The sampler wins whenever
// T(eps, delta) << n. Budgets beyond a measurement cap are *projected*
// from the measured per-pass cost (running 1.4e8 passes literally would
// be pointless); projected rows are marked with '*'.
//
// The MH run goes through a fresh BetweennessEngine per dataset (memo
// disabled so every iteration pays its pass — this harness measures raw
// per-pass cost, not cache amortization).

#include <algorithm>

#include "bench_common.h"
#include "centrality/engine.h"
#include "core/theory.h"
#include "datasets/registry.h"
#include "util/timer.h"

int main() {
  using namespace mhbc;
  bench::Banner("E10", "speedup vs exact Brandes at the Eq. 14 budget");
  bench::JsonReport json("e10_speedup");
  const double kEps = 0.1, kDelta = 0.1;
  constexpr std::uint64_t kRunCap = 20'000;

  Table table({"dataset", "n", "target", "mu(r)", "T(Eq.14)", "n/T",
               "exact ms", "mh ms", "speedup"});
  for (const std::string& name : DefaultExperimentDatasets()) {
    const CsrGraph graph = std::move(MakeDataset(name)).value();
    const bench::TargetSet targets = bench::PickTargets(graph);
    const VertexId r = targets.hub;

    WallTimer exact_timer;
    const double exact = ExactBetweennessSingle(graph, r);
    const double exact_seconds = exact_timer.ElapsedSeconds();
    if (exact == 0.0) continue;

    const double mu = MuFromProfile(DependencyProfile(graph, r));
    const std::uint64_t budget = SampleBound(mu, kEps, kDelta);
    const std::uint64_t run_budget = std::min(budget, kRunCap);

    EngineOptions engine_options;
    engine_options.dependency_cache_bytes = 0;  // measure raw pass cost
    BetweennessEngine engine(graph, engine_options);
    EstimateRequest request;
    request.kind = EstimatorKind::kMetropolisHastings;
    request.samples = run_budget;
    request.seed = 0xE10;
    const auto result = engine.Estimate(r, request);
    const double measured_seconds = result.value().seconds;
    const bool projected = budget > run_budget;
    const double mh_seconds =
        projected ? measured_seconds * static_cast<double>(budget) /
                        static_cast<double>(run_budget)
                  : measured_seconds;

    table.AddRow(
        {name, FormatCount(graph.num_vertices()), "hub", FormatDouble(mu, 1),
         FormatCount(budget) + (projected ? "*" : ""),
         FormatDouble(static_cast<double>(graph.num_vertices()) /
                          static_cast<double>(budget + 1),
                      2),
         FormatDouble(1e3 * exact_seconds, 1),
         FormatDouble(1e3 * mh_seconds, 1) + (projected ? "*" : ""),
         FormatDouble(exact_seconds / mh_seconds, 2) +
             (projected ? "*" : "")});
  }
  bench::EmitTable(
      &json,
      "E10: exact-vs-MH cost at the Eq. 14 budget ('*' = projected from "
      "per-pass cost; speedup < 1 means the bound exceeds exact cost)",
      table);
  json.Write();
  return 0;
}
