// E18 — Parallel scaling: wall-clock speedup vs thread count (1/2/4/8) for
// the three parallel paths introduced with the execution subsystem:
//
//   1. multi-chain MH     — RunMultipleChains, K independent chains
//   2. parallel Brandes   — BrandesBetweenness, source-sharded exact scores
//   3. EstimateMany       — sharded per-vertex fan-out on one engine
//
// Each row also re-checks the subsystem's core promise: the values at
// t threads are bit-identical to the 1-thread run ("det" column), and
// reports per-pass throughput ("p/s": forward shortest-path passes per
// second — the hardware-independent unit estimators are priced in, and
// the number bench_e22 tracks for the intra-pass axis). Speedup on a
// machine with fewer hardware threads than t tops out at the hardware
// (this harness reports, it does not assert).
//
//   bench_e18_parallel_scaling [n] [chains] [iterations] [many_vertices]
//
// Defaults: n=10'000 (Barabasi-Albert, m=4), 8 chains x 1'500 iterations,
// EstimateMany over 12 spread vertices at 400 samples each.

#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "centrality/engine.h"
#include "core/multi_chain.h"
#include "graph/generators.h"
#include "util/timer.h"

namespace {

using namespace mhbc;

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

struct Run {
  double seconds = 0.0;
  std::uint64_t sp_passes = 0;  // forward passes the run executed
  bool matches_baseline = true;
};

std::string SpeedupCell(double baseline_seconds, const Run& run) {
  return FormatDouble(baseline_seconds / run.seconds, 2) + "x" +
         (run.matches_baseline ? "" : " !DET");
}

/// Per-pass throughput: forward shortest-path passes per wall-clock
/// second, the hardware-independent unit every estimator is priced in.
std::string PassesPerSecondCell(const Run& run) {
  return FormatDouble(static_cast<double>(run.sp_passes) / run.seconds, 0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("E18", "parallel scaling vs thread count");
  const VertexId n =
      argc > 1 ? static_cast<VertexId>(std::strtoul(argv[1], nullptr, 10))
               : 10'000;
  const std::uint32_t chains =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 8;
  const std::uint64_t iterations =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'500;
  const std::size_t many_vertices =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 12;

  const CsrGraph graph = MakeBarabasiAlbert(n, 4, /*seed=*/0xE18);
  const bench::TargetSet targets = bench::PickTargets(graph);

  bench::JsonReport json("e18_parallel_scaling");
  json.AddMeta("n", FormatCount(graph.num_vertices()));
  json.AddMeta("m", FormatCount(graph.num_edges()));
  json.AddMeta("hardware_threads",
               std::to_string(std::thread::hardware_concurrency()));
  json.AddMeta("chains", std::to_string(chains));
  json.AddMeta("iterations", FormatCount(iterations));
  json.AddMeta("many_vertices", std::to_string(many_vertices));

  std::printf("graph: BA n=%u m=%llu, hardware threads: %u\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              std::thread::hardware_concurrency());

  // ---------------------------------------------------- multi-chain MH
  MhOptions mh_options;
  mh_options.seed = 0xE18;
  std::vector<Run> chain_runs;
  MultiChainResult chain_baseline;
  for (unsigned t : kThreadCounts) {
    WallTimer timer;
    const MultiChainResult result =
        RunMultipleChains(graph, targets.hub, iterations, chains, mh_options,
                          /*num_threads=*/t);
    Run run;
    run.seconds = timer.ElapsedSeconds();
    run.sp_passes = result.sp_passes;
    if (t == 1) chain_baseline = result;
    run.matches_baseline =
        result.pooled_estimate == chain_baseline.pooled_estimate &&
        result.r_hat == chain_baseline.r_hat &&
        result.chain_estimates == chain_baseline.chain_estimates;
    chain_runs.push_back(run);
  }

  // ------------------------------------------------- parallel Brandes
  std::vector<Run> brandes_runs;
  std::vector<double> brandes_baseline;
  for (unsigned t : kThreadCounts) {
    WallTimer timer;
    const std::vector<double> scores =
        BrandesBetweenness(graph, Normalization::kPaper, t);
    Run run;
    run.seconds = timer.ElapsedSeconds();
    run.sp_passes = graph.num_vertices();  // one pass per source
    if (t == 1) brandes_baseline = scores;
    run.matches_baseline = scores == brandes_baseline;
    brandes_runs.push_back(run);
  }

  // --------------------------------------------- sharded EstimateMany
  std::vector<VertexId> vertices{targets.hub, targets.median,
                                 targets.peripheral};
  for (std::size_t i = 3; i < many_vertices; ++i) {
    vertices.push_back(static_cast<VertexId>(
        (static_cast<std::size_t>(n) * i) / many_vertices));
  }
  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 400;
  request.seed = 0xE18;
  std::vector<Run> many_runs;
  std::vector<EstimateReport> many_baseline;
  for (unsigned t : kThreadCounts) {
    EngineOptions options;
    options.num_threads = t;
    BetweennessEngine engine(graph, options);
    WallTimer timer;
    const auto reports = engine.EstimateMany(vertices, request);
    Run run;
    run.seconds = timer.ElapsedSeconds();
    run.sp_passes = engine.total_sp_passes();
    if (!reports.ok()) {
      std::fprintf(stderr, "EstimateMany failed: %s\n",
                   reports.status().ToString().c_str());
      return 1;
    }
    if (t == 1) many_baseline = reports.value();
    run.matches_baseline = true;
    for (std::size_t i = 0; i < many_baseline.size(); ++i) {
      run.matches_baseline =
          run.matches_baseline &&
          reports.value()[i].value == many_baseline[i].value &&
          reports.value()[i].std_error == many_baseline[i].std_error;
    }
    many_runs.push_back(run);
  }

  Table table({"threads", "multi-chain s", "speedup", "p/s", "brandes s",
               "speedup", "p/s", "many s", "speedup", "p/s"});
  for (std::size_t i = 0; i < std::size(kThreadCounts); ++i) {
    table.AddRow({std::to_string(kThreadCounts[i]),
                  FormatDouble(chain_runs[i].seconds, 3),
                  SpeedupCell(chain_runs[0].seconds, chain_runs[i]),
                  PassesPerSecondCell(chain_runs[i]),
                  FormatDouble(brandes_runs[i].seconds, 3),
                  SpeedupCell(brandes_runs[0].seconds, brandes_runs[i]),
                  PassesPerSecondCell(brandes_runs[i]),
                  FormatDouble(many_runs[i].seconds, 3),
                  SpeedupCell(many_runs[0].seconds, many_runs[i]),
                  PassesPerSecondCell(many_runs[i])});
  }
  bench::EmitTable(&json,
                   "E18: wall-clock speedup + passes/sec vs 1-thread "
                   "baseline (!DET flags a determinism violation — must "
                   "never appear)",
                   table);
  const std::string written = json.Write();
  if (!written.empty()) std::printf("wrote %s\n", written.c_str());
  return 0;
}
