// E9 — Per-sample cost microbenchmark (google-benchmark): one sampler step
// is a single-source pass (BFS or Dijkstra) plus dependency accumulation.
// The paper claims O(|E|) per sample unweighted and
// O(|E| + |V| log |V|) weighted; the items/second and per-edge figures
// here substantiate the linear scaling.

#include <benchmark/benchmark.h>

#include "exact/dependency_oracle.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace {

void BM_UnweightedPass(benchmark::State& state) {
  const auto n = static_cast<mhbc::VertexId>(state.range(0));
  const mhbc::CsrGraph graph = mhbc::MakeBarabasiAlbert(n, 3, 0xE9);
  mhbc::DependencyOracle oracle(graph);
  mhbc::Rng rng(1);
  const mhbc::VertexId target = 0;
  for (auto _ : state) {
    const mhbc::VertexId source = rng.NextVertex(graph.num_vertices());
    benchmark::DoNotOptimize(oracle.Dependency(source, target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["edges"] = static_cast<double>(graph.num_edges());
  state.counters["ns_per_edge"] = benchmark::Counter(
      static_cast<double>(graph.num_edges()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_UnweightedPass)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)
    ->Arg(16000)->Unit(benchmark::kMicrosecond);

void BM_WeightedPass(benchmark::State& state) {
  const auto n = static_cast<mhbc::VertexId>(state.range(0));
  const mhbc::CsrGraph graph = mhbc::AssignUniformWeights(
      mhbc::MakeBarabasiAlbert(n, 3, 0xE9), 0.5, 2.0, 0x11);
  mhbc::DependencyOracle oracle(graph);
  mhbc::Rng rng(2);
  const mhbc::VertexId target = 0;
  for (auto _ : state) {
    const mhbc::VertexId source = rng.NextVertex(graph.num_vertices());
    benchmark::DoNotOptimize(oracle.Dependency(source, target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_WeightedPass)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)
    ->Unit(benchmark::kMicrosecond);

void BM_GridPass(benchmark::State& state) {
  // High-diameter regime (road-like): same O(m) pass, different constant.
  const auto side = static_cast<mhbc::VertexId>(state.range(0));
  const mhbc::CsrGraph graph = mhbc::MakeGrid(side, side);
  mhbc::DependencyOracle oracle(graph);
  mhbc::Rng rng(3);
  for (auto _ : state) {
    const mhbc::VertexId source = rng.NextVertex(graph.num_vertices());
    benchmark::DoNotOptimize(oracle.Dependency(source, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_GridPass)->Arg(32)->Arg(64)->Arg(96)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
