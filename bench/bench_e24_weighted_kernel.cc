// E24 — weighted kernel scaling: wave-parallel delta-stepping SPD passes
// (sp/delta_spd.h, SpdOptions::num_threads) at 1/2/4/8 threads across the
// registry graphs with uniform [1,3] edge weights, plus the weighted
// incremental-serving payoff (selective weighted invalidation vs a cold
// rebuild).
//
// Section A — per-(graph, threads) row:
//
//   * passes/sec          — forward weighted SPD passes only,
//   * fused passes/sec    — pass + level-parallel dependency accumulation
//                           over the recorded settle waves (the fused
//                           weighted sweep every estimator pays),
//   * speedup / fused x   — against the 1-thread row,
//   * det                 — bit-identity gate against the 1-thread run:
//                           wdist/sigma/order/level_offsets, predecessor
//                           lists, and dependency vectors must match
//                           exactly ("!DET" must never appear; the
//                           process exits 1 if it does).
//
// Section B — incremental weighted mutate-then-re-estimate vs a cold
// rebuild, per edit-batch size: wall clock, shortest-path pass counts
// (the deterministic quantity the exit gate uses), and a per-row
// bit-identity check of every statistical report field against the cold
// engine. Before this PR weighted memos invalidated wholesale, so the
// pass ratio was pinned at ~1; the selective slack + min-incident-weight
// criterion is what this section measures.
//
//   bench_e24_weighted_kernel [sources_per_graph] [--smoke] [--grain=<g>]
//
// Defaults: 32 sources per graph, the shipped parallel_grain; --smoke
// drops to 8 sources and the small mutate dataset (the CI artifact run);
// --grain overrides the per-wave parallel cutoff (0 forces every wave
// through the sharded steps). Timing loops report the fastest-of-3 wall
// clock; the JSON twin lands in BENCH_e24.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "centrality/engine.h"
#include "datasets/registry.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "sp/delta_spd.h"
#include "sp/dependency.h"
#include "util/common.h"
#include "util/timer.h"

namespace {

using namespace mhbc;

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

std::vector<VertexId> SpreadSources(VertexId n, std::size_t count) {
  std::vector<VertexId> sources;
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<VertexId>(
        (static_cast<std::uint64_t>(n) * i) / count));
  }
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

struct ThreadRun {
  double pass_seconds = 0.0;
  double fused_seconds = 0.0;
};

ThreadRun TimeAtThreads(const CsrGraph& graph, const SpdOptions& options,
                        const std::vector<VertexId>& sources) {
  ThreadRun run;
  DeltaSpd spd(graph, options);
  // The accumulator borrows the pass engine's pool, exactly as the
  // oracle/Brandes wiring does, so "fused" times the shipped composition.
  DependencyAccumulator accumulator(graph, spd.intra_pool(),
                                    options.parallel_grain);
  constexpr int kRepeats = 3;
  double best_pass = -1.0;
  double best_fused = -1.0;
  for (int r = 0; r < kRepeats; ++r) {
    WallTimer pass_timer;
    for (VertexId s : sources) spd.Run(s);
    const double pass_seconds = pass_timer.ElapsedSeconds();
    if (best_pass < 0.0 || pass_seconds < best_pass) best_pass = pass_seconds;

    WallTimer fused_timer;
    for (VertexId s : sources) {
      spd.Run(s);
      accumulator.Accumulate(spd);
    }
    const double fused_seconds = fused_timer.ElapsedSeconds();
    if (best_fused < 0.0 || fused_seconds < best_fused) {
      best_fused = fused_seconds;
    }
  }
  run.pass_seconds = best_pass;
  run.fused_seconds = best_fused;
  return run;
}

/// Per-row bit-identity gate: the `threads`-wide engine must reproduce
/// the 1-thread engine exactly on every source — DAG (wdist, sigma,
/// canonical wave order, wave offsets), predecessor lists, and dependency
/// vectors.
bool MatchesSequential(const CsrGraph& graph, const SpdOptions& options,
                       const std::vector<VertexId>& sources) {
  SpdOptions sequential_options = options;
  sequential_options.num_threads = 1;
  DeltaSpd sequential(graph, sequential_options);
  DeltaSpd parallel(graph, options);
  DependencyAccumulator sequential_acc(graph);
  DependencyAccumulator parallel_acc(graph, parallel.intra_pool(),
                                     options.parallel_grain);
  for (VertexId s : sources) {
    sequential.Run(s);
    parallel.Run(s);
    const ShortestPathDag& a = sequential.dag();
    const ShortestPathDag& b = parallel.dag();
    if (a.wdist != b.wdist || a.sigma != b.sigma || a.order != b.order ||
        a.level_offsets != b.level_offsets) {
      return false;
    }
    for (VertexId v : a.order) {
      const auto pa = a.predecessors(v);
      const auto pb = b.predecessors(v);
      if (pa.size() != pb.size() ||
          !std::equal(pa.begin(), pa.end(), pb.begin())) {
        return false;
      }
    }
    if (sequential_acc.Accumulate(sequential) !=
        parallel_acc.Accumulate(parallel)) {
      return false;
    }
  }
  return true;
}

bool ReportsIdentical(const EstimateReport& a, const EstimateReport& b) {
  return a.value == b.value && a.samples_used == b.samples_used &&
         a.acceptance_rate == b.acceptance_rate && a.ess == b.ess &&
         a.std_error == b.std_error && a.ci_half_width == b.ci_half_width &&
         a.converged == b.converged;
}

/// Scratch rebuild of `graph` through the ordinary construction path —
/// the cost a system with wholesale weighted invalidation effectively
/// pays (every memoized weighted pass gone).
CsrGraph RebuildFromEdges(const CsrGraph& graph) {
  GraphBuilder builder(graph.num_vertices());
  builder.set_directed(graph.directed());
  for (const CsrGraph::Edge& edge : graph.CollectEdges()) {
    builder.AddWeightedEdge(edge.u, edge.v, edge.weight);
  }
  auto built = builder.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "error: scratch rebuild failed: %s\n",
                 built.status().ToString().c_str());
  }
  MHBC_DCHECK(built.ok());
  return std::move(built).value();
}

struct MutateRow {
  double incremental_ms = 0.0;
  double cold_ms = 0.0;
  std::uint64_t incremental_passes = 0;
  std::uint64_t cold_passes = 0;
  bool identical = true;
};

/// Runs `rounds` weighted edit-then-re-estimate rounds at one batch size
/// and returns per-round averages for both serving strategies.
MutateRow RunMutateRows(const CsrGraph& start, EstimatorKind kind,
                        std::size_t batch, int rounds,
                        std::uint64_t seed_base) {
  const std::vector<VertexId> targets = [&start] {
    const bench::TargetSet t = bench::PickTargets(start);
    return std::vector<VertexId>{t.hub, t.median, t.peripheral};
  }();
  EstimateRequest request;
  request.kind = kind;
  request.samples = 2'000;
  request.seed = 0xE24;

  BetweennessEngine engine(start);
  // Warm serving state: the steady-state regime selective invalidation
  // is for.
  auto warm = engine.EstimateMany(targets, request);
  if (!warm.ok()) {
    std::fprintf(stderr, "error: %s\n", warm.status().ToString().c_str());
  }
  MHBC_DCHECK(warm.ok());

  MutateRow result;
  for (int round = 0; round < rounds; ++round) {
    const GraphDelta delta = MakeRandomEditScript(
        engine.graph(), batch, seed_base + 977 * static_cast<std::uint64_t>(round));

    const std::uint64_t passes_before = engine.total_sp_passes();
    WallTimer incremental_timer;
    MHBC_DCHECK(engine.ApplyDelta(delta).ok());
    const auto incremental = engine.EstimateMany(targets, request);
    result.incremental_ms += incremental_timer.ElapsedSeconds() * 1e3;
    result.incremental_passes += engine.total_sp_passes() - passes_before;

    WallTimer cold_timer;
    const CsrGraph scratch = RebuildFromEdges(engine.graph());
    BetweennessEngine cold(scratch);
    const auto cold_reports = cold.EstimateMany(targets, request);
    result.cold_ms += cold_timer.ElapsedSeconds() * 1e3;
    result.cold_passes += cold.total_sp_passes();

    MHBC_DCHECK(incremental.ok() && cold_reports.ok());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      result.identical = result.identical &&
                         ReportsIdentical(incremental.value()[i],
                                          cold_reports.value()[i]);
    }
  }
  result.incremental_ms /= rounds;
  result.cold_ms /= rounds;
  result.incremental_passes /= static_cast<std::uint64_t>(rounds);
  result.cold_passes /= static_cast<std::uint64_t>(rounds);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("E24", "weighted kernel: wave-parallel delta-stepping at "
                       "1/2/4/8 threads + selective weighted invalidation");
  std::size_t sources_per_graph = 32;
  bool smoke = false;
  SpdOptions defaults;  // shipped tie rule, auto bucket width, parallel_grain
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--grain=", 8) == 0) {
      char* end = nullptr;
      defaults.parallel_grain = std::strtoull(argv[i] + 8, &end, 10);
      if (end == argv[i] + 8 || *end != '\0') {
        std::fprintf(stderr, "bad --grain value '%s'\n", argv[i] + 8);
        return 2;
      }
    } else {
      char* end = nullptr;
      sources_per_graph = std::strtoull(argv[i], &end, 10);
      if (argv[i][0] == '-' || end == argv[i] || *end != '\0' ||
          sources_per_graph == 0) {
        std::fprintf(stderr,
                     "unknown argument '%s'\nusage: %s [sources_per_graph] "
                     "[--smoke] [--grain=<g>]\n",
                     argv[i], argv[0]);
        return 2;
      }
    }
  }
  if (smoke) sources_per_graph = std::min<std::size_t>(sources_per_graph, 8);
  bench::JsonReport json("e24");
  json.AddMeta("sources_per_graph", std::to_string(sources_per_graph));
  json.AddMeta("smoke", smoke ? "true" : "false");
  json.AddMeta("parallel_grain", std::to_string(defaults.parallel_grain));

  bool all_deterministic = true;
  Table table({"graph", "n", "m", "threads", "passes/s", "fused p/s",
               "speedup", "fused x", "det"});

  // Registry graphs (undirected) plus a directed stand-in: directed
  // wave-parallel passes relax out-edges forward and record predecessors
  // over the in-CSR, so the thread-scaling gate must cover that path.
  std::vector<std::pair<std::string, CsrGraph>> cases;
  for (const DatasetSpec& spec : DatasetRegistry()) {
    cases.emplace_back(spec.name,
                       AssignUniformWeights(spec.make(), 1.0, 3.0, 0xE24));
  }
  cases.emplace_back(
      "directed-lcg",
      AssignUniformWeights(MakeRandomDirected(smoke ? 2000 : 20000,
                                              smoke ? 12000 : 120000, 0xE24D),
                           1.0, 3.0, 0xE24));

  for (const auto& [name, graph] : cases) {
    const std::vector<VertexId> sources =
        SpreadSources(graph.num_vertices(), sources_per_graph);
    const double passes = static_cast<double>(sources.size());

    SpdOptions options = defaults;
    double base_pps = 0.0;
    double base_fps = 0.0;
    for (unsigned threads : kThreadCounts) {
      options.num_threads = threads;
      const ThreadRun run = TimeAtThreads(graph, options, sources);
      const bool det =
          threads == 1 || MatchesSequential(graph, options, sources);
      all_deterministic = all_deterministic && det;

      const double pps = passes / run.pass_seconds;
      const double fps = passes / run.fused_seconds;
      if (threads == 1) {
        base_pps = pps;
        base_fps = fps;
      }
      table.AddRow({name, FormatCount(graph.num_vertices()),
                    FormatCount(graph.num_edges()), std::to_string(threads),
                    FormatDouble(pps, 0), FormatDouble(fps, 0),
                    FormatDouble(pps / base_pps, 2) + "x",
                    FormatDouble(fps / base_fps, 2) + "x",
                    det ? "ok" : "!DET"});
    }
  }

  bench::EmitTable(
      &json,
      "E24a: weighted wave-parallel thread scaling (passes/sec; speedups vs "
      "the 1-thread row; !DET flags a sequential-equivalence violation — "
      "must never appear)",
      table);

  // Section B: selective weighted invalidation vs cold rebuild.
  const std::string mutate_dataset =
      smoke ? "community-ring-300" : "email-like-1k";
  auto base = MakeDataset(mutate_dataset);
  if (!base.ok()) {
    std::fprintf(stderr, "error: %s\n", base.status().ToString().c_str());
    return 1;
  }
  const CsrGraph weighted =
      AssignUniformWeights(base.value(), 1.0, 3.0, 0xE24);
  const int rounds = smoke ? 3 : 6;
  const std::size_t batches[] = {1, 4, 16};
  const EstimatorKind kinds[] = {EstimatorKind::kUniformSource,
                                 EstimatorKind::kMetropolisHastings};

  bool all_identical = true;
  double best_small_batch_pass_ratio = 0.0;
  Table mutate({"estimator", "edit batch", "incr ms/round", "cold ms/round",
                "speedup", "incr passes", "cold passes", "ident"});
  std::uint64_t seed = 0xE24'0000;
  for (const EstimatorKind kind : kinds) {
    for (const std::size_t batch : batches) {
      const MutateRow row = RunMutateRows(weighted, kind, batch, rounds, seed);
      seed += 0x1000;
      const double speedup =
          row.incremental_ms > 0.0 ? row.cold_ms / row.incremental_ms : 0.0;
      all_identical = all_identical && row.identical;
      if (batch <= 4 && row.incremental_passes > 0) {
        best_small_batch_pass_ratio =
            std::max(best_small_batch_pass_ratio,
                     static_cast<double>(row.cold_passes) /
                         static_cast<double>(row.incremental_passes));
      }
      mutate.AddRow({EstimatorKindName(kind), std::to_string(batch),
                     FormatDouble(row.incremental_ms, 3),
                     FormatDouble(row.cold_ms, 3),
                     FormatDouble(speedup, 2) + "x",
                     std::to_string(row.incremental_passes),
                     std::to_string(row.cold_passes),
                     row.identical ? "yes" : "NO"});
    }
  }
  bench::EmitTable(
      &json,
      "E24b: weighted incremental re-estimate vs cold rebuild on " +
          mutate_dataset + " with uniform [1,3] weights (pass counts are "
          "deterministic for fixed seeds; ident re-checks statistical "
          "bit-identity per row)",
      mutate);

  json.AddMeta("bit_identical", all_identical ? "true" : "false");
  json.AddMeta("best_small_batch_pass_ratio",
               FormatDouble(best_small_batch_pass_ratio, 2));
  json.AddMeta("mutate_dataset", mutate_dataset);
  const std::string written = json.Write();
  if (!written.empty()) std::printf("wrote %s\n", written.c_str());

  std::printf("\nbest small-batch (<=4 edits) weighted pass ratio: %.2fx on "
              "%s\n",
              best_small_batch_pass_ratio, mutate_dataset.c_str());
  if (!all_deterministic) {
    // Fail the run (and the CI release-bench job): a !DET row means a
    // wave-parallel pass diverged from the sequential kernel.
    std::fprintf(stderr, "FAIL: weighted kernel determinism violation "
                         "(!DET)\n");
    return 1;
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: incremental and cold engines disagree on "
                 "statistical report fields\n");
    return 1;
  }
  // Selective weighted invalidation must actually keep passes alive on
  // small batches — ratio <= 1 means it degraded to wholesale.
  return best_small_batch_pass_ratio > 1.0 ? 0 : 2;
}
