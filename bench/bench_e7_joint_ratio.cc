// E7 — Joint-space sampler ratio accuracy (Theorem 3 / Eq. 22): estimated
// BC(ri)/BC(rj) against the exact ratio for all ordered pairs of a target
// set R, as the iteration budget grows. The ratio estimator is consistent
// (unlike the single-space Eq. 7 readout), so errors shrink with T.

#include <cmath>

#include "bench_common.h"
#include "core/joint_space.h"
#include "datasets/registry.h"

int main() {
  using namespace mhbc;
  bench::Banner("E7", "joint-space ratio estimation (Eq. 22)");
  const std::vector<std::uint64_t> kBudgets{2'000, 8'000, 32'000};
  constexpr std::size_t kSetSize = 5;

  Table table({"dataset", "|R|", "T", "mean rel err", "max rel err",
               "min |M(j)|"});
  for (const std::string& name :
       {std::string("community-ring-300"), std::string("email-like-1k")}) {
    const CsrGraph graph = std::move(MakeDataset(name)).value();
    // R = the top-degree vertices (distinct), a realistic "compare these
    // candidate hubs" workload.
    std::vector<VertexId> order(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) order[v] = v;
    std::stable_sort(order.begin(), order.end(),
                     [&graph](VertexId a, VertexId b) {
                       return graph.degree(a) > graph.degree(b);
                     });
    std::vector<VertexId> targets(order.begin(), order.begin() + kSetSize);

    const auto exact = ExactBetweenness(graph);
    for (std::uint64_t budget : kBudgets) {
      JointOptions options;
      options.seed = 0xE7 + budget;
      JointSpaceSampler sampler(graph, targets, options);
      const JointResult result = sampler.Run(budget);
      double err_sum = 0.0, err_max = 0.0;
      int pairs = 0;
      for (std::size_t i = 0; i < targets.size(); ++i) {
        for (std::size_t j = 0; j < targets.size(); ++j) {
          if (i == j) continue;
          const double truth = exact[targets[i]] / exact[targets[j]];
          const double err =
              std::fabs(result.ratio[i][j] - truth) / truth;
          err_sum += err;
          err_max = std::max(err_max, err);
          ++pairs;
        }
      }
      std::uint64_t min_m = result.samples_per_target[0];
      for (std::uint64_t m : result.samples_per_target) {
        min_m = std::min(min_m, m);
      }
      table.AddRow({name, std::to_string(targets.size()),
                    FormatCount(budget), FormatDouble(err_sum / pairs, 3),
                    FormatDouble(err_max, 3), FormatCount(min_m)});
    }
  }
  bench::PrintTable(
      "E7: relative error of estimated BC ratios over all ordered pairs",
      table);
  return 0;
}
