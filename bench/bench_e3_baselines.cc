// E3 — Sampler comparison table at an equal pass budget: the paper's MH
// sampler (both readouts) against uniform [2], distance-proportional [13],
// shortest-path RK [30], and linear-scaling Geisberger [17].
//
// All estimators run through one BetweennessEngine per dataset/target and
// are enumerated from the shared estimator registry (no hand-rolled
// switch). The engine's dependency memo is shared across estimators and
// trials, so the passes/run column shows how much of the nominal budget
// later runs actually re-pay — wall-clock per run shrinks accordingly
// (values are unaffected: memo hits are bit-identical to fresh passes).

#include <cmath>

#include "bench_common.h"
#include "centrality/engine.h"
#include "datasets/registry.h"

int main() {
  using namespace mhbc;
  bench::Banner("E3", "baseline comparison at equal budget");
  constexpr std::uint64_t kBudget = 500;
  constexpr int kTrials = 5;

  Table table({"dataset", "target", "estimator", "mean rel err", "max rel err",
               "ms/run", "passes/run"});
  for (const std::string& name :
       {std::string("caveman-36"), std::string("community-ring-300"),
        std::string("email-like-1k")}) {
    const CsrGraph graph = std::move(MakeDataset(name)).value();
    const bench::TargetSet targets = bench::PickTargets(graph);
    for (const auto& [label, r] :
         {std::pair<const char*, VertexId>{"hub", targets.hub},
          {"median", targets.median}}) {
      const double exact = ExactBetweennessSingle(graph, r);
      if (exact == 0.0) continue;
      BetweennessEngine engine(graph);
      for (const EstimatorEntry& entry : EstimatorRegistry()) {
        if (entry.kind == EstimatorKind::kExact) continue;
        double err_sum = 0.0, err_max = 0.0, seconds = 0.0;
        std::uint64_t passes = 0;
        for (int trial = 0; trial < kTrials; ++trial) {
          EstimateRequest request;
          request.kind = entry.kind;
          request.samples = kBudget;
          request.seed = 0xE3 + static_cast<std::uint64_t>(trial) * 7919;
          const auto result = engine.Estimate(r, request);
          seconds += result.value().seconds;
          passes += result.value().sp_passes;
          const double err =
              std::fabs(result.value().value - exact) / exact;
          err_sum += err;
          err_max = std::max(err_max, err);
        }
        table.AddRow({name, label, entry.name,
                      FormatDouble(err_sum / kTrials, 3),
                      FormatDouble(err_max, 3),
                      FormatDouble(1e3 * seconds / kTrials, 2),
                      FormatDouble(static_cast<double>(passes) / kTrials, 0)});
      }
    }
  }
  bench::PrintTable(
      "E3: relative error vs exact at a 500-sample budget (5 trials; "
      "passes/run < budget means the shared engine memo served the rest)",
      table);
  return 0;
}
