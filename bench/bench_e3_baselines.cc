// E3 — Sampler comparison table at an equal pass budget: the paper's MH
// sampler (both readouts) against uniform [2], distance-proportional [13],
// shortest-path RK [30], and linear-scaling Geisberger [17].

#include <cmath>

#include "bench_common.h"
#include "centrality/api.h"
#include "datasets/registry.h"
#include "util/timer.h"

int main() {
  using namespace mhbc;
  bench::Banner("E3", "baseline comparison at equal budget");
  constexpr std::uint64_t kBudget = 500;
  constexpr int kTrials = 5;

  Table table({"dataset", "target", "estimator", "mean rel err", "max rel err",
               "ms/run"});
  for (const std::string& name :
       {std::string("caveman-36"), std::string("community-ring-300"),
        std::string("email-like-1k")}) {
    const CsrGraph graph = std::move(MakeDataset(name)).value();
    const bench::TargetSet targets = bench::PickTargets(graph);
    for (const auto& [label, r] :
         {std::pair<const char*, VertexId>{"hub", targets.hub},
          {"median", targets.median}}) {
      const double exact = ExactBetweennessSingle(graph, r);
      if (exact == 0.0) continue;
      for (EstimatorKind kind :
           {EstimatorKind::kMetropolisHastings, EstimatorKind::kMhRaoBlackwell,
            EstimatorKind::kUniformSource,
            EstimatorKind::kDistanceProportional, EstimatorKind::kShortestPath,
            EstimatorKind::kLinearScaling}) {
        double err_sum = 0.0, err_max = 0.0, seconds = 0.0;
        for (int trial = 0; trial < kTrials; ++trial) {
          EstimateOptions options;
          options.kind = kind;
          options.samples = kBudget;
          options.seed = 0xE3 + static_cast<std::uint64_t>(trial) * 7919;
          WallTimer timer;
          const auto result = EstimateBetweenness(graph, r, options);
          seconds += timer.ElapsedSeconds();
          const double err =
              std::fabs(result.value().value - exact) / exact;
          err_sum += err;
          err_max = std::max(err_max, err);
        }
        table.AddRow({name, label, EstimatorKindName(kind),
                      FormatDouble(err_sum / kTrials, 3),
                      FormatDouble(err_max, 3),
                      FormatDouble(1e3 * seconds / kTrials, 2)});
      }
    }
  }
  bench::PrintTable("E3: relative error vs exact at 500 passes (5 trials)",
                    table);
  return 0;
}
