// E2 — Convergence figure: estimation error vs chain length T for the
// paper's MH sampler, at three target positions (hub / median / peripheral)
// per dataset. Reports both the Eq. 7 estimate's error and the
// Rao-Blackwell companion's error against exact BC, plus the distance to
// the chain's own limit E_pi[f] — the series that makes the estimator's
// bias-vs-variance behaviour visible.

#include <cmath>

#include "bench_common.h"
#include "core/mh_betweenness.h"
#include "core/theory.h"
#include "datasets/registry.h"

int main() {
  using namespace mhbc;
  bench::Banner("E2", "error vs samples (convergence figure)");
  constexpr int kTrials = 5;
  const std::vector<std::uint64_t> kBudgets{50, 100, 200, 400, 800, 1600};

  Table table({"dataset", "target", "mu(r)", "T", "|mh-exact|", "|mh-limit|",
               "|rb-exact|"});
  for (const std::string& name :
       {std::string("caveman-36"), std::string("community-ring-300"),
        std::string("email-like-1k")}) {
    const CsrGraph graph = std::move(MakeDataset(name)).value();
    const bench::TargetSet targets = bench::PickTargets(graph);
    for (const auto& [label, r] :
         {std::pair<const char*, VertexId>{"hub", targets.hub},
          {"median", targets.median},
          {"peripheral", targets.peripheral}}) {
      const double exact = ExactBetweennessSingle(graph, r);
      if (exact == 0.0) continue;  // peripheral leaves carry no signal
      const auto profile = DependencyProfile(graph, r);
      const double mu = MuFromProfile(profile);
      const double limit = ChainLimitEstimate(profile);
      for (std::uint64_t budget : kBudgets) {
        double err_mh = 0.0, err_limit = 0.0, err_rb = 0.0;
        for (int trial = 0; trial < kTrials; ++trial) {
          MhOptions options;
          options.seed = 0xE2 + static_cast<std::uint64_t>(trial) * 1009 +
                         budget;
          MhBetweennessSampler sampler(graph, options);
          const MhResult result = sampler.Run(r, budget);
          err_mh += std::fabs(result.estimate - exact);
          err_limit += std::fabs(result.estimate - limit);
          err_rb += std::fabs(result.proposal_estimate - exact);
        }
        table.AddRow({name, label, FormatDouble(mu, 1),
                      std::to_string(budget),
                      FormatScientific(err_mh / kTrials, 2),
                      FormatScientific(err_limit / kTrials, 2),
                      FormatScientific(err_rb / kTrials, 2)});
      }
    }
  }
  bench::PrintTable(
      "E2: mean abs error over 5 trials (mh = Eq. 7; limit = E_pi[f]; rb = "
      "Rao-Blackwell companion)",
      table);
  return 0;
}
