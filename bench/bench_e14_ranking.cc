// E14 — Ranking quality (application claim §1: "rank vertices according to
// their betweenness scores" without exact computation): Spearman and
// Kendall correlation of the joint-space ranking of a candidate set R
// against the exact ranking, as T grows.

#include "bench_common.h"
#include "core/joint_space.h"
#include "graph/graph_builder.h"
#include "util/stats.h"

namespace {

/// Ring of cliques with unequal sizes (distinct gateway loads).
mhbc::CsrGraph MakeUnequalCaveman(const std::vector<mhbc::VertexId>& sizes,
                                  std::vector<mhbc::VertexId>* gateways) {
  mhbc::VertexId n = 0;
  for (mhbc::VertexId s : sizes) n += s;
  mhbc::GraphBuilder builder(n);
  mhbc::VertexId base = 0;
  std::vector<mhbc::VertexId> starts;
  for (mhbc::VertexId s : sizes) {
    starts.push_back(base);
    for (mhbc::VertexId u = 0; u < s; ++u)
      for (mhbc::VertexId v = u + 1; v < s; ++v)
        builder.AddEdge(base + u, base + v);
    gateways->push_back(base + s - 1);
    base += s;
  }
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    builder.AddEdge((*gateways)[c], starts[(c + 1) % sizes.size()]);
  }
  return std::move(builder.Build()).value();
}

}  // namespace

int main() {
  using namespace mhbc;
  bench::Banner("E14", "ranking a candidate set by estimated betweenness");

  std::vector<VertexId> gateways;
  const CsrGraph net =
      MakeUnequalCaveman({8, 10, 12, 14, 16, 18, 20, 22}, &gateways);
  const auto exact = ExactBetweenness(net);
  std::vector<double> exact_scores;
  for (VertexId g : gateways) exact_scores.push_back(exact[g]);

  Table table({"T", "Spearman", "Kendall tau", "top-1 correct"});
  for (std::uint64_t budget : {1'000ULL, 4'000ULL, 16'000ULL, 64'000ULL}) {
    JointOptions options;
    options.seed = 0xE14 + budget;
    JointSpaceSampler sampler(net, gateways, options);
    const JointResult result = sampler.Run(budget);
    const std::vector<double>& scores = result.copeland_scores;

    // Exact top-1 gateway index.
    std::size_t exact_best = 0;
    for (std::size_t i = 1; i < exact_scores.size(); ++i) {
      if (exact_scores[i] > exact_scores[exact_best]) exact_best = i;
    }
    std::size_t estimated_best = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] > scores[estimated_best]) estimated_best = i;
    }
    table.AddRow({FormatCount(budget),
                  FormatDouble(SpearmanCorrelation(scores, exact_scores), 3),
                  FormatDouble(KendallTau(scores, exact_scores), 3),
                  estimated_best == exact_best ? "yes" : "no"});
  }
  std::printf("candidate set: %zu gateways of unequal-size communities "
              "(n=%u, m=%llu)\n",
              gateways.size(), net.num_vertices(),
              static_cast<unsigned long long>(net.num_edges()));
  bench::PrintTable("E14: rank correlation of joint-space Copeland ranking",
                    table);
  return 0;
}
