// E5 — Theorem 2 validation: mu(r) stays constant as n grows when r is a
// balanced vertex separator (barbell bridge, path center), and grows with
// n when it is not (path near-end vertex). The sample budget Eq. 14
// inherits the same behaviour: constant vs growing.

#include "bench_common.h"
#include "core/theory.h"
#include "graph/generators.h"
#include "graph/graph_algos.h"

int main() {
  using namespace mhbc;
  bench::Banner("E5", "Theorem 2: mu(r) scaling at separators vs non-separators");

  Table table({"family", "n", "target", "balanced separator?", "mu(r)",
               "T(eps=0.1, delta=0.1)"});
  auto add_row = [&table](const char* family, const CsrGraph& graph,
                          const char* label, VertexId r) {
    const auto profile = DependencyProfile(graph, r);
    const double mu = MuFromProfile(profile);
    table.AddRow({family, FormatCount(graph.num_vertices()), label,
                  IsBalancedSeparator(graph, r, 0.25) ? "yes" : "no",
                  FormatDouble(mu, 2), FormatCount(SampleBound(mu, 0.1, 0.1))});
  };

  for (VertexId k : {10u, 20u, 40u, 80u}) {
    const CsrGraph g = MakeBarbell(k, 1);
    add_row("barbell(k,1)", g, "bridge", k);
  }
  for (VertexId n : {17u, 33u, 65u, 129u}) {
    const CsrGraph g = MakePath(n);
    add_row("path", g, "center", n / 2);
    add_row("path", g, "near-end (i=2)", 2);
  }
  for (VertexId c : {4u, 8u, 16u}) {
    const CsrGraph g = MakeConnectedCaveman(c, 12);
    add_row("caveman(c,12)", g, "gateway", 11);
  }

  bench::PrintTable(
      "E5: separators keep mu (and the Eq. 14 budget) constant; skewed "
      "targets do not",
      table);
  return 0;
}
