// E19 — ingestion: text parse vs binary snapshot load.
//
// The paper's evaluation graphs enter the system as SNAP text edge lists;
// PR 3 added `.mhbc` binary CSR snapshots (graph/snapshot.h) so a dataset
// is parsed once and mmap-loaded afterwards. This harness quantifies that
// trade on the largest registry dataset: it writes the graph as text,
// converts it to a snapshot, then measures (median of `reps`) the
// wall-clock and bytes touched of every load path — text parse, buffered
// snapshot read, mmap with checksum verification, and mmap without
// (headers only; array pages fault in lazily on first traversal). It also
// re-checks the central correctness claim: a fixed-seed engine query
// returns bit-identical statistics no matter which loader produced the
// graph.
//
//   bench_e19_ingest [dataset] [reps]     (default: social-like-8k, 9)
//
// Emits BENCH_e19.json next to the markdown output (bench_common.h).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "centrality/engine.h"
#include "datasets/registry.h"
#include "graph/graph_io.h"
#include "graph/ingest.h"
#include "graph/snapshot.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

namespace fs = std::filesystem;
using mhbc::CsrGraph;

/// Median wall-clock seconds of `reps` runs of `body`.
template <typename Body>
double MedianSeconds(int reps, Body&& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    mhbc::WallTimer timer;
    body();
    samples.push_back(timer.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::string Ms(double seconds) {
  return mhbc::FormatDouble(seconds * 1e3, 3) + " ms";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "social-like-8k";
  const int reps = argc > 2 ? std::atoi(argv[2]) : 9;
  mhbc::bench::Banner("E19", "ingestion: text parse vs snapshot load");

  auto made = mhbc::MakeDataset(dataset);
  if (!made.ok()) {
    std::fprintf(stderr, "error: %s\n", made.status().ToString().c_str());
    return 1;
  }
  const CsrGraph& graph = made.value();

  const fs::path dir = fs::temp_directory_path() / "mhbc_bench_e19";
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string text_path = (dir / (dataset + ".txt")).string();
  const std::string snapshot_path =
      (dir / (dataset + mhbc::kSnapshotExtension)).string();
  if (!mhbc::WriteEdgeList(graph, text_path).ok()) {
    std::fprintf(stderr, "error: cannot write %s\n", text_path.c_str());
    return 1;
  }
  // The snapshot is taken from the text-loaded graph — the realistic
  // convert flow, and the id space the parity check below compares in
  // (the text loader densely remaps ids in first-seen order).
  auto parsed = mhbc::LoadSnapEdgeList(text_path, {});
  if (!parsed.ok() ||
      !mhbc::SaveSnapshot(parsed.value(), snapshot_path).ok()) {
    std::fprintf(stderr, "error: cannot write %s\n", snapshot_path.c_str());
    return 1;
  }
  const auto text_bytes = static_cast<std::uint64_t>(fs::file_size(text_path));
  const auto snap_bytes =
      static_cast<std::uint64_t>(fs::file_size(snapshot_path));

  mhbc::bench::JsonReport report("e19");
  report.AddMeta("dataset", graph.name());
  report.AddMeta("n", std::to_string(graph.num_vertices()));
  report.AddMeta("m", std::to_string(graph.num_edges()));
  report.AddMeta("reps", std::to_string(reps));

  // --- load-path timings (medians) -------------------------------------
  const double text_s = MedianSeconds(reps, [&] {
    auto loaded = mhbc::LoadSnapEdgeList(text_path, {});
    if (!loaded.ok()) std::abort();
  });
  const double buffered_s = MedianSeconds(reps, [&] {
    auto loaded = mhbc::LoadSnapshotBuffered(snapshot_path);
    if (!loaded.ok()) std::abort();
  });
  mhbc::SnapshotOptions verify_opts;
  const double mmap_verify_s = MedianSeconds(reps, [&] {
    auto loaded = mhbc::LoadSnapshotMapped(snapshot_path, verify_opts);
    if (!loaded.ok()) std::abort();
  });
  mhbc::SnapshotOptions lazy_opts;
  lazy_opts.verify_checksum = false;
  const double mmap_lazy_s = MedianSeconds(reps, [&] {
    auto loaded = mhbc::LoadSnapshotMapped(snapshot_path, lazy_opts);
    if (!loaded.ok()) std::abort();
  });

  mhbc::Table table({"load path", "file bytes", "bytes touched at load",
                     "median load", "speedup vs text"});
  auto add_row = [&](const char* label, std::uint64_t bytes,
                     const std::string& touched, double seconds) {
    table.AddRow({label, mhbc::FormatCount(bytes), touched, Ms(seconds),
                  mhbc::FormatDouble(text_s / seconds, 1) + "x"});
  };
  add_row("text parse (LoadSnapEdgeList)", text_bytes,
          mhbc::FormatCount(text_bytes), text_s);
  add_row("snapshot buffered read", snap_bytes, mhbc::FormatCount(snap_bytes),
          buffered_s);
  add_row("snapshot mmap + checksum", snap_bytes, mhbc::FormatCount(snap_bytes),
          mmap_verify_s);
  add_row("snapshot mmap, lazy pages", snap_bytes, "header only",
          mmap_lazy_s);
  mhbc::bench::EmitTable(&report, "E19: load paths on " + graph.name(), table);

  // --- loader equivalence: bit-identical engine statistics -------------
  auto text_graph = mhbc::LoadSnapEdgeList(text_path, {});
  auto mapped = mhbc::LoadSnapshotMapped(snapshot_path, verify_opts);
  if (!text_graph.ok() || !mapped.ok()) {
    std::fprintf(stderr, "error: reload for the parity check failed\n");
    return 1;
  }
  mhbc::EstimateRequest request;
  request.kind = mhbc::EstimatorKind::kMetropolisHastings;
  request.samples = 2'000;
  request.seed = 0xE19;
  const mhbc::VertexId target =
      mhbc::bench::PickTargets(text_graph.value()).hub;
  mhbc::BetweennessEngine text_engine(text_graph.value());
  mhbc::BetweennessEngine snap_engine(mapped.value().graph());
  const auto a = text_engine.Estimate(target, request);
  const auto b = snap_engine.Estimate(target, request);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "error: parity estimates failed\n");
    return 1;
  }
  const bool identical =
      a.value().value == b.value().value &&
      a.value().std_error == b.value().std_error &&
      a.value().ess == b.value().ess &&
      a.value().acceptance_rate == b.value().acceptance_rate &&
      a.value().samples_used == b.value().samples_used;
  mhbc::Table parity({"loader", "BC estimate (hub)", "std error"});
  parity.AddRow({"text parse", mhbc::FormatScientific(a.value().value, 12),
                 mhbc::FormatScientific(a.value().std_error, 12)});
  parity.AddRow({"snapshot mmap", mhbc::FormatScientific(b.value().value, 12),
                 mhbc::FormatScientific(b.value().std_error, 12)});
  parity.AddRow({"bit-identical", identical ? "yes" : "NO", ""});
  mhbc::bench::EmitTable(&report, "E19: loader equivalence", parity);

  const double speedup = text_s / mmap_verify_s;
  report.AddMeta("text_parse_ms", mhbc::FormatDouble(text_s * 1e3, 3));
  report.AddMeta("mmap_verified_ms", mhbc::FormatDouble(mmap_verify_s * 1e3, 3));
  report.AddMeta("mmap_lazy_ms", mhbc::FormatDouble(mmap_lazy_s * 1e3, 3));
  report.AddMeta("speedup_mmap_vs_text", mhbc::FormatDouble(speedup, 1));
  report.AddMeta("bit_identical", identical ? "true" : "false");
  const std::string json = report.Write();
  if (!json.empty()) std::printf("\nwrote %s\n", json.c_str());

  std::printf("\nsnapshot mmap (verified) is %.1fx faster than text parse\n",
              speedup);
  if (!identical) {
    std::fprintf(stderr, "FAIL: loaders disagree on engine statistics\n");
    return 1;
  }
  return speedup >= 10.0 ? 0 : 2;
}
