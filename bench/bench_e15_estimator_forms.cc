// E15 — Estimator-form ablation (the reproduction's soundness analysis):
// at an equal pass budget, compare
//   (a) the paper's Eq. 7 chain average          -> converges to E_pi[f],
//   (b) the Rao-Blackwell proposal companion      -> unbiased,
//   (c) the plain uniform source sampler [2]      -> unbiased,
// against the exact score, across targets with increasing dependency skew
// mu(r). The table quantifies where (a) is trustworthy: its error tracks
// the bias floor (limit - exact), which grows with mu(r), while (b)/(c)
// keep shrinking with T.

#include <cmath>

#include "baselines/uniform_sampler.h"
#include "bench_common.h"
#include "core/mh_betweenness.h"
#include "core/theory.h"
#include "datasets/registry.h"
#include "graph/generators.h"
#include "util/stats.h"

int main() {
  using namespace mhbc;
  bench::Banner("E15", "estimator forms: Eq. 7 vs unbiased companions");
  constexpr std::uint64_t kBudget = 2'000;
  constexpr int kTrials = 10;

  struct Case {
    std::string name;
    CsrGraph graph;
    VertexId r;
  };
  std::vector<Case> cases;
  cases.push_back({"barbell bridge (mu~1)", MakeBarbell(20, 1), 20});
  {
    CsrGraph g = std::move(MakeDataset("community-ring-300")).value();
    const VertexId hub = bench::PickTargets(g).hub;
    cases.push_back({"caveman hub", std::move(g), hub});
  }
  {
    CsrGraph g = std::move(MakeDataset("email-like-1k")).value();
    const VertexId hub = bench::PickTargets(g).hub;
    cases.push_back({"scale-free hub (mu>>1)", std::move(g), hub});
  }

  Table table({"case", "mu(r)", "bias floor/BC", "mh rel err", "rb rel err",
               "uniform rel err"});
  for (const Case& c : cases) {
    const double exact = ExactBetweennessSingle(c.graph, c.r);
    const auto profile = DependencyProfile(c.graph, c.r);
    const double mu = MuFromProfile(profile);
    const double limit = ChainLimitEstimate(profile);
    RunningStats mh_err, rb_err, uniform_err;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto seed = 0xE15 + static_cast<std::uint64_t>(trial) * 65537;
      MhOptions options;
      options.seed = seed;
      MhBetweennessSampler sampler(c.graph, options);
      const MhResult result = sampler.Run(c.r, kBudget);
      mh_err.Add(std::fabs(result.estimate - exact) / exact);
      rb_err.Add(std::fabs(result.proposal_estimate - exact) / exact);
      UniformSourceSampler uniform(c.graph, seed);
      uniform_err.Add(std::fabs(uniform.Estimate(c.r, kBudget) - exact) /
                      exact);
    }
    table.AddRow({c.name, FormatDouble(mu, 1),
                  FormatDouble((limit - exact) / exact, 3),
                  FormatDouble(mh_err.mean(), 3),
                  FormatDouble(rb_err.mean(), 3),
                  FormatDouble(uniform_err.mean(), 3)});
  }
  bench::PrintTable(
      "E15: relative error vs exact at 2000 passes (10 trials); 'bias floor' "
      "= (E_pi[f] - BC)/BC is where the Eq. 7 error plateaus",
      table);
  return 0;
}
