// E21 — dynamic graphs: amortized incremental re-estimate vs cold rebuild.
//
// PR 5 opened the streaming-update scenario: BetweennessEngine::ApplyDelta
// edits the served graph in place, selectively keeping every memoized
// shortest-path pass the edit batch provably does not touch
// (DependencyOracle::ApplyGraphDelta) while whole-graph products rebuild.
// This harness quantifies the payoff on registry graphs: for each edit
// batch size it generates random edit scripts (MakeRandomEditScript — the
// same distribution the equivalence test harness locks down), then
// measures per round
//
//   incremental — ApplyDelta on the live engine + re-estimate, vs
//   cold       — rebuild the post-edit graph from its edge list through
//                GraphBuilder, construct a fresh engine, estimate.
//
// Both paths must agree bit-for-bit on every statistical report field
// (the mutation determinism contract, centrality/engine.h); the `ident`
// column re-checks that per row. The expected shape: incremental wins big
// at batch size 1 (most passes survive one edit) and converges to the
// cold cost as batches grow (each extra edit multiplies the chance a
// cached BFS tree is touched).
//
//   bench_e21_dynamic [--smoke] [dataset ...]
//     default datasets: email-like-1k road-like-grid45
//     --smoke: community-ring-300, fewer rounds (the CI configuration)
//
// Emits BENCH_e21.json next to the markdown output (bench_common.h).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "centrality/engine.h"
#include "datasets/registry.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_builder.h"
#include "util/common.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using mhbc::CsrGraph;
using mhbc::VertexId;

bool ReportsIdentical(const mhbc::EstimateReport& a,
                      const mhbc::EstimateReport& b) {
  return a.value == b.value && a.samples_used == b.samples_used &&
         a.acceptance_rate == b.acceptance_rate && a.ess == b.ess &&
         a.std_error == b.std_error && a.ci_half_width == b.ci_half_width &&
         a.converged == b.converged;
}

/// Scratch rebuild of `graph` through the ordinary construction path —
/// the cost a system without ApplyDelta pays to serve the post-edit graph.
CsrGraph RebuildFromEdges(const CsrGraph& graph) {
  mhbc::GraphBuilder builder(graph.num_vertices());
  for (const CsrGraph::Edge& edge : graph.CollectEdges()) {
    if (graph.weighted()) {
      builder.AddWeightedEdge(edge.u, edge.v, edge.weight);
    } else {
      builder.AddEdge(edge.u, edge.v);
    }
  }
  auto built = builder.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "error: scratch rebuild failed: %s\n",
                 built.status().ToString().c_str());
  }
  MHBC_DCHECK(built.ok());
  return std::move(built).value();
}

struct RowResult {
  double incremental_ms = 0.0;
  double cold_ms = 0.0;
  std::uint64_t incremental_passes = 0;
  std::uint64_t cold_passes = 0;
  bool identical = true;
};

/// Runs `rounds` edit-then-re-estimate rounds at one batch size and
/// returns per-round averages for both serving strategies.
RowResult RunRows(const CsrGraph& start, mhbc::EstimatorKind kind,
                  std::size_t batch, int rounds, std::uint64_t seed_base) {
  const std::vector<VertexId> targets = [&start] {
    const mhbc::bench::TargetSet t = mhbc::bench::PickTargets(start);
    return std::vector<VertexId>{t.hub, t.median, t.peripheral};
  }();
  mhbc::EstimateRequest request;
  request.kind = kind;
  request.samples = 2'000;
  request.seed = 0xE21;

  mhbc::BetweennessEngine engine(start);
  // Warm serving state: the steady-state regime ApplyDelta is for.
  auto warm = engine.EstimateMany(targets, request);
  if (!warm.ok()) {
    std::fprintf(stderr, "error: %s\n", warm.status().ToString().c_str());
  }
  MHBC_DCHECK(warm.ok());

  RowResult result;
  for (int round = 0; round < rounds; ++round) {
    const mhbc::GraphDelta delta = mhbc::MakeRandomEditScript(
        engine.graph(), batch, seed_base + 977 * round);

    const std::uint64_t passes_before = engine.total_sp_passes();
    mhbc::WallTimer incremental_timer;
    MHBC_DCHECK(engine.ApplyDelta(delta).ok());
    const auto incremental = engine.EstimateMany(targets, request);
    result.incremental_ms += incremental_timer.ElapsedSeconds() * 1e3;
    result.incremental_passes += engine.total_sp_passes() - passes_before;

    mhbc::WallTimer cold_timer;
    const CsrGraph scratch = RebuildFromEdges(engine.graph());
    mhbc::BetweennessEngine cold(scratch);
    const auto cold_reports = cold.EstimateMany(targets, request);
    result.cold_ms += cold_timer.ElapsedSeconds() * 1e3;
    result.cold_passes += cold.total_sp_passes();

    MHBC_DCHECK(incremental.ok() && cold_reports.ok());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      result.identical = result.identical &&
                         ReportsIdentical(incremental.value()[i],
                                          cold_reports.value()[i]);
    }
  }
  result.incremental_ms /= rounds;
  result.cold_ms /= rounds;
  result.incremental_passes /= static_cast<std::uint64_t>(rounds);
  result.cold_passes /= static_cast<std::uint64_t>(rounds);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<std::string> datasets;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      datasets.push_back(argv[i]);
    }
  }
  if (datasets.empty()) {
    datasets = smoke ? std::vector<std::string>{"community-ring-300"}
                     : std::vector<std::string>{"email-like-1k",
                                                "road-like-grid45"};
  }
  const int rounds = smoke ? 3 : 6;
  const std::size_t batches[] = {1, 4, 16, 64};
  const mhbc::EstimatorKind kinds[] = {mhbc::EstimatorKind::kUniformSource,
                                       mhbc::EstimatorKind::kMetropolisHastings};

  mhbc::bench::Banner("E21", "incremental re-estimate vs cold rebuild");
  mhbc::bench::JsonReport report("e21");
  report.AddMeta("rounds", std::to_string(rounds));
  report.AddMeta("smoke", smoke ? "true" : "false");

  bool all_identical = true;
  double best_small_batch_speedup = 0.0;
  // The exit gate compares shortest-path pass counts, not wall clock:
  // pass counts are deterministic for fixed seeds, so the CI smoke run
  // cannot flake on a noisy shared runner.
  double best_small_batch_pass_ratio = 0.0;
  std::string best_small_batch_dataset;
  for (const std::string& name : datasets) {
    auto made = mhbc::MakeDataset(name);
    if (!made.ok()) {
      std::fprintf(stderr, "error: %s\n", made.status().ToString().c_str());
      return 1;
    }
    const CsrGraph& graph = made.value();
    mhbc::Table table({"estimator", "edit batch", "incr ms/round",
                       "cold ms/round", "speedup", "incr passes",
                       "cold passes", "ident"});
    std::uint64_t seed = 0xE21'0000;
    for (const mhbc::EstimatorKind kind : kinds) {
      for (const std::size_t batch : batches) {
        const RowResult row = RunRows(graph, kind, batch, rounds, seed);
        seed += 0x1000;
        const double speedup =
            row.incremental_ms > 0.0 ? row.cold_ms / row.incremental_ms : 0.0;
        all_identical = all_identical && row.identical;
        if (batch <= 4) {
          best_small_batch_speedup = std::max(best_small_batch_speedup, speedup);
          const double pass_ratio =
              row.incremental_passes > 0
                  ? static_cast<double>(row.cold_passes) /
                        static_cast<double>(row.incremental_passes)
                  : 0.0;
          if (pass_ratio > best_small_batch_pass_ratio) {
            best_small_batch_pass_ratio = pass_ratio;
            best_small_batch_dataset = name;
          }
        }
        table.AddRow({mhbc::EstimatorKindName(kind), std::to_string(batch),
                      mhbc::FormatDouble(row.incremental_ms, 3),
                      mhbc::FormatDouble(row.cold_ms, 3),
                      mhbc::FormatDouble(speedup, 2) + "x",
                      std::to_string(row.incremental_passes),
                      std::to_string(row.cold_passes),
                      row.identical ? "yes" : "NO"});
      }
    }
    mhbc::bench::EmitTable(
        &report, "E21: amortized re-estimate on " + graph.name() + " (n=" +
                     std::to_string(graph.num_vertices()) + ", m=" +
                     std::to_string(graph.num_edges()) + ")",
        table);
  }

  report.AddMeta("bit_identical", all_identical ? "true" : "false");
  report.AddMeta("best_small_batch_speedup",
                 mhbc::FormatDouble(best_small_batch_speedup, 2));
  report.AddMeta("best_small_batch_pass_ratio",
                 mhbc::FormatDouble(best_small_batch_pass_ratio, 2));
  report.AddMeta("best_small_batch_dataset", best_small_batch_dataset);
  const std::string json = report.Write();
  if (!json.empty()) std::printf("\nwrote %s\n", json.c_str());

  std::printf("\nbest small-batch (<=4 edits): %.2fx wall clock, %.2fx "
              "fewer passes, on %s\n",
              best_small_batch_speedup, best_small_batch_pass_ratio,
              best_small_batch_dataset.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: incremental and cold engines disagree on "
                 "statistical report fields\n");
    return 1;
  }
  return best_small_batch_pass_ratio > 1.0 ? 0 : 2;
}
