// E4 — Theorem 1 / Eq. 14 validation: measure mu(r) exactly, compute the
// sample bound T(eps, delta), run independent chains of that length, and
// report the empirical failure rate P[|estimate - BC| > eps] against delta.
// In the separator regime (mu ~ 1) the guarantee holds; on skewed targets
// the asymptotic bias makes the bound's premise vacuous — both regimes are
// reported.

#include <cmath>

#include "bench_common.h"
#include "core/mh_betweenness.h"
#include "core/theory.h"
#include "graph/generators.h"

int main() {
  using namespace mhbc;
  bench::Banner("E4", "(eps,delta) bound validation (Eq. 14)");
  constexpr int kChains = 30;
  const double kDelta = 0.2;

  struct Case {
    const char* name;
    CsrGraph graph;
    VertexId r;
  };
  std::vector<Case> cases;
  cases.push_back({"barbell(20,1) bridge", MakeBarbell(20, 1), 20});
  cases.push_back({"star(100) center", MakeStar(100), 0});
  cases.push_back({"caveman gateway", MakeConnectedCaveman(6, 10), 9});
  cases.push_back({"path(40) near-end", MakePath(40), 2});

  Table table({"case", "mu(r)", "bias |limit-BC|/BC", "eps", "T(Eq.14)",
               "empirical fail rate", "delta"});
  for (const Case& c : cases) {
    const double exact = ExactBetweennessSingle(c.graph, c.r);
    const auto profile = DependencyProfile(c.graph, c.r);
    const double mu = MuFromProfile(profile);
    const double limit = ChainLimitEstimate(profile);
    for (double eps : {0.1, 0.05}) {
      const std::uint64_t budget = SampleBound(mu, eps, kDelta);
      int failures = 0;
      for (int chain = 0; chain < kChains; ++chain) {
        MhOptions options;
        options.seed = 0xE4 + static_cast<std::uint64_t>(chain) * 104729;
        MhBetweennessSampler sampler(c.graph, options);
        if (std::fabs(sampler.Estimate(c.r, budget) - exact) > eps) {
          ++failures;
        }
      }
      table.AddRow({c.name, FormatDouble(mu, 2),
                    FormatDouble((limit - exact) / exact, 3),
                    FormatDouble(eps, 2), FormatCount(budget),
                    FormatDouble(static_cast<double>(failures) / kChains, 3),
                    FormatDouble(kDelta, 2)});
    }
  }
  bench::PrintTable(
      "E4: empirical failure rate vs delta at the Eq. 14 budget (30 chains)",
      table);
  return 0;
}
