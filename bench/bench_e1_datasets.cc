// E1 — Dataset statistics table (the literature's standard "Table 1").
// Regenerates: name, SNAP stand-in, n, m, density, degree stats, diameter.

#include "bench_common.h"
#include "datasets/registry.h"
#include "graph/graph_stats.h"

int main() {
  using namespace mhbc;
  bench::Banner("E1", "dataset statistics (Table 1 analogue)");

  Table table({"dataset", "stands in for", "family", "n", "m", "density",
               "deg min/avg/max", "diameter", "triangles", "clustering"});
  for (const DatasetSpec& spec : DatasetRegistry()) {
    const CsrGraph graph = spec.make();
    const GraphStats s = ComputeGraphStats(graph);
    table.AddRow({spec.name, spec.stands_in_for, spec.family,
                  FormatCount(s.num_vertices), FormatCount(s.num_edges),
                  FormatScientific(s.density, 2),
                  std::to_string(s.min_degree) + "/" +
                      FormatDouble(s.avg_degree, 1) + "/" +
                      std::to_string(s.max_degree),
                  std::to_string(s.diameter) +
                      (s.exact_diameter ? "" : "+"),
                  FormatCount(s.triangles),
                  FormatDouble(s.global_clustering, 3)});
  }
  bench::PrintTable("E1: datasets (diameter '+' = double-sweep lower bound)",
                    table);
  return 0;
}
