// E11 — Burn-in ablation: the paper argues (via the Latuszynski et al.
// bound) that no burn-in is needed. At a fixed total pass budget, any
// budget spent on burn-in is lost variance reduction — errors should be
// flat or worse with burn-in, confirming the claim.

#include <cmath>

#include "bench_common.h"
#include "core/mh_betweenness.h"
#include "core/theory.h"
#include "datasets/registry.h"
#include "util/stats.h"

int main() {
  using namespace mhbc;
  bench::Banner("E11", "burn-in ablation (paper: no burn-in needed)");
  constexpr std::uint64_t kTotal = 1'200;
  constexpr int kTrials = 20;

  Table table({"dataset", "target", "burn-in", "kept samples",
               "mean |est-limit|", "stddev"});
  for (const std::string& name :
       {std::string("caveman-36"), std::string("community-ring-300")}) {
    const CsrGraph graph = std::move(MakeDataset(name)).value();
    const bench::TargetSet targets = bench::PickTargets(graph);
    const VertexId r = targets.hub;
    const double limit = ChainLimitEstimate(DependencyProfile(graph, r));
    for (std::uint64_t burn : {0ULL, 120ULL, 300ULL, 600ULL}) {
      RunningStats errors;
      for (int trial = 0; trial < kTrials; ++trial) {
        MhOptions options;
        options.seed = 0xE11 + static_cast<std::uint64_t>(trial) * 31337;
        options.burn_in = burn;
        MhBetweennessSampler sampler(graph, options);
        const double estimate = sampler.Estimate(r, kTotal - burn);
        errors.Add(std::fabs(estimate - limit));
      }
      table.AddRow({name, "hub", FormatCount(burn), FormatCount(kTotal - burn),
                    FormatScientific(errors.mean(), 2),
                    FormatScientific(errors.stddev(), 2)});
    }
  }
  bench::PrintTable(
      "E11: error vs burn-in at a fixed 1200-pass budget (20 trials)", table);
  return 0;
}
