// E6 — Chain-mixing diagnostics ("trace figure"): acceptance rate,
// distinct states visited, f-series autocorrelation, and effective sample
// size of the paper's chain per dataset/target. Independence MH with a
// near-flat target mixes in O(1); skewed targets reject more and stick.

#include "bench_common.h"
#include "core/diagnostics.h"
#include "core/mh_betweenness.h"
#include "core/theory.h"
#include "datasets/registry.h"

int main() {
  using namespace mhbc;
  bench::Banner("E6", "chain mixing diagnostics");
  constexpr std::uint64_t kIterations = 5'000;

  Table table({"dataset", "target", "mu(r)", "accept rate", "distinct states",
               "rho(1)", "rho(8)", "ESS", "ESS/T"});
  for (const std::string& name : DefaultExperimentDatasets()) {
    const CsrGraph graph = std::move(MakeDataset(name)).value();
    const bench::TargetSet targets = bench::PickTargets(graph);
    for (const auto& [label, r] :
         {std::pair<const char*, VertexId>{"hub", targets.hub},
          {"median", targets.median}}) {
      const auto profile = DependencyProfile(graph, r);
      if (MeanDependency(profile) == 0.0) continue;
      MhOptions options;
      options.seed = 0xE6;
      options.record_trace = true;
      MhBetweennessSampler sampler(graph, options);
      const MhResult result = sampler.Run(r, kIterations);
      const double ess = EffectiveSampleSize(result.f_series);
      table.AddRow(
          {name, label, FormatDouble(MuFromProfile(profile), 1),
           FormatDouble(result.diagnostics.acceptance_rate(), 3),
           FormatCount(result.diagnostics.distinct_states),
           FormatDouble(Autocorrelation(result.f_series, 1), 3),
           FormatDouble(Autocorrelation(result.f_series, 8), 3),
           FormatCount(static_cast<std::uint64_t>(ess)),
           FormatDouble(ess / static_cast<double>(kIterations + 1), 3)});
    }
  }
  bench::PrintTable("E6: mixing diagnostics over a T=5000 chain", table);
  return 0;
}
