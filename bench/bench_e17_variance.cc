// E17 — Analytic variance decomposition (extension): exact single-sample
// variances of every unbiased source sampler, from the exact dependency
// profile. This is the quantitative version of [13]'s "optimal sampling"
// argument the paper builds on: the closer a practical distribution tracks
// delta, the smaller its variance — and the chain's stationary spread
// explains the E6 mixing numbers.

#include <cmath>

#include "bench_common.h"
#include "core/theory.h"
#include "core/variance.h"
#include "datasets/registry.h"
#include "sp/distance.h"

int main() {
  using namespace mhbc;
  bench::Banner("E17", "analytic sampler variances from exact profiles");

  Table table({"dataset", "target", "BC(r)", "mu(r)", "Var uniform",
               "Var distance", "Var optimal", "Var_pi[f] (chain)"});
  for (const std::string& name : DefaultExperimentDatasets()) {
    const CsrGraph graph = std::move(MakeDataset(name)).value();
    const bench::TargetSet targets = bench::PickTargets(graph);
    for (const auto& [label, r] :
         {std::pair<const char*, VertexId>{"hub", targets.hub},
          {"median", targets.median}}) {
      const auto profile = DependencyProfile(graph, r);
      double total = 0.0;
      for (double d : profile) total += d;
      if (total == 0.0) continue;
      const double n = static_cast<double>(graph.num_vertices());
      const double bc = total / (n * (n - 1.0));

      const auto dist = BfsDistances(graph, r);
      std::vector<double> weights(profile.size(), 0.0);
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        if (v != r && dist[v] != kUnreachedDistance) {
          weights[v] = static_cast<double>(dist[v]);
        }
      }
      table.AddRow({name, label, FormatScientific(bc, 2),
                    FormatDouble(MuFromProfile(profile), 1),
                    FormatScientific(UniformSamplerVariance(profile), 2),
                    FormatScientific(WeightedSamplerVariance(profile, weights), 2),
                    FormatScientific(OptimalSamplerVariance(profile), 2),
                    FormatScientific(ChainStationaryVariance(profile), 2)});
    }
  }
  bench::PrintTable(
      "E17: exact per-sample variances (k-sample estimator divides by k)",
      table);
  return 0;
}
