// E16 — Adaptive-budget extension: the Eq. 14 budget needs mu(r) (as hard
// as BC(r) itself); the adaptive runner stops from the chain's own
// variance. This harness compares realized adaptive budgets and errors
// against the oracle Eq. 14 budget across mu regimes.

#include <cmath>

#include "bench_common.h"
#include "core/adaptive.h"
#include "core/theory.h"
#include "datasets/registry.h"
#include "graph/generators.h"

int main() {
  using namespace mhbc;
  bench::Banner("E16", "adaptive stopping vs the oracle Eq. 14 budget");
  const double kEps = 0.05;

  struct Case {
    std::string name;
    CsrGraph graph;
    VertexId r;
  };
  std::vector<Case> cases;
  cases.push_back({"barbell(20,1) bridge", MakeBarbell(20, 1), 20});
  cases.push_back({"caveman(6,10) gateway", MakeConnectedCaveman(6, 10), 9});
  {
    CsrGraph g = std::move(MakeDataset("email-like-1k")).value();
    const VertexId hub = bench::PickTargets(g).hub;
    cases.push_back({"email-like-1k hub", std::move(g), hub});
  }

  Table table({"case", "mu(r)", "T(Eq.14, oracle)", "T(adaptive)",
               "converged", "|est-limit|", "half-width"});
  for (const Case& c : cases) {
    const auto profile = DependencyProfile(c.graph, c.r);
    const double mu = MuFromProfile(profile);
    const double limit = ChainLimitEstimate(profile);
    const std::uint64_t oracle = SampleBound(mu, kEps, 0.1);

    AdaptiveOptions options;
    options.seed = 0xE16;
    options.epsilon = kEps;
    options.max_iterations = 1 << 17;
    const AdaptiveResult result = AdaptiveMhEstimate(c.graph, c.r, options);
    table.AddRow({c.name, FormatDouble(mu, 1), FormatCount(oracle),
                  FormatCount(result.iterations),
                  result.converged ? "yes" : "no",
                  FormatScientific(std::fabs(result.estimate - limit), 2),
                  FormatScientific(result.half_width, 2)});
  }
  bench::PrintTable(
      "E16: adaptive budgets track the mu regime without knowing mu", table);
  return 0;
}
