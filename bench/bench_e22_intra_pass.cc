// E22 — intra-pass scaling: frontier-parallel SPD passes (sp/bfs_spd.h,
// SpdOptions::num_threads) at 1/2/4/8 threads, for both the classic
// top-down and the hybrid direction-optimizing kernel, across the
// registry graphs.
//
// For each (graph, kernel, threads) row the harness reports
//
//   * passes/sec          — forward SPD passes only,
//   * fused passes/sec    — pass + level-parallel dependency accumulation
//                           (the true per-sample unit every estimator
//                           pays),
//   * speedup / fused x   — against the 1-thread row of the same kernel,
//   * det                 — bit-identity gate against the 1-thread run:
//                           dist/sigma/order/level_offsets, predecessor
//                           lists, and dependency vectors must match
//                           exactly ("!DET" must never appear; the
//                           process exits 1 if it does).
//
//   bench_e22_intra_pass [sources_per_graph] [--smoke] [--grain=<g>]
//
// Defaults: 64 sources per graph, the shipped parallel_grain; --smoke
// drops to 8 sources (the CI artifact run); --grain overrides the
// per-level parallel cutoff (0 forces every level through the sharded
// steps — the worst case for overhead, the best case for coverage).
// Timing loops report the fastest-of-3 wall clock; the JSON twin lands
// in BENCH_e22.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datasets/registry.h"
#include "sp/bfs_spd.h"
#include "sp/dependency.h"
#include "util/timer.h"

namespace {

using namespace mhbc;

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

std::vector<VertexId> SpreadSources(VertexId n, std::size_t count) {
  std::vector<VertexId> sources;
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<VertexId>(
        (static_cast<std::uint64_t>(n) * i) / count));
  }
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

struct ThreadRun {
  double pass_seconds = 0.0;
  double fused_seconds = 0.0;
};

ThreadRun TimeAtThreads(const CsrGraph& graph, const SpdOptions& options,
                        const std::vector<VertexId>& sources) {
  ThreadRun run;
  BfsSpd bfs(graph, options);
  // The accumulator borrows the pass engine's pool, exactly as the
  // oracle/Brandes wiring does, so "fused" times the shipped composition.
  DependencyAccumulator accumulator(graph, bfs.intra_pool(),
                                    options.parallel_grain);
  constexpr int kRepeats = 3;
  double best_pass = -1.0;
  double best_fused = -1.0;
  for (int r = 0; r < kRepeats; ++r) {
    WallTimer pass_timer;
    for (VertexId s : sources) bfs.Run(s);
    const double pass_seconds = pass_timer.ElapsedSeconds();
    if (best_pass < 0.0 || pass_seconds < best_pass) best_pass = pass_seconds;

    WallTimer fused_timer;
    for (VertexId s : sources) {
      bfs.Run(s);
      accumulator.Accumulate(bfs);
    }
    const double fused_seconds = fused_timer.ElapsedSeconds();
    if (best_fused < 0.0 || fused_seconds < best_fused) {
      best_fused = fused_seconds;
    }
  }
  run.pass_seconds = best_pass;
  run.fused_seconds = best_fused;
  return run;
}

/// Per-row bit-identity gate: the `threads`-wide engine must reproduce
/// the 1-thread engine exactly on every source — DAG (dist, sigma,
/// canonical order, level offsets), predecessor lists, and dependency
/// vectors.
bool MatchesSequential(const CsrGraph& graph, const SpdOptions& options,
                       const std::vector<VertexId>& sources) {
  SpdOptions sequential_options = options;
  sequential_options.num_threads = 1;
  BfsSpd sequential(graph, sequential_options);
  BfsSpd parallel(graph, options);
  DependencyAccumulator sequential_acc(graph);
  DependencyAccumulator parallel_acc(graph, parallel.intra_pool(),
                                     options.parallel_grain);
  for (VertexId s : sources) {
    sequential.Run(s);
    parallel.Run(s);
    const ShortestPathDag& a = sequential.dag();
    const ShortestPathDag& b = parallel.dag();
    if (a.dist != b.dist || a.sigma != b.sigma || a.order != b.order ||
        a.level_offsets != b.level_offsets) {
      return false;
    }
    if (a.has_predecessors != b.has_predecessors) return false;
    if (a.has_predecessors) {
      for (VertexId v : a.order) {
        const auto pa = a.predecessors(v);
        const auto pb = b.predecessors(v);
        if (pa.size() != pb.size() ||
            !std::equal(pa.begin(), pa.end(), pb.begin())) {
          return false;
        }
      }
    }
    if (sequential_acc.Accumulate(sequential) !=
        parallel_acc.Accumulate(parallel)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("E22", "intra-pass scaling: frontier-parallel SPD passes "
                       "at 1/2/4/8 threads");
  std::size_t sources_per_graph = 64;
  bool smoke = false;
  SpdOptions defaults;  // shipped kernel defaults + parallel_grain
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--grain=", 8) == 0) {
      char* end = nullptr;
      defaults.parallel_grain = std::strtoull(argv[i] + 8, &end, 10);
      if (end == argv[i] + 8 || *end != '\0') {
        std::fprintf(stderr, "bad --grain value '%s'\n", argv[i] + 8);
        return 2;
      }
    } else {
      char* end = nullptr;
      sources_per_graph = std::strtoull(argv[i], &end, 10);
      if (argv[i][0] == '-' || end == argv[i] || *end != '\0' ||
          sources_per_graph == 0) {
        std::fprintf(stderr,
                     "unknown argument '%s'\nusage: %s [sources_per_graph] "
                     "[--smoke] [--grain=<g>]\n",
                     argv[i], argv[0]);
        return 2;
      }
    }
  }
  if (smoke) sources_per_graph = std::min<std::size_t>(sources_per_graph, 8);
  bench::JsonReport json("e22");
  json.AddMeta("sources_per_graph", std::to_string(sources_per_graph));
  json.AddMeta("smoke", smoke ? "true" : "false");
  json.AddMeta("parallel_grain", std::to_string(defaults.parallel_grain));

  bool all_deterministic = true;
  Table table({"graph", "n", "m", "kernel", "threads", "passes/s",
               "fused p/s", "speedup", "fused x", "det"});

  for (const DatasetSpec& spec : DatasetRegistry()) {
    const CsrGraph graph = spec.make();
    const std::vector<VertexId> sources =
        SpreadSources(graph.num_vertices(), sources_per_graph);
    const double passes = static_cast<double>(sources.size());

    for (SpdKernel kernel : {SpdKernel::kClassic, SpdKernel::kHybrid}) {
      SpdOptions options = defaults;
      options.kernel = kernel;
      double base_pps = 0.0;
      double base_fps = 0.0;
      for (unsigned threads : kThreadCounts) {
        options.num_threads = threads;
        const ThreadRun run = TimeAtThreads(graph, options, sources);
        const bool det =
            threads == 1 || MatchesSequential(graph, options, sources);
        all_deterministic = all_deterministic && det;

        const double pps = passes / run.pass_seconds;
        const double fps = passes / run.fused_seconds;
        if (threads == 1) {
          base_pps = pps;
          base_fps = fps;
        }
        table.AddRow({spec.name, FormatCount(graph.num_vertices()),
                      FormatCount(graph.num_edges()),
                      kernel == SpdKernel::kClassic ? "classic" : "hybrid",
                      std::to_string(threads), FormatDouble(pps, 0),
                      FormatDouble(fps, 0),
                      FormatDouble(pps / base_pps, 2) + "x",
                      FormatDouble(fps / base_fps, 2) + "x",
                      det ? "ok" : "!DET"});
      }
    }
  }

  bench::EmitTable(
      &json,
      "E22: intra-pass thread scaling (passes/sec; speedups vs the 1-thread "
      "row of the same kernel; !DET flags a sequential-equivalence "
      "violation — must never appear)",
      table);
  const std::string written = json.Write();
  if (!written.empty()) std::printf("wrote %s\n", written.c_str());
  if (!all_deterministic) {
    // Fail the run (and the CI release-bench job): a !DET row means a
    // parallel pass diverged from the sequential kernel.
    std::fprintf(stderr,
                 "FAIL: intra-pass determinism violation (!DET)\n");
    return 1;
  }
  return 0;
}
