// E23 — serving-stack load generation: latency/throughput of mhbc_serve's
// in-process core under concurrent estimate traffic with interleaved
// mutations.
//
// PR 8 added the serving layer (src/serve/): a GraphCatalog of warm
// engine-session pools behind a bounded worker pool, with a
// writer-preferred epoch scheme so ApplyDelta mutations drain in-flight
// readers and install atomically. This harness drives that machine the
// way a daemon would be driven — N client threads issuing estimate
// requests over the NDJSON protocol (Server::Call, the same entry point
// the TCP loop uses), one mutator thread streaming a pre-generated delta
// chain through `mutate` — and reports:
//
//   p50/p99 request latency, sustained QPS, mutation count, and the
//   admission counters (overload / deadline rejections).
//
// It is also a CORRECTNESS GATE, not just a stopwatch: every response is
// checked for protocol health (parseable, expected shape, plausible
// epoch), and a deterministic sample of responses is replayed against a
// cold engine built on that epoch's graph — the statistical report
// fields must match bit for bit (the catalog's epoch contract,
// src/serve/catalog.h). The process exits nonzero on any protocol or
// epoch error, so CI wiring this harness in gates on them.
//
//   bench_e23_serve [--smoke] [dataset ...]
//     default dataset: email-like-1k
//     --smoke: caveman-36, fewer requests (the CI configuration)
//
// Emits BENCH_e23.json next to the markdown output (bench_common.h).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "centrality/engine.h"
#include "datasets/registry.h"
#include "graph/dynamic_graph.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using mhbc::CsrGraph;
using mhbc::EstimateReport;
using mhbc::GraphDelta;
using mhbc::GraphEdit;
using mhbc::VertexId;
using mhbc::serve::GraphCatalog;
using mhbc::serve::ParseServeResponse;
using mhbc::serve::Server;
using mhbc::serve::ServerOptions;
using mhbc::serve::ServeResponse;
using mhbc::serve::WireReport;

struct LoadConfig {
  std::size_t clients = 4;
  std::size_t requests_per_client = 200;
  std::size_t mutations = 8;
  std::size_t edits_per_mutation = 3;
  std::uint64_t samples = 500;
  std::size_t replay_cap = 24;  // cold-engine bit-identity replays
};

struct Observation {
  std::uint64_t epoch = 0;
  std::uint64_t seed = 0;
  double latency_ms = 0.0;
  std::vector<WireReport> reports;
};

struct LoadResult {
  std::vector<Observation> observations;
  std::vector<std::string> mutate_lines;
  double wall_seconds = 0.0;
  std::size_t protocol_errors = 0;
  mhbc::serve::ServerStats server_stats;
};

std::string DeltaToText(const GraphDelta& delta) {
  std::string text;
  for (const GraphEdit& edit : delta.edits()) {
    switch (edit.kind) {
      case GraphEdit::Kind::kAddEdge:
        text += "add ";
        text += std::to_string(edit.u);
        text += ' ';
        text += std::to_string(edit.v);
        if (edit.weight != 1.0) {
          text += ' ';
          text += std::to_string(edit.weight);
        }
        break;
      case GraphEdit::Kind::kRemoveEdge:
        text += "remove ";
        text += std::to_string(edit.u);
        text += ' ';
        text += std::to_string(edit.v);
        break;
      case GraphEdit::Kind::kAddVertex:
        text += "addvertex";
        break;
    }
    text += "\\n";
  }
  return text;
}

std::string EstimateLine(const std::string& graph,
                         const std::vector<VertexId>& targets,
                         std::uint64_t samples, std::uint64_t seed) {
  std::string vertices;
  for (const VertexId v : targets) {
    if (!vertices.empty()) vertices += ", ";
    vertices += std::to_string(v);
  }
  return "{\"id\": " + std::to_string(seed) +
         ", \"method\": \"estimate\", \"graph\": \"" + graph +
         "\", \"vertices\": [" + vertices +
         "], \"samples\": " + std::to_string(samples) +
         ", \"seed\": " + std::to_string(seed) + "}";
}

/// Drives the server with `config.clients` reader threads plus one
/// mutator thread that spaces `config.mutations` mutations across the
/// run by watching the completed-request counter.
LoadResult RunLoad(Server& server, const std::string& graph_name,
                   const std::vector<VertexId>& targets,
                   const std::vector<GraphDelta>& deltas,
                   const LoadConfig& config) {
  LoadResult result;
  std::vector<std::vector<Observation>> per_thread(config.clients);
  std::vector<std::size_t> errors_per_thread(config.clients, 0);
  std::atomic<bool> clients_done{false};

  mhbc::WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(config.clients + 1);
  for (std::size_t t = 0; t < config.clients; ++t) {
    threads.emplace_back([&, t] {
      mhbc::WallTimer latency;
      for (std::size_t i = 0; i < config.requests_per_client; ++i) {
        const std::uint64_t seed = 100'000 * (t + 1) + i;
        const std::string line =
            EstimateLine(graph_name, targets, config.samples, seed);
        latency.Reset();
        const std::string response_line = server.Call(line);
        const double latency_ms = latency.ElapsedSeconds() * 1000.0;
        auto response = ParseServeResponse(response_line);
        if (!response.ok() || !response.value().ok ||
            response.value().reports.size() != targets.size()) {
          ++errors_per_thread[t];
          continue;
        }
        per_thread[t].push_back(Observation{response.value().epoch, seed,
                                            latency_ms,
                                            response.value().reports});
      }
    });
  }
  threads.emplace_back([&] {
    // One mutation roughly every 1/(M+1) of the run, measured in
    // completed requests so the pacing needs no wall clock.
    const std::size_t total = config.clients * config.requests_per_client;
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      const std::size_t threshold = (i + 1) * total / (deltas.size() + 1);
      while (server.Stats().completed < threshold &&
             !clients_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      result.mutate_lines.push_back(server.Call(
          "{\"id\": " + std::to_string(1'000'000 + i) +
          ", \"method\": \"mutate\", \"graph\": \"" + graph_name +
          "\", \"edits\": \"" + DeltaToText(deltas[i]) + "\"}"));
    }
  });
  for (std::size_t t = 0; t < config.clients; ++t) threads[t].join();
  clients_done.store(true, std::memory_order_release);
  threads.back().join();
  result.wall_seconds = wall.ElapsedSeconds();

  for (std::size_t t = 0; t < config.clients; ++t) {
    result.protocol_errors += errors_per_thread[t];
    result.observations.insert(result.observations.end(),
                               per_thread[t].begin(), per_thread[t].end());
  }
  result.server_stats = server.Stats();
  return result;
}

double PercentileMs(std::vector<double> sorted_latencies, double q) {
  if (sorted_latencies.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_latencies.size() - 1));
  return sorted_latencies[index];
}

bool ReportsIdentical(const WireReport& wire, const EstimateReport& cold) {
  return wire.value == cold.value && wire.std_error == cold.std_error &&
         wire.ci_half_width == cold.ci_half_width && wire.ess == cold.ess &&
         wire.acceptance_rate == cold.acceptance_rate &&
         wire.samples_used == cold.samples_used &&
         wire.converged == cold.converged;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<std::string> datasets;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      datasets.push_back(argv[i]);
    }
  }
  if (datasets.empty()) {
    datasets = smoke ? std::vector<std::string>{"caveman-36"}
                     : std::vector<std::string>{"email-like-1k"};
  }
  LoadConfig config;
  if (smoke) {
    config.requests_per_client = 25;
    config.mutations = 3;
    config.samples = 200;
    config.replay_cap = 12;
  }

  mhbc::bench::Banner("E23", "serving-stack load: latency/QPS under "
                             "concurrent reads with interleaved mutations");
  mhbc::bench::JsonReport report("e23");
  report.AddMeta("smoke", smoke ? "true" : "false");
  report.AddMeta("clients", std::to_string(config.clients));
  report.AddMeta("requests_per_client",
                 std::to_string(config.requests_per_client));
  report.AddMeta("samples_per_request", std::to_string(config.samples));

  mhbc::Table table({"dataset", "clients", "requests", "qps", "p50_ms",
                     "p99_ms", "mutations", "overload", "proto_err",
                     "epoch_err", "replayed"});
  std::size_t total_protocol_errors = 0;
  std::size_t total_epoch_errors = 0;

  for (const std::string& name : datasets) {
    auto graph = mhbc::MakeDataset(name);
    if (!graph.ok()) {
      std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
      return 3;
    }

    // The delta chain and its per-epoch snapshots, pre-generated so the
    // replay gate can rebuild the exact graph any response was served on.
    std::vector<GraphDelta> deltas;
    std::vector<CsrGraph> snapshots;
    {
      mhbc::DynamicGraph dyn(graph.value());
      snapshots.push_back(dyn.Csr());
      for (std::size_t i = 0; i < config.mutations; ++i) {
        const GraphDelta delta = mhbc::MakeRandomEditScript(
            dyn.Csr(), config.edits_per_mutation, 0xe23 + i);
        if (!dyn.Apply(delta).ok()) {
          std::fprintf(stderr, "error: delta chain generation failed\n");
          return 3;
        }
        deltas.push_back(delta);
        snapshots.push_back(dyn.Csr());
      }
    }
    const mhbc::bench::TargetSet targets = mhbc::bench::PickTargets(
        snapshots.front());
    const std::vector<VertexId> vertices = {targets.hub, targets.median,
                                            targets.peripheral};

    const mhbc::EngineOptions engine_options;
    GraphCatalog catalog;
    if (!catalog.AddGraph(name, graph.value(), engine_options, config.clients)
             .ok()) {
      std::fprintf(stderr, "error: catalog setup failed\n");
      return 3;
    }
    ServerOptions server_options;
    server_options.workers = config.clients;
    server_options.queue_capacity = 4 * config.clients;
    Server server(&catalog, server_options);

    LoadResult load = RunLoad(server, name, vertices, deltas, config);

    // --- Gate 1: protocol health of every response -----------------------
    std::size_t epoch_errors = 0;
    for (const Observation& observed : load.observations) {
      if (observed.epoch > deltas.size()) ++epoch_errors;
    }
    std::uint64_t expected_epoch = 1;
    for (const std::string& line : load.mutate_lines) {
      auto response = ParseServeResponse(line);
      if (!response.ok() || !response.value().ok ||
          response.value().epoch != expected_epoch) {
        ++epoch_errors;
      }
      ++expected_epoch;
    }

    // --- Gate 2: cold-engine bit-identity replay (sampled) ---------------
    std::size_t replayed = 0;
    const std::size_t stride =
        std::max<std::size_t>(1, load.observations.size() / config.replay_cap);
    for (std::size_t i = 0; i < load.observations.size(); i += stride) {
      const Observation& observed = load.observations[i];
      if (observed.epoch > deltas.size()) continue;  // already counted
      mhbc::BetweennessEngine cold(snapshots[observed.epoch], engine_options);
      mhbc::EstimateRequest request;
      request.samples = config.samples;
      request.seed = observed.seed;
      auto expected = cold.EstimateMany(vertices, request);
      if (!expected.ok() || expected.value().size() != vertices.size()) {
        ++epoch_errors;
        continue;
      }
      for (std::size_t v = 0; v < vertices.size(); ++v) {
        if (!ReportsIdentical(observed.reports[v], expected.value()[v])) {
          ++epoch_errors;
        }
      }
      ++replayed;
    }

    std::vector<double> latencies;
    latencies.reserve(load.observations.size());
    for (const Observation& observed : load.observations) {
      latencies.push_back(observed.latency_ms);
    }
    std::sort(latencies.begin(), latencies.end());
    const double qps =
        load.wall_seconds > 0.0
            ? static_cast<double>(load.observations.size()) / load.wall_seconds
            : 0.0;
    table.AddRow({name, std::to_string(config.clients),
                  std::to_string(load.observations.size()),
                  mhbc::FormatDouble(qps, 1),
                  mhbc::FormatDouble(PercentileMs(latencies, 0.50), 3),
                  mhbc::FormatDouble(PercentileMs(latencies, 0.99), 3),
                  std::to_string(load.mutate_lines.size()),
                  std::to_string(load.server_stats.rejected_overload),
                  std::to_string(load.protocol_errors),
                  std::to_string(epoch_errors), std::to_string(replayed)});
    total_protocol_errors += load.protocol_errors;
    total_epoch_errors += epoch_errors;
  }

  mhbc::bench::PrintTable("E23 — serving latency/QPS (epoch gate)", table);
  report.AddTable("serve_load", table);
  report.AddMeta("protocol_errors", std::to_string(total_protocol_errors));
  report.AddMeta("epoch_errors", std::to_string(total_epoch_errors));
  const std::string written = report.Write();
  if (!written.empty()) std::printf("json: %s\n", written.c_str());

  if (total_protocol_errors != 0 || total_epoch_errors != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu protocol error(s), %zu epoch error(s)\n",
                 total_protocol_errors, total_epoch_errors);
    return 1;
  }
  std::printf("gate: zero protocol errors, zero epoch errors\n");
  return 0;
}
