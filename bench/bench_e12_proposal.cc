// E12 — Proposal-distribution ablation: the paper's uniform proposal vs a
// degree-proportional proposal (with Hastings correction). Both target the
// same stationary distribution; the ablation measures whether proposing
// high-degree vertices (which tend to carry dependency mass) buys
// acceptance rate or accuracy.

#include <cmath>

#include "bench_common.h"
#include "core/mh_betweenness.h"
#include "core/theory.h"
#include "datasets/registry.h"
#include "util/stats.h"

int main() {
  using namespace mhbc;
  bench::Banner("E12", "proposal ablation: uniform vs degree-proportional");
  constexpr std::uint64_t kBudget = 1'000;
  constexpr int kTrials = 15;

  Table table({"dataset", "target", "proposal", "accept rate",
               "mean |est-limit|", "mean |rb-exact|"});
  for (const std::string& name :
       {std::string("email-like-1k"), std::string("community-ring-300")}) {
    const CsrGraph graph = std::move(MakeDataset(name)).value();
    const bench::TargetSet targets = bench::PickTargets(graph);
    const VertexId r = targets.hub;
    const double exact = ExactBetweennessSingle(graph, r);
    const double limit = ChainLimitEstimate(DependencyProfile(graph, r));
    for (ProposalKind kind :
         {ProposalKind::kUniform, ProposalKind::kDegreeProportional}) {
      RunningStats chain_err, rb_err, accept;
      for (int trial = 0; trial < kTrials; ++trial) {
        MhOptions options;
        options.seed = 0xE12 + static_cast<std::uint64_t>(trial) * 271;
        options.proposal = kind;
        MhBetweennessSampler sampler(graph, options);
        const MhResult result = sampler.Run(r, kBudget);
        chain_err.Add(std::fabs(result.estimate - limit));
        rb_err.Add(std::fabs(result.proposal_estimate - exact));
        accept.Add(result.diagnostics.acceptance_rate());
      }
      table.AddRow({name, "hub",
                    kind == ProposalKind::kUniform ? "uniform" : "degree",
                    FormatDouble(accept.mean(), 3),
                    FormatScientific(chain_err.mean(), 2),
                    FormatScientific(rb_err.mean(), 2)});
    }
  }
  bench::PrintTable(
      "E12: acceptance and error by proposal at T=1000 (15 trials)", table);
  return 0;
}
