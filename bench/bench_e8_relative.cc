// E8 — Relative betweenness score (Eq. 23 / Theorem 4): the joint-space
// estimate of BC_{rj}(ri) against (a) the Eq. 23 definition (uniform
// average of clipped ratios) and (b) the chain's stationary limit
// E_{P_rj}[clipped ratio]. The estimate converges to (b); the gap (b)-(a)
// is the same pi-weighted-vs-uniform phenomenon as in E2, and it cancels
// in the Eq. 22 ratio (E7).

#include <cmath>

#include "bench_common.h"
#include "core/joint_space.h"
#include "core/theory.h"
#include "graph/generators.h"

int main() {
  using namespace mhbc;
  bench::Banner("E8", "relative betweenness scores (Eq. 23)");
  const std::vector<std::uint64_t> kBudgets{1'000, 4'000, 16'000};

  struct Case {
    const char* name;
    CsrGraph graph;
    VertexId ri;
    VertexId rj;
  };
  std::vector<Case> cases;
  cases.push_back({"barbell(5,3): bridge vs bridge", MakeBarbell(5, 3), 5, 7});
  cases.push_back({"caveman(6,10): gateways", MakeConnectedCaveman(6, 10), 9, 19});
  cases.push_back({"path(20): center vs quarter", MakePath(20), 10, 5});

  Table table({"case", "T", "|M(j)|", "estimate", "chain limit", "Eq.23 exact",
               "|est-limit|", "|est-Eq23|"});
  for (const Case& c : cases) {
    const auto profile_i = DependencyProfile(c.graph, c.ri);
    const auto profile_j = DependencyProfile(c.graph, c.rj);
    const double limit = ChainLimitRelative(profile_i, profile_j);
    const double eq23 = ExactRelativeBetweenness(profile_i, profile_j);
    for (std::uint64_t budget : kBudgets) {
      JointOptions options;
      options.seed = 0xE8 + budget;
      JointSpaceSampler sampler(c.graph, {c.ri, c.rj}, options);
      const JointResult result = sampler.Run(budget);
      const double estimate = result.relative[1][0];  // BC_{rj}(ri)
      table.AddRow({c.name, FormatCount(budget),
                    FormatCount(result.samples_per_target[1]),
                    FormatDouble(estimate, 4), FormatDouble(limit, 4),
                    FormatDouble(eq23, 4),
                    FormatScientific(std::fabs(estimate - limit), 2),
                    FormatScientific(std::fabs(estimate - eq23), 2)});
    }
  }
  bench::PrintTable(
      "E8: BC_{rj}(ri) estimates vs the chain limit and the Eq. 23 value",
      table);
  return 0;
}
