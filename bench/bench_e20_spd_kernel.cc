// E20 — SPD kernel shoot-out: classic top-down vs direction-optimizing
// hybrid traversal (sp/bfs_spd.h) across the registry graphs.
//
// For each dataset the harness runs the same spread source set through
// both kernels and reports
//
//   * passes/sec          — forward SPD passes only,
//   * fused passes/sec    — pass + dependency accumulation (the true
//                           per-sample unit every estimator pays),
//   * edges examined      — per pass, per kernel (hardware-independent),
//   * direction switches  — per pass (hybrid),
//   * det                 — dist/sigma/order bit-identity check between
//                           the kernels ("!DET" must never appear).
//
//   bench_e20_spd_kernel [sources_per_graph] [--smoke]
//                        [--alpha=<a>] [--beta=<b>]
//
// Defaults: 64 sources per graph and the SpdOptions defaults; --smoke
// drops to 8 sources (the CI artifact run); --alpha/--beta override the
// hybrid kernel's switch thresholds (this is the harness the defaults
// were tuned with). Timing loops are repeated so the fastest-of-3 wall
// clock is reported; the JSON twin lands in BENCH_e20.json.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "datasets/registry.h"
#include "graph/generators.h"
#include "sp/bfs_spd.h"
#include "sp/dependency.h"
#include "util/timer.h"

namespace {

using namespace mhbc;

std::vector<VertexId> SpreadSources(VertexId n, std::size_t count) {
  std::vector<VertexId> sources;
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<VertexId>(
        (static_cast<std::uint64_t>(n) * i) / count));
  }
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

struct KernelRun {
  double pass_seconds = 0.0;
  double fused_seconds = 0.0;
  std::uint64_t edges_examined = 0;
  std::uint64_t direction_switches = 0;
  std::uint64_t bottom_up_levels = 0;
};

KernelRun TimeKernel(const CsrGraph& graph, const SpdOptions& options,
                     const std::vector<VertexId>& sources) {
  KernelRun run;
  BfsSpd bfs(graph, options);
  DependencyAccumulator accumulator(graph);
  constexpr int kRepeats = 3;
  double best_pass = -1.0;
  double best_fused = -1.0;
  for (int r = 0; r < kRepeats; ++r) {
    WallTimer pass_timer;
    for (VertexId s : sources) bfs.Run(s);
    const double pass_seconds = pass_timer.ElapsedSeconds();
    if (best_pass < 0.0 || pass_seconds < best_pass) best_pass = pass_seconds;

    WallTimer fused_timer;
    for (VertexId s : sources) {
      bfs.Run(s);
      accumulator.Accumulate(bfs);
    }
    const double fused_seconds = fused_timer.ElapsedSeconds();
    if (best_fused < 0.0 || fused_seconds < best_fused) {
      best_fused = fused_seconds;
    }
  }
  run.pass_seconds = best_pass;
  run.fused_seconds = best_fused;
  // Work counters for exactly one sweep over the source set.
  BfsSpd counter(graph, options);
  for (VertexId s : sources) counter.Run(s);
  run.edges_examined = counter.total_stats().edges_examined;
  run.direction_switches = counter.total_stats().direction_switches;
  run.bottom_up_levels = counter.total_stats().bottom_up_levels;
  return run;
}

/// dist/sigma/order bit-identity between the kernels over every source,
/// at the same alpha/beta the timed runs used.
bool KernelsAgree(const CsrGraph& graph, const SpdOptions& classic,
                  const SpdOptions& hybrid,
                  const std::vector<VertexId>& sources) {
  BfsSpd a(graph, classic);
  BfsSpd b(graph, hybrid);
  DependencyAccumulator acc_a(graph);
  DependencyAccumulator acc_b(graph);
  for (VertexId s : sources) {
    a.Run(s);
    b.Run(s);
    if (a.dag().dist != b.dag().dist) return false;
    if (a.dag().sigma != b.dag().sigma) return false;
    if (a.dag().order != b.dag().order) return false;
    if (acc_a.Accumulate(a) != acc_b.Accumulate(b)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Banner("E20", "SPD kernel: classic top-down vs hybrid "
                       "direction-optimizing");
  std::size_t sources_per_graph = 64;
  bool smoke = false;
  SpdOptions defaults;  // hybrid kernel, default alpha/beta
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--alpha=", 8) == 0) {
      defaults.alpha = std::strtod(argv[i] + 8, nullptr);
    } else if (std::strncmp(argv[i], "--beta=", 7) == 0) {
      defaults.beta = std::strtod(argv[i] + 7, nullptr);
    } else {
      char* end = nullptr;
      sources_per_graph = std::strtoull(argv[i], &end, 10);
      if (argv[i][0] == '-' || end == argv[i] || *end != '\0' ||
          sources_per_graph == 0) {
        std::fprintf(stderr,
                     "unknown argument '%s'\nusage: %s [sources_per_graph] "
                     "[--smoke] [--alpha=<a>] [--beta=<b>]\n",
                     argv[i], argv[0]);
        return 2;
      }
    }
  }
  if (smoke) sources_per_graph = std::min<std::size_t>(sources_per_graph, 8);
  bench::JsonReport json("e20");
  json.AddMeta("sources_per_graph", std::to_string(sources_per_graph));
  json.AddMeta("smoke", smoke ? "true" : "false");
  json.AddMeta("alpha", FormatDouble(defaults.alpha, 2));
  json.AddMeta("beta", FormatDouble(defaults.beta, 2));

  bool all_deterministic = true;
  Table table({"graph", "n", "m", "classic p/s", "hybrid p/s", "speedup",
               "fused speedup", "classic edges/pass", "hybrid edges/pass",
               "edge ratio", "bu levels/pass", "switches/pass", "det"});

  // Registry graphs (undirected) plus a directed stand-in: the hybrid
  // kernel's bottom-up levels scan in-edges on directed graphs, so the
  // shoot-out (and the bit-identity gate) must cover that path too.
  std::vector<std::pair<std::string, CsrGraph>> cases;
  for (const DatasetSpec& spec : DatasetRegistry()) {
    cases.emplace_back(spec.name, spec.make());
  }
  cases.emplace_back("directed-lcg",
                     MakeRandomDirected(smoke ? 2000 : 20000,
                                        smoke ? 12000 : 120000, 0xE20D));

  for (const auto& [name, graph] : cases) {
    const std::vector<VertexId> sources =
        SpreadSources(graph.num_vertices(), sources_per_graph);

    SpdOptions classic = defaults;
    classic.kernel = SpdKernel::kClassic;
    SpdOptions hybrid = defaults;
    hybrid.kernel = SpdKernel::kHybrid;

    const KernelRun classic_run = TimeKernel(graph, classic, sources);
    const KernelRun hybrid_run = TimeKernel(graph, hybrid, sources);
    const bool det = KernelsAgree(graph, classic, hybrid, sources);
    all_deterministic = all_deterministic && det;

    const double passes = static_cast<double>(sources.size());
    const double classic_pps = passes / classic_run.pass_seconds;
    const double hybrid_pps = passes / hybrid_run.pass_seconds;
    table.AddRow(
        {name, FormatCount(graph.num_vertices()),
         FormatCount(graph.num_edges()), FormatDouble(classic_pps, 0),
         FormatDouble(hybrid_pps, 0),
         FormatDouble(hybrid_pps / classic_pps, 2) + "x",
         FormatDouble(classic_run.fused_seconds / hybrid_run.fused_seconds,
                      2) +
             "x",
         FormatDouble(static_cast<double>(classic_run.edges_examined) / passes,
                      0),
         FormatDouble(static_cast<double>(hybrid_run.edges_examined) / passes,
                      0),
         FormatDouble(static_cast<double>(classic_run.edges_examined) /
                          static_cast<double>(hybrid_run.edges_examined),
                      2) +
             "x",
         FormatDouble(static_cast<double>(hybrid_run.bottom_up_levels) /
                          passes,
                      2),
         FormatDouble(static_cast<double>(hybrid_run.direction_switches) /
                          passes,
                      2),
         det ? "ok" : "!DET"});
  }

  bench::EmitTable(
      &json,
      "E20: classic vs hybrid SPD kernel (passes/sec, edges examined; "
      "!DET flags a kernel-equivalence violation — must never appear)",
      table);
  const std::string written = json.Write();
  if (!written.empty()) std::printf("wrote %s\n", written.c_str());
  if (!all_deterministic) {
    // Fail the run (and the CI release-bench job): a !DET row means the
    // optimized build broke hybrid/classic bit-identity.
    std::fprintf(stderr, "FAIL: kernel-equivalence violation (!DET)\n");
    return 1;
  }
  return 0;
}
