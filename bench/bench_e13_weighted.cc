// E13 — Weighted-graph variant: the paper's cost claims (§2.1/§4.1) say a
// weighted pass costs O(|E| + |V| log |V|) instead of O(|E|) via BFS.
// This harness measures the per-pass cost ratio (and throughput in
// passes/sec) through the oracle's canonical-wave delta-stepping kernel,
// and verifies estimation quality carries over to weighted road-like
// networks. Emits BENCH_e13.json next to the markdown (bench_common.h).

#include <cmath>

#include "bench_common.h"
#include "core/mh_betweenness.h"
#include "core/theory.h"
#include "exact/dependency_oracle.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

int main() {
  using namespace mhbc;
  bench::Banner("E13", "weighted graphs: cost and accuracy");
  bench::JsonReport json("e13");

  // Cost: per-pass time and throughput, unweighted vs weighted, same
  // topology. The weighted column exercises the canonical-wave
  // delta-stepping kernel (sp/delta_spd.h) the oracle now serves.
  Table cost({"graph", "n", "m", "unweighted us/pass", "unweighted p/s",
              "weighted us/pass", "weighted p/s", "ratio"});
  for (VertexId side : {30u, 45u, 60u}) {
    const CsrGraph g = MakeGrid(side, side);
    const CsrGraph wg = AssignUniformWeights(g, 1.0, 3.0, 0xE13);
    DependencyOracle plain(g);
    DependencyOracle weighted(wg);
    Rng rng(0xE13);
    constexpr int kPasses = 200;
    WallTimer t1;
    for (int i = 0; i < kPasses; ++i) {
      plain.Dependency(rng.NextVertex(g.num_vertices()), 0);
    }
    const double us_plain = 1e6 * t1.ElapsedSeconds() / kPasses;
    WallTimer t2;
    for (int i = 0; i < kPasses; ++i) {
      weighted.Dependency(rng.NextVertex(g.num_vertices()), 0);
    }
    const double us_weighted = 1e6 * t2.ElapsedSeconds() / kPasses;
    cost.AddRow({"grid " + std::to_string(side) + "x" + std::to_string(side),
                 FormatCount(g.num_vertices()), FormatCount(g.num_edges()),
                 FormatDouble(us_plain, 1), FormatDouble(1e6 / us_plain, 0),
                 FormatDouble(us_weighted, 1),
                 FormatDouble(1e6 / us_weighted, 0),
                 FormatDouble(us_weighted / us_plain, 2)});
  }
  bench::EmitTable(&json, "E13a: per-pass cost, BFS vs weighted waves",
                   cost);

  // Accuracy on a weighted grid: error vs T for the chain readouts.
  const CsrGraph road = AssignUniformWeights(MakeGrid(30, 30), 1.0, 3.0, 0x30);
  const VertexId center = 15 * 30 + 15;
  const double exact = ExactBetweennessSingle(road, center);
  const double limit = ChainLimitEstimate(DependencyProfile(road, center));
  Table acc({"T", "mean |mh-limit|", "mean |rb-exact|"});
  constexpr int kTrials = 5;
  for (std::uint64_t budget : {250ULL, 1'000ULL, 4'000ULL}) {
    RunningStats chain_err, rb_err;
    for (int trial = 0; trial < kTrials; ++trial) {
      MhOptions options;
      options.seed = 0x13E + static_cast<std::uint64_t>(trial) * 101;
      MhBetweennessSampler sampler(road, options);
      const MhResult result = sampler.Run(center, budget);
      chain_err.Add(std::fabs(result.estimate - limit));
      rb_err.Add(std::fabs(result.proposal_estimate - exact));
    }
    acc.AddRow({FormatCount(budget), FormatScientific(chain_err.mean(), 2),
                FormatScientific(rb_err.mean(), 2)});
  }
  std::printf("weighted grid 30x30 center: exact=%.5f chain-limit=%.5f\n",
              exact, limit);
  bench::EmitTable(&json, "E13b: weighted estimation error vs T (5 trials)",
                   acc);
  json.AddMeta("exact_center", FormatDouble(exact, 5));
  json.AddMeta("chain_limit_center", FormatDouble(limit, 5));
  const std::string written = json.Write();
  if (!written.empty()) std::printf("wrote %s\n", written.c_str());
  return 0;
}
