#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "exact/brandes.h"
#include "graph/csr_graph.h"
#include "util/table.h"

/// \file
/// Shared helpers for the experiment harnesses (bench_e*). Each harness
/// regenerates one table/figure of the reconstructed evaluation suite
/// (DESIGN.md §5) and prints a markdown table plus the seeds used, so every
/// row of EXPERIMENTS.md can be reproduced by re-running the binary.

namespace mhbc::bench {

/// Target-vertex roles the experiments sweep over.
struct TargetSet {
  VertexId hub;         // maximum degree
  VertexId median;      // median degree
  VertexId peripheral;  // minimum degree (ties: lowest id)
};

/// Picks hub/median/peripheral targets by degree.
inline TargetSet PickTargets(const CsrGraph& graph) {
  std::vector<VertexId> order(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&graph](VertexId a, VertexId b) {
    return graph.degree(a) < graph.degree(b);
  });
  TargetSet t;
  t.peripheral = order.front();
  t.median = order[order.size() / 2];
  t.hub = order.back();
  return t;
}

/// Prints a titled markdown table to stdout.
inline void PrintTable(const std::string& title, const Table& table) {
  std::printf("\n### %s\n\n%s\n", title.c_str(), table.ToMarkdown().c_str());
}

/// Standard experiment banner.
inline void Banner(const char* id, const char* what) {
  std::printf("== %s: %s ==\n", id, what);
}

/// Machine-readable twin of the markdown output: collects the tables (and
/// free-form metadata) a harness prints and writes them as
/// `BENCH_<id>.json` next to the markdown, i.e. into the working
/// directory, so the perf trajectory is diffable/trackable across PRs
/// without scraping stdout.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_id) : bench_id_(std::move(bench_id)) {}

  /// Records a context key/value pair (graph size, seed, host threads...).
  void AddMeta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, value);
  }

  void AddTable(const std::string& title, const Table& table) {
    tables_.emplace_back(title, table.ToJson());
  }

  /// Writes BENCH_<id>.json into the working directory and returns the
  /// file name (empty on I/O failure, with a note on stderr — a bench run
  /// must never die on a read-only directory).
  std::string Write() const {
    const std::string path = "BENCH_" + bench_id_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "note: could not write %s\n", path.c_str());
      return "";
    }
    out << "{\"bench\": \"" << EscapeJson(bench_id_) << "\", \"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (i > 0) out << ", ";
      out << "\"" << EscapeJson(meta_[i].first) << "\": \""
          << EscapeJson(meta_[i].second) << "\"";
    }
    out << "}, \"tables\": [";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"title\": \"" << EscapeJson(tables_[i].first)
          << "\", \"table\": " << tables_[i].second << "}";
    }
    out << "]}\n";
    return path;
  }

 private:
  std::string bench_id_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, std::string>> tables_;  // title, json
};

/// Prints the table to stdout AND records it in the JSON report — the
/// one-call emission shape harnesses should prefer over bare PrintTable.
inline void EmitTable(JsonReport* report, const std::string& title,
                      const Table& table) {
  PrintTable(title, table);
  if (report != nullptr) report->AddTable(title, table);
}

}  // namespace mhbc::bench
