#ifndef MHBC_BENCH_BENCH_COMMON_H_
#define MHBC_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "exact/brandes.h"
#include "graph/csr_graph.h"
#include "util/table.h"

/// \file
/// Shared helpers for the experiment harnesses (bench_e*). Each harness
/// regenerates one table/figure of the reconstructed evaluation suite
/// (DESIGN.md §5) and prints a markdown table plus the seeds used, so every
/// row of EXPERIMENTS.md can be reproduced by re-running the binary.

namespace mhbc::bench {

/// Target-vertex roles the experiments sweep over.
struct TargetSet {
  VertexId hub;         // maximum degree
  VertexId median;      // median degree
  VertexId peripheral;  // minimum degree (ties: lowest id)
};

/// Picks hub/median/peripheral targets by degree.
inline TargetSet PickTargets(const CsrGraph& graph) {
  std::vector<VertexId> order(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&graph](VertexId a, VertexId b) {
    return graph.degree(a) < graph.degree(b);
  });
  TargetSet t;
  t.peripheral = order.front();
  t.median = order[order.size() / 2];
  t.hub = order.back();
  return t;
}

/// Prints a titled markdown table to stdout.
inline void PrintTable(const std::string& title, const Table& table) {
  std::printf("\n### %s\n\n%s\n", title.c_str(), table.ToMarkdown().c_str());
}

/// Standard experiment banner.
inline void Banner(const char* id, const char* what) {
  std::printf("== %s: %s ==\n", id, what);
}

}  // namespace mhbc::bench

#endif  // MHBC_BENCH_BENCH_COMMON_H_
