#pragma once

#include <map>
#include <string>
#include <vector>

/// \file
/// A small C++ lexer for mhbc_lint. It is NOT a compiler front-end: it
/// produces a flat token stream with comments and string contents removed
/// (so rule matchers never fire on prose), plus the side tables the rules
/// need — per-line comment text (for NOLINT suppressions), the #include
/// list, and whether the file opens with #pragma once. That is deliberate:
/// every mhbc rule is a lexical-pattern rule, and keeping the matcher input
/// this small is what makes the whole tree lint in milliseconds.

namespace mhbc::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (no distinction needed)
  kNumber,      // pp-numbers, including digit separators (2'000)
  kString,      // string literal (text is "" — contents never matter)
  kChar,        // character literal (text is '')
  kPunct,       // operators/punctuation, longest-match ("+=", "::", ...)
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based
};

struct IncludeDirective {
  std::string target;  // path between the delimiters
  bool angled;         // <...> (true) vs "..." (false)
  int line;            // 1-based
};

/// Lexed view of one source file.
struct TokenStream {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  /// Comment text per line (concatenated when a line holds several); block
  /// comments contribute their text to every line they span. NOLINT
  /// suppression scanning reads this.
  std::map<int, std::string> comments;
  bool has_pragma_once = false;
  int num_lines = 0;
};

/// Lexes `content`. Never fails: unterminated constructs lex as best-effort
/// to the end of file (the compiler, not the linter, owns that diagnosis).
TokenStream Tokenize(const std::string& content);

}  // namespace mhbc::lint
