#include "tokenizer.h"

#include <cctype>

namespace mhbc::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character punctuators the rules care to see as one token. Longest
/// match first within each leading character; everything else falls back to
/// a single-character punct token.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",
};

}  // namespace

TokenStream Tokenize(const std::string& content) {
  TokenStream out;
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;

  auto append_comment = [&out](int at_line, const std::string& text) {
    std::string& slot = out.comments[at_line];
    if (!slot.empty()) slot += ' ';
    slot += text;
  };

  // Pending raw preprocessor directive text, accumulated per logical line so
  // #include targets and #pragma once can be recognized after macros of any
  // spelling. Directive *tokens* still flow into the stream (macro bodies
  // can hide banned constructs), except for include targets.
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && content[i] != '\n') ++i;
      append_comment(line, content.substr(start, i - start));
      continue;
    }
    // Block comment (may span lines; text is attached to each line).
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t start = i;
      i += 2;
      int comment_line = line;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') {
          append_comment(comment_line, content.substr(start, i - start));
          ++line;
          comment_line = line;
          start = i + 1;
        }
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      append_comment(comment_line, content.substr(start, i - start));
      continue;
    }

    // Preprocessor directive: recognize #include targets and #pragma once;
    // other directives tokenize normally below (the '#' itself is a punct).
    if (c == '#') {
      std::size_t j = i + 1;
      while (j < n && (content[j] == ' ' || content[j] == '\t')) ++j;
      std::size_t k = j;
      while (k < n && IsIdentChar(content[k])) ++k;
      const std::string directive = content.substr(j, k - j);
      if (directive == "include" || directive == "include_next") {
        while (k < n && (content[k] == ' ' || content[k] == '\t')) ++k;
        if (k < n && (content[k] == '"' || content[k] == '<')) {
          const char close = content[k] == '<' ? '>' : '"';
          const std::size_t target_start = k + 1;
          std::size_t e = target_start;
          while (e < n && content[e] != close && content[e] != '\n') ++e;
          out.includes.push_back({content.substr(target_start, e - target_start),
                                  close == '>', line});
          i = e < n && content[e] == close ? e + 1 : e;
          continue;
        }
      } else if (directive == "pragma") {
        std::size_t p = k;
        while (p < n && (content[p] == ' ' || content[p] == '\t')) ++p;
        if (content.compare(p, 4, "once") == 0) out.has_pragma_once = true;
        // fall through: pragma tokens enter the stream (e.g. `#pragma omp`
        // is exactly what the raw-concurrency rule wants to see).
      }
      out.tokens.push_back({TokenKind::kPunct, "#", line});
      ++i;
      continue;
    }

    // String literal (incl. raw strings); contents are dropped.
    if (c == '"' || (c == 'R' && i + 1 < n && content[i + 1] == '"')) {
      if (c == 'R') {
        // R"delim( ... )delim"
        std::size_t d = i + 2;
        std::string delim;
        while (d < n && content[d] != '(') delim += content[d++];
        const std::string closer = ")" + delim + "\"";
        std::size_t e = content.find(closer, d);
        e = e == std::string::npos ? n : e + closer.size();
        for (std::size_t p = i; p < e && p < n; ++p) {
          if (content[p] == '\n') ++line;
        }
        out.tokens.push_back({TokenKind::kString, "\"\"", line});
        i = e;
        continue;
      }
      std::size_t e = i + 1;
      while (e < n && content[e] != '"' && content[e] != '\n') {
        if (content[e] == '\\') ++e;
        ++e;
      }
      out.tokens.push_back({TokenKind::kString, "\"\"", line});
      i = e < n ? e + 1 : n;
      continue;
    }

    // Character literal — but only when it cannot be a digit separator,
    // which the number path below consumes itself.
    if (c == '\'') {
      std::size_t e = i + 1;
      while (e < n && content[e] != '\'' && content[e] != '\n') {
        if (content[e] == '\\') ++e;
        ++e;
      }
      out.tokens.push_back({TokenKind::kChar, "''", line});
      i = e < n ? e + 1 : n;
      continue;
    }

    // pp-number: digits, idents chars, '.', exponent signs, and digit
    // separators like 2'000.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(content[i + 1]))) {
      const std::size_t start = i;
      ++i;
      while (i < n) {
        const char d = content[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if (d == '\'' && i + 1 < n && IsIdentChar(content[i + 1])) {
          i += 2;  // digit separator
        } else if ((d == '+' || d == '-') && i > start &&
                   (content[i - 1] == 'e' || content[i - 1] == 'E' ||
                    content[i - 1] == 'p' || content[i - 1] == 'P')) {
          ++i;  // exponent sign
        } else {
          break;
        }
      }
      out.tokens.push_back({TokenKind::kNumber, content.substr(start, i - start),
                            line});
      continue;
    }

    if (IsIdentStart(c)) {
      const std::size_t start = i;
      while (i < n && IsIdentChar(content[i])) ++i;
      out.tokens.push_back(
          {TokenKind::kIdentifier, content.substr(start, i - start), line});
      continue;
    }

    // Punctuation, longest match.
    std::string matched(1, c);
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (content.compare(i, len, p) == 0) {
        matched = p;
        break;
      }
    }
    out.tokens.push_back({TokenKind::kPunct, matched, line});
    i += matched.size();
  }

  out.num_lines = line;
  return out;
}

}  // namespace mhbc::lint
