#pragma once

#include <string>
#include <vector>

#include "tokenizer.h"
#include "util/status.h"

/// \file
/// mhbc_lint: repo-specific static analysis for the bit-determinism
/// contract (docs/static-analysis.md has the user-facing catalog).
///
/// The library enforces one load-bearing invariant — statistical results
/// are bit-identical at every thread count, SPD kernel, and post-ApplyDelta
/// epoch. Determinism tests and sanitizers check that contract dynamically;
/// these rules check the *code patterns that break it* statically, on every
/// line of the tree, at CI time:
///
///   mhbc-banned-nondeterminism   ambient entropy: rand()/std:: RNG
///                                engines/wall-clock reads/unplumbed Rng
///                                construction
///   mhbc-unordered-accumulation  floating-point accumulation in unordered
///                                container iteration order
///   mhbc-raw-concurrency         std::thread/mutex/atomic outside
///                                util/thread_pool
///   mhbc-layering                includes against the documented layer
///                                order, and include cycles
///   mhbc-header-guard            headers must open with #pragma once
///   mhbc-exit-paths              exit()/abort() outside main()
///
/// Suppression: `// NOLINT(mhbc-<rule>)` on the finding line, or
/// `// NOLINTNEXTLINE(mhbc-<rule>)` on the line above. A bare `// NOLINT`
/// suppresses every rule on that line (clang-tidy semantics). Allowlists
/// for whole files (the thread pool may use std::thread; samplers may
/// construct Rng) live in the config file, not in the code.

namespace mhbc::lint {

inline constexpr const char kLintVersion[] = "1.0.0";

enum class Severity { kWarning, kError };
const char* SeverityName(Severity severity);

/// One rule violation at a specific source location.
struct Finding {
  std::string rule;  // full id, e.g. "mhbc-layering"
  Severity severity = Severity::kError;
  std::string path;  // repo-relative, '/'-separated
  int line = 0;      // 1-based
  std::string message;
  std::string fixit;  // one-line remediation hint
};

/// Registry entry describing one check.
struct RuleInfo {
  std::string id;  // full id, e.g. "mhbc-banned-nondeterminism"
  Severity severity;
  std::string summary;
  std::string fixit;  // default remediation hint
};

/// All registered rules, in reporting order.
const std::vector<RuleInfo>& Rules();

/// Configuration: path allowlists per rule (or per rule:subcheck), the
/// layer ranking for mhbc-layering, and paths to skip entirely.
///
/// File format (tools/lint/mhbc_lint.conf), one directive per line:
///   # comment
///   layer <name> <rank>           e.g. `layer graph 10`
///   allow <rule>[:<subcheck>] <glob> [<glob>...]
///   skip  <glob> [<glob>...]
/// Globs match repo-relative paths; `*` matches any run of characters,
/// including '/'. Rule ids may be written with or without the `mhbc-`
/// prefix.
struct Config {
  struct Allow {
    std::string rule;      // normalized full id, e.g. "mhbc-raw-concurrency"
    std::string subcheck;  // optional, e.g. "rng-construction"; "" = all
    std::string glob;
  };
  std::vector<Allow> allows;
  /// Layer name (first path segment under src/) -> rank. An include from
  /// layer A to layer B is legal iff rank(B) < rank(A) or A == B.
  std::vector<std::pair<std::string, int>> layers;
  std::vector<std::string> skips;

  int LayerRank(const std::string& name) const;  // -1 when unknown
  bool Allows(const std::string& rule, const std::string& subcheck,
              const std::string& path) const;
  bool Skipped(const std::string& path) const;
};

/// The built-in layer ranking (matches docs/ARCHITECTURE.md); the config
/// file extends/overrides it.
Config DefaultConfig();

/// Parses a config file; directives merge into DefaultConfig().
StatusOr<Config> LoadConfig(const std::string& path);

/// `*`-glob match over a repo-relative path ('*' crosses '/').
bool GlobMatch(const std::string& glob, const std::string& path);

/// One lexed file plus the path metadata rules dispatch on.
struct SourceFile {
  std::string path;  // repo-relative, '/'-separated (e.g. "src/sp/spd.h")
  std::string top;   // first segment: "src", "bench", "examples", ...
  std::string layer;  // second segment under src/ ("util", "graph", ...)
  bool is_header = false;
  TokenStream stream;
};

/// Lexes in-memory content under a caller-chosen repo-relative path (unit
/// tests use this to lint fixture text as if it lived anywhere).
SourceFile LexSource(const std::string& rel_path, const std::string& content);

/// Reads and lexes one file from disk.
StatusOr<SourceFile> LoadSource(const std::string& repo_root,
                                const std::string& rel_path);

/// Walks the linted trees (src/, bench/, examples/, tests/, tools/) under
/// `repo_root`, honoring config `skip` globs. Deterministic (sorted) order.
StatusOr<std::vector<SourceFile>> LoadTree(const std::string& repo_root,
                                           const Config& config);

/// Runs every per-file rule. NOLINT suppressions are already applied.
std::vector<Finding> LintFile(const SourceFile& file, const Config& config);

/// Runs whole-tree rules (include cycles) plus LintFile over every file.
/// NOLINT suppressions are already applied.
std::vector<Finding> LintTree(const std::vector<SourceFile>& files,
                              const Config& config);

/// True when `// NOLINT(...)` on `line` (or NOLINTNEXTLINE on line-1)
/// suppresses `rule` in `file`. Exposed for the round-trip tests.
bool IsSuppressed(const SourceFile& file, const std::string& rule, int line);

}  // namespace mhbc::lint
