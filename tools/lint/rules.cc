#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

/// \file
/// Rule matchers. Every matcher walks the token stream produced by
/// tokenizer.cc; none of them parse C++ properly, and none of them need to:
/// each rule targets a lexical pattern a disciplined reviewer would grep
/// for, with NOLINT + config allowlists as the escape hatches for the
/// (rare, intentional) legitimate uses.

namespace mhbc::lint {

const char* SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* rules = new std::vector<RuleInfo>{
      {"mhbc-banned-nondeterminism", Severity::kError,
       "ambient entropy: libc rand/srand, std:: RNG engines and "
       "distributions, wall-clock reads outside util/timer, or Rng "
       "construction outside seed-plumbed entry points",
       "derive randomness from an explicitly seeded mhbc::Rng (fork child "
       "streams with Rng::Fork); read time only through util/timer.h"},
      {"mhbc-unordered-accumulation", Severity::kError,
       "floating-point accumulation in unordered-container iteration order "
       "(result depends on hash layout, breaking bit-determinism)",
       "copy keys out, sort them, and fold in sorted order — see the "
       "shard-order merges in BrandesBetweenness / MergeCacheFrom"},
      {"mhbc-raw-concurrency", Severity::kError,
       "raw std::thread/async/mutex/atomic (or pthread/OpenMP) outside "
       "util/thread_pool",
       "run parallel work through mhbc::ThreadPool (ParallelFor / "
       "ParallelOrderedReduce keep folds in a deterministic order)"},
      {"mhbc-layering", Severity::kError,
       "#include against the documented layer order (util -> graph -> "
       "sp -> exact -> baselines/core -> centrality), or an include cycle",
       "move shared code down a layer (util takes pure helpers) or invert "
       "the dependency"},
      {"mhbc-header-guard", Severity::kError,
       "header does not open with #pragma once",
       "add `#pragma once` as the first directive of the header"},
      {"mhbc-exit-paths", Severity::kError,
       "exit()/abort()-family call outside main() (libraries report "
       "failures as Status, tools map them to exit codes in main)",
       "return a Status (or an exit code up to main) instead of "
       "terminating the process mid-stack"},
  };
  return *rules;
}

namespace {

using Tokens = std::vector<Token>;

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Shared emit helper: applies the config allowlist and NOLINT suppression.
class Reporter {
 public:
  Reporter(const SourceFile& file, const Config& config,
           std::vector<Finding>* findings)
      : file_(file), config_(config), findings_(findings) {}

  void Emit(const std::string& rule, const std::string& subcheck, int line,
            std::string message, std::string fixit = "") {
    if (config_.Allows(rule, subcheck, file_.path)) return;
    if (IsSuppressed(file_, rule, line)) return;
    Severity severity = Severity::kError;
    if (fixit.empty()) {
      for (const RuleInfo& info : Rules()) {
        if (info.id == rule) {
          fixit = info.fixit;
          severity = info.severity;
        }
      }
    }
    findings_->push_back(
        {rule, severity, file_.path, line, std::move(message), std::move(fixit)});
  }

 private:
  const SourceFile& file_;
  const Config& config_;
  std::vector<Finding>* findings_;
};

// ---------------------------------------------------------------------------
// mhbc-banned-nondeterminism
// ---------------------------------------------------------------------------

void CheckBannedNondeterminism(const SourceFile& file, Reporter* report) {
  static const std::set<std::string>* libc_rand = new std::set<std::string>{
      "rand", "srand", "rand_r", "drand48", "erand48", "lrand48", "mrand48",
      "random_shuffle"};
  static const std::set<std::string>* std_rng = new std::set<std::string>{
      "random_device", "mt19937", "mt19937_64", "default_random_engine",
      "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48", "ranlux24_base",
      "ranlux48_base", "knuth_b", "mersenne_twister_engine",
      "linear_congruential_engine", "subtract_with_carry_engine",
      "uniform_int_distribution", "uniform_real_distribution",
      "normal_distribution", "bernoulli_distribution", "poisson_distribution",
      "exponential_distribution", "geometric_distribution",
      "discrete_distribution", "piecewise_constant_distribution"};
  static const std::set<std::string>* wall_clock = new std::set<std::string>{
      "system_clock", "high_resolution_clock", "steady_clock", "gettimeofday",
      "localtime", "gmtime", "ctime", "asctime", "strftime", "mktime",
      "timespec_get"};

  const Tokens& toks = file.stream.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool member_access =
        i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
    if (member_access) continue;
    const bool called = i + 1 < toks.size() && IsPunct(toks[i + 1], "(");

    if (libc_rand->count(t.text) != 0 && (called || t.text == "random_shuffle")) {
      report->Emit("mhbc-banned-nondeterminism", "libc-rand", t.line,
                   "call of '" + t.text +
                       "' (process-global, unseeded entropy source)");
      continue;
    }
    if (std_rng->count(t.text) != 0) {
      report->Emit(
          "mhbc-banned-nondeterminism", "std-rng", t.line,
          "use of 'std::" + t.text +
              "' (std:: engines/distributions have unspecified streams; "
              "mhbc::Rng pins the exact bit stream)");
      continue;
    }
    if (wall_clock->count(t.text) != 0) {
      report->Emit("mhbc-banned-nondeterminism", "wall-clock", t.line,
                   "wall-clock read via '" + t.text +
                       "' outside util/timer");
      continue;
    }
    if ((t.text == "time" || t.text == "clock") && called) {
      report->Emit("mhbc-banned-nondeterminism", "wall-clock", t.line,
                   "wall-clock read via '" + t.text + "()' outside util/timer");
      continue;
    }
    if (t.text == "Rng") {
      // Construction heuristics: `Rng name(...)`, `Rng name{...}`,
      // `Rng(...)` temporaries, `Rng name = ...`. Type mentions
      // (`Rng*`, `Rng&`, `const Rng`, `Rng::`, template args) pass.
      if (i > 0 && (IsIdent(toks[i - 1], "class") ||
                    IsIdent(toks[i - 1], "struct") ||
                    IsIdent(toks[i - 1], "friend"))) {
        continue;
      }
      if (i + 1 >= toks.size()) continue;
      const Token& next = toks[i + 1];
      const bool temp_ctor = IsPunct(next, "(") || IsPunct(next, "{");
      const bool named_decl =
          next.kind == TokenKind::kIdentifier && i + 2 < toks.size() &&
          (IsPunct(toks[i + 2], "(") || IsPunct(toks[i + 2], "{") ||
           IsPunct(toks[i + 2], "="));
      if (temp_ctor || named_decl) {
        report->Emit("mhbc-banned-nondeterminism", "rng-construction", t.line,
                     "Rng constructed outside a seed-plumbed entry point "
                     "(seeds must flow in from the caller)",
                     "take a std::uint64_t seed (or an Rng \"parent\" and "
                     "Fork a child stream) instead of creating a generator "
                     "here");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// mhbc-unordered-accumulation
// ---------------------------------------------------------------------------

/// Names declared in this file with an unordered container type (tracks
/// `std::unordered_map<K, V> name` through the template argument list).
std::set<std::string> TaintedUnorderedNames(const Tokens& toks) {
  std::set<std::string> tainted;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        toks[i].text.rfind("unordered_", 0) != 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && IsPunct(toks[j], "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "<")) ++depth;
        if (IsPunct(toks[j], ">")) --depth;
        if (IsPunct(toks[j], ">>")) depth -= 2;
        if (depth <= 0) {
          ++j;
          break;
        }
      }
    }
    while (j < toks.size() &&
           (IsPunct(toks[j], "*") || IsPunct(toks[j], "&"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      tainted.insert(toks[j].text);
    }
  }
  return tainted;
}

std::size_t MatchForward(const Tokens& toks, std::size_t open,
                         const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], open_text)) ++depth;
    if (IsPunct(toks[i], close_text)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

void CheckUnorderedAccumulation(const SourceFile& file, Reporter* report) {
  const Tokens& toks = file.stream.tokens;
  const std::set<std::string> tainted = TaintedUnorderedNames(toks);

  const auto mentions_unordered = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      if (toks[i].text.rfind("unordered_", 0) == 0 ||
          tainted.count(toks[i].text) != 0) {
        return true;
      }
    }
    return false;
  };

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    // Range-for over an unordered container: flag order-sensitive folds in
    // the body.
    if (IsIdent(toks[i], "for") && IsPunct(toks[i + 1], "(")) {
      const std::size_t close = MatchForward(toks, i + 1, "(", ")");
      if (close == toks.size()) continue;
      // The range-for ':' sits at paren depth 1 (the `::` token is distinct,
      // so a lone ':' is unambiguous).
      std::size_t colon = toks.size();
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")")) --depth;
        if (depth == 1 && IsPunct(toks[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon == toks.size()) continue;
      if (!mentions_unordered(colon + 1, close)) continue;
      // Body: braced block or single statement.
      std::size_t body_begin = close + 1, body_end;
      if (body_begin < toks.size() && IsPunct(toks[body_begin], "{")) {
        body_end = MatchForward(toks, body_begin, "{", "}");
      } else {
        body_end = body_begin;
        while (body_end < toks.size() && !IsPunct(toks[body_end], ";")) {
          ++body_end;
        }
      }
      for (std::size_t j = body_begin; j < body_end && j < toks.size(); ++j) {
        const bool compound_assign =
            toks[j].kind == TokenKind::kPunct &&
            (toks[j].text == "+=" || toks[j].text == "-=" ||
             toks[j].text == "*=" || toks[j].text == "/=");
        const bool fold_call =
            toks[j].kind == TokenKind::kIdentifier &&
            (toks[j].text == "fma" || toks[j].text == "accumulate" ||
             toks[j].text == "reduce" || toks[j].text == "inner_product" ||
             toks[j].text == "transform_reduce");
        if (compound_assign || fold_call) {
          report->Emit("mhbc-unordered-accumulation", "", toks[j].line,
                       "'" + toks[j].text +
                           "' inside iteration over an unordered container "
                           "(fold order follows the hash layout)");
        }
      }
    }
    // Direct folds handed an unordered range:
    // std::accumulate(m.begin(), ...).
    if (toks[i].kind == TokenKind::kIdentifier &&
        (toks[i].text == "accumulate" || toks[i].text == "reduce" ||
         toks[i].text == "transform_reduce" ||
         toks[i].text == "inner_product") &&
        IsPunct(toks[i + 1], "(")) {
      const std::size_t close = MatchForward(toks, i + 1, "(", ")");
      if (close != toks.size() && mentions_unordered(i + 2, close)) {
        report->Emit("mhbc-unordered-accumulation", "", toks[i].line,
                     "'" + toks[i].text +
                         "' over an unordered container range (fold order "
                         "follows the hash layout)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// mhbc-raw-concurrency
// ---------------------------------------------------------------------------

void CheckRawConcurrency(const SourceFile& file, Reporter* report) {
  static const std::set<std::string>* std_types = new std::set<std::string>{
      "jthread", "async", "mutex", "timed_mutex", "recursive_mutex",
      "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
      "condition_variable", "condition_variable_any", "future",
      "shared_future", "promise", "packaged_task", "counting_semaphore",
      "binary_semaphore", "barrier", "latch", "lock_guard", "unique_lock",
      "scoped_lock", "shared_lock", "call_once", "once_flag", "stop_token",
      "stop_source", "this_thread"};

  const Tokens& toks = file.stream.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;

    // std::<something concurrent>
    if (t.text == "std" && i + 2 < toks.size() && IsPunct(toks[i + 1], "::") &&
        toks[i + 2].kind == TokenKind::kIdentifier) {
      const Token& sym = toks[i + 2];
      const bool is_thread_type =
          sym.text == "thread" &&
          // std::thread::hardware_concurrency() is a pure query, not
          // thread creation; a trailing :: marks that form.
          !(i + 3 < toks.size() && IsPunct(toks[i + 3], "::"));
      if (is_thread_type || std_types->count(sym.text) != 0 ||
          sym.text.rfind("atomic", 0) == 0) {
        report->Emit("mhbc-raw-concurrency", "", sym.line,
                     "raw 'std::" + sym.text +
                         "' outside util/thread_pool (unmanaged concurrency "
                         "cannot keep fold order deterministic)");
      }
      continue;
    }
    if (t.text == "thread_local") {
      report->Emit("mhbc-raw-concurrency", "", t.line,
                   "'thread_local' state outside util/thread_pool");
      continue;
    }
    if (t.text.rfind("pthread_", 0) == 0) {
      report->Emit("mhbc-raw-concurrency", "", t.line,
                   "raw pthreads call '" + t.text + "'");
      continue;
    }
    if (t.text == "omp" && i > 0 && IsIdent(toks[i - 1], "pragma")) {
      report->Emit("mhbc-raw-concurrency", "", t.line,
                   "OpenMP pragma (parallel regions bypass the worker pool)");
    }
  }
}

// ---------------------------------------------------------------------------
// mhbc-layering (include order; cycles are a tree rule below)
// ---------------------------------------------------------------------------

void CheckLayering(const SourceFile& file, const Config& config,
                   Reporter* report) {
  if (file.top != "src" || file.layer.empty()) return;
  const int own_rank = config.LayerRank(file.layer);
  if (own_rank < 0) return;  // unknown layer: nothing to enforce against
  for (const IncludeDirective& inc : file.stream.includes) {
    if (inc.angled) continue;  // system/third-party headers are layer-free
    const std::size_t slash = inc.target.find('/');
    if (slash == std::string::npos) continue;  // not a project-layer path
    const std::string target_layer = inc.target.substr(0, slash);
    if (target_layer == file.layer) continue;
    const int target_rank = config.LayerRank(target_layer);
    if (target_rank < 0) continue;
    if (target_rank >= own_rank) {
      report->Emit("mhbc-layering", "order", inc.line,
                   "#include \"" + inc.target + "\" from layer '" +
                       file.layer + "' (rank " + std::to_string(own_rank) +
                       ") reaches '" + target_layer + "' (rank " +
                       std::to_string(target_rank) +
                       "), against the layer order");
    }
  }
}

// ---------------------------------------------------------------------------
// mhbc-header-guard
// ---------------------------------------------------------------------------

void CheckHeaderGuard(const SourceFile& file, Reporter* report) {
  if (!file.is_header) return;
  if (file.stream.has_pragma_once) return;
  report->Emit("mhbc-header-guard", "", 1,
               "header does not open with #pragma once");
}

// ---------------------------------------------------------------------------
// mhbc-exit-paths
// ---------------------------------------------------------------------------

void CheckExitPaths(const SourceFile& file, Reporter* report) {
  static const std::set<std::string>* exits = new std::set<std::string>{
      "exit", "_Exit", "quick_exit", "abort", "terminate"};

  const Tokens& toks = file.stream.tokens;
  // Token range of main()'s body, when this file defines one.
  std::size_t main_begin = toks.size(), main_end = toks.size();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (IsIdent(toks[i], "main") && IsPunct(toks[i + 1], "(") &&
        (i == 0 || !IsPunct(toks[i - 1], ".")) &&
        (i == 0 || !IsPunct(toks[i - 1], "->"))) {
      const std::size_t params_close = MatchForward(toks, i + 1, "(", ")");
      std::size_t brace = params_close + 1;
      if (brace < toks.size() && IsPunct(toks[brace], "{")) {
        main_begin = brace;
        main_end = MatchForward(toks, brace, "{", "}");
        break;
      }
    }
  }

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier || exits->count(t.text) == 0) {
      continue;
    }
    if (!IsPunct(toks[i + 1], "(")) continue;
    if (i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
      continue;  // member named exit/abort, not the process call
    }
    if (i > main_begin && i < main_end) continue;
    report->Emit("mhbc-exit-paths", "", t.line,
                 "'" + t.text + "()' outside main()");
  }
}

// ---------------------------------------------------------------------------
// Tree rule: include cycles
// ---------------------------------------------------------------------------

/// Maps an include target written in `from` to the repo-relative path of a
/// known header, or "" when the target is not part of the linted tree.
std::string ResolveInclude(const std::string& from_path,
                           const std::string& target,
                           const std::set<std::string>& known) {
  if (known.count("src/" + target) != 0) return "src/" + target;
  const std::size_t slash = from_path.rfind('/');
  if (slash != std::string::npos) {
    const std::string sibling = from_path.substr(0, slash + 1) + target;
    if (known.count(sibling) != 0) return sibling;
  }
  if (known.count(target) != 0) return target;
  return "";
}

void CheckIncludeCycles(const std::vector<SourceFile>& files,
                        const Config& config,
                        std::vector<Finding>* findings) {
  std::set<std::string> headers;
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : files) {
    by_path[file.path] = &file;
    if (file.is_header) headers.insert(file.path);
  }
  // Header-to-header edges with the include line for reporting.
  std::map<std::string, std::vector<std::pair<std::string, int>>> edges;
  for (const SourceFile& file : files) {
    if (!file.is_header) continue;
    for (const IncludeDirective& inc : file.stream.includes) {
      if (inc.angled) continue;
      const std::string target = ResolveInclude(file.path, inc.target, headers);
      if (!target.empty()) edges[file.path].emplace_back(target, inc.line);
    }
  }
  // Iterative DFS, white/grey/black; the grey stack reconstructs cycles.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::set<std::set<std::string>> reported;
  std::vector<std::string> stack;

  const std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const auto& [next, line] : edges[node]) {
          if (color[next] == 1) {
            // Back edge: the cycle is stack[pos(next)..] + next.
            auto begin =
                std::find(stack.begin(), stack.end(), next);
            std::set<std::string> members(begin, stack.end());
            if (reported.insert(members).second) {
              std::string chain;
              for (auto it = begin; it != stack.end(); ++it) {
                chain += *it + " -> ";
              }
              chain += next;
              const SourceFile& at = *by_path.at(node);
              Finding finding{"mhbc-layering", Severity::kError, node, line,
                              "#include cycle: " + chain,
                              "break the cycle by forward-declaring or "
                              "moving shared declarations down a layer"};
              if (!config.Allows("mhbc-layering", "cycle", node) &&
                  !IsSuppressed(at, "mhbc-layering", line)) {
                findings->push_back(std::move(finding));
              }
            }
          } else if (color[next] == 0) {
            visit(next);
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const std::string& header : headers) {
    if (color[header] == 0) visit(header);
  }
}

}  // namespace

bool IsSuppressed(const SourceFile& file, const std::string& rule, int line) {
  const auto check_comment = [&rule](const std::string& comment,
                                     bool nextline_form) {
    std::size_t pos = 0;
    while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
      std::size_t after = pos + 6;
      const bool is_nextline = comment.compare(after, 8, "NEXTLINE") == 0;
      if (is_nextline) after += 8;
      if (is_nextline != nextline_form) {
        pos = after;
        continue;
      }
      if (after >= comment.size() || comment[after] != '(') {
        return true;  // bare NOLINT: suppresses every rule on the line
      }
      const std::size_t close = comment.find(')', after);
      std::string list = comment.substr(
          after + 1,
          (close == std::string::npos ? comment.size() : close) - after - 1);
      list += ',';
      std::string id;
      for (const char c : list) {
        if (c == ',') {
          // trim spaces
          while (!id.empty() && id.front() == ' ') id.erase(id.begin());
          while (!id.empty() && id.back() == ' ') id.pop_back();
          if (id == rule || id == "*") return true;
          id.clear();
        } else {
          id += c;
        }
      }
      pos = after;
    }
    return false;
  };

  const auto& comments = file.stream.comments;
  if (const auto it = comments.find(line); it != comments.end()) {
    if (check_comment(it->second, /*nextline_form=*/false)) return true;
  }
  if (const auto it = comments.find(line - 1); it != comments.end()) {
    if (check_comment(it->second, /*nextline_form=*/true)) return true;
  }
  return false;
}

std::vector<Finding> LintFile(const SourceFile& file, const Config& config) {
  std::vector<Finding> findings;
  Reporter report(file, config, &findings);
  CheckBannedNondeterminism(file, &report);
  CheckUnorderedAccumulation(file, &report);
  CheckRawConcurrency(file, &report);
  CheckLayering(file, config, &report);
  CheckHeaderGuard(file, &report);
  CheckExitPaths(file, &report);
  return findings;
}

std::vector<Finding> LintTree(const std::vector<SourceFile>& files,
                              const Config& config) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    std::vector<Finding> per_file = LintFile(file, config);
    findings.insert(findings.end(),
                    std::make_move_iterator(per_file.begin()),
                    std::make_move_iterator(per_file.end()));
  }
  CheckIncludeCycles(files, config, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace mhbc::lint
