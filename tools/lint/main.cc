// mhbc_lint — determinism-contract static analysis for the mhbc tree.
//
//   mhbc_lint [--root=<dir>] [--config=<file>] [--json] [paths...]
//   mhbc_lint --list-rules
//   mhbc_lint --version
//
// With no positional paths, walks src/, bench/, examples/, tests/, and
// tools/ under the repo root (default: the current directory) and runs
// every registered rule, including the whole-tree include-cycle check.
// Positional paths restrict the run to specific repo-relative files —
// tree-wide rules still see only those files.
//
// The config file (default <root>/tools/lint/mhbc_lint.conf when present)
// carries the per-rule allowlists, the layer ranking, and skip globs; see
// docs/static-analysis.md for the rule catalog and suppression syntax.
//
// Exit codes follow the mhbc_tool convention: 0 clean, 1 findings at error
// severity, 2 usage error, 3 I/O error.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"
#include "util/table.h"

namespace {

using mhbc::lint::Config;
using mhbc::lint::Finding;
using mhbc::lint::RuleInfo;
using mhbc::lint::Severity;
using mhbc::lint::SourceFile;

enum ExitCode : int {
  kExitClean = 0,
  kExitFindings = 1,
  kExitUsage = 2,
  kExitIo = 3,
};

int PrintVersion() {
  std::printf("mhbc_lint %s (%zu rules)\n", mhbc::lint::kLintVersion,
              mhbc::lint::Rules().size());
  return kExitClean;
}

int PrintRules(bool json) {
  mhbc::Table table({"rule", "severity", "summary", "fix"});
  for (const RuleInfo& rule : mhbc::lint::Rules()) {
    table.AddRow({rule.id, SeverityName(rule.severity), rule.summary,
                  rule.fixit});
  }
  std::printf("%s", json ? (table.ToJson() + "\n").c_str()
                         : table.ToMarkdown().c_str());
  return kExitClean;
}

int UsageError(const std::string& message) {
  std::fprintf(stderr,
               "usage error: %s\n"
               "usage: mhbc_lint [--root=<dir>] [--config=<file>] [--json] "
               "[--list-rules] [--version] [paths...]\n",
               message.c_str());
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  bool json = false;
  bool list_rules = false;
  bool version = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
      if (root.empty()) return UsageError("--root expects a directory");
    } else if (arg.rfind("--config=", 0) == 0) {
      config_path = arg.substr(9);
      if (config_path.empty()) return UsageError("--config expects a file");
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--version") {
      version = true;
    } else if (arg.rfind("--", 0) == 0) {
      return UsageError("unknown flag '" + arg + "'");
    } else {
      paths.push_back(arg);
    }
  }
  if (version) return PrintVersion();
  if (list_rules) return PrintRules(json);

  // Config: explicit flag, else the repo default when it exists.
  Config config;
  const std::string default_config = root + "/tools/lint/mhbc_lint.conf";
  if (config_path.empty() &&
      std::filesystem::exists(std::filesystem::path(default_config))) {
    config_path = default_config;
  }
  if (!config_path.empty()) {
    auto loaded = mhbc::lint::LoadConfig(config_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return loaded.status().code() == mhbc::StatusCode::kIoError ? kExitIo
                                                                  : kExitUsage;
    }
    config = std::move(loaded).value();
  } else {
    config = mhbc::lint::DefaultConfig();
  }

  std::vector<SourceFile> files;
  if (paths.empty()) {
    auto tree = mhbc::lint::LoadTree(root, config);
    if (!tree.ok()) {
      std::fprintf(stderr, "error: %s\n", tree.status().ToString().c_str());
      return tree.status().code() == mhbc::StatusCode::kInvalidArgument
                 ? kExitUsage
                 : kExitIo;
    }
    files = std::move(tree).value();
  } else {
    for (const std::string& rel : paths) {
      auto file = mhbc::lint::LoadSource(root, rel);
      if (!file.ok()) {
        std::fprintf(stderr, "error: %s\n", file.status().ToString().c_str());
        return kExitIo;
      }
      files.push_back(std::move(file).value());
    }
  }

  const std::vector<Finding> findings = mhbc::lint::LintTree(files, config);

  std::size_t errors = 0;
  for (const Finding& finding : findings) {
    if (finding.severity == Severity::kError) ++errors;
  }
  if (json) {
    mhbc::Table table({"location", "rule", "severity", "message", "fix"});
    for (const Finding& f : findings) {
      table.AddRow({f.path + ":" + std::to_string(f.line), f.rule,
                    SeverityName(f.severity), f.message, f.fixit});
    }
    std::printf("%s\n", table.ToJson().c_str());
  } else {
    for (const Finding& f : findings) {
      std::fprintf(stderr, "%s:%d: %s: %s [%s]\n", f.path.c_str(), f.line,
                   SeverityName(f.severity), f.message.c_str(),
                   f.rule.c_str());
      if (!f.fixit.empty()) {
        std::fprintf(stderr, "    fix: %s\n", f.fixit.c_str());
      }
    }
    std::fprintf(stderr,
                 "mhbc_lint: %zu file(s), %zu finding(s), %zu error(s)\n",
                 files.size(), findings.size(), errors);
  }
  return errors > 0 ? kExitFindings : kExitClean;
}
