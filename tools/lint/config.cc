#include "lint.h"

#include <fstream>
#include <sstream>

namespace mhbc::lint {

namespace {

/// Accepts rule ids with or without the "mhbc-" prefix and returns the
/// normalized full id.
std::string NormalizeRuleId(const std::string& id) {
  if (id.rfind("mhbc-", 0) == 0) return id;
  return "mhbc-" + id;
}

}  // namespace

bool GlobMatch(const std::string& glob, const std::string& path) {
  // Iterative *-wildcard match ('*' crosses '/'; '?' is not supported —
  // no allowlist has ever needed it).
  std::size_t g = 0, p = 0, star_g = std::string::npos, star_p = 0;
  while (p < path.size()) {
    if (g < glob.size() && (glob[g] == path[p])) {
      ++g;
      ++p;
    } else if (g < glob.size() && glob[g] == '*') {
      star_g = g++;
      star_p = p;
    } else if (star_g != std::string::npos) {
      g = star_g + 1;
      p = ++star_p;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

int Config::LayerRank(const std::string& name) const {
  for (const auto& [layer, rank] : layers) {
    if (layer == name) return rank;
  }
  return -1;
}

bool Config::Allows(const std::string& rule, const std::string& subcheck,
                    const std::string& path) const {
  for (const Allow& allow : allows) {
    if (allow.rule != rule) continue;
    if (!allow.subcheck.empty() && allow.subcheck != subcheck) continue;
    if (GlobMatch(allow.glob, path)) return true;
  }
  return false;
}

bool Config::Skipped(const std::string& path) const {
  for (const std::string& glob : skips) {
    if (GlobMatch(glob, path)) return true;
  }
  return false;
}

Config DefaultConfig() {
  Config config;
  // The documented layer order (docs/ARCHITECTURE.md "Layer map"):
  // util -> graph -> sp -> exact -> baselines/core -> centrality, with
  // datasets beside sp (it consumes graph, nothing consumes it but the
  // harnesses). Gaps of 10 leave room for future layers.
  config.layers = {
      {"util", 0},      {"graph", 10},     {"datasets", 20}, {"sp", 20},
      {"exact", 30},    {"baselines", 40}, {"core", 40},     {"centrality", 50},
      {"serve", 60},
  };
  return config;
}

StatusOr<Config> LoadConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open lint config '" + path + "'");
  }
  Config config = DefaultConfig();
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank/comment line
    const auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + why);
    };
    if (directive == "layer") {
      std::string name;
      int rank = 0;
      if (!(fields >> name >> rank)) {
        return bad("expected `layer <name> <rank>`");
      }
      // Overrides an existing entry, else appends.
      bool replaced = false;
      for (auto& [layer, existing] : config.layers) {
        if (layer == name) {
          existing = rank;
          replaced = true;
        }
      }
      if (!replaced) config.layers.emplace_back(name, rank);
    } else if (directive == "allow") {
      std::string rule;
      if (!(fields >> rule)) {
        return bad("expected `allow <rule>[:<subcheck>] <glob>...`");
      }
      std::string subcheck;
      const std::size_t colon = rule.find(':');
      if (colon != std::string::npos) {
        subcheck = rule.substr(colon + 1);
        rule.resize(colon);
      }
      rule = NormalizeRuleId(rule);
      bool known = false;
      for (const RuleInfo& info : Rules()) known = known || info.id == rule;
      if (!known) return bad("unknown rule '" + rule + "'");
      std::string glob;
      int globs = 0;
      while (fields >> glob) {
        config.allows.push_back({rule, subcheck, glob});
        ++globs;
      }
      if (globs == 0) return bad("`allow " + rule + "` lists no globs");
    } else if (directive == "skip") {
      std::string glob;
      int globs = 0;
      while (fields >> glob) {
        config.skips.push_back(glob);
        ++globs;
      }
      if (globs == 0) return bad("`skip` lists no globs");
    } else {
      return bad("unknown directive '" + directive +
                 "' (expected layer/allow/skip)");
    }
  }
  return config;
}

}  // namespace mhbc::lint
