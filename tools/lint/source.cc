#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.h"

namespace mhbc::lint {

namespace fs = std::filesystem;

namespace {

/// The trees mhbc_lint walks, in reporting order. tools/ is included so the
/// linter dogfoods itself.
const char* const kLintedTrees[] = {"src", "bench", "examples", "tests",
                                    "tools"};

bool HasLintedExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

SourceFile LexSource(const std::string& rel_path, const std::string& content) {
  SourceFile file;
  file.path = rel_path;
  const std::size_t first_slash = rel_path.find('/');
  file.top = rel_path.substr(0, first_slash);
  if (file.top == "src" && first_slash != std::string::npos) {
    const std::size_t second_slash = rel_path.find('/', first_slash + 1);
    if (second_slash != std::string::npos) {
      file.layer =
          rel_path.substr(first_slash + 1, second_slash - first_slash - 1);
    }
  }
  const std::size_t dot = rel_path.rfind('.');
  const std::string ext = dot == std::string::npos ? "" : rel_path.substr(dot);
  file.is_header = ext == ".h" || ext == ".hpp";
  file.stream = Tokenize(content);
  return file;
}

StatusOr<SourceFile> LoadSource(const std::string& repo_root,
                                const std::string& rel_path) {
  const fs::path full = fs::path(repo_root) / rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + full.string() + "' for reading");
  }
  std::ostringstream content;
  content << in.rdbuf();
  return LexSource(rel_path, content.str());
}

StatusOr<std::vector<SourceFile>> LoadTree(const std::string& repo_root,
                                           const Config& config) {
  const fs::path root(repo_root);
  if (!fs::is_directory(root / "src")) {
    return Status::InvalidArgument("'" + repo_root +
                                   "' has no src/ directory; pass the repo "
                                   "root via --root=");
  }
  std::vector<std::string> rel_paths;
  for (const char* tree : kLintedTrees) {
    const fs::path base = root / tree;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !HasLintedExtension(entry.path())) {
        continue;
      }
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (config.Skipped(rel)) continue;
      rel_paths.push_back(rel);
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  std::vector<SourceFile> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    auto file = LoadSource(repo_root, rel);
    if (!file.ok()) return file.status();
    files.push_back(std::move(file).value());
  }
  return files;
}

}  // namespace mhbc::lint
