#include "core/co_betweenness_mh.h"

#include <gtest/gtest.h>

#include "exact/co_betweenness.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(CoBetweennessMhTest, CoDependencySumsToRawCoBetweenness) {
  // sum over sources v of kappa_v(u, w) == raw co-betweenness of {u, w}.
  const CsrGraph g = MakeBarbell(4, 2);
  const VertexId u = 4, w = 5;  // the two bridge vertices
  CoBetweennessMhOptions options;
  options.seed = 3;
  CoBetweennessMhSampler sampler(g, u, w, options);
  double total = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    total += sampler.CoDependency(v);
  }
  EXPECT_NEAR(total, CoBetweennessPair(g, u, w, Normalization::kNone), 1e-9);
}

TEST(CoBetweennessMhTest, CoDependencyZeroAtPairMembers) {
  const CsrGraph g = MakePath(6);
  CoBetweennessMhOptions options;
  CoBetweennessMhSampler sampler(g, 2, 3, options);
  EXPECT_DOUBLE_EQ(sampler.CoDependency(2), 0.0);
  EXPECT_DOUBLE_EQ(sampler.CoDependency(3), 0.0);
  EXPECT_GT(sampler.CoDependency(0), 0.0);
}

TEST(CoBetweennessMhTest, RaoBlackwellUnbiasedOnBridgePair) {
  const CsrGraph g = MakeBarbell(5, 2);
  const VertexId u = 5, w = 6;
  const double exact = CoBetweennessPair(g, u, w);  // paper normalization
  CoBetweennessMhOptions options;
  options.seed = 7;
  CoBetweennessMhSampler sampler(g, u, w, options);
  const CoBetweennessMhResult result = sampler.Run(8'000);
  EXPECT_NEAR(result.proposal_estimate, exact, 0.05 * exact);
}

TEST(CoBetweennessMhTest, ChainEstimateWithinMuFactor) {
  // Co-dependency is flat across both cliques of the barbell, so the chain
  // readout's bias is the usual n/|support| sliver only.
  const CsrGraph g = MakeBarbell(5, 2);
  const VertexId u = 5, w = 6;
  const double exact = CoBetweennessPair(g, u, w);
  CoBetweennessMhOptions options;
  options.seed = 9;
  CoBetweennessMhSampler sampler(g, u, w, options);
  const CoBetweennessMhResult result = sampler.Run(8'000);
  EXPECT_GE(result.estimate, exact * 0.95);
  EXPECT_LE(result.estimate, exact * 1.35);
}

TEST(CoBetweennessMhTest, ZeroCoBetweennessPairEstimatesZero) {
  // Two star leaves never co-occur on a shortest path interior.
  const CsrGraph g = MakeStar(8);
  CoBetweennessMhOptions options;
  options.seed = 11;
  CoBetweennessMhSampler sampler(g, 1, 2, options);
  const CoBetweennessMhResult result = sampler.Run(500);
  EXPECT_DOUBLE_EQ(result.estimate, 0.0);
  EXPECT_DOUBLE_EQ(result.proposal_estimate, 0.0);
}

TEST(CoBetweennessMhTest, DeterministicForSeed) {
  const CsrGraph g = MakeConnectedCaveman(4, 6);
  CoBetweennessMhOptions options;
  options.seed = 13;
  CoBetweennessMhSampler a(g, 5, 6, options);
  CoBetweennessMhSampler b(g, 5, 6, options);
  EXPECT_DOUBLE_EQ(a.Run(400).estimate, b.Run(400).estimate);
}

TEST(CoBetweennessMhTest, DiagnosticsAccounting) {
  const CsrGraph g = MakeBarbell(4, 2);
  CoBetweennessMhOptions options;
  options.seed = 17;
  CoBetweennessMhSampler sampler(g, 4, 5, options);
  const CoBetweennessMhResult result = sampler.Run(300);
  EXPECT_EQ(result.diagnostics.iterations, 300u);
  EXPECT_EQ(result.diagnostics.accepted + result.diagnostics.rejected, 300u);
  EXPECT_EQ(result.diagnostics.sp_passes, 301u);
}

}  // namespace
}  // namespace mhbc
