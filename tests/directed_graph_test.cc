#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "centrality/engine.h"
#include "core/mh_chain.h"
#include "exact/brandes.h"
#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_algos.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/ingest.h"
#include "graph/snapshot.h"
#include "sp/bfs_spd.h"
#include "sp/delta_spd.h"
#include "sp/spd.h"
#include "util/rng.h"

/// \file
/// Directed-graph support across the stack: builder/transpose invariants,
/// hand-computed directed Brandes on DAG/cycle/tournament fixtures,
/// directed-vs-symmetrized divergence, kernel/thread bit-identity on both
/// SPD engines, snapshot v2 round trips plus v1 backward compatibility and
/// unknown-flag rejection, Matrix Market banners, edge-list directedness
/// and mirrored-pair accounting, dynamic single-arc edits, and the
/// directed normalization rule.

namespace mhbc {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- fixtures

/// Deterministic weakly-connected directed graph: a 0→1→...→n-1 spine
/// plus `extra` LCG-drawn arcs. Weighted variants draw weights in [1, 3).
CsrGraph MakeDirectedLcg(VertexId n, std::size_t extra, std::uint64_t seed,
                         bool weighted = false) {
  GraphBuilder builder(n);
  builder.set_directed(true)
      .set_ignore_self_loops(true)
      .set_merge_duplicates(true);
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  };
  const auto weight = [&next]() {
    return 1.0 + static_cast<double>(next() % 16) / 8.0;
  };
  for (VertexId v = 1; v < n; ++v) {
    if (weighted) {
      builder.AddWeightedEdge(v - 1, v, weight());
    } else {
      builder.AddEdge(v - 1, v);
    }
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const VertexId u = static_cast<VertexId>(next() % n);
    const VertexId v = static_cast<VertexId>(next() % n);
    if (weighted) {
      builder.AddWeightedEdge(u, v, weight());
    } else {
      builder.AddEdge(u, v);
    }
  }
  auto built = builder.Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

CsrGraph BuildDirected(VertexId n,
                       const std::vector<std::pair<VertexId, VertexId>>& arcs) {
  GraphBuilder builder(n);
  builder.set_directed(true);
  for (const auto& [u, v] : arcs) builder.AddEdge(u, v);
  auto built = builder.Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

/// Tournament on 4 vertices: the 3-cycle 0→1→2→0 plus sink 3. Raw
/// (ordered-pair) betweenness is {1, 1, 1, 0}: each cycle vertex carries
/// exactly the one length-2 path that closes the cycle.
CsrGraph Tournament4() {
  return BuildDirected(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 3}, {2, 3}});
}

/// Structural equality including directedness and the transpose view.
void ExpectDirectedGraphsIdentical(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.weighted(), b.weighted());
  ASSERT_EQ(a.directed(), b.directed());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "out-slice of vertex " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]) << "vertex " << v << " out-slot " << i;
    }
    const auto ia = a.in_neighbors(v);
    const auto ib = b.in_neighbors(v);
    ASSERT_EQ(ia.size(), ib.size()) << "in-slice of vertex " << v;
    for (std::size_t i = 0; i < ia.size(); ++i) {
      EXPECT_EQ(ia[i], ib[i]) << "vertex " << v << " in-slot " << i;
    }
    if (a.weighted()) {
      const auto wa = a.weights(v);
      const auto wb = b.weights(v);
      for (std::size_t i = 0; i < wa.size(); ++i) {
        EXPECT_EQ(wa[i], wb[i]) << "vertex " << v << " weight " << i;
      }
    }
  }
}

// -------------------------------------------------- builder + transpose

TEST(DirectedBuilderTest, ArcCountsAndReciprocalArcsAreDistinct) {
  const CsrGraph g = BuildDirected(3, {{0, 1}, {1, 0}, {1, 2}});
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_edges(), 3u);  // arcs, not unordered pairs
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.in_degree(2), 1u);
  EXPECT_EQ(g.raw_adjacency().size(), 3u);
  EXPECT_EQ(g.raw_in_adjacency().size(), 3u);
}

TEST(DirectedBuilderTest, TransposeMatchesOutCsrAndIsSorted) {
  const CsrGraph g = MakeDirectedLcg(120, 400, 0xD1);
  // Every arc u→v appears exactly once in v's in-slice, and in-slices are
  // ascending (the counting-sort transpose preserves source order).
  std::vector<std::vector<VertexId>> expected_in(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) expected_in[v].push_back(u);
  }
  std::uint64_t in_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto in = g.in_neighbors(v);
    ASSERT_EQ(in.size(), expected_in[v].size()) << "vertex " << v;
    EXPECT_TRUE(std::is_sorted(in.begin(), in.end())) << "vertex " << v;
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(in[i], expected_in[v][i]) << "vertex " << v << " slot " << i;
    }
    in_total += in.size();
  }
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(DirectedBuilderTest, UndirectedInViewAliasesOutView) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  const CsrGraph g = std::move(builder.Build()).value();
  EXPECT_FALSE(g.directed());
  ASSERT_EQ(g.raw_in_adjacency().size(), g.raw_adjacency().size());
  EXPECT_EQ(g.raw_in_adjacency().data(), g.raw_adjacency().data());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.in_degree(v), g.degree(v));
  }
}

// ------------------------------------------------------ exact (Brandes)

TEST(DirectedBrandesTest, PathHandComputed) {
  // 0→1→2→3: pairs (0,2),(0,3) pass through 1; (0,3),(1,3) through 2.
  const CsrGraph g = BuildDirected(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<double> raw = ExactBetweenness(g, Normalization::kNone);
  const std::vector<double> want{0.0, 2.0, 2.0, 0.0};
  EXPECT_EQ(raw, want);
}

TEST(DirectedBrandesTest, CycleHandComputed) {
  // Directed 4-cycle: every source contributes one length-2 and one
  // length-3 path, 3 interior incidences each; symmetry gives raw 3.
  const CsrGraph g = BuildDirected(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const std::vector<double> raw = ExactBetweenness(g, Normalization::kNone);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(raw[v], 3.0) << "vertex " << v;
}

TEST(DirectedBrandesTest, DiamondDagHandComputed) {
  // 0→{1,2}→3: sigma(0→3) = 2, so each middle vertex carries 1/2.
  const CsrGraph g = BuildDirected(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const std::vector<double> raw = ExactBetweenness(g, Normalization::kNone);
  const std::vector<double> want{0.0, 0.5, 0.5, 0.0};
  EXPECT_EQ(raw, want);
}

TEST(DirectedBrandesTest, TournamentHandComputed) {
  const CsrGraph g = Tournament4();
  const std::vector<double> raw = ExactBetweenness(g, Normalization::kNone);
  const std::vector<double> want{1.0, 1.0, 1.0, 0.0};
  EXPECT_EQ(raw, want);
}

TEST(DirectedBrandesTest, UnorderedPairsNormalizationIsRawOnDirected) {
  const CsrGraph g = Tournament4();
  EXPECT_EQ(ExactBetweenness(g, Normalization::kUnorderedPairs),
            ExactBetweenness(g, Normalization::kNone));
  const std::vector<double> paper = ExactBetweenness(g, Normalization::kPaper);
  const std::vector<double> raw = ExactBetweenness(g, Normalization::kNone);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(paper[v], raw[v] / 12.0) << "vertex " << v;  // n(n-1) = 12
  }
}

TEST(DirectedBrandesTest, DirectedDiffersFromSymmetrizedLoad) {
  // Symmetrizing the tournament yields K4 (all betweenness 0); the
  // directed graph scores {1,1,1,0}/12 — orientation must be observable.
  const CsrGraph directed = Tournament4();
  GraphBuilder sym(4);
  sym.set_merge_duplicates(true);
  for (const CsrGraph::Edge& e : directed.CollectEdges()) sym.AddEdge(e.u, e.v);
  const CsrGraph undirected = std::move(sym.Build()).value();
  ASSERT_FALSE(undirected.directed());

  const std::vector<double> ds = ExactBetweenness(directed);
  const std::vector<double> us = ExactBetweenness(undirected);
  ASSERT_EQ(ds.size(), us.size());
  bool any_differ = false;
  for (std::size_t v = 0; v < ds.size(); ++v) any_differ |= ds[v] != us[v];
  EXPECT_TRUE(any_differ)
      << "directed scores collapsed to the symmetrized ones";
}

// --------------------------------------- kernel / thread-count identity

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

TEST(DirectedSpdKernelTest, BfsKernelsBitIdenticalAcrossThreads) {
  const CsrGraph g = MakeDirectedLcg(300, 900, 0xB5);
  const VertexId sources[] = {0, 7, 150};
  for (VertexId source : sources) {
    SpdOptions base;
    base.kernel = SpdKernel::kClassic;
    base.num_threads = 1;
    BfsSpd baseline(g, base);
    baseline.Run(source);
    const ShortestPathDag want = baseline.dag();
    for (SpdKernel kernel : {SpdKernel::kClassic, SpdKernel::kHybrid}) {
      for (unsigned threads : kThreadCounts) {
        SpdOptions options;
        options.kernel = kernel;
        options.num_threads = threads;
        options.parallel_grain = 0;  // force the parallel steps
        BfsSpd engine(g, options);
        engine.Run(source);
        const ShortestPathDag& got = engine.dag();
        const std::string label =
            (kernel == SpdKernel::kClassic ? "classic @" : "hybrid @") +
            std::to_string(threads) + " threads, source " +
            std::to_string(source);
        EXPECT_EQ(got.dist, want.dist) << label;
        EXPECT_EQ(got.sigma, want.sigma) << label;
        EXPECT_EQ(got.order, want.order) << label;
        EXPECT_EQ(got.level_offsets, want.level_offsets) << label;
      }
    }
  }
}

TEST(DirectedSpdKernelTest, DeltaKernelBitIdenticalAcrossThreads) {
  const CsrGraph g = MakeDirectedLcg(250, 700, 0xDE, /*weighted=*/true);
  ASSERT_TRUE(g.weighted());
  const VertexId sources[] = {0, 42, 125};
  for (VertexId source : sources) {
    SpdOptions base;
    base.num_threads = 1;
    DeltaSpd baseline(g, base);
    baseline.Run(source);
    const ShortestPathDag want = baseline.dag();
    for (unsigned threads : kThreadCounts) {
      SpdOptions options;
      options.num_threads = threads;
      options.parallel_grain = 0;
      DeltaSpd engine(g, options);
      engine.Run(source);
      const ShortestPathDag& got = engine.dag();
      const std::string label = "delta @" + std::to_string(threads) +
                                " threads, source " + std::to_string(source);
      EXPECT_EQ(got.wdist, want.wdist) << label;
      EXPECT_EQ(got.sigma, want.sigma) << label;
      EXPECT_EQ(got.order, want.order) << label;
      EXPECT_EQ(got.level_offsets, want.level_offsets) << label;
    }
  }
}

TEST(DirectedSpdKernelTest, ExactScoresThreadInvariant) {
  const CsrGraph g = MakeDirectedLcg(200, 600, 0xE7);
  const std::vector<double> exact_baseline = ExactBetweenness(g);
  const std::vector<double> sharded_baseline =
      BrandesBetweenness(g, Normalization::kPaper, 1);
  for (unsigned threads : kThreadCounts) {
    SpdOptions spd;
    spd.num_threads = threads;
    spd.parallel_grain = 0;
    EXPECT_EQ(ExactBetweenness(g, Normalization::kPaper, spd), exact_baseline)
        << threads << " intra-pass threads";
    EXPECT_EQ(BrandesBetweenness(g, Normalization::kPaper, threads),
              sharded_baseline)
        << threads << " source-parallel threads";
  }
}

// --------------------------------------------------------------- engine

void ExpectSameStatistics(const EstimateReport& got, const EstimateReport& want,
                          const std::string& label) {
  EXPECT_EQ(got.vertex, want.vertex) << label;
  EXPECT_EQ(got.value, want.value) << label;
  EXPECT_EQ(got.samples_used, want.samples_used) << label;
  EXPECT_EQ(got.acceptance_rate, want.acceptance_rate) << label;
  EXPECT_EQ(got.std_error, want.std_error) << label;
  EXPECT_EQ(got.converged, want.converged) << label;
}

TEST(DirectedEngineTest, MhEstimatesThreadInvariant) {
  const CsrGraph g = MakeDirectedLcg(80, 240, 0x5E);
  const std::vector<VertexId> vertices{3, 17, 40, 61, 79};
  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 250;
  request.seed = 0xD17;

  std::vector<EstimateReport> baseline;
  {
    EngineOptions options;
    options.num_threads = 1;
    BetweennessEngine engine(g, options);
    auto reports = engine.EstimateMany(vertices, request);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    baseline = std::move(reports).value();
  }
  for (unsigned threads : kThreadCounts) {
    EngineOptions options;
    options.num_threads = threads;
    BetweennessEngine engine(g, options);
    auto reports = engine.EstimateMany(vertices, request);
    ASSERT_TRUE(reports.ok()) << reports.status().ToString();
    ASSERT_EQ(reports.value().size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      ExpectSameStatistics(reports.value()[i], baseline[i],
                           "MH @" + std::to_string(threads) + " threads");
    }
  }
}

// ------------------------------------------------------------ proposals

TEST(DirectedProposalTest, DegreeProportionalUsesTotalDegree) {
  // Vertex 4 is isolated; vertex 3 is a pure sink (out-degree 0). The
  // total-degree draw must reach the sink and never the isolate.
  const CsrGraph g =
      BuildDirected(5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 3}, {2, 3}});
  EXPECT_EQ(ProposalMass(g, ProposalKind::kDegreeProportional, 0), 3.0);
  EXPECT_EQ(ProposalMass(g, ProposalKind::kDegreeProportional, 3), 3.0);
  EXPECT_EQ(ProposalMass(g, ProposalKind::kDegreeProportional, 4), 0.0);

  Rng rng(0xACE);
  std::vector<std::uint64_t> counts(g.num_vertices(), 0);
  for (int i = 0; i < 6000; ++i) {
    const VertexId v = DrawProposal(g, ProposalKind::kDegreeProportional, &rng);
    ASSERT_LT(v, g.num_vertices());
    ++counts[v];
  }
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_GT(counts[v], 0u) << "vertex " << v << " never proposed";
  }
  EXPECT_EQ(counts[4], 0u) << "zero-mass isolate proposed";
}

// ---------------------------------------------------- snapshot fixtures

/// Per-test scratch file under the system temp dir, removed on teardown.
class DirectedFileTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& leaf) {
    const fs::path dir = fs::temp_directory_path() / "mhbc_directed_test";
    fs::create_directories(dir);
    const std::string path = (dir / leaf).string();
    created_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : created_) std::remove(path.c_str());
  }

  std::vector<std::string> created_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Overwrites `len` bytes at `offset`, recomputes the trailing FNV-1a-64
/// checksum, and rewrites the file — the snapshot stays self-consistent
/// so only the patched field is under test.
void PatchSnapshotAndReseal(const std::string& path, std::size_t offset,
                            const void* bytes, std::size_t len) {
  std::string data = ReadFileBytes(path);
  ASSERT_GE(data.size(), offset + len);
  ASSERT_GE(data.size(), sizeof(std::uint64_t));
  std::memcpy(data.data() + offset, bytes, len);
  std::uint64_t hash = 14695981039346656037ull;
  const std::size_t checksum_off = data.size() - sizeof(std::uint64_t);
  for (std::size_t i = 0; i < checksum_off; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  std::memcpy(data.data() + checksum_off, &hash, sizeof(hash));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

// ------------------------------------------------------------ snapshots

TEST_F(DirectedFileTest, DirectedSnapshotRoundTrips) {
  for (const bool weighted : {false, true}) {
    const CsrGraph original = MakeDirectedLcg(90, 260, 0x5A, weighted);
    const std::string path =
        Path(weighted ? "directed_w.mhbc" : "directed.mhbc");
    ASSERT_TRUE(SaveSnapshot(original, path).ok());

    auto info = InspectSnapshot(path);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info.value().version, kSnapshotFormatVersion);
    EXPECT_TRUE(info.value().directed);
    EXPECT_EQ(info.value().weighted, weighted);
    EXPECT_EQ(info.value().num_edges, original.num_edges());
    EXPECT_TRUE(info.value().checksum_ok);

    auto buffered = LoadSnapshotBuffered(path);
    ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
    ExpectDirectedGraphsIdentical(original, buffered.value());

    auto mapped = LoadSnapshotMapped(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    ExpectDirectedGraphsIdentical(original, mapped.value().graph());
  }
}

TEST_F(DirectedFileTest, VersionOneSnapshotStillLoads) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(0, 4);
  const CsrGraph original = std::move(builder.Build()).value();
  const std::string path = Path("v1_compat.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());

  // Rewind the header's format version (u32 at byte 8) to 1: the result
  // is byte-for-byte a legacy v1 file (v1 and v2 share the layout; v2
  // only defined flag bit 0x2, which an undirected graph never sets).
  const std::uint32_t v1 = 1;
  PatchSnapshotAndReseal(path, 8, &v1, sizeof(v1));

  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, 1u);
  EXPECT_FALSE(info.value().directed);
  EXPECT_TRUE(info.value().checksum_ok);

  auto buffered = LoadSnapshotBuffered(path);
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_FALSE(buffered.value().directed());
  ExpectDirectedGraphsIdentical(original, buffered.value());

  auto mapped = LoadSnapshotMapped(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectDirectedGraphsIdentical(original, mapped.value().graph());
}

TEST_F(DirectedFileTest, UnknownFlagBitsRejectedByName) {
  const CsrGraph undirected = std::move([] {
    GraphBuilder builder(3);
    builder.AddEdge(0, 1);
    builder.AddEdge(1, 2);
    return builder.Build();
  }().value());

  // A v2 file with an undefined flag bit must name the offending bits.
  const std::string bogus_path = Path("bogus_flag.mhbc");
  ASSERT_TRUE(SaveSnapshot(undirected, bogus_path).ok());
  const std::uint64_t bogus_flags = 0x8;
  PatchSnapshotAndReseal(bogus_path, 16, &bogus_flags, sizeof(bogus_flags));
  auto rejected = LoadSnapshotBuffered(bogus_path);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("unknown flag bits"),
            std::string::npos)
      << rejected.status().message();
  EXPECT_NE(rejected.status().message().find("0x8"), std::string::npos)
      << rejected.status().message();

  // The directed bit does not exist in v1: a v1 header carrying it is an
  // unknown-flag error, not a silently-dropped attribute.
  const CsrGraph directed = BuildDirected(3, {{0, 1}, {1, 2}, {2, 0}});
  const std::string v1_path = Path("v1_directed_flag.mhbc");
  ASSERT_TRUE(SaveSnapshot(directed, v1_path).ok());
  const std::uint32_t v1 = 1;
  PatchSnapshotAndReseal(v1_path, 8, &v1, sizeof(v1));
  auto v1_rejected = LoadSnapshotBuffered(v1_path);
  ASSERT_FALSE(v1_rejected.ok());
  EXPECT_NE(v1_rejected.status().message().find("unknown flag bits"),
            std::string::npos)
      << v1_rejected.status().message();
  EXPECT_NE(v1_rejected.status().message().find("0x2"), std::string::npos)
      << v1_rejected.status().message();
  EXPECT_NE(v1_rejected.status().message().find("version 1"),
            std::string::npos)
      << v1_rejected.status().message();
}

// -------------------------------------------------------- Matrix Market

TEST_F(DirectedFileTest, MatrixMarketDirectedGeneralBannerRoundTrips) {
  for (const bool weighted : {false, true}) {
    const CsrGraph original = MakeDirectedLcg(40, 110, 0x33, weighted);
    const std::string path = Path(weighted ? "directed_w.mtx" : "directed.mtx");
    ASSERT_TRUE(WriteMatrixMarket(original, path).ok());

    std::ifstream in(path);
    std::string banner;
    ASSERT_TRUE(std::getline(in, banner));
    EXPECT_EQ(banner, std::string("%%MatrixMarket matrix coordinate ") +
                          (weighted ? "real" : "pattern") + " general");

    auto loaded = LoadMatrixMarket(path, /*directed=*/true);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectDirectedGraphsIdentical(original, loaded.value());
  }
}

TEST_F(DirectedFileTest, MatrixMarketUndirectedOutputByteStable) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  const CsrGraph triangle = std::move(builder.Build()).value();
  const std::string path = Path("triangle.mtx");
  ASSERT_TRUE(WriteMatrixMarket(triangle, path).ok());
  // The undirected dialect predates directed support; pin the exact bytes
  // so directed plumbing can never perturb existing files.
  EXPECT_EQ(ReadFileBytes(path),
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "% mhbc graph: n=3 m=3\n"
            "3 3 3\n"
            "2 1\n"
            "3 1\n"
            "3 2\n");
  auto reloaded = LoadMatrixMarket(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ExpectDirectedGraphsIdentical(triangle, reloaded.value());
}

TEST_F(DirectedFileTest, MatrixMarketSymmetricLoadsDirectedAsReciprocal) {
  // A `symmetric` file ingested directed contributes both orientations.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const CsrGraph undirected = std::move(builder.Build()).value();
  const std::string path = Path("sym_as_directed.mtx");
  ASSERT_TRUE(WriteMatrixMarket(undirected, path).ok());
  auto loaded = LoadMatrixMarket(path, /*directed=*/true);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().directed());
  EXPECT_EQ(loaded.value().num_edges(), 4u);  // two arcs per edge
}

// ------------------------------------------------------------ edge list

TEST(DirectedEdgeListTest, MirroredPairStatsAndSymmetrizePolicy) {
  const std::string text = "# comment\n0 1\n1 0\n1 2\n2 2\n";

  EdgeListStats stats;
  EdgeListOptions undirected;
  undirected.stats = &stats;
  {
    std::istringstream in(text);
    auto graph = ParseEdgeList(in, undirected);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    EXPECT_FALSE(graph.value().directed());
    EXPECT_EQ(graph.value().num_edges(), 2u);  // {0,1} folded, {1,2}
  }
  EXPECT_EQ(stats.edge_lines, 4u);
  EXPECT_EQ(stats.self_loop_lines, 1u);
  EXPECT_EQ(stats.mirrored_pairs, 1u);

  EdgeListOptions directed;
  directed.directed = true;
  directed.stats = &stats;
  {
    std::istringstream in(text);
    auto graph = ParseEdgeList(in, directed);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    EXPECT_TRUE(graph.value().directed());
    EXPECT_EQ(graph.value().num_edges(), 3u);  // reciprocal arcs distinct
  }
  EXPECT_EQ(stats.mirrored_pairs, 1u);

  // Refusing to symmetrize only makes sense directed; undirected it is a
  // contradiction the loader must reject rather than silently fold.
  EdgeListOptions contradictory;
  contradictory.symmetrize = false;
  std::istringstream in(text);
  auto rejected = ParseEdgeList(in, contradictory);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("directed"), std::string::npos)
      << rejected.status().message();
}

TEST_F(DirectedFileTest, WriteEdgeListDirectedRoundTrips) {
  const CsrGraph original = MakeDirectedLcg(30, 70, 0x44);
  const std::string path = Path("directed.txt");
  ASSERT_TRUE(WriteEdgeList(original, path).ok());
  {
    std::ifstream in(path);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_NE(header.find("directed"), std::string::npos) << header;
  }
  EdgeListOptions options;
  options.directed = true;
  auto loaded = LoadSnapEdgeList(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The loader remaps ids in first-seen order over the written arc
  // stream (CSR order); apply the same permutation to the original and
  // the graphs must match arc for arc.
  std::vector<VertexId> first_seen(original.num_vertices(), kInvalidVertex);
  VertexId next_id = 0;
  const auto assign = [&first_seen, &next_id](VertexId old_id) {
    if (first_seen[old_id] == kInvalidVertex) first_seen[old_id] = next_id++;
  };
  for (const CsrGraph::Edge& e : original.CollectEdges()) {
    assign(e.u);
    assign(e.v);
  }
  ASSERT_EQ(next_id, original.num_vertices());  // fixture has no isolates
  ExpectDirectedGraphsIdentical(ApplyVertexPermutation(original, first_seen),
                                loaded.value());
}

TEST_F(DirectedFileTest, IngestFrontEndPlumbsDirectednessAndMirrorCounts) {
  const std::string path = Path("ingest_directed.txt");
  {
    std::ofstream out(path);
    out << "# tiny fixture\n0 1\n1 0\n1 2\n";
  }
  IngestOptions options;
  options.directed = true;  // no cache_dir: parse fresh, stats populated
  auto source = OpenGraphSource(path, options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_TRUE(source.value().directed());
  EXPECT_EQ(source.value().graph().num_edges(), 3u);
  EXPECT_EQ(source.value().mirrored_pairs(), 1u);

  auto folded = OpenGraphSource(path, IngestOptions());
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  EXPECT_FALSE(folded.value().directed());
  EXPECT_EQ(folded.value().graph().num_edges(), 2u);
  EXPECT_EQ(folded.value().mirrored_pairs(), 1u);
}

// -------------------------------------------------------- dynamic graph

TEST(DirectedDynamicGraphTest, SingleArcEditsAndCompact) {
  DynamicGraph dynamic(BuildDirected(4, {{0, 1}, {1, 2}}));
  EXPECT_TRUE(dynamic.directed());
  EXPECT_EQ(dynamic.num_edges(), 2u);

  // Adding the arc 2→0 must not create 0→2.
  ASSERT_TRUE(dynamic.AddEdge(2, 0).ok());
  EXPECT_TRUE(dynamic.HasEdge(2, 0));
  EXPECT_FALSE(dynamic.HasEdge(0, 2));
  EXPECT_EQ(dynamic.num_edges(), 3u);

  // The reciprocal arc is an independent insert, not a duplicate.
  ASSERT_TRUE(dynamic.AddEdge(0, 2).ok());
  EXPECT_EQ(dynamic.num_edges(), 4u);

  // Removing one orientation leaves the other.
  ASSERT_TRUE(dynamic.RemoveEdge(2, 0).ok());
  EXPECT_FALSE(dynamic.HasEdge(2, 0));
  EXPECT_TRUE(dynamic.HasEdge(0, 2));
  EXPECT_EQ(dynamic.num_edges(), 3u);

  dynamic.Compact();
  const CsrGraph& compacted = dynamic.Csr();
  ExpectDirectedGraphsIdentical(compacted,
                                BuildDirected(4, {{0, 1}, {0, 2}, {1, 2}}));
}

// ------------------------------------------------- algos + normalization

TEST(DirectedGraphAlgosTest, ComponentsAreWeaklyConnected) {
  // 0→1←2 is not strongly connected but is one weak component; 3 is
  // isolated.
  const CsrGraph g = BuildDirected(4, {{0, 1}, {2, 1}});
  const ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 2u);
  EXPECT_EQ(info.label[0], info.label[1]);
  EXPECT_EQ(info.label[0], info.label[2]);
  EXPECT_NE(info.label[0], info.label[3]);
  EXPECT_FALSE(IsConnected(g));

  const CsrGraph lcc = ExtractLargestComponent(g);
  EXPECT_TRUE(lcc.directed());
  EXPECT_EQ(lcc.num_vertices(), 3u);
  EXPECT_EQ(lcc.num_edges(), 2u);
}

TEST(DirectedGraphAlgosTest, PermutationPreservesArcsAndUsesTotalDegree) {
  // Total degrees: v0 = 1, v1 = 1, v2 = 2 — the sink outranks the sources
  // only if in-degree counts.
  const CsrGraph g = BuildDirected(3, {{0, 2}, {1, 2}});
  const std::vector<VertexId> perm = DegreeDescendingPermutation(g);
  EXPECT_EQ(perm[2], 0u);

  const CsrGraph relabeled = ApplyVertexPermutation(g, perm);
  EXPECT_TRUE(relabeled.directed());
  EXPECT_EQ(relabeled.num_edges(), 2u);
  for (const CsrGraph::Edge& e : g.CollectEdges()) {
    const auto out = relabeled.neighbors(perm[e.u]);
    EXPECT_TRUE(std::find(out.begin(), out.end(), perm[e.v]) != out.end())
        << "arc " << e.u << "->" << e.v << " lost its orientation";
  }
}

TEST(DirectedNormalizeTest, UnorderedPairsDivisorIsDirectednessAware) {
  std::vector<double> scores{3.0, 4.0};
  NormalizeScores(&scores, Normalization::kUnorderedPairs, 2,
                  /*directed=*/true);
  EXPECT_EQ(scores[0], 3.0);
  EXPECT_EQ(scores[1], 4.0);
  NormalizeScores(&scores, Normalization::kUnorderedPairs, 2,
                  /*directed=*/false);
  EXPECT_EQ(scores[0], 1.5);
  EXPECT_EQ(scores[1], 2.0);
}

}  // namespace
}  // namespace mhbc
