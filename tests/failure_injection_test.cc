#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "centrality/api.h"
#include "exact/brandes.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace mhbc {
namespace {

// Malformed-input and adversarial-topology coverage: the recoverable paths
// must return Status, never crash, and estimates on degenerate graphs must
// stay finite.

TEST(FailureInjectionTest, GarbageEdgeListLines) {
  for (const char* text : {
           "a b\n",            // non-numeric ids
           "1\n",              // missing endpoint
           "1 2 x\n",          // junk third column
           "999999999999999999999 1\n1 2\n",  // overflow-ish id
       }) {
    std::istringstream in(text);
    const auto result = ParseEdgeList(in, {});
    // Either a clean parse error or (for the overflow case on platforms
    // where it saturates) a parsed graph; never a crash.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FailureInjectionTest, WhitespaceOnlyFile) {
  std::istringstream in("\n\n   \n\t\n");
  EXPECT_FALSE(ParseEdgeList(in, {}).ok());
}

TEST(FailureInjectionTest, EstimateOnDisconnectedGraphStaysFinite) {
  GraphBuilder b(8);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(4, 5);
  b.AddEdge(5, 6);
  const CsrGraph g = std::move(b.Build()).value();
  for (EstimatorKind kind :
       {EstimatorKind::kMetropolisHastings, EstimatorKind::kUniformSource,
        EstimatorKind::kShortestPath}) {
    EstimateOptions options;
    options.kind = kind;
    options.samples = 300;
    const auto result = EstimateBetweenness(g, 1, options);
    ASSERT_TRUE(result.ok()) << EstimatorKindName(kind);
    EXPECT_TRUE(std::isfinite(result.value().value));
    EXPECT_GE(result.value().value, 0.0);
  }
}

TEST(FailureInjectionTest, TargetInTinyComponent) {
  // r sits in a 2-vertex component: its betweenness is 0 and every sampler
  // must report ~0 without dividing by zero anywhere.
  GraphBuilder b(10);
  for (VertexId v = 0; v + 1 < 8; ++v) b.AddEdge(v, v + 1);
  b.AddEdge(8, 9);
  const CsrGraph g = std::move(b.Build()).value();
  for (EstimatorKind kind :
       {EstimatorKind::kMetropolisHastings, EstimatorKind::kUniformSource,
        EstimatorKind::kDistanceProportional}) {
    EstimateOptions options;
    options.kind = kind;
    options.samples = 200;
    const auto result = EstimateBetweenness(g, 8, options);
    ASSERT_TRUE(result.ok()) << EstimatorKindName(kind);
    EXPECT_DOUBLE_EQ(result.value().value, 0.0) << EstimatorKindName(kind);
  }
}

TEST(FailureInjectionTest, RelativeBetweennessWithZeroScoreTarget) {
  // One target is a leaf (BC = 0): ratios involving it divide by a zero
  // average; the sampler must flag rather than crash or emit inf.
  const CsrGraph g = MakeStar(8);
  const auto result = EstimateRelativeBetweenness(g, {0, 3}, 2'000, 7);
  ASSERT_TRUE(result.ok());
  const JointResult& jr = result.value();
  // relative[leaf][center] = 1 for every sample (delta_leaf = 0 convention
  // clips to 1): finite.
  EXPECT_TRUE(std::isfinite(jr.relative[1][0]));
  // ratio[center][leaf] uses relative[center->leaf average] as denominator;
  // with delta(leaf) == 0 everywhere the clipped ratio is 0, so the ratio
  // is NaN (flagged) or huge — it must not be a silent wrong finite value.
  if (!std::isnan(jr.ratio[0][1])) {
    EXPECT_GT(jr.ratio[0][1], 1.0);
  }
}

TEST(FailureInjectionTest, PathMultiplicityDoesNotOverflowSigma) {
  // Stacked diamonds double sigma at every level: 2^40 shortest paths end
  // to end, well within double's exact-integer range (2^53).
  GraphBuilder builder(3 * 40 + 1);
  VertexId prev = 0;
  for (int d = 0; d < 40; ++d) {
    const VertexId mid1 = static_cast<VertexId>(3 * d + 1);
    const VertexId mid2 = static_cast<VertexId>(3 * d + 2);
    const VertexId next = static_cast<VertexId>(3 * d + 3);
    builder.AddEdge(prev, mid1);
    builder.AddEdge(prev, mid2);
    builder.AddEdge(mid1, next);
    builder.AddEdge(mid2, next);
    prev = next;
  }
  const CsrGraph g = std::move(builder.Build()).value();
  EstimateOptions options;
  options.kind = EstimatorKind::kMetropolisHastings;
  options.samples = 100;
  const auto result = EstimateBetweenness(g, 3, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result.value().value));
  EXPECT_GT(result.value().value, 0.0);
}

TEST(FailureInjectionTest, GridSigmaBeyond64BitsStaysNormalized) {
  // A 40x40 grid has C(78,39) ~ 1.1e22 corner-to-corner shortest paths —
  // far beyond 2^64. With double sigma accumulators every dependency ratio
  // stays in range; an integer counter silently wraps and inflates scores
  // (the regression this test pins: normalized BC must never exceed 1).
  const CsrGraph g = MakeGrid(40, 40);
  const VertexId center = 20 * 40 + 20;
  const auto profile = DependencyProfile(g, center);
  double total = 0.0;
  for (double d : profile) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, static_cast<double>(g.num_vertices()));
    total += d;
  }
  const double n = static_cast<double>(g.num_vertices());
  EXPECT_LE(total, n * (n - 2.0));
  const double bc = total / (n * (n - 1.0));
  EXPECT_GT(bc, 0.0);
  EXPECT_LT(bc, 1.0);
}

TEST(FailureInjectionTest, WeightedExtremeWeightRatios)  {
  // 6 orders of magnitude between lightest and heaviest edge.
  GraphBuilder b(5);
  b.AddWeightedEdge(0, 1, 1e-3);
  b.AddWeightedEdge(1, 2, 1e3);
  b.AddWeightedEdge(2, 3, 1e-3);
  b.AddWeightedEdge(3, 4, 1e3);
  b.AddWeightedEdge(0, 4, 1.0);
  const CsrGraph g = std::move(b.Build()).value();
  EstimateOptions options;
  options.kind = EstimatorKind::kMetropolisHastings;
  options.samples = 500;
  const auto result = EstimateBetweenness(g, 2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result.value().value));
}

}  // namespace
}  // namespace mhbc
