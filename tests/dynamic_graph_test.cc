#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "centrality/engine.h"
#include "exact/dependency_oracle.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mhbc {
namespace {

// ---------------------------------------------------------------- helpers

/// Reference model of an evolving graph: the edge map is the ground truth
/// the DynamicGraph composition and every scratch rebuild are checked
/// against.
struct Model {
  VertexId n = 0;
  bool weighted = false;
  std::map<std::pair<VertexId, VertexId>, double> edges;  // key u < v

  static Model FromGraph(const CsrGraph& graph) {
    Model model;
    model.n = graph.num_vertices();
    model.weighted = graph.weighted();
    for (const CsrGraph::Edge& e : graph.CollectEdges()) {
      model.edges[{std::min(e.u, e.v), std::max(e.u, e.v)}] = e.weight;
    }
    return model;
  }

  void Apply(const GraphDelta& delta) {
    for (const GraphEdit& edit : delta.edits()) {
      const auto key = std::minmax(edit.u, edit.v);
      switch (edit.kind) {
        case GraphEdit::Kind::kAddVertex:
          ++n;
          break;
        case GraphEdit::Kind::kAddEdge:
          ASSERT_EQ(edges.count({key.first, key.second}), 0u);
          edges[{key.first, key.second}] = edit.weight;
          break;
        case GraphEdit::Kind::kRemoveEdge:
          ASSERT_EQ(edges.erase({key.first, key.second}), 1u);
          break;
      }
    }
  }

  /// Scratch rebuild through the ordinary construction path.
  CsrGraph Build() const {
    GraphBuilder builder(n);
    for (const auto& [key, weight] : edges) {
      if (weighted) {
        builder.AddWeightedEdge(key.first, key.second, weight);
      } else {
        builder.AddEdge(key.first, key.second);
      }
    }
    auto built = builder.Build();
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return std::move(built).value();
  }
};

void ExpectGraphsIdentical(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.weighted(), b.weighted());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      ASSERT_EQ(na[i], nb[i]) << "vertex " << v << " slot " << i;
    }
    if (a.weighted()) {
      const auto wa = a.weights(v);
      const auto wb = b.weights(v);
      for (std::size_t i = 0; i < wa.size(); ++i) {
        ASSERT_EQ(wa[i], wb[i]) << "vertex " << v << " slot " << i;
      }
    }
  }
}

/// Checks the dynamic graph's composed accessors against the model.
void ExpectMatchesModel(const DynamicGraph& dynamic, const Model& model) {
  ASSERT_EQ(dynamic.num_vertices(), model.n);
  ASSERT_EQ(dynamic.num_edges(), model.edges.size());
  std::vector<std::vector<std::pair<VertexId, double>>> adjacency(model.n);
  for (const auto& [key, weight] : model.edges) {
    adjacency[key.first].emplace_back(key.second, weight);
    adjacency[key.second].emplace_back(key.first, weight);
  }
  for (VertexId v = 0; v < model.n; ++v) {
    ASSERT_EQ(dynamic.degree(v), adjacency[v].size()) << "vertex " << v;
    std::size_t i = 0;
    for (const DynamicGraph::Neighbor nb : dynamic.neighbors(v)) {
      ASSERT_LT(i, adjacency[v].size()) << "vertex " << v;
      EXPECT_EQ(nb.id, adjacency[v][i].first) << "vertex " << v;
      EXPECT_EQ(nb.weight, model.weighted ? adjacency[v][i].second : 1.0)
          << "vertex " << v;
      ++i;
    }
    EXPECT_EQ(i, adjacency[v].size()) << "vertex " << v;
  }
}

// ------------------------------------------------------ overlay semantics

TEST(DynamicGraphTest, ComposesAddsAndRemovesInAscendingOrder) {
  DynamicGraph dynamic(MakePath(6));  // 0-1-2-3-4-5
  ASSERT_TRUE(dynamic.AddEdge(0, 5).ok());
  ASSERT_TRUE(dynamic.AddEdge(0, 3).ok());
  ASSERT_TRUE(dynamic.RemoveEdge(0, 1).ok());
  EXPECT_EQ(dynamic.num_edges(), 6u);
  EXPECT_EQ(dynamic.degree(0), 2u);
  EXPECT_TRUE(dynamic.HasEdge(0, 3));
  EXPECT_TRUE(dynamic.HasEdge(5, 0));
  EXPECT_FALSE(dynamic.HasEdge(0, 1));
  std::vector<VertexId> ids;
  for (const DynamicGraph::Neighbor nb : dynamic.neighbors(0)) {
    ids.push_back(nb.id);
    EXPECT_EQ(nb.weight, 1.0);
  }
  EXPECT_EQ(ids, (std::vector<VertexId>{3, 5}));
}

TEST(DynamicGraphTest, AddVertexExtendsIdSpace) {
  DynamicGraph dynamic(MakeCycle(4));
  const VertexId fresh = dynamic.AddVertex();
  EXPECT_EQ(fresh, 4u);
  EXPECT_EQ(dynamic.num_vertices(), 5u);
  EXPECT_EQ(dynamic.degree(fresh), 0u);
  ASSERT_TRUE(dynamic.AddEdge(1, fresh).ok());
  EXPECT_TRUE(dynamic.HasEdge(fresh, 1));
  EXPECT_EQ(dynamic.degree(fresh), 1u);
  std::vector<VertexId> ids;
  for (const DynamicGraph::Neighbor nb : dynamic.neighbors(fresh)) {
    ids.push_back(nb.id);
  }
  EXPECT_EQ(ids, (std::vector<VertexId>{1}));
}

TEST(DynamicGraphTest, WeightedRemoveThenReAddKeepsNewWeight) {
  GraphBuilder builder(3);
  builder.AddWeightedEdge(0, 1, 2.0);
  builder.AddWeightedEdge(1, 2, 3.0);
  DynamicGraph dynamic(std::move(builder.Build()).value());
  ASSERT_TRUE(dynamic.RemoveEdge(0, 1).ok());
  ASSERT_TRUE(dynamic.AddEdge(0, 1, 7.5).ok());
  EXPECT_TRUE(dynamic.HasEdge(0, 1));
  EXPECT_EQ(dynamic.EdgeWeight(0, 1), 7.5);
  EXPECT_EQ(dynamic.EdgeWeight(1, 0), 7.5);
  // Remove the re-added edge again: the base mask must hold.
  ASSERT_TRUE(dynamic.RemoveEdge(0, 1).ok());
  EXPECT_FALSE(dynamic.HasEdge(0, 1));
  EXPECT_EQ(dynamic.num_edges(), 1u);
  const CsrGraph& csr = dynamic.Csr();
  EXPECT_EQ(csr.num_edges(), 1u);
  EXPECT_TRUE(csr.weighted());
  EXPECT_EQ(csr.EdgeWeight(1, 2), 3.0);
}

TEST(DynamicGraphTest, ReAddAtBaseWeightCancelsTheMask) {
  DynamicGraph dynamic(MakeCycle(5));
  ASSERT_TRUE(dynamic.RemoveEdge(0, 1).ok());
  ASSERT_TRUE(dynamic.AddEdge(0, 1).ok());
  EXPECT_TRUE(dynamic.HasEdge(0, 1));
  EXPECT_EQ(dynamic.overlay_edits(), 0u);  // net no-op collapsed
  EXPECT_EQ(dynamic.num_edges(), 5u);
}

TEST(DynamicGraphTest, ApplyIsAtomicOnMidBatchFailure) {
  DynamicGraph dynamic(MakePath(4));
  const std::uint64_t epoch = dynamic.epoch();
  GraphDelta delta;
  delta.AddEdge(0, 2).RemoveEdge(0, 2).RemoveEdge(0, 2);  // last op invalid
  const Status status = dynamic.Apply(delta);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dynamic.epoch(), epoch);
  EXPECT_EQ(dynamic.num_edges(), 3u);
  EXPECT_FALSE(dynamic.HasEdge(0, 2));
  EXPECT_EQ(dynamic.overlay_edits(), 0u);
}

TEST(DynamicGraphTest, SequentialValidationAllowsIntraBatchDependencies) {
  DynamicGraph dynamic(MakePath(3));
  GraphDelta delta;
  delta.AddVertices(1).AddEdge(0, 3).RemoveEdge(0, 3).AddEdge(2, 3);
  ASSERT_TRUE(dynamic.Apply(delta).ok());
  EXPECT_EQ(dynamic.num_vertices(), 4u);
  EXPECT_TRUE(dynamic.HasEdge(2, 3));
  EXPECT_FALSE(dynamic.HasEdge(0, 3));
}

TEST(DynamicGraphTest, RejectsInvalidEdits) {
  DynamicGraph dynamic(MakePath(4));
  EXPECT_FALSE(dynamic.AddEdge(0, 1).ok());       // duplicate
  EXPECT_FALSE(dynamic.AddEdge(2, 2).ok());       // self-loop
  EXPECT_FALSE(dynamic.AddEdge(0, 9).ok());       // out of range
  EXPECT_FALSE(dynamic.AddEdge(0, 2, -1.0).ok()); // non-positive weight
  EXPECT_FALSE(dynamic.AddEdge(0, 2, 2.5).ok());  // weighted on unweighted
  EXPECT_FALSE(dynamic.RemoveEdge(0, 2).ok());    // no such edge
  EXPECT_FALSE(dynamic.RemoveEdge(0, 9).ok());    // out of range
  EXPECT_FALSE(dynamic.RemoveEdge(1, 1).ok());    // self-loop
  EXPECT_EQ(dynamic.num_edges(), 3u);
  EXPECT_EQ(dynamic.epoch(), 0u);
}

TEST(DynamicGraphTest, CompactsPastTheOverlayThreshold) {
  DynamicGraphOptions options;
  options.min_compact_edits = 4;
  options.compact_fraction = 0.0;
  DynamicGraph dynamic(MakePath(10), options);
  ASSERT_TRUE(dynamic.AddEdge(0, 9).ok());  // 2 overlay entries
  ASSERT_TRUE(dynamic.AddEdge(0, 5).ok());  // 4 — at, not past, threshold
  EXPECT_EQ(dynamic.overlay_edits(), 4u);
  ASSERT_TRUE(dynamic.AddEdge(2, 7).ok());  // 6 > 4: auto-compacted
  EXPECT_EQ(dynamic.overlay_edits(), 0u);
  EXPECT_EQ(dynamic.base().num_edges(), 12u);
  EXPECT_TRUE(dynamic.HasEdge(0, 9));
  EXPECT_TRUE(dynamic.HasEdge(2, 7));
}

TEST(DynamicGraphTest, CsrMatcherScratchRebuildAfterMixedEdits) {
  const CsrGraph start = MakeConnectedCaveman(4, 6);
  Model model = Model::FromGraph(start);
  DynamicGraph dynamic(start);
  GraphDelta delta;
  delta.RemoveEdge(0, 1).AddEdge(0, 12).AddVertices(2).AddEdge(24, 25)
      .AddEdge(3, 24);
  model.Apply(delta);
  ASSERT_TRUE(dynamic.Apply(delta).ok());
  ExpectMatchesModel(dynamic, model);
  ExpectGraphsIdentical(dynamic.Csr(), model.Build());
  EXPECT_EQ(dynamic.Csr().name(), start.name());
}

// ------------------------------------------------------------ edit scripts

TEST(EditScriptTest, ParsesAddRemoveAddVertexAndComments) {
  const auto delta = ParseEditScriptText(
      "# header comment\n"
      "add 0 5\n"
      "\n"
      "remove 3 4   # trailing comment\n"
      "addvertex\n"
      "addvertex 3\n"
      "add 1 2 0.25\n",
      "test");
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  const auto& edits = delta.value().edits();
  ASSERT_EQ(edits.size(), 7u);
  EXPECT_EQ(edits[0].kind, GraphEdit::Kind::kAddEdge);
  EXPECT_EQ(edits[0].u, 0u);
  EXPECT_EQ(edits[0].v, 5u);
  EXPECT_EQ(edits[1].kind, GraphEdit::Kind::kRemoveEdge);
  EXPECT_EQ(edits[2].kind, GraphEdit::Kind::kAddVertex);
  EXPECT_EQ(edits[5].kind, GraphEdit::Kind::kAddVertex);
  EXPECT_EQ(edits[6].weight, 0.25);
}

TEST(EditScriptTest, RejectsMalformedLinesWithLineNumbers) {
  const char* bad[] = {
      "frobnicate 1 2",       // unknown op
      "add 1",                // missing operand
      "add -1 2",             // negative id
      "add 1 2 0",            // non-positive weight
      "add 1 2 1.0 extra",    // trailing junk
      "remove 1 2 3",         // trailing junk
      "addvertex 0",          // zero count
  };
  for (const char* line : bad) {
    const auto delta = ParseEditScriptText(line, "bad");
    ASSERT_FALSE(delta.ok()) << "accepted: " << line;
    EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(delta.status().message().find("bad:1"), std::string::npos)
        << delta.status().ToString();
  }
}

TEST(EditScriptTest, FileRoundTripsAndMissingFileIsIoError) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "mhbc_edit_script_test.edits").string();
  GraphDelta delta;
  // The last weight needs all 17 significant digits to round-trip: the
  // writer must emit full double precision (Apply's re-add cancel test
  // compares weights exactly).
  delta.AddEdge(3, 4).RemoveEdge(1, 2).AddVertices(2).AddEdge(5, 6, 2.5)
      .AddEdge(7, 8, 0.6123456789012345);
  ASSERT_TRUE(WriteEditScript(delta, path).ok());
  const auto parsed = ParseEditScript(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), delta.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    EXPECT_EQ(parsed.value().edits()[i].kind, delta.edits()[i].kind);
    EXPECT_EQ(parsed.value().edits()[i].u, delta.edits()[i].u);
    EXPECT_EQ(parsed.value().edits()[i].v, delta.edits()[i].v);
    EXPECT_EQ(parsed.value().edits()[i].weight, delta.edits()[i].weight);
  }
  std::remove(path.c_str());
  EXPECT_EQ(ParseEditScript(path).status().code(), StatusCode::kIoError);
}

// ------------------------------------------- oracle epoch invalidation

TEST(DependencyOracleDeltaTest, IntraLevelEditKeepsPassesAndStaysExact) {
  // Grid: plenty of equal-depth vertex pairs for intra-level edits.
  const CsrGraph start = MakeGrid(6, 6);
  DependencyOracle oracle(start);
  oracle.set_cache_capacity(64);
  const VertexId source = 0;
  (void)oracle.Dependencies(source);
  ASSERT_EQ(oracle.cached_entries(), 1u);

  // Find an insertable pair at equal hop depth from `source`.
  BfsSpd bfs(start);
  bfs.Run(source);
  const auto& dist = bfs.dag().dist;
  VertexId a = kInvalidVertex, b = kInvalidVertex;
  for (VertexId u = 0; u < start.num_vertices() && a == kInvalidVertex; ++u) {
    for (VertexId v = u + 1; v < start.num_vertices(); ++v) {
      if (dist[u] == dist[v] && !start.HasEdge(u, v)) {
        a = u;
        b = v;
        break;
      }
    }
  }
  ASSERT_NE(a, kInvalidVertex);

  DynamicGraph dynamic(start);
  GraphDelta delta;
  delta.AddEdge(a, b);
  std::vector<GraphEdit> resolved;
  ASSERT_TRUE(dynamic.Apply(delta, &resolved).ok());
  const CsrGraph& next = dynamic.Csr();
  oracle.ApplyGraphDelta(next, resolved);
  EXPECT_EQ(oracle.graph_epoch(), 1u);
  EXPECT_EQ(oracle.cached_entries(), 1u);  // the pass survived
  EXPECT_EQ(oracle.invalidated_entries(), 0u);

  const std::uint64_t hits_before = oracle.cache_hits();
  const std::vector<double> served = oracle.Dependencies(source);
  EXPECT_EQ(oracle.cache_hits(), hits_before + 1);

  DependencyOracle cold(next);
  const std::vector<double>& fresh = cold.Dependencies(source);
  ASSERT_EQ(served.size(), fresh.size());
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    EXPECT_EQ(served[v], fresh[v]) << "vertex " << v;
  }
}

TEST(DependencyOracleDeltaTest, CrossLevelEditDropsTheTouchedPass) {
  const CsrGraph start = MakePath(8);
  DependencyOracle oracle(start);
  oracle.set_cache_capacity(64);
  (void)oracle.Dependencies(0);
  (void)oracle.Dependencies(3);
  ASSERT_EQ(oracle.cached_entries(), 2u);

  // Chord {0,7}: depths from any path vertex differ by 7 - 2*min(...),
  // never zero on a path of even span — both passes must drop.
  DynamicGraph dynamic(start);
  GraphDelta delta;
  delta.AddEdge(0, 7);
  std::vector<GraphEdit> resolved;
  ASSERT_TRUE(dynamic.Apply(delta, &resolved).ok());
  oracle.ApplyGraphDelta(dynamic.Csr(), resolved);
  EXPECT_EQ(oracle.cached_entries(), 0u);
  EXPECT_EQ(oracle.invalidated_entries(), 2u);

  // Recomputation serves the post-edit graph.
  DependencyOracle cold(dynamic.Csr());
  const std::vector<double> served = oracle.Dependencies(0);
  const std::vector<double>& fresh = cold.Dependencies(0);
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    EXPECT_EQ(served[v], fresh[v]) << "vertex " << v;
  }
}

TEST(DependencyOracleDeltaTest, VertexAppendExtendsSurvivingPasses) {
  const CsrGraph start = MakeCycle(6);
  DependencyOracle oracle(start);
  oracle.set_cache_capacity(64);
  (void)oracle.Dependencies(2);

  DynamicGraph dynamic(start);
  GraphDelta delta;
  delta.AddVertices(2);
  std::vector<GraphEdit> resolved;
  ASSERT_TRUE(dynamic.Apply(delta, &resolved).ok());
  oracle.ApplyGraphDelta(dynamic.Csr(), resolved);
  EXPECT_EQ(oracle.cached_entries(), 1u);

  const std::vector<double> served = oracle.Dependencies(2);
  ASSERT_EQ(served.size(), 8u);
  EXPECT_EQ(served[6], 0.0);
  EXPECT_EQ(served[7], 0.0);
  DependencyOracle cold(dynamic.Csr());
  const std::vector<double>& fresh = cold.Dependencies(2);
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    EXPECT_EQ(served[v], fresh[v]) << "vertex " << v;
  }
}

// ------------------------------------- randomized equivalence harness
//
// The lockdown the dynamic-graph subsystem answers to: for every random
// edit script, every statistical field an ApplyDelta-refreshed engine
// reports must be bit-identical to a cold engine constructed on the
// scratch-rebuilt post-edit graph — at 1/2/4 threads and under both SPD
// kernels. The matrix below runs 216 scripts through that check (36 per
// configuration, mutating continuously across scripts so multi-epoch
// cache state is exercised), plus the structural sweep further down.

void ExpectReportsIdentical(const EstimateReport& a, const EstimateReport& b,
                            const std::string& where) {
  EXPECT_EQ(a.value, b.value) << where;
  EXPECT_EQ(a.samples_used, b.samples_used) << where;
  EXPECT_EQ(a.acceptance_rate, b.acceptance_rate) << where;
  EXPECT_EQ(a.ess, b.ess) << where;
  EXPECT_EQ(a.std_error, b.std_error) << where;
  EXPECT_EQ(a.ci_half_width, b.ci_half_width) << where;
  EXPECT_EQ(a.converged, b.converged) << where;
}

void RunEquivalenceSweep(unsigned num_threads, SpdKernel kernel,
                         std::uint64_t seed_base, int num_scripts) {
  EngineOptions options;
  options.num_threads = num_threads;
  options.spd.kernel = kernel;

  const CsrGraph start = MakeConnectedCaveman(5, 8);  // n = 40
  Model model = Model::FromGraph(start);
  BetweennessEngine incremental(start, options);

  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 100;
  request.seed = 0xD11A + seed_base;

  for (int script = 0; script < num_scripts; ++script) {
    const std::uint64_t seed = seed_base * 1'000 + script;
    // engine.graph() is the current composed graph — the script generator
    // needs it to stay consistent with the evolving state.
    const GraphDelta delta =
        MakeRandomEditScript(incremental.graph(), 4, seed);
    model.Apply(delta);
    ASSERT_TRUE(incremental.ApplyDelta(delta).ok());
    EXPECT_EQ(incremental.graph_epoch(),
              static_cast<std::uint64_t>(script) + 1);

    const CsrGraph scratch = model.Build();
    ExpectGraphsIdentical(incremental.graph(), scratch);

    BetweennessEngine cold(scratch, options);
    const std::vector<VertexId> targets{
        static_cast<VertexId>(seed % model.n),
        static_cast<VertexId>((seed / 7) % model.n)};
    const auto warm_reports = incremental.EstimateMany(targets, request);
    const auto cold_reports = cold.EstimateMany(targets, request);
    ASSERT_TRUE(warm_reports.ok()) << warm_reports.status().ToString();
    ASSERT_TRUE(cold_reports.ok()) << cold_reports.status().ToString();
    for (std::size_t i = 0; i < targets.size(); ++i) {
      ExpectReportsIdentical(
          warm_reports.value()[i], cold_reports.value()[i],
          "script " + std::to_string(script) + " target " +
              std::to_string(targets[i]) + " threads " +
              std::to_string(num_threads) + " kernel " +
              (kernel == SpdKernel::kClassic ? "classic" : "hybrid"));
    }
  }
}

TEST(DynamicEquivalenceTest, Threads1Classic) {
  RunEquivalenceSweep(1, SpdKernel::kClassic, 1, 36);
}
TEST(DynamicEquivalenceTest, Threads1Hybrid) {
  RunEquivalenceSweep(1, SpdKernel::kHybrid, 2, 36);
}
TEST(DynamicEquivalenceTest, Threads2Classic) {
  RunEquivalenceSweep(2, SpdKernel::kClassic, 3, 36);
}
TEST(DynamicEquivalenceTest, Threads2Hybrid) {
  RunEquivalenceSweep(2, SpdKernel::kHybrid, 4, 36);
}
TEST(DynamicEquivalenceTest, Threads4Classic) {
  RunEquivalenceSweep(4, SpdKernel::kClassic, 5, 36);
}
TEST(DynamicEquivalenceTest, Threads4Hybrid) {
  RunEquivalenceSweep(4, SpdKernel::kHybrid, 6, 36);
}

// Exact scores, iid source sampling, and the RK credit vector must also
// match a cold engine after every mutation (their whole-graph caches are
// rebuilt, not patched).
TEST(DynamicEquivalenceTest, OtherEstimatorsMatchColdAfterEdits) {
  EngineOptions options;
  options.num_threads = 2;
  const CsrGraph start = MakeErdosRenyiGnp(48, 0.12, 0xE5);
  Model model = Model::FromGraph(start);
  BetweennessEngine incremental(start, options);

  for (int script = 0; script < 12; ++script) {
    const GraphDelta delta =
        MakeRandomEditScript(incremental.graph(), 3, 0xBEEF + script);
    model.Apply(delta);
    ASSERT_TRUE(incremental.ApplyDelta(delta).ok());
    const CsrGraph scratch = model.Build();
    BetweennessEngine cold(scratch, options);

    for (const EstimatorKind kind :
         {EstimatorKind::kExact, EstimatorKind::kUniformSource,
          EstimatorKind::kShortestPath}) {
      EstimateRequest request;
      request.kind = kind;
      request.samples = 64;
      request.seed = 0xF00 + script;
      const VertexId target = static_cast<VertexId>((script * 11) % model.n);
      const auto warm = incremental.Estimate(target, request);
      const auto cold_report = cold.Estimate(target, request);
      ASSERT_TRUE(warm.ok()) << warm.status().ToString();
      ASSERT_TRUE(cold_report.ok()) << cold_report.status().ToString();
      ExpectReportsIdentical(warm.value(), cold_report.value(),
                             "script " + std::to_string(script) + " kind " +
                                 EstimatorKindName(kind));
    }
  }
}

// A weighted-graph sweep: the oracle invalidates wholesale there, but the
// mutation contract (bit-identity with a cold engine) must still hold.
TEST(DynamicEquivalenceTest, WeightedGraphMatchesColdAfterEdits) {
  const CsrGraph start =
      AssignUniformWeights(MakeConnectedCaveman(4, 7), 0.5, 2.0, 0x77);
  Model model = Model::FromGraph(start);
  BetweennessEngine incremental(start);

  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 80;
  request.seed = 0x3E;
  for (int script = 0; script < 10; ++script) {
    const GraphDelta delta =
        MakeRandomEditScript(incremental.graph(), 3, 0xAB + script * 13);
    model.Apply(delta);
    ASSERT_TRUE(incremental.ApplyDelta(delta).ok());
    const CsrGraph scratch = model.Build();
    ExpectGraphsIdentical(incremental.graph(), scratch);
    BetweennessEngine cold(scratch);
    const VertexId target = static_cast<VertexId>((script * 5) % model.n);
    const auto warm = incremental.Estimate(target, request);
    const auto cold_report = cold.Estimate(target, request);
    ASSERT_TRUE(warm.ok() && cold_report.ok());
    ExpectReportsIdentical(warm.value(), cold_report.value(),
                           "weighted script " + std::to_string(script));
  }
}

// Structural-only sweep at higher volume: every random script leaves the
// DynamicGraph composition, its materialized CSR, and a scratch rebuild in
// exact agreement (60 more scripts across three generator families).
TEST(DynamicEquivalenceTest, RandomScriptsKeepCompositionExact) {
  const CsrGraph starts[] = {MakeBarabasiAlbert(60, 2, 0x5EED),
                             MakeGrid(7, 8), MakeWattsStrogatz(50, 4, 0.2, 9)};
  int script_seed = 0;
  for (const CsrGraph& start : starts) {
    Model model = Model::FromGraph(start);
    DynamicGraphOptions options;
    options.min_compact_edits = 24;  // force frequent compaction cycles
    DynamicGraph dynamic(start, options);
    for (int script = 0; script < 20; ++script) {
      // Generate against the model's scratch build so the overlay is NOT
      // forced to compact between scripts (Csr() would).
      const GraphDelta delta =
          MakeRandomEditScript(model.Build(), 6, 0xC0FFEE + script_seed++);
      model.Apply(delta);
      ASSERT_TRUE(dynamic.Apply(delta).ok());
      ExpectMatchesModel(dynamic, model);
    }
    ExpectGraphsIdentical(dynamic.Csr(), model.Build());
  }
}

TEST(DynamicEquivalenceTest, ApplyDeltaFailureLeavesEngineUsable) {
  const CsrGraph start = MakeCycle(8);
  BetweennessEngine engine(start);
  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 50;
  const auto before = engine.Estimate(1, request);
  ASSERT_TRUE(before.ok());

  GraphDelta bad;
  bad.AddEdge(0, 4).RemoveEdge(2, 6);  // second op: no such edge
  EXPECT_FALSE(engine.ApplyDelta(bad).ok());
  EXPECT_EQ(engine.graph_epoch(), 0u);
  EXPECT_EQ(engine.graph().num_edges(), 8u);

  const auto after = engine.Estimate(1, request);
  ASSERT_TRUE(after.ok());
  ExpectReportsIdentical(before.value(), after.value(), "failed-delta");
}

}  // namespace
}  // namespace mhbc
