#include <gtest/gtest.h>

#include "baselines/optimal_sampler.h"
#include "core/diagnostics.h"
#include "core/mh_betweenness.h"
#include "graph/generators.h"
#include "util/stats.h"

namespace mhbc {
namespace {

/// The central theoretical property of the paper's sampler (§4.2): the
/// chain's stationary distribution is the optimal sampling distribution of
/// [13], Eq. 5. We run a long chain and compare the visit histogram against
/// OptimalSampler::probabilities in total variation.
TEST(MhStationaryTest, VisitHistogramConvergesToEq5OnBarbell) {
  const CsrGraph g = MakeBarbell(4, 2);
  const VertexId r = 4;  // first bridge vertex
  MhOptions options;
  options.seed = 101;
  options.record_trace = true;
  MhBetweennessSampler sampler(g, options);
  const MhResult result = sampler.Run(r, 60'000);

  OptimalSampler reference(g, 1);
  const std::vector<double>& target = reference.probabilities(r);
  const auto counts = VisitCounts(result.trace, g.num_vertices());
  EXPECT_LT(TotalVariationDistance(counts, target), 0.02);
}

TEST(MhStationaryTest, VisitHistogramConvergesOnScaleFree) {
  const CsrGraph g = MakeBarabasiAlbert(30, 2, 55);
  const VertexId r = 0;  // early vertex: a hub with positive betweenness
  MhOptions options;
  options.seed = 103;
  options.record_trace = true;
  MhBetweennessSampler sampler(g, options);
  const MhResult result = sampler.Run(r, 80'000);

  OptimalSampler reference(g, 2);
  const std::vector<double>& target = reference.probabilities(r);
  const auto counts = VisitCounts(result.trace, g.num_vertices());
  EXPECT_LT(TotalVariationDistance(counts, target), 0.03);
}

TEST(MhStationaryTest, DetailedBalanceOnEnumeratedChain) {
  // For the independence MH chain the transition kernel is
  // P(x -> y) = q(y) min{1, delta(y)/delta(x)} for y != x. Detailed
  // balance pi(x) P(x->y) == pi(y) P(y->x) must hold exactly with
  // pi = Eq. 5. Verify algebraically over all state pairs of a small graph.
  const CsrGraph g = MakeBarbell(3, 1);
  const VertexId r = 3;
  OptimalSampler reference(g, 3);
  const std::vector<double>& pi = reference.probabilities(r);
  const double q = 1.0 / static_cast<double>(g.num_vertices());
  for (VertexId x = 0; x < g.num_vertices(); ++x) {
    for (VertexId y = 0; y < g.num_vertices(); ++y) {
      if (x == y) continue;
      if (pi[x] == 0.0 || pi[y] == 0.0) continue;  // off-support states
      const double forward =
          pi[x] * q * std::min(1.0, pi[y] / pi[x]);
      const double backward =
          pi[y] * q * std::min(1.0, pi[x] / pi[y]);
      EXPECT_NEAR(forward, backward, 1e-15);
    }
  }
}

TEST(MhStationaryTest, InitialStateDoesNotChangeLongRunHistogram) {
  // Theorem 1 claims independence from the initial state (no burn-in).
  const CsrGraph g = MakeBarbell(4, 1);
  const VertexId r = 4;
  OptimalSampler reference(g, 4);
  const std::vector<double>& target = reference.probabilities(r);
  for (VertexId start : {VertexId{0}, VertexId{4}, VertexId{8}}) {
    MhOptions options;
    options.seed = 107;
    options.initial_state = start;
    options.record_trace = true;
    MhBetweennessSampler sampler(g, options);
    const MhResult result = sampler.Run(r, 40'000);
    const auto counts = VisitCounts(result.trace, g.num_vertices());
    EXPECT_LT(TotalVariationDistance(counts, target), 0.03)
        << "start " << start;
  }
}

TEST(MhStationaryTest, AcceptanceRateHighWhenMuSmall) {
  // Near-uniform dependencies (star center): almost every proposal is
  // accepted; rejected moves only happen from support into null states.
  const CsrGraph g = MakeStar(30);
  MhOptions options;
  options.seed = 109;
  MhBetweennessSampler sampler(g, options);
  const MhResult result = sampler.Run(0, 5'000);
  // Only moves to the center (1/30 of proposals) are rejected.
  EXPECT_GT(result.diagnostics.acceptance_rate(), 0.9);
}

}  // namespace
}  // namespace mhbc
