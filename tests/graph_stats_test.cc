#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_algos.h"

namespace mhbc {
namespace {

TEST(DiameterTest, PathDiameter) {
  EXPECT_EQ(ExactDiameter(MakePath(10)), 9u);
}

TEST(DiameterTest, CycleDiameter) {
  EXPECT_EQ(ExactDiameter(MakeCycle(10)), 5u);
  EXPECT_EQ(ExactDiameter(MakeCycle(11)), 5u);
}

TEST(DiameterTest, StarAndComplete) {
  EXPECT_EQ(ExactDiameter(MakeStar(20)), 2u);
  EXPECT_EQ(ExactDiameter(MakeComplete(7)), 1u);
}

TEST(DiameterTest, GridDiameter) {
  EXPECT_EQ(ExactDiameter(MakeGrid(4, 6)), 3u + 5u);
}

TEST(DiameterTest, LowerBoundNeverExceedsExact) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const CsrGraph g = MakeErdosRenyiGnp(120, 0.05, seed);
    if (!IsConnected(g)) continue;
    const std::uint32_t exact = ExactDiameter(g);
    const std::uint32_t lower = DiameterLowerBound(g, 4, seed);
    EXPECT_LE(lower, exact);
    // Double sweep is usually tight on small random graphs.
    EXPECT_GE(lower + 2, exact);
  }
}

TEST(DiameterTest, DoubleSweepExactOnPath) {
  // Double sweep from any start finds a path's true diameter.
  EXPECT_EQ(DiameterLowerBound(MakePath(50), 1, 99), 49u);
}

TEST(VertexDiameterTest, PathVertexDiameter) {
  EXPECT_EQ(ApproxVertexDiameter(MakePath(30), 2, 1), 30u);
}

TEST(GraphStatsTest, PathStats) {
  const GraphStats s = ComputeGraphStats(MakePath(100));
  EXPECT_EQ(s.num_vertices, 100u);
  EXPECT_EQ(s.num_edges, 99u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_TRUE(s.connected);
  EXPECT_TRUE(s.exact_diameter);
  EXPECT_EQ(s.diameter, 99u);
  EXPECT_NEAR(s.avg_degree, 2.0 * 99 / 100, 1e-12);
  EXPECT_NEAR(s.density, 2.0 * 99 / (100.0 * 99.0), 1e-12);
  EXPECT_FALSE(s.weighted);
}

TEST(GraphStatsTest, LargeGraphUsesLowerBound) {
  const CsrGraph g = MakeBarabasiAlbert(3000, 2, 5);
  const GraphStats s = ComputeGraphStats(g, /*exact_diameter_limit=*/1000);
  EXPECT_FALSE(s.exact_diameter);
  EXPECT_GT(s.diameter, 0u);
}

TEST(GraphStatsTest, DisconnectedGraphMarked) {
  const CsrGraph g = MakeErdosRenyiGnp(60, 0.01, 40);
  const GraphStats s = ComputeGraphStats(g);
  // With p this small the graph is essentially surely disconnected.
  EXPECT_FALSE(s.connected);
}

TEST(GraphStatsTest, WeightedFlag) {
  const CsrGraph g = AssignUniformWeights(MakeCycle(8), 1.0, 2.0, 3);
  EXPECT_TRUE(ComputeGraphStats(g).weighted);
}

TEST(TrianglesTest, CompleteGraphCount) {
  // K_5 has C(5,3) = 10 triangles.
  EXPECT_EQ(CountTriangles(MakeComplete(5)), 10u);
}

TEST(TrianglesTest, TriangleFreeGraphs) {
  EXPECT_EQ(CountTriangles(MakeCycle(8)), 0u);
  EXPECT_EQ(CountTriangles(MakeStar(10)), 0u);
  EXPECT_EQ(CountTriangles(MakeGrid(4, 4)), 0u);
  EXPECT_EQ(CountTriangles(MakeCompleteBipartite(3, 4)), 0u);
}

TEST(TrianglesTest, PerVertexCounts) {
  // Wheel W5: center 0 in 4 triangles; each rim vertex in 2.
  std::vector<std::uint64_t> per_vertex;
  const std::uint64_t total = CountTriangles(MakeWheel(5), &per_vertex);
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(per_vertex[0], 4u);
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(per_vertex[v], 2u);
}

TEST(TrianglesTest, BarbellCount) {
  // Two K_5 cliques: 2 * C(5,3) = 20 triangles; bridge adds none.
  EXPECT_EQ(CountTriangles(MakeBarbell(5, 1)), 20u);
}

TEST(ClusteringTest, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(MakeComplete(6)), 1.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(MakeComplete(6)), 1.0);
}

TEST(ClusteringTest, TriangleFreeIsZero) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(MakeCycle(10)), 0.0);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(MakeGrid(3, 5)), 0.0);
}

TEST(ClusteringTest, WheelKnownValues) {
  // W5: wedges = C(4,2) + 4*C(3,2) = 6 + 12 = 18; 3*4/18 = 2/3.
  EXPECT_NEAR(GlobalClusteringCoefficient(MakeWheel(5)), 2.0 / 3.0, 1e-12);
  // Local: center 4/6, rim 2/3 each -> (4/6 + 4*(2/3)) / 5.
  EXPECT_NEAR(AverageLocalClustering(MakeWheel(5)),
              (4.0 / 6.0 + 4.0 * 2.0 / 3.0) / 5.0, 1e-12);
}

TEST(ClusteringTest, StatsIncludeClusteringFields) {
  const GraphStats s = ComputeGraphStats(MakeWheel(7));
  EXPECT_EQ(s.triangles, 6u);
  EXPECT_GT(s.global_clustering, 0.0);
  EXPECT_GT(s.avg_local_clustering, 0.0);
}

}  // namespace
}  // namespace mhbc
