#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/graph_algos.h"

namespace mhbc {
namespace {

TEST(GeneratorsTest, PathShape) {
  const CsrGraph g = MakePath(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, SingleVertexPath) {
  const CsrGraph g = MakePath(1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GeneratorsTest, CycleShape) {
  const CsrGraph g = MakeCycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.HasEdge(5, 0));
}

TEST(GeneratorsTest, StarShape) {
  const CsrGraph g = MakeStar(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (VertexId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(GeneratorsTest, CompleteShape) {
  const CsrGraph g = MakeComplete(5);
  EXPECT_EQ(g.num_edges(), 10u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(GeneratorsTest, CompleteBipartiteShape) {
  const CsrGraph g = MakeCompleteBipartite(2, 3);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 3u);  // side A sees all of B
  EXPECT_EQ(g.degree(4), 2u);  // side B sees all of A
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(2, 3));
}

TEST(GeneratorsTest, BalancedTreeCounts) {
  // depth 2, branching 3: 1 + 3 + 9 = 13 vertices, 12 edges.
  const CsrGraph g = MakeBalancedTree(3, 2);
  EXPECT_EQ(g.num_vertices(), 13u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(GeneratorsTest, BalancedTreeDepthZero) {
  const CsrGraph g = MakeBalancedTree(4, 0);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GeneratorsTest, BarbellStructure) {
  const CsrGraph g = MakeBarbell(4, 2);
  EXPECT_EQ(g.num_vertices(), 10u);
  // 2 * C(4,2) + bridge edges (3: 3-4, 4-5, 5-6).
  EXPECT_EQ(g.num_edges(), 2 * 6u + 3u);
  EXPECT_TRUE(IsConnected(g));
  // Bridge vertices are separators.
  EXPECT_TRUE(IsBalancedSeparator(g, 4, 0.3));
}

TEST(GeneratorsTest, BarbellZeroBridge) {
  const CsrGraph g = MakeBarbell(3, 0);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 2 * 3u + 1u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, CavemanConnectivityAndSize) {
  const CsrGraph g = MakeConnectedCaveman(5, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_TRUE(IsConnected(g));
  // Each community: C(4,2) = 6 intra edges + 1 gateway = 35 total.
  EXPECT_EQ(g.num_edges(), 5u * 7u);
}

TEST(GeneratorsTest, GridShape) {
  const CsrGraph g = MakeGrid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // Horizontal: 3 * 3, vertical: 2 * 4.
  EXPECT_EQ(g.num_edges(), 9u + 8u);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

TEST(GeneratorsTest, WheelShape) {
  const CsrGraph g = MakeWheel(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 10u);  // 5 spokes + 5 rim
  EXPECT_EQ(g.degree(0), 5u);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(GeneratorsTest, LollipopShape) {
  const CsrGraph g = MakeLollipop(4, 3);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 6u + 3u);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.degree(6), 1u);  // tail end
}

TEST(GeneratorsTest, GnpDeterministicForSeed) {
  const CsrGraph a = MakeErdosRenyiGnp(100, 0.05, 7);
  const CsrGraph b = MakeErdosRenyiGnp(100, 0.05, 7);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const CsrGraph c = MakeErdosRenyiGnp(100, 0.05, 8);
  // Different seed should (overwhelmingly) differ.
  bool same = a.num_edges() == c.num_edges();
  if (same) {
    const auto ea = a.CollectEdges();
    const auto ec = c.CollectEdges();
    same = std::equal(ea.begin(), ea.end(), ec.begin(),
                      [](const auto& x, const auto& y) {
                        return x.u == y.u && x.v == y.v;
                      });
  }
  EXPECT_FALSE(same);
}

TEST(GeneratorsTest, GnpEdgeCountNearExpectation) {
  const VertexId n = 300;
  const double p = 0.02;
  const CsrGraph g = MakeErdosRenyiGnp(n, p, 123);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 5 * std::sqrt(expected));
}

TEST(GeneratorsTest, GnpExtremes) {
  EXPECT_EQ(MakeErdosRenyiGnp(20, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(MakeErdosRenyiGnp(20, 1.0, 1).num_edges(), 190u);
}

TEST(GeneratorsTest, GnmExactEdgeCount) {
  const CsrGraph g = MakeErdosRenyiGnm(50, 100, 5);
  EXPECT_EQ(g.num_edges(), 100u);
  EXPECT_EQ(g.num_vertices(), 50u);
}

TEST(GeneratorsTest, BarabasiAlbertShape) {
  const CsrGraph g = MakeBarabasiAlbert(200, 3, 11);
  EXPECT_EQ(g.num_vertices(), 200u);
  // Seed clique C(4,2)=6 edges + 196 * 3.
  EXPECT_EQ(g.num_edges(), 6u + 196u * 3u);
  EXPECT_TRUE(IsConnected(g));
  for (VertexId v = 0; v < 200; ++v) EXPECT_GE(g.degree(v), 3u);
}

TEST(GeneratorsTest, BarabasiAlbertHubEmerges) {
  const CsrGraph g = MakeBarabasiAlbert(500, 2, 13);
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  // Scale-free: the largest hub far exceeds the mean degree (4).
  EXPECT_GT(max_deg, 20u);
}

TEST(GeneratorsTest, WattsStrogatzZeroBetaIsLattice) {
  const CsrGraph g = MakeWattsStrogatz(20, 4, 0.0, 17);
  EXPECT_EQ(g.num_edges(), 40u);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(0, 18));
}

TEST(GeneratorsTest, WattsStrogatzRewiredKeepsEdgeCount) {
  const CsrGraph g = MakeWattsStrogatz(100, 6, 0.3, 19);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(GeneratorsTest, AssignUniformWeightsPreservesTopology) {
  const CsrGraph g = MakeCycle(10);
  const CsrGraph w = AssignUniformWeights(g, 0.5, 2.0, 23);
  EXPECT_TRUE(w.weighted());
  EXPECT_EQ(w.num_edges(), g.num_edges());
  for (const auto& e : w.CollectEdges()) {
    EXPECT_TRUE(g.HasEdge(e.u, e.v));
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LE(e.weight, 2.0);
  }
}

/// Property sweep: every generator output is simple (builder enforces) and
/// matches its closed-form vertex/edge counts.
class GeneratorFamilyTest
    : public ::testing::TestWithParam<std::tuple<VertexId, std::uint64_t>> {};

TEST_P(GeneratorFamilyTest, ErdosRenyiGnmIsSimpleAndExact) {
  const auto [n, seed] = GetParam();
  const std::uint64_t m = static_cast<std::uint64_t>(n) * 2;
  const CsrGraph g = MakeErdosRenyiGnm(n, m, seed);
  EXPECT_EQ(g.num_edges(), m);
  for (const auto& e : g.CollectEdges()) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LT(e.v, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorFamilyTest,
    ::testing::Combine(::testing::Values<VertexId>(10, 50, 200),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace mhbc
