#include <gtest/gtest.h>

#include <algorithm>

#include "centrality/api.h"
#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(TopKTest, FindsBridgeAndGateways) {
  const CsrGraph g = MakeBarbell(6, 1);
  const auto result = EstimateTopKBetweenness(g, 3, 0.03, 0.1, 9);
  ASSERT_TRUE(result.ok());
  const auto& top = result.value();
  ASSERT_EQ(top.size(), 3u);
  // Bridge (6) must rank first; gateways (5, 7) fill the next two slots.
  EXPECT_EQ(top[0].vertex, 6u);
  std::vector<VertexId> rest{top[1].vertex, top[2].vertex};
  std::sort(rest.begin(), rest.end());
  EXPECT_EQ(rest[0], 5u);
  EXPECT_EQ(rest[1], 7u);
  EXPECT_GT(top[0].estimate, top[1].estimate);
}

TEST(TopKTest, EstimatesCloseToExactScores) {
  const CsrGraph g = MakeConnectedCaveman(5, 8);
  const double eps = 0.03;
  const auto result = EstimateTopKBetweenness(g, 5, eps, 0.1, 11);
  ASSERT_TRUE(result.ok());
  const auto exact = ExactBetweenness(g);
  for (const TopKEntry& entry : result.value()) {
    EXPECT_NEAR(entry.estimate, exact[entry.vertex], 2 * eps);
  }
}

TEST(TopKTest, KEqualsNReturnsEveryVertex) {
  const CsrGraph g = MakeCycle(8);
  const auto result = EstimateTopKBetweenness(g, 8, 0.1, 0.2, 13);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 8u);
}

TEST(TopKTest, ValidatesArguments) {
  const CsrGraph g = MakeCycle(8);
  EXPECT_FALSE(EstimateTopKBetweenness(g, 0).ok());
  EXPECT_FALSE(EstimateTopKBetweenness(g, 9).ok());
  EXPECT_FALSE(EstimateTopKBetweenness(g, 2, /*eps=*/0.0).ok());
  EXPECT_FALSE(EstimateTopKBetweenness(g, 2, 0.1, /*delta=*/1.5).ok());
  EXPECT_FALSE(EstimateTopKBetweenness(MakePath(1), 1).ok());
}

TEST(TopKTest, WeightedGraphSupported) {
  const CsrGraph wg = AssignUniformWeights(MakeBarbell(5, 1), 1.0, 1.0, 17);
  const auto result = EstimateTopKBetweenness(wg, 1, 0.05, 0.1, 19);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()[0].vertex, 5u);  // the bridge
}

}  // namespace
}  // namespace mhbc
