#include "graph/ingest.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "datasets/registry.h"
#include "graph/generators.h"
#include "graph/graph_algos.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace mhbc {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed recursively on teardown.
class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mhbc_ingest_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& leaf) { return (dir_ / leaf).string(); }
  std::string CacheDir() { return (dir_ / "cache").string(); }

  fs::path dir_;
};

void ExpectGraphsIdentical(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.weighted(), b.weighted());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]) << "vertex " << v << " slot " << i;
      if (a.weighted()) {
        EXPECT_EQ(a.weights(v)[i], b.weights(v)[i])
            << "vertex " << v << " slot " << i;
      }
    }
  }
}

CsrGraph WeightedDemo() {
  GraphBuilder builder(6);
  builder.AddWeightedEdge(0, 1, 1.5);
  builder.AddWeightedEdge(1, 2, 0.25);
  builder.AddWeightedEdge(2, 3, 4.0);
  builder.AddWeightedEdge(3, 0, 2.0);
  builder.AddWeightedEdge(3, 4, 1.0);
  builder.AddWeightedEdge(4, 5, 8.5);
  auto built = builder.Build();
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

TEST_F(IngestTest, SniffsFormats) {
  const std::string snapshot = Path("g.mhbc");
  ASSERT_TRUE(SaveSnapshot(MakeGrid(4, 4), snapshot).ok());
  EXPECT_EQ(SniffGraphFormat(snapshot), GraphFileFormat::kSnapshot);
  EXPECT_EQ(SniffGraphFormat(Path("g.mtx")), GraphFileFormat::kMatrixMarket);
  EXPECT_EQ(SniffGraphFormat(Path("g.mm")), GraphFileFormat::kMatrixMarket);

  // Content sniffing without a telling extension.
  const std::string disguised = Path("disguised.dat");
  fs::copy_file(snapshot, disguised);
  EXPECT_EQ(SniffGraphFormat(disguised), GraphFileFormat::kSnapshot);
  const std::string mm = Path("banner.dat");
  std::ofstream(mm) << "%%MatrixMarket matrix coordinate pattern general\n";
  EXPECT_EQ(SniffGraphFormat(mm), GraphFileFormat::kMatrixMarket);
  const std::string edges = Path("edges.dat");
  std::ofstream(edges) << "0 1\n1 2\n";
  EXPECT_EQ(SniffGraphFormat(edges), GraphFileFormat::kWeightedEdgeList);
}

TEST_F(IngestTest, OpensEdgeListWithAutoWeights) {
  const std::string path = Path("weighted.txt");
  std::ofstream(path) << "0 1 2.5\n1 2 0.5\n2 0\n";
  auto source = OpenGraphSource(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source.value().source_format(), GraphFileFormat::kWeightedEdgeList);
  EXPECT_TRUE(source.value().graph().weighted());
  EXPECT_EQ(source.value().graph().EdgeWeight(0, 1), 2.5);
  EXPECT_FALSE(source.value().cache_hit());
  EXPECT_FALSE(source.value().zero_copy());
}

TEST_F(IngestTest, MatrixMarketRoundTrip) {
  const CsrGraph original = WeightedDemo();
  const std::string path = Path("demo.mtx");
  ASSERT_TRUE(WriteMatrixMarket(original, path).ok());
  auto loaded = LoadMatrixMarket(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsIdentical(original, loaded.value());

  // Unweighted graphs round-trip through the pattern field.
  const CsrGraph grid = MakeGrid(5, 5);
  const std::string pattern_path = Path("grid.mtx");
  ASSERT_TRUE(WriteMatrixMarket(grid, pattern_path).ok());
  auto pattern = LoadMatrixMarket(pattern_path);
  ASSERT_TRUE(pattern.ok());
  EXPECT_FALSE(pattern.value().weighted());
  ExpectGraphsIdentical(grid, pattern.value());
}

TEST_F(IngestTest, MatrixMarketGeneralMirrorsAndSelfLoopsMerge) {
  const std::string path = Path("general.mtx");
  std::ofstream(path) << "%%MatrixMarket matrix coordinate pattern general\n"
                      << "% both triangles listed, plus a self-loop\n"
                      << "3 3 5\n"
                      << "1 2\n2 1\n2 3\n3 2\n2 2\n";
  auto loaded = LoadMatrixMarket(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_vertices(), 3u);
  EXPECT_EQ(loaded.value().num_edges(), 2u);
}

TEST_F(IngestTest, MatrixMarketRejectsMalformedInput) {
  const std::string no_banner = Path("nobanner.mtx");
  std::ofstream(no_banner) << "3 3 1\n1 2\n";
  EXPECT_FALSE(LoadMatrixMarket(no_banner).ok());

  const std::string rectangular = Path("rect.mtx");
  std::ofstream(rectangular)
      << "%%MatrixMarket matrix coordinate pattern general\n3 4 1\n1 2\n";
  EXPECT_FALSE(LoadMatrixMarket(rectangular).ok());

  const std::string short_file = Path("short.mtx");
  std::ofstream(short_file)
      << "%%MatrixMarket matrix coordinate pattern general\n3 3 4\n1 2\n";
  auto result = LoadMatrixMarket(short_file);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("promises"), std::string::npos);

  const std::string complex_field = Path("complex.mtx");
  std::ofstream(complex_field)
      << "%%MatrixMarket matrix coordinate complex general\n3 3 1\n1 2 1 0\n";
  EXPECT_FALSE(LoadMatrixMarket(complex_field).ok());
}

TEST_F(IngestTest, CacheDirServesSnapshotOnSecondOpen) {
  const std::string path = Path("net.txt");
  ASSERT_TRUE(WriteEdgeList(MakeBarabasiAlbert(300, 2, 0xCAC4E), path).ok());
  // Baseline with the text loader's first-seen id remap applied, so it is
  // comparable with what the pipeline serves.
  auto baseline = LoadSnapEdgeList(path, {});
  ASSERT_TRUE(baseline.ok());

  IngestOptions options;
  options.cache_dir = CacheDir();
  auto first = OpenGraphSource(path, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().cache_hit());
  // The freshly written cache entry already serves the first open
  // zero-copy, and names the snapshot it created.
  EXPECT_TRUE(first.value().zero_copy());
  ASSERT_FALSE(first.value().snapshot_path().empty());
  EXPECT_TRUE(fs::exists(first.value().snapshot_path()));

  auto second = OpenGraphSource(path, options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit());
  EXPECT_TRUE(second.value().zero_copy());
  ExpectGraphsIdentical(first.value().graph(), second.value().graph());
  ExpectGraphsIdentical(baseline.value(), second.value().graph());
}

TEST_F(IngestTest, CorruptCacheEntryIsRebuiltNotFatal) {
  const std::string path = Path("net.txt");
  ASSERT_TRUE(WriteEdgeList(MakeGrid(12, 12), path).ok());
  auto baseline = LoadSnapEdgeList(path, {});
  ASSERT_TRUE(baseline.ok());
  IngestOptions options;
  options.cache_dir = CacheDir();
  auto first = OpenGraphSource(path, options);
  ASSERT_TRUE(first.ok());
  const std::string snapshot = first.value().snapshot_path();

  // Vandalize the cached snapshot; the next open must rebuild, not fail.
  std::ofstream(snapshot, std::ios::trunc) << "garbage";
  auto second = OpenGraphSource(path, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second.value().cache_hit());
  ExpectGraphsIdentical(baseline.value(), second.value().graph());

  auto third = OpenGraphSource(path, options);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third.value().cache_hit());
}

TEST_F(IngestTest, CacheKeyCoversPipelineOptions) {
  // A connected core plus a 2-vertex satellite, so LCC extraction matters.
  const std::string path = Path("twocomp.txt");
  std::ofstream(path) << "0 1\n1 2\n2 0\n3 4\n";
  IngestOptions plain;
  plain.cache_dir = CacheDir();
  IngestOptions lcc = plain;
  lcc.largest_component_only = true;
  auto full = OpenGraphSource(path, plain);
  auto core = OpenGraphSource(path, lcc);
  ASSERT_TRUE(full.ok() && core.ok());
  EXPECT_EQ(full.value().graph().num_vertices(), 5u);
  EXPECT_EQ(core.value().graph().num_vertices(), 3u);
  EXPECT_NE(full.value().snapshot_path(), core.value().snapshot_path());

  // Each variant hits its own entry on re-open.
  auto full2 = OpenGraphSource(path, plain);
  auto core2 = OpenGraphSource(path, lcc);
  ASSERT_TRUE(full2.ok() && core2.ok());
  EXPECT_TRUE(full2.value().cache_hit());
  EXPECT_TRUE(core2.value().cache_hit());
  EXPECT_EQ(core2.value().graph().num_vertices(), 3u);
}

TEST_F(IngestTest, OpensSnapshotDirectly) {
  const CsrGraph original = MakeConnectedCaveman(4, 8);
  const std::string path = Path("direct.mhbc");
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  auto source = OpenGraphSource(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source.value().source_format(), GraphFileFormat::kSnapshot);
  EXPECT_TRUE(source.value().zero_copy());
  EXPECT_EQ(source.value().snapshot_path(), path);
  ExpectGraphsIdentical(original, source.value().graph());
}

TEST_F(IngestTest, DegreeRelabelPreservesWeightedStructure) {
  const CsrGraph original = WeightedDemo();
  const std::vector<VertexId> new_id = DegreeDescendingPermutation(original);

  // The permutation is a bijection that sorts degrees descending.
  std::vector<bool> seen(original.num_vertices(), false);
  for (VertexId id : new_id) {
    ASSERT_LT(id, original.num_vertices());
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
  const CsrGraph relabeled = ApplyVertexPermutation(original, new_id);
  for (VertexId v = 1; v < relabeled.num_vertices(); ++v) {
    EXPECT_GE(relabeled.degree(v - 1), relabeled.degree(v));
  }

  // Adjacency and weights transport through the bijection exactly.
  ASSERT_EQ(relabeled.num_edges(), original.num_edges());
  ASSERT_TRUE(relabeled.weighted());
  for (const CsrGraph::Edge& e : original.CollectEdges()) {
    ASSERT_TRUE(relabeled.HasEdge(new_id[e.u], new_id[e.v]));
    EXPECT_EQ(relabeled.EdgeWeight(new_id[e.u], new_id[e.v]), e.weight);
  }

  // End to end through the pipeline (weighted file + relabel + cache).
  // The expectation is built on the text-loaded graph, since the text
  // loader's first-seen id remap precedes the relabel step.
  const std::string path = Path("weighted.txt");
  ASSERT_TRUE(WriteEdgeList(original, path).ok());
  EdgeListOptions weighted_text;
  weighted_text.allow_weights = true;
  auto baseline = LoadSnapEdgeList(path, weighted_text);
  ASSERT_TRUE(baseline.ok());
  const CsrGraph expected = ApplyVertexPermutation(
      baseline.value(), DegreeDescendingPermutation(baseline.value()));
  IngestOptions options;
  options.degree_relabel = true;
  options.cache_dir = CacheDir();
  auto source = OpenGraphSource(path, options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ExpectGraphsIdentical(expected, source.value().graph());
  auto again = OpenGraphSource(path, options);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().cache_hit());
  ExpectGraphsIdentical(expected, again.value().graph());
}

TEST_F(IngestTest, MaterializeDatasetCachesSnapshot) {
  auto first = MaterializeDataset("caveman-36", CacheDir());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().cache_hit());
  EXPECT_TRUE(fs::exists(fs::path(CacheDir()) / "caveman-36.mhbc"));

  auto second = MaterializeDataset("caveman-36", CacheDir());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit());
  EXPECT_TRUE(second.value().zero_copy());
  ExpectGraphsIdentical(first.value().graph(), second.value().graph());

  // Empty cache dir degrades to plain generation.
  auto plain = MaterializeDataset("caveman-36", "");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().cache_hit());
  ExpectGraphsIdentical(plain.value().graph(), second.value().graph());

  EXPECT_FALSE(MaterializeDataset("no-such-dataset", CacheDir()).ok());
}

}  // namespace
}  // namespace mhbc
