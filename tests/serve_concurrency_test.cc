// Concurrency + epoch-safety suite for the serving stack (runs in the
// TSan CI job). N client threads fire estimate traffic while a mutator
// thread streams a pre-generated delta chain through `mutate`; every
// response carries the epoch its lease observed, and afterwards each
// response is replayed against a COLD engine built on that epoch's graph
// — every statistical report field must match bit for bit, through the
// %.17g wire round-trip. A reader racing a mutation must therefore see
// either the old epoch's exact answer or the new one's, never a torn mix.

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "centrality/engine.h"
#include "datasets/registry.h"
#include "graph/dynamic_graph.h"
#include "gtest/gtest.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace mhbc::serve {
namespace {

constexpr std::size_t kReaderThreads = 4;
constexpr std::size_t kReadsPerThread = 6;
constexpr std::size_t kMutations = 4;
constexpr std::size_t kEditsPerMutation = 3;
constexpr std::uint64_t kSamples = 200;
const std::vector<VertexId> kTargets = {0, 8, 17};

/// Serializes a GraphDelta back into the docs/formats.md text format for
/// the wire (`edits` field).
std::string DeltaToText(const GraphDelta& delta) {
  std::string text;
  for (const GraphEdit& edit : delta.edits()) {
    switch (edit.kind) {
      case GraphEdit::Kind::kAddEdge:
        text += "add ";
        text += std::to_string(edit.u);
        text += ' ';
        text += std::to_string(edit.v);
        if (edit.weight != 1.0) {
          text += ' ';
          text += std::to_string(edit.weight);
        }
        break;
      case GraphEdit::Kind::kRemoveEdge:
        text += "remove ";
        text += std::to_string(edit.u);
        text += ' ';
        text += std::to_string(edit.v);
        break;
      case GraphEdit::Kind::kAddVertex:
        text += "addvertex";
        break;
    }
    text += "\\n";  // JSON-escaped newline, embedded in the request string
  }
  return text;
}

std::string EstimateLine(std::uint64_t id, std::uint64_t seed) {
  std::string vertices;
  for (const VertexId v : kTargets) {
    if (!vertices.empty()) vertices += ", ";
    vertices += std::to_string(v);
  }
  return "{\"id\": " + std::to_string(id) +
         ", \"method\": \"estimate\", \"graph\": \"caveman-36\", "
         "\"vertices\": [" +
         vertices + "], \"samples\": " + std::to_string(kSamples) +
         ", \"seed\": " + std::to_string(seed) + "}";
}

TEST(ServeConcurrencyTest, ConcurrentReadsMatchColdEngineAtEveryEpoch) {
  auto base = MakeDataset("caveman-36");
  ASSERT_TRUE(base.ok());

  // Pre-generate the delta chain and the per-epoch graph snapshots the
  // cold-engine replay will verify against: snapshot[e] is the graph at
  // epoch e. The chain is built through the same DynamicGraph machinery
  // the engines use, so the replay graphs are the served graphs.
  std::vector<GraphDelta> deltas;
  std::vector<CsrGraph> snapshots;
  {
    DynamicGraph dyn(base.value());
    snapshots.push_back(dyn.Csr());
    for (std::size_t i = 0; i < kMutations; ++i) {
      const GraphDelta delta =
          MakeRandomEditScript(dyn.Csr(), kEditsPerMutation, 0xec0 + i);
      ASSERT_TRUE(dyn.Apply(delta).ok());
      deltas.push_back(delta);
      snapshots.push_back(dyn.Csr());
    }
  }

  const EngineOptions engine_options;  // identical for pool and replay
  GraphCatalog catalog;
  ASSERT_TRUE(catalog
                  .AddGraph("caveman-36", base.value(), engine_options,
                            /*sessions=*/kReaderThreads)
                  .ok());
  ServerOptions server_options;
  server_options.workers = kReaderThreads + 1;
  server_options.queue_capacity = 64;
  Server server(&catalog, server_options);

  // Fire the mixed workload. Seeds are globally unique so no session
  // serves a repeated request from its result cache (which would report
  // samples_used=0 and weaken the comparison below).
  struct Observed {
    std::uint64_t epoch;
    std::uint64_t seed;
    std::vector<WireReport> reports;
  };
  std::vector<std::vector<Observed>> per_thread(kReaderThreads);
  std::vector<std::string> mutate_responses(kMutations);
  std::vector<std::thread> threads;
  threads.reserve(kReaderThreads + 1);
  for (std::size_t t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kReadsPerThread; ++i) {
        const std::uint64_t seed = 1000 * (t + 1) + i;
        const std::string line =
            server.Call(EstimateLine(/*id=*/seed, seed));
        auto response = ParseServeResponse(line);
        ASSERT_TRUE(response.ok()) << line;
        ASSERT_TRUE(response.value().ok) << line;
        per_thread[t].push_back(Observed{response.value().epoch, seed,
                                         response.value().reports});
      }
    });
  }
  threads.emplace_back([&] {
    for (std::size_t i = 0; i < kMutations; ++i) {
      const std::string line = server.Call(
          "{\"id\": " + std::to_string(900 + i) +
          ", \"method\": \"mutate\", \"graph\": \"caveman-36\", "
          "\"edits\": \"" +
          DeltaToText(deltas[i]) + "\"}");
      mutate_responses[i] = line;
      std::this_thread::yield();  // let readers interleave between epochs
    }
  });
  for (std::thread& thread : threads) thread.join();

  // Mutations installed in order, one epoch each.
  for (std::size_t i = 0; i < kMutations; ++i) {
    auto response = ParseServeResponse(mutate_responses[i]);
    ASSERT_TRUE(response.ok()) << mutate_responses[i];
    ASSERT_TRUE(response.value().ok) << mutate_responses[i];
    EXPECT_EQ(response.value().epoch, i + 1);
  }

  // Replay every observation on a cold engine built on its epoch's graph.
  // The engine mutation contract promises bit-identical statistical
  // fields; the %.17g wire preserves them; so EXPECT_EQ on doubles is the
  // correct comparison — any tolerance would mask a torn read.
  std::size_t replayed = 0;
  for (const auto& observations : per_thread) {
    EXPECT_EQ(observations.size(), kReadsPerThread);
    for (const Observed& observed : observations) {
      ASSERT_LE(observed.epoch, kMutations);
      BetweennessEngine cold(snapshots[observed.epoch], engine_options);
      EstimateRequest request;
      request.samples = kSamples;
      request.seed = observed.seed;
      auto expected = cold.EstimateMany(kTargets, request);
      ASSERT_TRUE(expected.ok());
      ASSERT_EQ(observed.reports.size(), kTargets.size());
      for (std::size_t v = 0; v < kTargets.size(); ++v) {
        const EstimateReport& want = expected.value()[v];
        const WireReport& got = observed.reports[v];
        EXPECT_EQ(got.vertex, want.vertex);
        EXPECT_EQ(got.value, want.value) << "epoch " << observed.epoch
                                         << " seed " << observed.seed;
        EXPECT_EQ(got.std_error, want.std_error);
        EXPECT_EQ(got.ci_half_width, want.ci_half_width);
        EXPECT_EQ(got.ess, want.ess);
        EXPECT_EQ(got.acceptance_rate, want.acceptance_rate);
        EXPECT_EQ(got.samples_used, want.samples_used);
        EXPECT_EQ(got.converged, want.converged);
        ++replayed;
      }
    }
  }
  EXPECT_EQ(replayed, kReaderThreads * kReadsPerThread * kTargets.size());

  // The pool must be fully parked and at the final epoch.
  const GraphEntryStats stats = catalog.Find("caveman-36")->Stats();
  EXPECT_EQ(stats.epoch, kMutations);
  EXPECT_EQ(stats.sessions_free, stats.sessions);
  EXPECT_EQ(stats.mutations_applied, kMutations);
}

TEST(ServeConcurrencyTest, WriterDrainsReadersAndReadersNeverSeeTornPool) {
  // Direct catalog-level hammering (no protocol): many lease/release
  // cycles racing mutations; every lease must observe a consistent
  // (epoch, graph) pair — checked via vertex count, which the delta
  // chain changes over time.
  auto base = MakeDataset("caveman-36");
  ASSERT_TRUE(base.ok());
  std::vector<GraphDelta> deltas;
  std::vector<VertexId> vertices_at_epoch;
  {
    DynamicGraph dyn(base.value());
    vertices_at_epoch.push_back(dyn.num_vertices());
    for (std::size_t i = 0; i < 6; ++i) {
      const GraphDelta delta = MakeRandomEditScript(dyn.Csr(), 4, 0xbeef + i);
      ASSERT_TRUE(dyn.Apply(delta).ok());
      deltas.push_back(delta);
      vertices_at_epoch.push_back(dyn.num_vertices());
    }
  }
  GraphEntry entry("g", base.value(), EngineOptions(), /*sessions=*/3);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 40; ++i) {
        ReadLease lease = entry.AcquireRead();
        ASSERT_LE(lease.epoch(), deltas.size());
        // Torn-pool detector: the engine's graph must be the one this
        // lease's epoch promises.
        EXPECT_EQ(lease.engine().graph().num_vertices(),
                  vertices_at_epoch[lease.epoch()]);
      }
    });
  }
  threads.emplace_back([&] {
    for (const GraphDelta& delta : deltas) {
      ASSERT_TRUE(entry.Mutate(delta).ok());
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(entry.Stats().epoch, deltas.size());
}

}  // namespace
}  // namespace mhbc::serve
