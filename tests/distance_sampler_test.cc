#include "baselines/distance_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "exact/brandes.h"
#include "graph/generators.h"

namespace mhbc {
namespace {

TEST(DistanceSamplerTest, ConvergesToExact) {
  const CsrGraph g = MakeBarbell(5, 3);
  const VertexId mid = 6;  // middle bridge vertex
  const double exact = ExactBetweennessSingle(g, mid);
  DistanceProportionalSampler sampler(g, 3);
  EXPECT_NEAR(sampler.Estimate(mid, 20'000), exact, 0.02 * exact + 0.01);
}

TEST(DistanceSamplerTest, UnbiasedAcrossRepetitions) {
  const CsrGraph g = MakeGrid(4, 5);
  const VertexId center = 2 * 5 + 2;
  const double exact = ExactBetweennessSingle(g, center);
  DistanceProportionalSampler sampler(g, 5);
  double acc = 0.0;
  constexpr int kReps = 400;
  for (int i = 0; i < kReps; ++i) acc += sampler.Estimate(center, 10);
  EXPECT_NEAR(acc / kReps, exact, 0.05 * exact + 0.01);
}

TEST(DistanceSamplerTest, DeterministicForSeed) {
  const CsrGraph g = MakeBarabasiAlbert(50, 2, 7);
  DistanceProportionalSampler a(g, 99);
  DistanceProportionalSampler b(g, 99);
  EXPECT_DOUBLE_EQ(a.Estimate(4, 150), b.Estimate(4, 150));
}

TEST(DistanceSamplerTest, NeverSamplesTargetItself) {
  // The target has distance 0 so it carries zero proposal mass; the
  // estimate must be finite (no division by its zero probability).
  const CsrGraph g = MakeWheel(12);
  DistanceProportionalSampler sampler(g, 13);
  const double est = sampler.Estimate(0, 2'000);
  EXPECT_TRUE(std::isfinite(est));
}

TEST(DistanceSamplerTest, WeightedGraphSupport) {
  const CsrGraph wg = AssignUniformWeights(MakeGrid(4, 4), 1.0, 1.0, 15);
  const CsrGraph g = MakeGrid(4, 4);
  const double exact = ExactBetweennessSingle(g, 5);
  DistanceProportionalSampler sampler(wg, 17);
  EXPECT_NEAR(sampler.Estimate(5, 5'000), exact, 0.05);
}

TEST(DistanceSamplerTest, TargetSwitchRebuildsTable) {
  const CsrGraph g = MakePath(9);
  DistanceProportionalSampler sampler(g, 19);
  const double at_center = sampler.Estimate(4, 3'000);
  const double at_edge = sampler.Estimate(1, 3'000);
  const double exact_center = ExactBetweennessSingle(g, 4);
  const double exact_edge = ExactBetweennessSingle(g, 1);
  EXPECT_NEAR(at_center, exact_center, 0.05);
  EXPECT_NEAR(at_edge, exact_edge, 0.05);
}

}  // namespace
}  // namespace mhbc
