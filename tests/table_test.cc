#include "util/table.h"

#include <gtest/gtest.h>

namespace mhbc {
namespace {

TEST(TableTest, MarkdownAlignsColumns) {
  Table t({"name", "n"});
  t.AddRow({"star", "10"});
  t.AddRow({"barbell", "24"});
  const std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("| name    | n  |"), std::string::npos);
  EXPECT_NE(md.find("| star    | 10 |"), std::string::npos);
  EXPECT_NE(md.find("| barbell | 24 |"), std::string::npos);
  EXPECT_NE(md.find("|---------|----|"), std::string::npos);
}

TEST(TableTest, CsvBasic) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, CsvQuotesSpecialCells) {
  Table t({"x"});
  t.AddRow({"with,comma"});
  t.AddRow({"with\"quote"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableTest, NumRows) {
  Table t({"h"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"r"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatTest, FormatScientific) {
  EXPECT_EQ(FormatScientific(0.000123, 2), "1.23e-04");
}

TEST(FormatTest, FormatCountGroupsThousands) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(12), "12");
  EXPECT_EQ(FormatCount(123456), "123,456");
}

}  // namespace
}  // namespace mhbc
