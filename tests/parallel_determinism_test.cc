#include <gtest/gtest.h>

#include <vector>

#include "centrality/engine.h"
#include "core/multi_chain.h"
#include "exact/brandes.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"

/// \file
/// Thread-count invariance — the parallel subsystem's hard requirement:
/// for fixed seeds, every statistical result is bit-identical at 1, 2,
/// and 4 threads. Work accounting (sp_passes attribution, cache_hit,
/// seconds) is explicitly outside the guarantee (see centrality/engine.h)
/// and is not compared here.

namespace mhbc {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 4};

// ------------------------------------------------------------- Brandes

TEST(ParallelBrandesTest, BitIdenticalAtEveryThreadCount) {
  const CsrGraph g = MakeBarabasiAlbert(400, 3, 7);
  const std::vector<double> baseline =
      BrandesBetweenness(g, Normalization::kPaper, 1);
  for (unsigned threads : kThreadCounts) {
    const std::vector<double> scores =
        BrandesBetweenness(g, Normalization::kPaper, threads);
    ASSERT_EQ(scores.size(), baseline.size());
    for (std::size_t v = 0; v < scores.size(); ++v) {
      EXPECT_EQ(scores[v], baseline[v]) << "vertex " << v << " at "
                                        << threads << " threads";
    }
  }
}

TEST(ParallelBrandesTest, MatchesSequentialExactWithinRounding) {
  // BrandesBetweenness regroups the per-source sum (fixed shards), so it
  // may differ from ExactBetweenness by floating-point associativity only.
  for (const CsrGraph& g :
       {MakeBarbell(8, 2), MakeConnectedCaveman(5, 8), MakeGrid(9, 9)}) {
    const std::vector<double> sharded = BrandesBetweenness(g);
    const std::vector<double> sequential = ExactBetweenness(g);
    ASSERT_EQ(sharded.size(), sequential.size());
    for (std::size_t v = 0; v < sharded.size(); ++v) {
      EXPECT_NEAR(sharded[v], sequential[v], 1e-12) << "vertex " << v;
    }
  }
}

TEST(ParallelBrandesTest, WeightedGraphSupported) {
  const CsrGraph wg = AssignUniformWeights(MakeBarbell(6, 1), 1.0, 2.0, 3);
  const std::vector<double> one = BrandesBetweenness(wg, Normalization::kPaper, 1);
  const std::vector<double> four = BrandesBetweenness(wg, Normalization::kPaper, 4);
  EXPECT_EQ(one, four);
}

// --------------------------------------------------------- multi-chain

TEST(ParallelMultiChainTest, ResultBitIdenticalAtEveryThreadCount) {
  const CsrGraph g = MakeConnectedCaveman(5, 8);
  MhOptions options;
  options.seed = 29;
  const MultiChainResult baseline =
      RunMultipleChains(g, /*r=*/7, /*iterations=*/600, /*num_chains=*/4,
                        options, /*num_threads=*/1);
  for (unsigned threads : kThreadCounts) {
    const MultiChainResult result =
        RunMultipleChains(g, 7, 600, 4, options, threads);
    EXPECT_EQ(result.pooled_estimate, baseline.pooled_estimate)
        << threads << " threads";
    EXPECT_EQ(result.pooled_proposal_estimate,
              baseline.pooled_proposal_estimate);
    EXPECT_EQ(result.r_hat, baseline.r_hat);
    EXPECT_EQ(result.chain_estimates, baseline.chain_estimates);
    EXPECT_EQ(result.sp_passes, baseline.sp_passes);
  }
}

// -------------------------------------------------------------- engine

/// Compares the statistical fields of two reports bit-for-bit.
void ExpectSameStatistics(const EstimateReport& got,
                          const EstimateReport& want,
                          const std::string& label) {
  EXPECT_EQ(got.vertex, want.vertex) << label;
  EXPECT_EQ(got.kind, want.kind) << label;
  EXPECT_EQ(got.value, want.value) << label;
  EXPECT_EQ(got.samples_used, want.samples_used) << label;
  EXPECT_EQ(got.acceptance_rate, want.acceptance_rate) << label;
  EXPECT_EQ(got.ess, want.ess) << label;
  EXPECT_EQ(got.std_error, want.std_error) << label;
  EXPECT_EQ(got.ci_half_width, want.ci_half_width) << label;
  EXPECT_EQ(got.converged, want.converged) << label;
}

std::vector<EstimateReport> ManyAtThreads(const CsrGraph& g, unsigned threads,
                                          const EstimateRequest& request,
                                          const std::vector<VertexId>& vs) {
  EngineOptions options;
  options.num_threads = threads;
  BetweennessEngine engine(g, options);
  auto reports = engine.EstimateMany(vs, request);
  EXPECT_TRUE(reports.ok());
  return std::move(reports).value();
}

TEST(ParallelEngineTest, EstimateManyReportsInvariantAcrossThreadCounts) {
  const CsrGraph g = MakeConnectedCaveman(6, 10);
  const std::vector<VertexId> vertices{9, 19, 29, 39, 49, 59, 3, 14};
  for (EstimatorKind kind :
       {EstimatorKind::kMetropolisHastings, EstimatorKind::kMhRaoBlackwell,
        EstimatorKind::kUniformSource, EstimatorKind::kDistanceProportional,
        EstimatorKind::kLinearScaling}) {
    EstimateRequest request;
    request.kind = kind;
    request.samples = 300;
    request.seed = 0xDE7;
    const std::vector<EstimateReport> baseline =
        ManyAtThreads(g, 1, request, vertices);
    for (unsigned threads : kThreadCounts) {
      const std::vector<EstimateReport> reports =
          ManyAtThreads(g, threads, request, vertices);
      ASSERT_EQ(reports.size(), baseline.size());
      for (std::size_t i = 0; i < reports.size(); ++i) {
        ExpectSameStatistics(reports[i], baseline[i],
                             std::string(EstimatorKindName(kind)) + " @" +
                                 std::to_string(threads) + " threads");
      }
    }
  }
}

TEST(ParallelEngineTest, AdaptiveBudgetInvariantAcrossThreadCounts) {
  // kStandardError stop rules depend only on batch means, so the sharded
  // fan-out must reproduce samples_used and convergence bit-for-bit too.
  const CsrGraph g = MakeBarbell(6, 2);
  const std::vector<VertexId> vertices{6, 7, 0, 12};
  EstimateRequest request;
  request.kind = EstimatorKind::kUniformSource;
  request.budget = BudgetKind::kStandardError;
  request.target_std_error = 0.02;
  request.seed = 0xADA;
  const std::vector<EstimateReport> baseline =
      ManyAtThreads(g, 1, request, vertices);
  for (unsigned threads : kThreadCounts) {
    const std::vector<EstimateReport> reports =
        ManyAtThreads(g, threads, request, vertices);
    ASSERT_EQ(reports.size(), baseline.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
      ExpectSameStatistics(reports[i], baseline[i],
                           "adaptive @" + std::to_string(threads));
    }
  }
}

TEST(ParallelEngineTest, ExactAndTopKInvariantAcrossThreadCounts) {
  const CsrGraph g = MakeConnectedCaveman(4, 8);
  EstimateRequest exact;
  exact.kind = EstimatorKind::kExact;

  EngineOptions base_options;
  base_options.num_threads = 1;
  BetweennessEngine baseline_engine(g, base_options);
  const auto baseline_exact = baseline_engine.Estimate(7, exact);
  const auto baseline_topk = baseline_engine.TopK(5, 0.05, 0.1, 17);
  ASSERT_TRUE(baseline_exact.ok() && baseline_topk.ok());

  for (unsigned threads : kThreadCounts) {
    EngineOptions options;
    options.num_threads = threads;
    BetweennessEngine engine(g, options);
    const auto report = engine.Estimate(7, exact);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().value, baseline_exact.value().value)
        << threads << " threads";
    const auto top = engine.TopK(5, 0.05, 0.1, 17);
    ASSERT_TRUE(top.ok());
    ASSERT_EQ(top.value().size(), baseline_topk.value().size());
    for (std::size_t i = 0; i < top.value().size(); ++i) {
      EXPECT_EQ(top.value()[i].vertex, baseline_topk.value()[i].vertex);
      EXPECT_EQ(top.value()[i].estimate, baseline_topk.value()[i].estimate);
    }
  }
}

TEST(ParallelEngineTest, BatchInvariantAcrossThreadCountsAndFailsFast) {
  const CsrGraph g = MakeBarbell(5, 1);
  EstimateRequest mh;
  mh.vertex = 5;
  mh.kind = EstimatorKind::kMetropolisHastings;
  mh.samples = 200;
  EstimateRequest uniform;
  uniform.vertex = 6;
  uniform.kind = EstimatorKind::kUniformSource;
  uniform.samples = 250;
  const std::vector<EstimateRequest> requests{mh, uniform};

  EngineOptions base_options;
  BetweennessEngine baseline_engine(g, base_options);
  const auto baseline = baseline_engine.EstimateBatch(requests);
  ASSERT_TRUE(baseline.ok());

  for (unsigned threads : kThreadCounts) {
    EngineOptions options;
    options.num_threads = threads;
    BetweennessEngine engine(g, options);
    const auto batch = engine.EstimateBatch(requests);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch.value().size(), baseline.value().size());
    for (std::size_t i = 0; i < batch.value().size(); ++i) {
      ExpectSameStatistics(batch.value()[i], baseline.value()[i],
                           "batch @" + std::to_string(threads));
    }
    // Validation still rejects the whole batch before any work.
    EstimateRequest bad = mh;
    bad.vertex = 99;
    EXPECT_FALSE(engine.EstimateBatch({mh, bad}).ok());
  }
}

// --------------------------------------------------- intra-pass threads

TEST(ParallelBrandesTest, IntraPassSpdBitIdenticalToSequential) {
  // Frontier-parallel passes inside ExactBetweenness / BrandesBetweenness:
  // any spd.num_threads (grain 0 forces every level through the sharded
  // steps) must reproduce the sequential kernel bit-for-bit.
  const CsrGraph g = MakeBarabasiAlbert(350, 3, 11);
  const std::vector<double> exact_baseline = ExactBetweenness(g);
  // Note the distinct baselines: BrandesBetweenness regroups the
  // per-source sum into fixed shards even at 1 thread, so it is compared
  // against itself, never bitwise against ExactBetweenness.
  const std::vector<double> sharded_baseline =
      BrandesBetweenness(g, Normalization::kPaper, 1);
  for (unsigned intra : kThreadCounts) {
    SpdOptions spd;
    spd.num_threads = intra;
    spd.parallel_grain = 0;
    EXPECT_EQ(ExactBetweenness(g, Normalization::kPaper, spd), exact_baseline)
        << intra << " intra-pass threads";
    // Source-parallel at 1 thread: the caller's intra-pass setting applies
    // within each pass.
    EXPECT_EQ(BrandesBetweenness(g, Normalization::kPaper, 1, spd),
              sharded_baseline)
        << intra << " intra-pass threads (source-serial)";
    // Source-parallel at >1 threads: pool splitting forces the passes
    // sequential; still bit-identical to the 1-thread sharded run.
    EXPECT_EQ(BrandesBetweenness(g, Normalization::kPaper, 4, spd),
              sharded_baseline)
        << intra << " intra-pass threads (source-parallel)";
  }
}

TEST(ParallelEngineTest, IntraPassThreadsInvariantForSerialQueries) {
  // A serial engine (num_threads = 1) with frontier-parallel passes must
  // report every statistical field bit-identically to the default.
  const CsrGraph g = MakeConnectedCaveman(6, 10);
  for (EstimatorKind kind :
       {EstimatorKind::kMetropolisHastings, EstimatorKind::kUniformSource,
        EstimatorKind::kShortestPath, EstimatorKind::kExact}) {
    EstimateRequest request;
    request.kind = kind;
    request.samples = 250;
    request.seed = 0x17A;
    EngineOptions base_options;
    base_options.num_threads = 1;
    BetweennessEngine baseline_engine(g, base_options);
    const auto baseline = baseline_engine.Estimate(19, request);
    ASSERT_TRUE(baseline.ok());
    for (unsigned intra : kThreadCounts) {
      EngineOptions options;
      options.num_threads = 1;
      options.spd.num_threads = intra;
      options.spd.parallel_grain = 0;
      BetweennessEngine engine(g, options);
      const auto report = engine.Estimate(19, request);
      ASSERT_TRUE(report.ok());
      ExpectSameStatistics(report.value(), baseline.value(),
                           std::string(EstimatorKindName(kind)) + " @" +
                               std::to_string(intra) + " intra threads");
    }
  }
}

TEST(ParallelEngineTest, IntraPassInheritsEnginePoolForSingleQueries) {
  // spd.num_threads == 0 (default) inherits the engine pool width for
  // serial-path queries; the composition must stay bit-neutral, including
  // for EstimateMany fan-outs where shards force passes sequential.
  const CsrGraph g = MakeConnectedCaveman(6, 10);
  const std::vector<VertexId> vertices{9, 19, 29, 39, 49, 59, 3, 14};
  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 300;
  request.seed = 0xDE7;
  const std::vector<EstimateReport> baseline =
      ManyAtThreads(g, 1, request, vertices);
  for (unsigned threads : kThreadCounts) {
    EngineOptions options;
    options.num_threads = threads;  // spd.num_threads stays 0 = inherit
    options.spd.parallel_grain = 0;
    BetweennessEngine engine(g, options);
    // Single query: runs on the serial path with intra-pass parallelism.
    const auto single = engine.Estimate(19, request);
    ASSERT_TRUE(single.ok());
    ExpectSameStatistics(single.value(), baseline[1],
                         "inherited intra @" + std::to_string(threads));
    // Fan-out: fewer queries than threads stays serial-across-sources but
    // intra-parallel; at or above the width it shards with serial passes.
    auto many = engine.EstimateMany(vertices, request);
    ASSERT_TRUE(many.ok());
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      ExpectSameStatistics(many.value()[i], baseline[i],
                           "inherited many @" + std::to_string(threads));
    }
  }
}

TEST(ParallelEngineTest, IntraPassAfterApplyDeltaMatchesColdEngine) {
  // The mutation contract extends to frontier-parallel passes: after
  // ApplyDelta, reports must match a cold engine built on the post-edit
  // graph at every intra-pass width.
  const CsrGraph g = MakeBarabasiAlbert(220, 3, 0x1D);
  const GraphDelta delta = MakeRandomEditScript(g, 12, 0xED17);
  EstimateRequest request;
  request.kind = EstimatorKind::kMetropolisHastings;
  request.samples = 220;
  request.seed = 0xF00;
  for (unsigned intra : kThreadCounts) {
    EngineOptions options;
    options.num_threads = 1;
    options.spd.num_threads = intra;
    options.spd.parallel_grain = 0;
    BetweennessEngine engine(g, options);
    ASSERT_TRUE(engine.Estimate(7, request).ok());  // warm the memo
    ASSERT_TRUE(engine.ApplyDelta(delta).ok());
    const auto edited = engine.Estimate(7, request);
    ASSERT_TRUE(edited.ok());
    BetweennessEngine cold(engine.graph(), options);
    const auto cold_report = cold.Estimate(7, request);
    ASSERT_TRUE(cold_report.ok());
    ExpectSameStatistics(edited.value(), cold_report.value(),
                         "post-delta @" + std::to_string(intra));
  }
}

TEST(ParallelEngineTest, ShardMemosMergeBackIntoOwningEngine) {
  // After a parallel fan-out, a sequential query on the same engine must
  // reuse the shards' passes through the merged dependency memo.
  const CsrGraph g = MakeConnectedCaveman(6, 10);
  EngineOptions options;
  options.num_threads = 4;
  BetweennessEngine engine(g, options);
  EstimateRequest request;
  request.kind = EstimatorKind::kUniformSource;
  request.samples = 400;  // >> n = 60: every source gets sampled
  request.seed = 0x5EED;
  ASSERT_TRUE(engine.EstimateMany({9, 19, 29, 39}, request).ok());
  const std::uint64_t passes_before = engine.total_sp_passes();
  const auto sequential = engine.Estimate(49, request);
  ASSERT_TRUE(sequential.ok());
  EXPECT_TRUE(sequential.value().cache_hit);
  // The memo merge means the follow-up costs less than a cold engine pays.
  BetweennessEngine cold(g);
  const auto cold_report = cold.Estimate(49, request);
  ASSERT_TRUE(cold_report.ok());
  EXPECT_LT(engine.total_sp_passes() - passes_before,
            cold_report.value().sp_passes);
  EXPECT_EQ(sequential.value().value, cold_report.value().value);
}

}  // namespace
}  // namespace mhbc
