#include "graph/graph_algos.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace mhbc {
namespace {

CsrGraph TwoComponents() {
  // Path 0-1-2 and edge 3-4.
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  return std::move(b.Build()).value();
}

TEST(ComponentsTest, SingleComponent) {
  const ComponentInfo info = ConnectedComponents(MakeCycle(8));
  EXPECT_EQ(info.num_components, 1u);
  ASSERT_EQ(info.sizes.size(), 1u);
  EXPECT_EQ(info.sizes[0], 8u);
}

TEST(ComponentsTest, TwoComponents) {
  const ComponentInfo info = ConnectedComponents(TwoComponents());
  EXPECT_EQ(info.num_components, 2u);
  std::vector<VertexId> sizes = info.sizes;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(info.label[0], info.label[2]);
  EXPECT_NE(info.label[0], info.label[3]);
}

TEST(ComponentsTest, IsolatedVerticesAreComponents) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  const CsrGraph g = std::move(b.Build()).value();
  EXPECT_EQ(ConnectedComponents(g).num_components, 3u);
}

TEST(IsConnectedTest, Basics) {
  EXPECT_TRUE(IsConnected(MakePath(10)));
  EXPECT_FALSE(IsConnected(TwoComponents()));
  EXPECT_FALSE(IsConnected(CsrGraph()));
}

TEST(LargestComponentTest, ExtractsBiggest) {
  const CsrGraph lcc = ExtractLargestComponent(TwoComponents());
  EXPECT_EQ(lcc.num_vertices(), 3u);
  EXPECT_EQ(lcc.num_edges(), 2u);
  EXPECT_TRUE(IsConnected(lcc));
}

TEST(LargestComponentTest, ConnectedGraphUnchangedInShape) {
  const CsrGraph g = MakeBarabasiAlbert(40, 2, 3);
  const CsrGraph lcc = ExtractLargestComponent(g);
  EXPECT_EQ(lcc.num_vertices(), g.num_vertices());
  EXPECT_EQ(lcc.num_edges(), g.num_edges());
}

TEST(RemovedComponentsTest, PathMiddleSplits) {
  const CsrGraph g = MakePath(5);
  std::vector<VertexId> sizes = RemovedVertexComponentSizes(g, 2);
  std::sort(sizes.begin(), sizes.end());
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 2u);
}

TEST(RemovedComponentsTest, PathEndpointKeepsOneComponent) {
  const CsrGraph g = MakePath(5);
  const std::vector<VertexId> sizes = RemovedVertexComponentSizes(g, 0);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 4u);
}

TEST(RemovedComponentsTest, StarCenterShatters) {
  const CsrGraph g = MakeStar(6);
  const std::vector<VertexId> sizes = RemovedVertexComponentSizes(g, 0);
  EXPECT_EQ(sizes.size(), 5u);
  for (VertexId s : sizes) EXPECT_EQ(s, 1u);
}

TEST(BalancedSeparatorTest, PathCenterIsBalanced) {
  EXPECT_TRUE(IsBalancedSeparator(MakePath(9), 4, 0.4));
}

TEST(BalancedSeparatorTest, PathEndpointIsNot) {
  EXPECT_FALSE(IsBalancedSeparator(MakePath(9), 0, 0.1));
}

TEST(BalancedSeparatorTest, CliqueVertexIsNot) {
  EXPECT_FALSE(IsBalancedSeparator(MakeComplete(6), 2, 0.1));
}

TEST(BalancedSeparatorTest, BarbellBridge) {
  const CsrGraph g = MakeBarbell(5, 1);
  EXPECT_TRUE(IsBalancedSeparator(g, 5, 0.4));  // the bridge vertex
  EXPECT_FALSE(IsBalancedSeparator(g, 0, 0.4));  // inside a clique
}

TEST(InducedSubgraphTest, KeepsInternalEdges) {
  const CsrGraph g = MakeComplete(5);
  const CsrGraph sub = InducedSubgraph(g, {0, 2, 4});
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);  // triangle among kept vertices
}

TEST(InducedSubgraphTest, PreservesWeights) {
  const CsrGraph g = AssignUniformWeights(MakePath(4), 1.0, 2.0, 7);
  const CsrGraph sub = InducedSubgraph(g, {1, 2});
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(sub.EdgeWeight(0, 1), g.EdgeWeight(1, 2));
}

TEST(InducedSubgraphTest, EmptySelection) {
  const CsrGraph sub = InducedSubgraph(MakePath(4), {});
  EXPECT_EQ(sub.num_vertices(), 0u);
  EXPECT_EQ(sub.num_edges(), 0u);
}

}  // namespace
}  // namespace mhbc
