#include "core/mh_chain.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "util/stats.h"

namespace mhbc {
namespace {

TEST(AcceptanceTest, GenericRatio) {
  EXPECT_DOUBLE_EQ(MhAcceptanceProbability(4.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(MhAcceptanceProbability(2.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(MhAcceptanceProbability(3.0, 3.0), 1.0);
}

TEST(AcceptanceTest, ZeroConventions) {
  // From a null state: always move (also covers 0 -> 0).
  EXPECT_DOUBLE_EQ(MhAcceptanceProbability(0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(MhAcceptanceProbability(0.0, 0.0), 1.0);
  // Into a null state from the support: never.
  EXPECT_DOUBLE_EQ(MhAcceptanceProbability(5.0, 0.0), 0.0);
}

TEST(AcceptanceTest, HastingsCorrection) {
  // q_cur = 2, q_prop = 1: ratio doubled.
  EXPECT_DOUBLE_EQ(MhAcceptanceProbability(4.0, 2.0, 2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(MhAcceptanceProbability(4.0, 2.0, 1.0, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(MhAcceptanceProbability(0.0, 1.0, 1.0, 5.0), 1.0);
}

TEST(ClippedRatioTest, Conventions) {
  EXPECT_DOUBLE_EQ(ClippedRatio(2.0, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(ClippedRatio(4.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(ClippedRatio(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(ClippedRatio(2.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ClippedRatio(0.0, 0.0), 1.0);  // the pinned edge case
  EXPECT_DOUBLE_EQ(ClippedRatio(3.0, 3.0), 1.0);
}

TEST(ProposalTest, UniformCoversAllVertices) {
  const CsrGraph g = MakePath(10);
  Rng rng(1);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5'000; ++i) {
    ++seen[DrawProposal(g, ProposalKind::kUniform, &rng)];
  }
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(ProposalTest, DegreeProportionalMatchesDegrees) {
  const CsrGraph g = MakeStar(5);  // center degree 4, leaves degree 1
  Rng rng(2);
  std::vector<int> seen(5, 0);
  constexpr int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) {
    ++seen[DrawProposal(g, ProposalKind::kDegreeProportional, &rng)];
  }
  // Center has mass 4/8 = 0.5, each leaf 1/8.
  EXPECT_NEAR(seen[0] / static_cast<double>(kDraws), 0.5, 0.01);
  for (VertexId v = 1; v < 5; ++v) {
    EXPECT_NEAR(seen[v] / static_cast<double>(kDraws), 0.125, 0.01);
  }
}

TEST(ProposalTest, DegreeProportionalSkipsIsolatedVertices) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);  // vertices 2, 3 isolated
  const CsrGraph g = std::move(b.Build()).value();
  Rng rng(3);
  for (int i = 0; i < 1'000; ++i) {
    const VertexId v = DrawProposal(g, ProposalKind::kDegreeProportional, &rng);
    EXPECT_LT(v, 2u);
  }
}

TEST(ProposalTest, DegreeProportionalWithZeroDegreePrefix) {
  // Vertex 0 isolated: the offset binary search must not return it.
  GraphBuilder b(4);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  const CsrGraph g = std::move(b.Build()).value();
  Rng rng(4);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 8'000; ++i) {
    ++seen[DrawProposal(g, ProposalKind::kDegreeProportional, &rng)];
  }
  EXPECT_EQ(seen[0], 0);
  EXPECT_NEAR(seen[2] / 8000.0, 0.5, 0.03);
}

TEST(ProposalMassTest, Values) {
  const CsrGraph g = MakeStar(5);
  EXPECT_DOUBLE_EQ(ProposalMass(g, ProposalKind::kUniform, 0), 1.0);
  EXPECT_DOUBLE_EQ(ProposalMass(g, ProposalKind::kUniform, 3), 1.0);
  EXPECT_DOUBLE_EQ(ProposalMass(g, ProposalKind::kDegreeProportional, 0), 4.0);
  EXPECT_DOUBLE_EQ(ProposalMass(g, ProposalKind::kDegreeProportional, 3), 1.0);
}

}  // namespace
}  // namespace mhbc
